#include "sim/interpreter.hpp"

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace rtlrepair::sim {

using bv::Value;
using ir::Node;
using ir::NodeKind;
using ir::NodeRef;

Interpreter::Interpreter(const ir::TransitionSystem &sys,
                         SimOptions options)
    : _sys(sys), _options(options), _rng(options.seed)
{
    _node_vals.resize(_sys.nodes.size());
    _state_vals.resize(_sys.states.size());
    _input_vals.resize(_sys.inputs.size());
    _synth_vals.resize(_sys.synth_vars.size());
    for (size_t i = 0; i < _sys.inputs.size(); ++i)
        _input_vals[i] = Value::allX(_sys.inputs[i].width);
    for (size_t i = 0; i < _sys.synth_vars.size(); ++i)
        _synth_vals[i] = Value::zeros(_sys.synth_vars[i].width);
    reset();
}

void
Interpreter::reset()
{
    for (size_t i = 0; i < _sys.states.size(); ++i) {
        const auto &st = _sys.states[i];
        Value v = st.init ? *st.init : Value::allX(st.width);
        _state_vals[i] = applyPolicy(v, _options.init_policy);
    }
    _cycle_valid = false;
}

Value
Interpreter::applyPolicy(const Value &v, XPolicy policy)
{
    if (!v.hasX())
        return v;
    switch (policy) {
      case XPolicy::Keep: return v;
      case XPolicy::Zero: return v.xToZero();
      case XPolicy::Random: return v.xToRandom(_rng);
    }
    return v;
}

void
Interpreter::setInput(size_t index, const Value &value)
{
    check(index < _input_vals.size(), "input index out of range");
    // Tolerate width mismatches (bugs can change port widths):
    // zero-extend or truncate like a Verilog connection would.
    Value v = value;
    uint32_t want = _sys.inputs[index].width;
    if (v.width() < want)
        v = v.zext(want);
    else if (v.width() > want)
        v = v.slice(want - 1, 0);
    _input_vals[index] = applyPolicy(v, _options.input_policy);
    _cycle_valid = false;
}

void
Interpreter::setInputByName(const std::string &name, const Value &value)
{
    int idx = _sys.inputIndex(name);
    check(idx >= 0, "unknown input: " + name);
    setInput(static_cast<size_t>(idx), value);
}

void
Interpreter::setSynthVar(size_t index, const Value &value)
{
    check(index < _synth_vals.size(), "synth var index out of range");
    check(value.width() == _sys.synth_vars[index].width,
          "synth var width mismatch");
    _synth_vals[index] = value;
    _cycle_valid = false;
}

void
Interpreter::setSynthVarByName(const std::string &name,
                               const Value &value)
{
    int idx = _sys.synthVarIndex(name);
    check(idx >= 0, "unknown synth var: " + name);
    setSynthVar(static_cast<size_t>(idx), value);
}

void
Interpreter::setState(size_t index, const Value &value)
{
    check(index < _state_vals.size(), "state index out of range");
    check(value.width() == _sys.states[index].width,
          "state width mismatch");
    _state_vals[index] = value;
    _cycle_valid = false;
}

void
Interpreter::evalCycle()
{
    for (NodeRef ref = 0; ref < _sys.nodes.size(); ++ref) {
        const Node &n = _sys.nodes[ref];
        switch (n.kind) {
          case NodeKind::Const:
            _node_vals[ref] = _sys.consts[n.index];
            break;
          case NodeKind::Input:
            _node_vals[ref] = _input_vals[n.index];
            break;
          case NodeKind::SynthVar:
            _node_vals[ref] = _synth_vals[n.index];
            break;
          case NodeKind::State:
            _node_vals[ref] = _state_vals[n.index];
            break;
          default: {
            const Value *a0 = &_node_vals[n.args[0]];
            const Value *a1 =
                n.args[1] != ir::kNullRef ? &_node_vals[n.args[1]]
                                          : nullptr;
            const Value *a2 =
                n.args[2] != ir::kNullRef ? &_node_vals[n.args[2]]
                                          : nullptr;
            _node_vals[ref] = ir::evalOp(n, a0, a1, a2);
            break;
          }
        }
    }
    _cycle_valid = true;
}

void
Interpreter::step()
{
    if (!_cycle_valid)
        evalCycle();
    for (size_t i = 0; i < _sys.states.size(); ++i)
        _state_vals[i] = _node_vals[_sys.states[i].next];
    _cycle_valid = false;
}

const Value &
Interpreter::valueOf(NodeRef ref) const
{
    check(_cycle_valid, "evalCycle() must run before reading values");
    return _node_vals[ref];
}

const Value &
Interpreter::output(size_t index) const
{
    check(index < _sys.outputs.size(), "output index out of range");
    return valueOf(_sys.outputs[index].ref);
}

const Value &
Interpreter::stateValue(size_t index) const
{
    check(index < _state_vals.size(), "state index out of range");
    return _state_vals[index];
}

ReplayResult
replay(Interpreter &interp, const trace::IoTrace &io)
{
    const auto &sys = interp.system();

    // Pre-resolve column indices.
    std::vector<int> input_map(io.inputs.size());
    for (size_t i = 0; i < io.inputs.size(); ++i) {
        input_map[i] = sys.inputIndex(io.inputs[i].name);
        check(input_map[i] >= 0,
              "trace input not found in design: " + io.inputs[i].name);
    }
    std::vector<int> output_map(io.outputs.size());
    for (size_t i = 0; i < io.outputs.size(); ++i) {
        output_map[i] = sys.outputIndex(io.outputs[i].name);
        check(output_map[i] >= 0,
              "trace output not found in design: " +
                  io.outputs[i].name);
    }

    interp.reset();
    ReplayResult result;
    for (size_t cycle = 0; cycle < io.length(); ++cycle) {
        for (size_t i = 0; i < input_map.size(); ++i) {
            interp.setInput(static_cast<size_t>(input_map[i]),
                            io.input_rows[cycle][i]);
        }
        interp.evalCycle();
        for (size_t i = 0; i < output_map.size(); ++i) {
            const Value &expected = io.output_rows[cycle][i];
            const Value &got =
                interp.output(static_cast<size_t>(output_map[i]));
            if (!got.matches(expected)) {
                result.passed = false;
                result.first_failure = cycle;
                result.failed_output = io.outputs[i].name;
                return result;
            }
        }
        interp.step();
    }
    result.first_failure = io.length();
    return result;
}

trace::IoTrace
record(const ir::TransitionSystem &golden,
       const trace::InputSequence &stim, SimOptions options)
{
    Interpreter interp(golden, options);

    trace::IoTrace io;
    io.inputs = stim.inputs;
    for (const auto &out : golden.outputs) {
        uint32_t width = golden.width(out.ref);
        io.outputs.push_back(trace::Column{out.name, width});
    }

    std::vector<int> input_map(stim.inputs.size());
    for (size_t i = 0; i < stim.inputs.size(); ++i) {
        input_map[i] = golden.inputIndex(stim.inputs[i].name);
        check(input_map[i] >= 0,
              "stimulus input not found in design: " +
                  stim.inputs[i].name);
    }

    interp.reset();
    for (size_t cycle = 0; cycle < stim.length(); ++cycle) {
        for (size_t i = 0; i < input_map.size(); ++i) {
            interp.setInput(static_cast<size_t>(input_map[i]),
                            stim.rows[cycle][i]);
        }
        interp.evalCycle();
        io.input_rows.push_back(stim.rows[cycle]);
        std::vector<Value> out_row;
        out_row.reserve(golden.outputs.size());
        for (size_t i = 0; i < golden.outputs.size(); ++i)
            out_row.push_back(interp.output(i));
        io.output_rows.push_back(std::move(out_row));
        interp.step();
    }
    return io;
}

} // namespace rtlrepair::sim
