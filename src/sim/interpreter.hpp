/**
 * @file
 * Cycle-accurate 4-state interpreter for transition systems.
 *
 * This is the reproduction's stand-in for running a design under
 * Verilator/VCS (trace recording, candidate-repair validation) — it
 * executes the same IR the repair synthesizer reasons about, so a
 * simulation pass/fail verdict is consistent with the SMT encoding.
 *
 * X handling follows paper §4.3: uninitialized registers and
 * unconstrained inputs can be kept as X (4-state event simulators),
 * set to zero (Verilator), or randomized.
 */
#ifndef RTLREPAIR_SIM_INTERPRETER_HPP
#define RTLREPAIR_SIM_INTERPRETER_HPP

#include <string>
#include <vector>

#include "ir/transition_system.hpp"
#include "trace/io_trace.hpp"
#include "util/rng.hpp"

namespace rtlrepair::sim {

/** How X bits in inputs / initial state are resolved. */
enum class XPolicy { Keep, Zero, Random };

struct SimOptions
{
    XPolicy init_policy = XPolicy::Keep;
    XPolicy input_policy = XPolicy::Keep;
    uint64_t seed = 1;
};

/** Executes one TransitionSystem cycle by cycle. */
class Interpreter
{
  public:
    explicit Interpreter(const ir::TransitionSystem &sys,
                         SimOptions options = {});

    /** Reset all states to their init value (or the X policy). */
    void reset();

    /** @name Per-cycle inputs (apply the input X policy) @{ */
    void setInput(size_t index, const bv::Value &value);
    void setInputByName(const std::string &name, const bv::Value &value);
    /** @} */

    /** Bind a synthesis variable for the whole run. */
    void setSynthVar(size_t index, const bv::Value &value);
    void setSynthVarByName(const std::string &name,
                           const bv::Value &value);

    /** Force a state value (used to seed repair windows). */
    void setState(size_t index, const bv::Value &value);

    /** Evaluate all combinational values for the current cycle. */
    void evalCycle();

    /** evalCycle() then latch every state's next value. */
    void step();

    /** @name Value access (valid after evalCycle/step) @{ */
    const bv::Value &valueOf(ir::NodeRef ref) const;
    const bv::Value &output(size_t index) const;
    const bv::Value &stateValue(size_t index) const;
    /** @} */

    const ir::TransitionSystem &system() const { return _sys; }

  private:
    bv::Value applyPolicy(const bv::Value &v, XPolicy policy);

    const ir::TransitionSystem &_sys;
    SimOptions _options;
    Rng _rng;
    std::vector<bv::Value> _node_vals;   ///< per-cycle node values
    std::vector<bv::Value> _state_vals;  ///< current state values
    std::vector<bv::Value> _input_vals;
    std::vector<bv::Value> _synth_vals;
    bool _cycle_valid = false;
};

/** Result of replaying an I/O trace against a design. */
struct ReplayResult
{
    bool passed = true;
    /** First cycle with an output mismatch (trace length if none). */
    size_t first_failure = 0;
    std::string failed_output;

    /** Per-cycle match status is implied: failure stops the replay. */
};

/**
 * Reset @p interp and replay @p trace, comparing outputs each cycle.
 * Stops at the first mismatch.  Input/output columns are matched to
 * the system's ports by name; missing columns are an error.
 */
ReplayResult replay(Interpreter &interp, const trace::IoTrace &io);

/**
 * Record the golden I/O trace: drive @p stim into @p golden and
 * capture all outputs each cycle.
 */
trace::IoTrace record(const ir::TransitionSystem &golden,
                      const trace::InputSequence &stim,
                      SimOptions options = {});

} // namespace rtlrepair::sim

#endif // RTLREPAIR_SIM_INTERPRETER_HPP
