/**
 * @file
 * Bit-parallel 64-lane vectorized simulation backend.
 *
 * Both simulators in this file execute 64 independent stimuli in one
 * pass by operating on bv::PackedValue planes and *lane masks*
 * (uint64_t, bit L = lane L):
 *
 *  - VecEventSimulator mirrors EventSimulator (event_sim.cpp)
 *    statement for statement; divergent control flow is handled by
 *    masked execution (an `if` executes the then-branch under the
 *    lanes whose condition is true and the else-branch under the
 *    rest), and the delta-cycle loop keeps per-lane changed/NBA masks
 *    so that event scheduling, edge detection, and the oscillation
 *    cutoff are decided per lane exactly as 64 scalar simulators
 *    would decide them.
 *
 *  - VecInterpreter mirrors the IR Interpreter for ConcreteRunner
 *    batch candidate validation: one forward sweep over the
 *    transition system evaluates 64 candidate repairs at once.
 *
 * The equivalence contract: lane L of any vectorized run is bit-exact
 * with an independent scalar run of lane L's stimulus (enforced by
 * tests/vec_sim_test.cpp).  The few Verilog corners whose scalar
 * semantics are lane-divergent by construction (a non-identifier part
 * in a non-blocking concat assignment, whose scalar approximation
 * rewrites the stored signal *width*) throw VecUnsupported, and the
 * batch drivers fall back to per-lane scalar simulation.
 */
#ifndef RTLREPAIR_SIM_VEC_SIM_HPP
#define RTLREPAIR_SIM_VEC_SIM_HPP

#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/process_info.hpp"
#include "analysis/widths.hpp"
#include "bv/packed_value.hpp"
#include "sim/event_sim.hpp"
#include "sim/interpreter.hpp"
#include "sim/sim_backend.hpp"
#include "verilog/ast.hpp"

namespace rtlrepair::sim {

/**
 * A design uses a construct the vectorized backend cannot replicate
 * lane-exactly; callers fall back to the scalar simulator.
 */
struct VecUnsupported : std::runtime_error
{
    explicit VecUnsupported(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Event-driven simulator evaluating up to 64 lanes at once. */
class VecEventSimulator
{
  public:
    /** @throws VecUnsupported for designs the backend cannot run. */
    VecEventSimulator(const verilog::Module &mod,
                      const std::vector<const verilog::Module *>
                          &library,
                      std::string clock, uint32_t nlanes);

    void powerOn();

    /** Drive an input in the lanes of @p mask. */
    void setInput(const std::string &name,
                  const bv::PackedValue &value, uint64_t mask);

    /** One clock cycle for every live (unfrozen) lane. */
    void step();

    /** Settle only (no clock edge) — for combinational designs. */
    void settleOnly();

    bv::PackedValue get(const std::string &name) const;
    const bv::PackedValue &sampledOutput(const std::string &name) const;

    /** Declared width of a signal (for input packing). */
    uint32_t widthOf(const std::string &name) const;

    /** Lanes whose delta cycle hit the oscillation cutoff (sticky). */
    uint64_t unstableLanes() const { return _unstable; }

    /**
     * Stop simulating the lanes of @p mask (their trace is finished);
     * writes and delta-cycle work skip them from now on.
     */
    void freezeLanes(uint64_t mask) { _frozen |= mask; }

    uint32_t lanes() const { return _nlanes; }
    /** Mask with one bit per configured lane. */
    uint64_t allLanes() const { return _all; }

  private:
    struct Proc
    {
        const verilog::AlwaysBlock *block;
        analysis::ProcessInfo info;
        verilog::StmtPtr body;  ///< for-loops unrolled
    };
    struct Transition
    {
        uint64_t pose = 0, nege = 0, level = 0;
    };

    void runInitialBlocks();
    void settle();
    void runProcess(const Proc &proc, uint64_t mask);
    void execStmt(const verilog::Stmt &stmt, uint64_t mask);
    void assignNow(const verilog::Expr &lhs,
                   const bv::PackedValue &value, uint64_t mask);
    void queueNba(const verilog::Expr &lhs,
                  const bv::PackedValue &rhs, uint64_t mask);
    void writeSignal(const std::string &name,
                     const bv::PackedValue &value, uint64_t mask);
    /** Queued NBA value blended over the current value, per lane. */
    bv::PackedValue nbaTarget(const std::string &name) const;
    bv::PackedValue evalExpr(const verilog::Expr &expr,
                             uint32_t ctx) const;
    bv::PackedValue evalBinary(const verilog::BinaryExpr &expr,
                               uint32_t ctx) const;
    uint64_t caseMatch(const bv::PackedValue &subject,
                       const bv::PackedValue &label,
                       verilog::CaseStmt::Mode mode) const;

    std::unique_ptr<verilog::Module> _mod;
    analysis::SymbolTable _table;
    std::string _clock;
    uint32_t _nlanes;
    uint64_t _all;  ///< mask of configured lanes
    std::vector<Proc> _procs;
    std::vector<const verilog::ContAssign *> _cont_assigns;
    std::vector<std::set<std::string>> _cont_reads;

    std::map<std::string, bv::PackedValue> _values;
    std::map<std::string, bv::PackedValue> _prev;  ///< edge detection
    std::map<std::string, uint64_t> _changed;      ///< per-lane masks
    std::map<std::string, bv::PackedValue> _nba;
    std::map<std::string, uint64_t> _nba_mask;
    std::map<std::string, bv::PackedValue> _sampled;
    uint64_t _unstable = 0;
    uint64_t _frozen = 0;
};

/**
 * Replay up to any number of traces (chunked 64 lanes at a time)
 * against the vectorized simulator; falls back to per-trace scalar
 * simulation when the design throws VecUnsupported or the traces
 * disagree on column structure.  Result i corresponds to trace i.
 */
std::vector<ReplayResult> vecEventReplayBatch(
    const verilog::Module &mod,
    const std::vector<const verilog::Module *> &library,
    const std::string &clock,
    const std::vector<const trace::IoTrace *> &traces);

/** Batched golden-trace recording; same fallback rules as replay. */
std::vector<trace::IoTrace> vecEventRecordBatch(
    const verilog::Module &mod,
    const std::vector<const verilog::Module *> &library,
    const std::string &clock,
    const std::vector<const trace::InputSequence *> &stims);

/** @name Backend-dispatching entry points
 * Single-trace wrappers: an explicit (or env-resolved) Vec request
 * runs the vectorized backend with one lane, anything else the scalar
 * simulator.  The batch forms use the vectorized backend unless Event
 * is requested.
 * @{ */
ReplayResult replayTrace(SimBackend backend, const verilog::Module &mod,
                         const std::vector<const verilog::Module *>
                             &library,
                         const std::string &clock,
                         const trace::IoTrace &io);

trace::IoTrace recordTrace(SimBackend backend,
                           const verilog::Module &mod,
                           const std::vector<const verilog::Module *>
                               &library,
                           const std::string &clock,
                           const trace::InputSequence &stim);

std::vector<ReplayResult> replayTraceBatch(
    SimBackend backend, const verilog::Module &mod,
    const std::vector<const verilog::Module *> &library,
    const std::string &clock,
    const std::vector<const trace::IoTrace *> &traces);

std::vector<trace::IoTrace> recordTraceBatch(
    SimBackend backend, const verilog::Module &mod,
    const std::vector<const verilog::Module *> &library,
    const std::string &clock,
    const std::vector<const trace::InputSequence *> &stims);
/** @} */

/** Packed-plane interpreter: 64 transition-system runs at once. */
class VecInterpreter
{
  public:
    explicit VecInterpreter(const ir::TransitionSystem &sys,
                            uint32_t nlanes);

    /** Reset all states to init (X kept, as SimOptions{Keep}). */
    void reset();

    /** Same value in every lane (batch runs share the stimulus). */
    void setInputAll(size_t index, const bv::Value &value);
    /** Per-lane synthesis-variable binding. */
    void setSynthVar(size_t index, uint32_t lane,
                     const bv::Value &value);
    /** Same state seed in every lane. */
    void setStateAll(size_t index, const bv::Value &value);

    void evalCycle();
    void step();

    const bv::PackedValue &output(size_t index) const;
    uint32_t lanes() const { return _nlanes; }
    uint64_t allLanes() const { return _all; }

  private:
    const ir::TransitionSystem &_sys;
    uint32_t _nlanes;
    uint64_t _all;
    std::vector<bv::PackedValue> _node_vals;
    std::vector<bv::PackedValue> _state_vals;
    std::vector<bv::PackedValue> _input_vals;
    std::vector<bv::PackedValue> _synth_vals;
    bool _cycle_valid = false;
};

} // namespace rtlrepair::sim

#endif // RTLREPAIR_SIM_VEC_SIM_HPP
