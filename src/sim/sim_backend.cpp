#include "sim/sim_backend.hpp"

#include <cstdlib>

#include "util/logging.hpp"

namespace rtlrepair::sim {

SimBackend
parseSimBackend(const std::string &name)
{
    if (name == "auto")
        return SimBackend::Auto;
    if (name == "event")
        return SimBackend::Event;
    if (name == "vec")
        return SimBackend::Vec;
    fatal("unknown simulation backend: " + name +
          " (expected auto, event, or vec)");
}

const char *
simBackendName(SimBackend backend)
{
    switch (backend) {
      case SimBackend::Auto: return "auto";
      case SimBackend::Event: return "event";
      case SimBackend::Vec: return "vec";
    }
    return "auto";
}

SimBackend
resolveSimBackend(SimBackend requested)
{
    if (requested != SimBackend::Auto)
        return requested;
    const char *env = std::getenv("RTLREPAIR_SIM");
    if (env != nullptr && *env != '\0')
        return parseSimBackend(env);
    return SimBackend::Auto;
}

} // namespace rtlrepair::sim
