#include "sim/vec_sim.hpp"

#include <algorithm>

#include "analysis/const_eval.hpp"
#include "elaborate/elaborate.hpp"
#include "util/logging.hpp"
#include "verilog/ast_util.hpp"

namespace rtlrepair::sim {

using namespace verilog;
using analysis::ProcessInfo;
using bv::PackedValue;
using bv::Value;

namespace {

constexpr int kMaxDeltaRounds = 200;

/**
 * Per-net width cap: a packed signal costs 64x the scalar footprint
 * (two words per bit), so designs past this fall back to the scalar
 * simulator instead of ballooning memory.
 */
constexpr uint32_t kMaxVecNetWidth = 1u << 16;

PackedValue
adjustWidth(PackedValue v, uint32_t w)
{
    if (v.width() < w)
        return v.zext(w);
    if (v.width() > w)
        return v.slice(w - 1, 0);
    return v;
}

} // namespace

VecEventSimulator::VecEventSimulator(
    const Module &mod, const std::vector<const Module *> &library,
    std::string clock, uint32_t nlanes)
    : _clock(std::move(clock)), _nlanes(nlanes)
{
    check(nlanes >= 1 && nlanes <= PackedValue::kLanes,
          "lane count out of range");
    _all = nlanes == 64 ? ~0ull : ((1ull << nlanes) - 1ull);

    elaborate::ElaborateOptions opts;
    opts.library = library;
    _mod = elaborate::flattenHierarchy(mod, opts);
    _table = analysis::SymbolTable::build(*_mod);
    for (const auto &[name, range] : _table.nets()) {
        if (range.width > kMaxVecNetWidth) {
            throw VecUnsupported("net too wide for vectorized "
                                 "simulation: " +
                                 name);
        }
    }

    for (const auto &item : _mod->items) {
        if (item->kind == Item::Kind::Always) {
            const auto &blk = static_cast<const AlwaysBlock &>(*item);
            Proc proc;
            proc.block = &blk;
            proc.info = analysis::analyzeProcess(blk);
            proc.body = blk.body->clone();
            analysis::unrollFors(proc.body, _table.params());
            _procs.push_back(std::move(proc));
        } else if (item->kind == Item::Kind::ContAssign) {
            const auto *assign =
                static_cast<const ContAssign *>(item.get());
            _cont_assigns.push_back(assign);
            std::set<std::string> reads;
            collectIdents(*assign->rhs, reads);
            if (assign->lhs->kind != Expr::Kind::Ident)
                collectIdents(*assign->lhs, reads);
            _cont_reads.push_back(std::move(reads));
        }
    }
    powerOn();
}

void
VecEventSimulator::powerOn()
{
    _values.clear();
    _prev.clear();
    _changed.clear();
    _nba.clear();
    _nba_mask.clear();
    _sampled.clear();
    _unstable = 0;
    _frozen = 0;
    for (const auto &[name, range] : _table.nets()) {
        _values.emplace(name, PackedValue::allX(range.width));
        _prev.emplace(name, PackedValue::allX(range.width));
    }
    runInitialBlocks();
    for (const auto &[name, range] : _table.nets()) {
        (void)range;
        _changed[name] = _all;
    }
    settle();
}

void
VecEventSimulator::runInitialBlocks()
{
    for (const auto &item : _mod->items) {
        if (item->kind != Item::Kind::Initial)
            continue;
        const auto &blk = static_cast<const InitialBlock &>(*item);
        StmtPtr body = blk.body->clone();
        analysis::unrollFors(body, _table.params());
        execStmt(*body, _all);
    }
    for (const auto &[name, value] : _nba)
        writeSignal(name, value, _nba_mask.at(name));
    _nba.clear();
    _nba_mask.clear();
}

void
VecEventSimulator::setInput(const std::string &name,
                            const PackedValue &value, uint64_t mask)
{
    uint32_t w = _table.widthOf(name);
    if (value.width() == w)
        writeSignal(name, value, mask);
    else
        writeSignal(name, adjustWidth(value, w), mask);
}

PackedValue
VecEventSimulator::get(const std::string &name) const
{
    auto it = _values.find(name);
    if (it == _values.end())
        panic("unknown signal: " + name);
    return it->second;
}

const PackedValue &
VecEventSimulator::sampledOutput(const std::string &name) const
{
    auto it = _sampled.find(name);
    if (it == _sampled.end())
        panic("output was not sampled: " + name);
    return it->second;
}

uint32_t
VecEventSimulator::widthOf(const std::string &name) const
{
    return _table.widthOf(name);
}

void
VecEventSimulator::writeSignal(const std::string &name,
                               const PackedValue &value, uint64_t mask)
{
    mask &= _all & ~_frozen;
    if (!mask)
        return;
    auto it = _values.find(name);
    if (it == _values.end())
        panic("write to unknown signal: " + name);
    uint64_t diff = ~it->second.laneEq(value) & mask;
    if (!diff)
        return;
    it->second = PackedValue::blend(value, it->second, diff);
    _changed[name] |= diff;
}

void
VecEventSimulator::step()
{
    static const PackedValue clk0 =
        PackedValue::broadcast(Value::fromUint(1, 0));
    static const PackedValue clk1 =
        PackedValue::broadcast(Value::fromUint(1, 1));
    if (!_clock.empty())
        setInput(_clock, clk0, _all);
    settle();
    _sampled.clear();
    for (const auto &port : _mod->ports) {
        if (port.dir == PortDir::Output)
            _sampled.emplace(port.name, get(port.name));
    }
    if (!_clock.empty()) {
        setInput(_clock, clk1, _all);
        settle();
    }
}

void
VecEventSimulator::settleOnly()
{
    settle();
    _sampled.clear();
    for (const auto &port : _mod->ports) {
        if (port.dir == PortDir::Output)
            _sampled.emplace(port.name, get(port.name));
    }
}

void
VecEventSimulator::settle()
{
    // Each live lane independently follows the scalar delta-cycle
    // loop: a lane with pending changes processes its batch this
    // round, a lane with only queued NBAs applies them this round, a
    // lane with neither is settled.  Because a write in one lane can
    // never mark a *different* lane changed, a settled lane stays
    // settled, so every still-active lane has been active since round
    // 0 and the global round counter doubles as each lane's own.
    uint64_t live = _all & ~_frozen;
    for (int round = 0;; ++round) {
        uint64_t changed = 0;
        for (const auto &[name, m] : _changed)
            changed |= m;
        changed &= live;
        uint64_t nba_lanes = 0;
        for (const auto &[name, m] : _nba_mask)
            nba_lanes |= m;
        nba_lanes &= live;
        uint64_t nba_now = nba_lanes & ~changed;
        uint64_t active = changed | nba_now;
        if (!active)
            return;
        if (round >= kMaxDeltaRounds) {
            _unstable |= active;
            logMessage(LogLevel::Info,
                       "event simulation did not settle "
                       "(oscillation)");
            return;
        }

        // Take this round's batch (only the lanes processing one).
        std::map<std::string, uint64_t> batch;
        for (auto it = _changed.begin(); it != _changed.end();) {
            uint64_t m = it->second & changed;
            uint64_t rest = it->second & ~changed;
            if (m)
                batch.emplace(it->first, m);
            if (rest) {
                it->second = rest;
                ++it;
            } else {
                it = _changed.erase(it);
            }
        }

        // NBA region for the lanes with nothing else pending; the
        // writes land in _changed and are processed next round, like
        // the scalar `continue`.
        if (nba_now) {
            for (auto it = _nba.begin(); it != _nba.end();) {
                const std::string &name = it->first;
                uint64_t &qmask = _nba_mask.at(name);
                uint64_t m = qmask & nba_now;
                if (m) {
                    writeSignal(name, it->second, m);
                    qmask &= ~m;
                }
                if (qmask == 0) {
                    _nba_mask.erase(name);
                    it = _nba.erase(it);
                } else {
                    ++it;
                }
            }
        }
        if (batch.empty())
            continue;

        // Edge detection on bit 0 of each batched signal.
        std::map<std::string, Transition> transitions;
        for (const auto &[name, m] : batch) {
            const PackedValue &now = _values.at(name);
            PackedValue &old = _prev.at(name);
            uint64_t nv = now.valAt(0), nu = now.unkAt(0);
            uint64_t ov = old.valAt(0), ou = old.unkAt(0);
            Transition t;
            t.pose = m & nv & ~ov;
            t.nege = m & ~nv & ~nu & (ov | ou);
            t.level = m & ((nv ^ ov) | (nu ^ ou));
            transitions.emplace(name, t);
            old = PackedValue::blend(now, old, m);
        }

        // Continuous assignments sensitive to the batch.
        for (size_t ai = 0; ai < _cont_assigns.size(); ++ai) {
            const ContAssign *assign = _cont_assigns[ai];
            uint64_t hit = 0;
            for (const auto &name : _cont_reads[ai]) {
                auto it = batch.find(name);
                if (it != batch.end())
                    hit |= it->second;
            }
            if (!hit)
                continue;
            std::string target = analysis::lhsBaseName(*assign->lhs);
            uint32_t ctx = _table.widthOf(target);
            assignNow(*assign->lhs, evalExpr(*assign->rhs, ctx), hit);
        }

        // Processes.
        for (const Proc &proc : _procs) {
            uint64_t trig = 0;
            if (proc.info.kind == ProcessInfo::Kind::Clocked) {
                for (const auto &sens : proc.block->sensitivity) {
                    auto t = transitions.find(sens.signal);
                    if (t == transitions.end())
                        continue;
                    if (sens.edge == SensItem::Edge::Posedge)
                        trig |= t->second.pose;
                    else if (sens.edge == SensItem::Edge::Negedge)
                        trig |= t->second.nege;
                    else if (sens.edge == SensItem::Edge::Level)
                        trig |= t->second.level;
                }
            } else {
                bool star = false;
                for (const auto &sens : proc.block->sensitivity) {
                    if (sens.edge == SensItem::Edge::Star)
                        star = true;
                }
                const std::set<std::string> &watch =
                    star ? proc.info.read : proc.info.listed;
                for (const auto &name : watch) {
                    auto it = batch.find(name);
                    if (it != batch.end())
                        trig |= it->second;
                }
            }
            if (trig)
                runProcess(proc, trig);
        }
    }
}

void
VecEventSimulator::runProcess(const Proc &proc, uint64_t mask)
{
    // As in the scalar simulator, a process evaluates atomically per
    // lane: a triggered lane whose assigned signal ends the run at
    // its pre-run value must not stay marked changed.
    std::map<std::string, PackedValue> pre;
    for (const auto &name : proc.info.assigned) {
        auto it = _values.find(name);
        if (it != _values.end())
            pre.emplace(name, it->second);
    }
    execStmt(*proc.body, mask);
    for (const auto &[name, before] : pre) {
        uint64_t same = mask & before.laneEq(_values.at(name));
        if (!same)
            continue;
        auto it = _changed.find(name);
        if (it == _changed.end())
            continue;
        it->second &= ~same;
        if (it->second == 0)
            _changed.erase(it);
    }
}

void
VecEventSimulator::execStmt(const Stmt &stmt, uint64_t mask)
{
    if (!mask)
        return;
    switch (stmt.kind) {
      case Stmt::Kind::Block:
        for (const auto &s :
             static_cast<const BlockStmt &>(stmt).stmts)
            execStmt(*s, mask);
        return;
      case Stmt::Kind::If: {
        const auto &i = static_cast<const IfStmt &>(stmt);
        PackedValue cond = evalExpr(*i.cond, 0);
        // X condition lanes take the else branch (cond is not true).
        uint64_t t = cond.laneTrue() & mask;
        execStmt(*i.then_stmt, t);
        if (i.else_stmt)
            execStmt(*i.else_stmt, mask & ~t);
        return;
      }
      case Stmt::Kind::Case: {
        const auto &c = static_cast<const CaseStmt &>(stmt);
        uint32_t ctx = analysis::exprWidth(*c.subject, _table);
        for (const auto &item : c.items) {
            for (const auto &label : item.labels) {
                ctx = std::max(ctx,
                               analysis::exprWidth(*label, _table));
            }
        }
        PackedValue subject = evalExpr(*c.subject, ctx);
        if (subject.width() < ctx)
            subject = subject.zext(ctx);
        uint64_t remaining = mask;
        for (const auto &item : c.items) {
            uint64_t hit = 0;
            for (const auto &label : item.labels) {
                if (!remaining)
                    break;
                PackedValue lv = adjustWidth(evalExpr(*label, ctx),
                                             ctx);
                hit |= remaining & caseMatch(subject, lv, c.mode);
                remaining &= ~hit;
            }
            if (hit)
                execStmt(*item.body, hit);
        }
        if (c.default_body && remaining)
            execStmt(*c.default_body, remaining);
        return;
      }
      case Stmt::Kind::Assign: {
        const auto &a = static_cast<const AssignStmt &>(stmt);
        if (a.lhs->kind == Expr::Kind::Concat) {
            const auto &c = static_cast<const ConcatExpr &>(*a.lhs);
            uint32_t total = 0;
            std::vector<uint32_t> widths;
            for (const auto &part : c.parts) {
                std::string name = analysis::lhsBaseName(*part);
                uint32_t w = part->kind == Expr::Kind::Ident
                                 ? _table.widthOf(name)
                                 : 1;
                widths.push_back(w);
                total += w;
            }
            PackedValue rhs = evalExpr(*a.rhs, total);
            if (rhs.width() < total)
                rhs = rhs.zext(total);
            uint32_t off = total;
            for (size_t i = 0; i < c.parts.size(); ++i) {
                off -= widths[i];
                PackedValue piece =
                    rhs.slice(off + widths[i] - 1, off);
                if (a.blocking) {
                    assignNow(*c.parts[i], piece, mask);
                } else {
                    // The scalar simulator queues the raw piece as
                    // the signal's whole NBA entry; for a select part
                    // that rewrites the stored *width*, which has no
                    // lane-uniform packed representation.
                    if (c.parts[i]->kind != Expr::Kind::Ident) {
                        throw VecUnsupported(
                            "non-identifier part in non-blocking "
                            "concat assignment");
                    }
                    std::string name =
                        analysis::lhsBaseName(*c.parts[i]);
                    PackedValue target = nbaTarget(name);
                    _nba.insert_or_assign(
                        name,
                        PackedValue::blend(piece, target, mask));
                    _nba_mask[name] |= mask;
                }
            }
            return;
        }
        std::string name = analysis::lhsBaseName(*a.lhs);
        uint32_t ctx = a.lhs->kind == Expr::Kind::Ident
                           ? _table.widthOf(name)
                           : 1;
        if (a.lhs->kind == Expr::Kind::RangeSelect) {
            const auto &r =
                static_cast<const RangeSelectExpr &>(*a.lhs);
            int64_t msb =
                analysis::constEvalInt(*r.msb, _table.params());
            int64_t lsb =
                analysis::constEvalInt(*r.lsb, _table.params());
            ctx = static_cast<uint32_t>(std::abs(msb - lsb)) + 1;
        }
        PackedValue rhs = evalExpr(*a.rhs, ctx);
        if (a.blocking) {
            assignNow(*a.lhs, rhs, mask);
            return;
        }
        queueNba(*a.lhs, rhs, mask);
        return;
      }
      case Stmt::Kind::Empty:
        return;
      case Stmt::Kind::For:
        panic("for-loops are unrolled before event simulation");
    }
}

PackedValue
VecEventSimulator::nbaTarget(const std::string &name) const
{
    const PackedValue &cur = _values.at(name);
    auto it = _nba.find(name);
    if (it == _nba.end())
        return cur;
    return PackedValue::blend(it->second, cur, _nba_mask.at(name));
}

/**
 * Queue a non-blocking write: the RHS and any select index read
 * pre-edge values now; the merged full-signal value (per lane) is
 * queued for the NBA region.
 */
void
VecEventSimulator::queueNba(const Expr &lhs, const PackedValue &rhs,
                            uint64_t mask)
{
    std::string name = analysis::lhsBaseName(lhs);
    PackedValue target = nbaTarget(name);
    int64_t lsb_off = _table.rangeOf(name).lsb;
    switch (lhs.kind) {
      case Expr::Kind::Ident: {
        PackedValue v = adjustWidth(rhs, target.width());
        target = PackedValue::blend(v, target, mask);
        break;
      }
      case Expr::Kind::RangeSelect: {
        const auto &r = static_cast<const RangeSelectExpr &>(lhs);
        int64_t msb =
            analysis::constEvalInt(*r.msb, _table.params()) - lsb_off;
        int64_t lsb =
            analysis::constEvalInt(*r.lsb, _table.params()) - lsb_off;
        if (msb < lsb)
            std::swap(msb, lsb);
        uint32_t pos =
            static_cast<uint32_t>(std::max<int64_t>(lsb, 0));
        uint32_t width = static_cast<uint32_t>(msb - lsb + 1);
        if (pos < target.width()) {
            PackedValue v = adjustWidth(rhs, width);
            for (uint32_t b = 0;
                 b < width && pos + b < target.width(); ++b) {
                target.setBitLanes(pos + b, v.valAt(b), v.unkAt(b),
                                   mask);
            }
        }
        break;
      }
      case Expr::Kind::Index: {
        const auto &ix = static_cast<const IndexExpr &>(lhs);
        PackedValue idx = evalExpr(*ix.index, 0);
        PackedValue v = adjustWidth(rhs, 1);
        // Lanes whose index is X or out of range queue the entry but
        // write no bit, like the scalar out-of-range position.
        for (uint32_t pos = 0; pos < target.width(); ++pos) {
            uint64_t m =
                mask & idx.laneEqUint(static_cast<uint64_t>(
                           static_cast<int64_t>(pos) + lsb_off));
            if (m)
                target.setBitLanes(pos, v.valAt(0), v.unkAt(0), m);
        }
        break;
      }
      default:
        fatal("unsupported assignment target in event simulation");
    }
    _nba.insert_or_assign(name, std::move(target));
    _nba_mask[name] |= mask;
}

void
VecEventSimulator::assignNow(const Expr &lhs, const PackedValue &value,
                             uint64_t mask)
{
    std::string name = analysis::lhsBaseName(lhs);
    const PackedValue &full = _values.at(name);
    int64_t lsb_off = _table.rangeOf(name).lsb;
    switch (lhs.kind) {
      case Expr::Kind::Ident:
        writeSignal(name, adjustWidth(value, full.width()), mask);
        return;
      case Expr::Kind::RangeSelect: {
        const auto &r = static_cast<const RangeSelectExpr &>(lhs);
        int64_t msb =
            analysis::constEvalInt(*r.msb, _table.params()) - lsb_off;
        int64_t lsb =
            analysis::constEvalInt(*r.lsb, _table.params()) - lsb_off;
        if (msb < lsb)
            std::swap(msb, lsb);
        uint32_t pos =
            static_cast<uint32_t>(std::max<int64_t>(lsb, 0));
        uint32_t width = static_cast<uint32_t>(msb - lsb + 1);
        if (pos >= full.width())
            return; // fully out of range: no write
        PackedValue v = adjustWidth(value, width);
        PackedValue merged = full;
        for (uint32_t b = 0; b < width && pos + b < full.width(); ++b)
            merged.setBitLanes(pos + b, v.valAt(b), v.unkAt(b), mask);
        writeSignal(name, merged, mask);
        return;
      }
      case Expr::Kind::Index: {
        const auto &ix = static_cast<const IndexExpr &>(lhs);
        PackedValue idx = evalExpr(*ix.index, 0);
        PackedValue v = adjustWidth(value, 1);
        PackedValue merged = full;
        uint64_t wrote = 0;
        for (uint32_t pos = 0; pos < full.width(); ++pos) {
            uint64_t m =
                mask & idx.laneEqUint(static_cast<uint64_t>(
                           static_cast<int64_t>(pos) + lsb_off));
            if (m) {
                merged.setBitLanes(pos, v.valAt(0), v.unkAt(0), m);
                wrote |= m;
            }
        }
        if (wrote)
            writeSignal(name, merged, wrote);
        return;
      }
      default:
        fatal("unsupported assignment target in event simulation");
    }
}

uint64_t
VecEventSimulator::caseMatch(const PackedValue &subject,
                             const PackedValue &label,
                             CaseStmt::Mode mode) const
{
    check(subject.width() == label.width(),
          "caseEq: width mismatch");
    uint64_t mismatch = 0;
    for (uint32_t p = 0; p < subject.width(); ++p) {
        uint64_t sv = subject.valAt(p), su = subject.unkAt(p);
        uint64_t lv = label.valAt(p), lu = label.unkAt(p);
        switch (mode) {
          case CaseStmt::Mode::Plain:
            mismatch |= (sv ^ lv) | (su ^ lu);
            break;
          case CaseStmt::Mode::CaseZ:
            // Label X/Z bits are wildcards; an X subject bit against
            // a known label bit is a mismatch.
            mismatch |= ~lu & (su | (sv ^ lv));
            break;
          case CaseStmt::Mode::CaseX:
            mismatch |= ~lu & ~su & (sv ^ lv);
            break;
        }
    }
    return ~mismatch;
}

PackedValue
VecEventSimulator::evalExpr(const Expr &expr, uint32_t ctx) const
{
    switch (expr.kind) {
      case Expr::Kind::Ident: {
        const auto &name = static_cast<const IdentExpr &>(expr).name;
        auto param = _table.params().find(name);
        if (param != _table.params().end())
            return PackedValue::broadcast(param->second);
        auto it = _values.find(name);
        if (it == _values.end())
            panic("read of unknown signal: " + name);
        return it->second;
      }
      case Expr::Kind::Literal:
        return PackedValue::broadcast(
            static_cast<const LiteralExpr &>(expr).value);
      case Expr::Kind::Call:
        panic("function call survived lowering");
      case Expr::Kind::Unary: {
        const auto &u = static_cast<const UnaryExpr &>(expr);
        switch (u.op) {
          case UnaryOp::BitNot: {
            PackedValue v = evalExpr(*u.operand, ctx);
            if (v.width() < ctx)
                v = v.zext(ctx);
            return ~v;
          }
          case UnaryOp::LogicNot:
            return ~evalExpr(*u.operand, 0).redOr();
          case UnaryOp::Minus: {
            PackedValue v = evalExpr(*u.operand, ctx);
            if (v.width() < ctx)
                v = v.zext(ctx);
            return v.negate();
          }
          case UnaryOp::Plus:
            return evalExpr(*u.operand, ctx);
          case UnaryOp::RedAnd:
            return evalExpr(*u.operand, 0).redAnd();
          case UnaryOp::RedOr:
            return evalExpr(*u.operand, 0).redOr();
          case UnaryOp::RedXor:
            return evalExpr(*u.operand, 0).redXor();
          case UnaryOp::RedNand:
            return ~evalExpr(*u.operand, 0).redAnd();
          case UnaryOp::RedNor:
            return ~evalExpr(*u.operand, 0).redOr();
          case UnaryOp::RedXnor:
            return ~evalExpr(*u.operand, 0).redXor();
        }
        panic("bad unary op");
      }
      case Expr::Kind::Binary:
        return evalBinary(static_cast<const BinaryExpr &>(expr), ctx);
      case Expr::Kind::Ternary: {
        const auto &t = static_cast<const TernaryExpr &>(expr);
        PackedValue cond = evalExpr(*t.cond, 0).redOr();
        PackedValue a = evalExpr(*t.then_expr, ctx);
        PackedValue b = evalExpr(*t.else_expr, ctx);
        uint32_t w = std::max({a.width(), b.width(), ctx});
        if (a.width() < w)
            a = a.zext(w);
        if (b.width() < w)
            b = b.zext(w);
        return PackedValue::ite(cond, a, b);
      }
      case Expr::Kind::Concat: {
        const auto &c = static_cast<const ConcatExpr &>(expr);
        PackedValue acc;
        bool first = true;
        for (const auto &part : c.parts) {
            PackedValue v = evalExpr(*part, 0);
            acc = first ? v : acc.concat(v);
            first = false;
        }
        return acc;
      }
      case Expr::Kind::Repl: {
        const auto &r = static_cast<const ReplExpr &>(expr);
        int64_t count =
            analysis::constEvalInt(*r.count, _table.params());
        return evalExpr(*r.inner, 0)
            .replicate(static_cast<uint32_t>(count));
      }
      case Expr::Kind::Index: {
        const auto &ix = static_cast<const IndexExpr &>(expr);
        PackedValue base = evalExpr(*ix.base, 0);
        int64_t lsb_off = 0;
        if (ix.base->kind == Expr::Kind::Ident) {
            const auto &name =
                static_cast<const IdentExpr &>(*ix.base).name;
            if (_table.isNet(name))
                lsb_off = _table.rangeOf(name).lsb;
        }
        PackedValue idx = evalExpr(*ix.index, 0);
        // Per-position gather: lanes whose index selects no valid
        // position (X index, out of range) stay X.
        PackedValue res = PackedValue::allX(1);
        for (uint32_t pos = 0; pos < base.width(); ++pos) {
            uint64_t m = idx.laneEqUint(static_cast<uint64_t>(
                static_cast<int64_t>(pos) + lsb_off));
            if (m)
                res.setBitLanes(0, base.valAt(pos), base.unkAt(pos),
                                m);
        }
        return res;
      }
      case Expr::Kind::RangeSelect: {
        const auto &r = static_cast<const RangeSelectExpr &>(expr);
        PackedValue base = evalExpr(*r.base, 0);
        int64_t lsb_off = 0;
        if (r.base->kind == Expr::Kind::Ident) {
            const auto &name =
                static_cast<const IdentExpr &>(*r.base).name;
            if (_table.isNet(name))
                lsb_off = _table.rangeOf(name).lsb;
        }
        int64_t msb =
            analysis::constEvalInt(*r.msb, _table.params()) - lsb_off;
        int64_t lsb =
            analysis::constEvalInt(*r.lsb, _table.params()) - lsb_off;
        if (msb < lsb)
            std::swap(msb, lsb);
        if (lsb < 0 || msb >= base.width()) {
            return PackedValue::allX(
                static_cast<uint32_t>(msb - lsb + 1));
        }
        return base.slice(static_cast<uint32_t>(msb),
                          static_cast<uint32_t>(lsb));
      }
    }
    panic("unknown expression kind");
}

PackedValue
VecEventSimulator::evalBinary(const BinaryExpr &b, uint32_t ctx) const
{
    auto harmonized = [](uint32_t w, PackedValue &x, PackedValue &y) {
        x = adjustWidth(std::move(x), w);
        y = adjustWidth(std::move(y), w);
    };

    switch (b.op) {
      case BinaryOp::LogicAnd:
        return evalExpr(*b.lhs, 0).redOr() &
               evalExpr(*b.rhs, 0).redOr();
      case BinaryOp::LogicOr:
        return evalExpr(*b.lhs, 0).redOr() |
               evalExpr(*b.rhs, 0).redOr();
      case BinaryOp::Lt:
      case BinaryOp::Le:
      case BinaryOp::Gt:
      case BinaryOp::Ge:
      case BinaryOp::Eq:
      case BinaryOp::Ne:
      case BinaryOp::CaseEq:
      case BinaryOp::CaseNe: {
        uint32_t w = std::max(analysis::exprWidth(*b.lhs, _table),
                              analysis::exprWidth(*b.rhs, _table));
        PackedValue lhs = evalExpr(*b.lhs, w);
        PackedValue rhs = evalExpr(*b.rhs, w);
        w = std::max({w, lhs.width(), rhs.width()});
        harmonized(w, lhs, rhs);
        switch (b.op) {
          case BinaryOp::Lt: return lhs.ult(rhs);
          case BinaryOp::Le: return lhs.ule(rhs);
          case BinaryOp::Gt: return rhs.ult(lhs);
          case BinaryOp::Ge: return rhs.ule(lhs);
          case BinaryOp::Eq: return lhs.eq(rhs);
          case BinaryOp::Ne: return lhs.ne(rhs);
          case BinaryOp::CaseEq: return lhs.caseEq(rhs);
          default: return ~lhs.caseEq(rhs);
        }
      }
      case BinaryOp::Shl:
      case BinaryOp::Shr:
      case BinaryOp::AShr: {
        PackedValue lhs = evalExpr(*b.lhs, ctx);
        uint32_t w = std::max(lhs.width(), ctx);
        PackedValue amount = evalExpr(*b.rhs, 0);
        lhs = adjustWidth(std::move(lhs), w);
        amount = adjustWidth(std::move(amount), w);
        switch (b.op) {
          case BinaryOp::Shl: return lhs.shl(amount);
          case BinaryOp::Shr: return lhs.lshr(amount);
          default: return lhs.ashr(amount);
        }
      }
      default:
        break;
    }

    PackedValue lhs = evalExpr(*b.lhs, ctx);
    PackedValue rhs = evalExpr(*b.rhs, ctx);
    uint32_t w = std::max({lhs.width(), rhs.width(), ctx});
    harmonized(w, lhs, rhs);
    switch (b.op) {
      case BinaryOp::Add: return lhs + rhs;
      case BinaryOp::Sub: return lhs - rhs;
      case BinaryOp::Mul: return lhs * rhs;
      case BinaryOp::Div: return lhs.udiv(rhs);
      case BinaryOp::Mod: return lhs.urem(rhs);
      case BinaryOp::BitAnd: return lhs & rhs;
      case BinaryOp::BitOr: return lhs | rhs;
      case BinaryOp::BitXor: return lhs ^ rhs;
      case BinaryOp::BitXnor: return ~(lhs ^ rhs);
      default:
        panic("unhandled binary op");
    }
}

// ----------------------------------------------------------------
// Batch drivers.
// ----------------------------------------------------------------

namespace {

bool
sameColumns(const std::vector<trace::Column> &a,
            const std::vector<trace::Column> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].name != b[i].name || a[i].width != b[i].width)
            return false;
    }
    return true;
}

/** Replay one <=64-lane chunk; @throws VecUnsupported. */
void
vecReplayChunk(const Module &mod,
               const std::vector<const Module *> &library,
               const std::string &clock,
               const std::vector<const trace::IoTrace *> &traces,
               ReplayResult *out)
{
    uint32_t n = static_cast<uint32_t>(traces.size());
    VecEventSimulator sim(mod, library, clock, n);
    std::vector<size_t> len(n);
    size_t max_len = 0;
    uint64_t done = 0;
    for (uint32_t l = 0; l < n; ++l) {
        len[l] = traces[l]->length();
        max_len = std::max(max_len, len[l]);
        if (len[l] == 0) {
            out[l].first_failure = 0; // passed, empty trace
            done |= 1ull << l;
        }
    }
    sim.freezeLanes(done);

    const auto &in_cols = traces[0]->inputs;
    const auto &out_cols = traces[0]->outputs;
    std::vector<const Value *> vptr(n, nullptr);
    for (size_t cycle = 0; cycle < max_len; ++cycle) {
        uint64_t active = sim.allLanes() & ~done;
        if (!active)
            break;
        for (size_t i = 0; i < in_cols.size(); ++i) {
            if (in_cols[i].name == clock)
                continue;
            uint32_t w = sim.widthOf(in_cols[i].name);
            for (uint32_t l = 0; l < n; ++l) {
                vptr[l] = cycle < len[l]
                              ? &traces[l]->input_rows[cycle][i]
                              : nullptr;
            }
            sim.setInput(in_cols[i].name,
                         PackedValue::pack(vptr.data(), n, w), active);
        }
        if (clock.empty())
            sim.settleOnly();
        else
            sim.step();
        uint64_t unstable = sim.unstableLanes() & active;
        if (unstable) {
            for (uint32_t l = 0; l < n; ++l) {
                if (!((unstable >> l) & 1))
                    continue;
                out[l].passed = false;
                out[l].first_failure = cycle;
                out[l].failed_output = "<oscillation>";
            }
            done |= unstable;
            sim.freezeLanes(unstable);
            active &= ~unstable;
        }
        for (size_t i = 0; i < out_cols.size() && active; ++i) {
            const PackedValue &got = sim.sampledOutput(out_cols[i].name);
            uint32_t w = got.width();
            for (uint32_t l = 0; l < n; ++l) {
                if (cycle < len[l]) {
                    vptr[l] = &traces[l]->output_rows[cycle][i];
                    w = std::max(w, vptr[l]->width());
                } else {
                    vptr[l] = nullptr;
                }
            }
            PackedValue expected = PackedValue::pack(vptr.data(), n, w);
            uint64_t mismatch = active & ~got.laneMatches(expected);
            if (!mismatch)
                continue;
            for (uint32_t l = 0; l < n; ++l) {
                if (!((mismatch >> l) & 1))
                    continue;
                out[l].passed = false;
                out[l].first_failure = cycle;
                out[l].failed_output = out_cols[i].name;
            }
            done |= mismatch;
            sim.freezeLanes(mismatch);
            active &= ~mismatch;
        }
        uint64_t finished = 0;
        for (uint32_t l = 0; l < n; ++l) {
            if (((active >> l) & 1) && cycle + 1 == len[l]) {
                finished |= 1ull << l;
                out[l].first_failure = len[l]; // passed
            }
        }
        done |= finished;
        sim.freezeLanes(finished);
    }
}

/** Record one <=64-lane chunk; @throws VecUnsupported. */
void
vecRecordChunk(const Module &mod,
               const std::vector<const Module *> &library,
               const std::string &clock,
               const std::vector<const trace::InputSequence *> &stims,
               trace::IoTrace *out)
{
    uint32_t n = static_cast<uint32_t>(stims.size());
    VecEventSimulator sim(mod, library, clock, n);
    std::vector<trace::Column> out_cols;
    for (const auto &port : mod.ports) {
        if (port.dir == PortDir::Output) {
            out_cols.push_back(trace::Column{
                port.name, sim.get(port.name).width()});
        }
    }
    std::vector<size_t> len(n);
    size_t max_len = 0;
    uint64_t done = 0;
    for (uint32_t l = 0; l < n; ++l) {
        out[l].inputs = stims[l]->inputs;
        out[l].outputs = out_cols;
        len[l] = stims[l]->length();
        max_len = std::max(max_len, len[l]);
        if (len[l] == 0)
            done |= 1ull << l;
    }
    sim.freezeLanes(done);

    const auto &in_cols = stims[0]->inputs;
    std::vector<const Value *> vptr(n, nullptr);
    std::vector<const PackedValue *> samples(out_cols.size());
    for (size_t cycle = 0; cycle < max_len; ++cycle) {
        uint64_t active = sim.allLanes() & ~done;
        if (!active)
            break;
        for (size_t i = 0; i < in_cols.size(); ++i) {
            if (in_cols[i].name == clock)
                continue;
            uint32_t w = sim.widthOf(in_cols[i].name);
            for (uint32_t l = 0; l < n; ++l) {
                vptr[l] = cycle < len[l] ? &stims[l]->rows[cycle][i]
                                         : nullptr;
            }
            sim.setInput(in_cols[i].name,
                         PackedValue::pack(vptr.data(), n, w), active);
        }
        if (clock.empty())
            sim.settleOnly();
        else
            sim.step();
        for (size_t i = 0; i < out_cols.size(); ++i)
            samples[i] = &sim.sampledOutput(out_cols[i].name);
        uint64_t finished = 0;
        for (uint32_t l = 0; l < n; ++l) {
            if (!((active >> l) & 1))
                continue;
            out[l].input_rows.push_back(stims[l]->rows[cycle]);
            std::vector<Value> row;
            row.reserve(samples.size());
            for (const PackedValue *s : samples)
                row.push_back(s->lane(l));
            out[l].output_rows.push_back(std::move(row));
            if (cycle + 1 == len[l])
                finished |= 1ull << l;
        }
        done |= finished;
        sim.freezeLanes(finished);
    }
}

} // namespace

std::vector<ReplayResult>
vecEventReplayBatch(const Module &mod,
                    const std::vector<const Module *> &library,
                    const std::string &clock,
                    const std::vector<const trace::IoTrace *> &traces)
{
    std::vector<ReplayResult> out(traces.size());
    for (size_t base = 0; base < traces.size();
         base += PackedValue::kLanes) {
        size_t n = std::min<size_t>(PackedValue::kLanes,
                                    traces.size() - base);
        std::vector<const trace::IoTrace *> chunk(
            traces.begin() + base, traces.begin() + base + n);
        bool compatible = true;
        for (size_t i = 1; i < n; ++i) {
            compatible = compatible &&
                         sameColumns(chunk[i]->inputs,
                                     chunk[0]->inputs) &&
                         sameColumns(chunk[i]->outputs,
                                     chunk[0]->outputs);
        }
        if (compatible) {
            try {
                vecReplayChunk(mod, library, clock, chunk,
                               out.data() + base);
                continue;
            } catch (const VecUnsupported &) {
                // fall through to the scalar simulator
            }
        }
        for (size_t i = 0; i < n; ++i)
            out[base + i] = eventReplay(mod, library, clock, *chunk[i]);
    }
    return out;
}

std::vector<trace::IoTrace>
vecEventRecordBatch(
    const Module &mod, const std::vector<const Module *> &library,
    const std::string &clock,
    const std::vector<const trace::InputSequence *> &stims)
{
    std::vector<trace::IoTrace> out(stims.size());
    for (size_t base = 0; base < stims.size();
         base += PackedValue::kLanes) {
        size_t n = std::min<size_t>(PackedValue::kLanes,
                                    stims.size() - base);
        std::vector<const trace::InputSequence *> chunk(
            stims.begin() + base, stims.begin() + base + n);
        bool compatible = true;
        for (size_t i = 1; i < n; ++i) {
            compatible = compatible && sameColumns(chunk[i]->inputs,
                                                   chunk[0]->inputs);
        }
        if (compatible) {
            try {
                vecRecordChunk(mod, library, clock, chunk,
                               out.data() + base);
                continue;
            } catch (const VecUnsupported &) {
                // fall through to the scalar simulator
            }
        }
        for (size_t i = 0; i < n; ++i)
            out[base + i] = eventRecord(mod, library, clock, *chunk[i]);
    }
    return out;
}

ReplayResult
replayTrace(SimBackend backend, const Module &mod,
            const std::vector<const Module *> &library,
            const std::string &clock, const trace::IoTrace &io)
{
    if (resolveSimBackend(backend) == SimBackend::Vec)
        return vecEventReplayBatch(mod, library, clock, {&io})[0];
    return eventReplay(mod, library, clock, io);
}

trace::IoTrace
recordTrace(SimBackend backend, const Module &mod,
            const std::vector<const Module *> &library,
            const std::string &clock, const trace::InputSequence &stim)
{
    if (resolveSimBackend(backend) == SimBackend::Vec)
        return vecEventRecordBatch(mod, library, clock, {&stim})[0];
    return eventRecord(mod, library, clock, stim);
}

std::vector<ReplayResult>
replayTraceBatch(SimBackend backend, const Module &mod,
                 const std::vector<const Module *> &library,
                 const std::string &clock,
                 const std::vector<const trace::IoTrace *> &traces)
{
    SimBackend resolved = resolveSimBackend(backend);
    bool scalar = resolved == SimBackend::Event ||
                  (resolved == SimBackend::Auto && traces.size() <= 1);
    if (!scalar)
        return vecEventReplayBatch(mod, library, clock, traces);
    std::vector<ReplayResult> out;
    out.reserve(traces.size());
    for (const auto *io : traces)
        out.push_back(eventReplay(mod, library, clock, *io));
    return out;
}

std::vector<trace::IoTrace>
recordTraceBatch(SimBackend backend, const Module &mod,
                 const std::vector<const Module *> &library,
                 const std::string &clock,
                 const std::vector<const trace::InputSequence *> &stims)
{
    SimBackend resolved = resolveSimBackend(backend);
    bool scalar = resolved == SimBackend::Event ||
                  (resolved == SimBackend::Auto && stims.size() <= 1);
    if (!scalar)
        return vecEventRecordBatch(mod, library, clock, stims);
    std::vector<trace::IoTrace> out;
    out.reserve(stims.size());
    for (const auto *stim : stims)
        out.push_back(eventRecord(mod, library, clock, *stim));
    return out;
}

// ----------------------------------------------------------------
// VecInterpreter: packed transition-system evaluation.
// ----------------------------------------------------------------

namespace {

PackedValue
evalOpPacked(const ir::Node &node, const PackedValue *a0,
             const PackedValue *a1, const PackedValue *a2)
{
    using ir::NodeKind;
    switch (node.kind) {
      case NodeKind::Not: return ~*a0;
      case NodeKind::Neg: return a0->negate();
      case NodeKind::RedAnd: return a0->redAnd();
      case NodeKind::RedOr: return a0->redOr();
      case NodeKind::RedXor: return a0->redXor();
      case NodeKind::And: return *a0 & *a1;
      case NodeKind::Or: return *a0 | *a1;
      case NodeKind::Xor: return *a0 ^ *a1;
      case NodeKind::Add: return *a0 + *a1;
      case NodeKind::Sub: return *a0 - *a1;
      case NodeKind::Mul: return *a0 * *a1;
      case NodeKind::UDiv: return a0->udiv(*a1);
      case NodeKind::URem: return a0->urem(*a1);
      case NodeKind::Shl: return a0->shl(*a1);
      case NodeKind::LShr: return a0->lshr(*a1);
      case NodeKind::AShr: return a0->ashr(*a1);
      case NodeKind::Eq: return a0->eq(*a1);
      case NodeKind::Ult: return a0->ult(*a1);
      case NodeKind::Ule: return a0->ule(*a1);
      case NodeKind::Slt: return a0->slt(*a1);
      case NodeKind::Sle: return a0->sle(*a1);
      case NodeKind::Concat: return a0->concat(*a1);
      case NodeKind::Slice: return a0->slice(node.a, node.b);
      case NodeKind::Ite:
        return PackedValue::ite(*a0, *a1, *a2);
      case NodeKind::ZExt: return a0->zext(node.width);
      case NodeKind::SExt: return a0->sext(node.width);
      default:
        panic("evalOpPacked on leaf node");
    }
}

} // namespace

VecInterpreter::VecInterpreter(const ir::TransitionSystem &sys,
                               uint32_t nlanes)
    : _sys(sys), _nlanes(nlanes)
{
    check(nlanes >= 1 && nlanes <= PackedValue::kLanes,
          "lane count out of range");
    _all = nlanes == 64 ? ~0ull : ((1ull << nlanes) - 1ull);
    _node_vals.resize(_sys.nodes.size());
    _state_vals.resize(_sys.states.size());
    _input_vals.resize(_sys.inputs.size());
    _synth_vals.resize(_sys.synth_vars.size());
    for (size_t i = 0; i < _sys.inputs.size(); ++i)
        _input_vals[i] = PackedValue::allX(_sys.inputs[i].width);
    for (size_t i = 0; i < _sys.synth_vars.size(); ++i)
        _synth_vals[i] = PackedValue::zeros(_sys.synth_vars[i].width);
    reset();
}

void
VecInterpreter::reset()
{
    for (size_t i = 0; i < _sys.states.size(); ++i) {
        const auto &st = _sys.states[i];
        _state_vals[i] = st.init
                             ? PackedValue::broadcast(*st.init)
                             : PackedValue::allX(st.width);
    }
    _cycle_valid = false;
}

void
VecInterpreter::setInputAll(size_t index, const Value &value)
{
    check(index < _input_vals.size(), "input index out of range");
    Value v = value;
    uint32_t want = _sys.inputs[index].width;
    if (v.width() < want)
        v = v.zext(want);
    else if (v.width() > want)
        v = v.slice(want - 1, 0);
    _input_vals[index] = PackedValue::broadcast(v);
    _cycle_valid = false;
}

void
VecInterpreter::setSynthVar(size_t index, uint32_t lane,
                            const Value &value)
{
    check(index < _synth_vals.size(), "synth var index out of range");
    check(value.width() == _sys.synth_vars[index].width,
          "synth var width mismatch");
    _synth_vals[index].setLane(lane, value);
    _cycle_valid = false;
}

void
VecInterpreter::setStateAll(size_t index, const Value &value)
{
    check(index < _state_vals.size(), "state index out of range");
    check(value.width() == _sys.states[index].width,
          "state width mismatch");
    _state_vals[index] = PackedValue::broadcast(value);
    _cycle_valid = false;
}

void
VecInterpreter::evalCycle()
{
    using ir::Node;
    using ir::NodeKind;
    using ir::NodeRef;
    for (NodeRef ref = 0; ref < _sys.nodes.size(); ++ref) {
        const Node &n = _sys.nodes[ref];
        switch (n.kind) {
          case NodeKind::Const:
            _node_vals[ref] =
                PackedValue::broadcast(_sys.consts[n.index]);
            break;
          case NodeKind::Input:
            _node_vals[ref] = _input_vals[n.index];
            break;
          case NodeKind::SynthVar:
            _node_vals[ref] = _synth_vals[n.index];
            break;
          case NodeKind::State:
            _node_vals[ref] = _state_vals[n.index];
            break;
          default: {
            const PackedValue *a0 = &_node_vals[n.args[0]];
            const PackedValue *a1 =
                n.args[1] != ir::kNullRef ? &_node_vals[n.args[1]]
                                          : nullptr;
            const PackedValue *a2 =
                n.args[2] != ir::kNullRef ? &_node_vals[n.args[2]]
                                          : nullptr;
            _node_vals[ref] = evalOpPacked(n, a0, a1, a2);
            break;
          }
        }
    }
    _cycle_valid = true;
}

void
VecInterpreter::step()
{
    if (!_cycle_valid)
        evalCycle();
    for (size_t i = 0; i < _sys.states.size(); ++i)
        _state_vals[i] = _node_vals[_sys.states[i].next];
    _cycle_valid = false;
}

const PackedValue &
VecInterpreter::output(size_t index) const
{
    check(_cycle_valid, "evalCycle() must run before reading values");
    check(index < _sys.outputs.size(), "output index out of range");
    return _node_vals[_sys.outputs[index].ref];
}

} // namespace rtlrepair::sim
