#include "sim/event_sim.hpp"

#include <algorithm>

#include "elaborate/elaborate.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "verilog/ast_util.hpp"

namespace rtlrepair::sim {

using namespace verilog;
using analysis::ProcessInfo;
using bv::Value;

namespace {
constexpr int kMaxDeltaRounds = 200;
} // namespace

EventSimulator::EventSimulator(
    const Module &mod, const std::vector<const Module *> &library,
    std::string clock, bool reverse_order)
    : _clock(std::move(clock))
{
    elaborate::ElaborateOptions opts;
    opts.library = library;
    _mod = elaborate::flattenHierarchy(mod, opts);
    _table = analysis::SymbolTable::build(*_mod);

    for (const auto &item : _mod->items) {
        if (item->kind == Item::Kind::Always) {
            const auto &blk = static_cast<const AlwaysBlock &>(*item);
            Proc proc;
            proc.block = &blk;
            proc.info = analysis::analyzeProcess(blk);
            proc.body = blk.body->clone();
            analysis::unrollFors(proc.body, _table.params());
            _procs.push_back(std::move(proc));
        } else if (item->kind == Item::Kind::ContAssign) {
            const auto *assign =
                static_cast<const ContAssign *>(item.get());
            _cont_assigns.push_back(assign);
            std::set<std::string> reads;
            collectIdents(*assign->rhs, reads);
            if (assign->lhs->kind != Expr::Kind::Ident)
                collectIdents(*assign->lhs, reads);
            _cont_reads.push_back(std::move(reads));
        }
    }
    if (reverse_order)
        std::reverse(_procs.begin(), _procs.end());
    powerOn();
}

void
EventSimulator::powerOn()
{
    _values.clear();
    _prev.clear();
    _changed.clear();
    _nba.clear();
    _sampled.clear();
    _unstable = false;
    for (const auto &[name, range] : _table.nets()) {
        _values[name] = Value::allX(range.width);
        _prev[name] = Value::allX(range.width);
    }
    runInitialBlocks();
    // Evaluate all continuous assigns and comb processes once.
    for (const auto &[name, range] : _table.nets()) {
        (void)range;
        _changed.insert(name);
    }
    settle();
}

void
EventSimulator::runInitialBlocks()
{
    for (const auto &item : _mod->items) {
        if (item->kind != Item::Kind::Initial)
            continue;
        const auto &blk = static_cast<const InitialBlock &>(*item);
        StmtPtr body = blk.body->clone();
        analysis::unrollFors(body, _table.params());
        execStmt(*body);
    }
    // Apply any non-blocking writes from initial blocks.
    for (auto &[name, value] : _nba)
        writeSignal(name, value);
    _nba.clear();
}

void
EventSimulator::setInput(const std::string &name, const Value &value)
{
    uint32_t w = _table.widthOf(name);
    Value v = value;
    if (v.width() < w)
        v = v.zext(w);
    else if (v.width() > w)
        v = v.slice(w - 1, 0);
    writeSignal(name, v);
}

bool
EventSimulator::hasSignal(const std::string &name) const
{
    return _values.count(name) > 0;
}

Value
EventSimulator::get(const std::string &name) const
{
    auto it = _values.find(name);
    check(it != _values.end(), "unknown signal: " + name);
    return it->second;
}

Value
EventSimulator::sampledOutput(const std::string &name) const
{
    auto it = _sampled.find(name);
    check(it != _sampled.end(), "output was not sampled: " + name);
    return it->second;
}

void
EventSimulator::writeSignal(const std::string &name, const Value &value)
{
    auto it = _values.find(name);
    check(it != _values.end(), "write to unknown signal: " + name);
    if (it->second == value)
        return;
    it->second = value;
    _changed.insert(name);
}

void
EventSimulator::step()
{
    if (!_clock.empty())
        setInput(_clock, Value::fromUint(1, 0));
    settle();
    // Sample outputs before the rising edge.
    _sampled.clear();
    for (const auto &port : _mod->ports) {
        if (port.dir == PortDir::Output)
            _sampled[port.name] = get(port.name);
    }
    if (!_clock.empty()) {
        setInput(_clock, Value::fromUint(1, 1));
        settle();
    }
}

void
EventSimulator::settleOnly()
{
    settle();
    _sampled.clear();
    for (const auto &port : _mod->ports) {
        if (port.dir == PortDir::Output)
            _sampled[port.name] = get(port.name);
    }
}

void
EventSimulator::settle()
{
    for (int round = 0; round < kMaxDeltaRounds; ++round) {
        if (_changed.empty()) {
            if (_nba.empty())
                return;
            // NBA region: apply queued register updates.
            std::map<std::string, Value> nba = std::move(_nba);
            _nba.clear();
            for (const auto &[name, value] : nba)
                writeSignal(name, value);
            continue;
        }

        // Take the batch and record transitions for edge detection.
        std::set<std::string> batch = std::move(_changed);
        _changed.clear();
        std::map<std::string, std::pair<int, int>> transitions;
        for (const auto &name : batch) {
            const Value &now = _values.at(name);
            const Value &old = _prev.at(name);
            int ob = old.width() >= 1 ? old.bit(0) : 0;
            int nb = now.width() >= 1 ? now.bit(0) : 0;
            transitions[name] = {ob, nb};
            _prev[name] = now;
        }

        // Continuous assignments sensitive to the batch.
        for (size_t ai = 0; ai < _cont_assigns.size(); ++ai) {
            const ContAssign *assign = _cont_assigns[ai];
            const std::set<std::string> &reads = _cont_reads[ai];
            bool hit = false;
            for (const auto &name : batch) {
                if (reads.count(name)) {
                    hit = true;
                    break;
                }
            }
            if (!hit)
                continue;
            std::string target = analysis::lhsBaseName(*assign->lhs);
            uint32_t ctx = _table.widthOf(target);
            assignNow(*assign->lhs, evalExpr(*assign->rhs, ctx));
        }

        // Processes.
        for (const Proc &proc : _procs) {
            bool triggered = false;
            if (proc.info.kind == ProcessInfo::Kind::Clocked) {
                for (const auto &sens : proc.block->sensitivity) {
                    auto t = transitions.find(sens.signal);
                    if (t == transitions.end())
                        continue;
                    auto [ob, nb] = t->second;
                    if (sens.edge == SensItem::Edge::Posedge &&
                        nb == 1 && ob != 1) {
                        triggered = true;
                    } else if (sens.edge == SensItem::Edge::Negedge &&
                               nb == 0 && ob != 0) {
                        triggered = true;
                    } else if (sens.edge == SensItem::Edge::Level &&
                               ob != nb) {
                        triggered = true;
                    }
                }
            } else {
                bool star = false;
                for (const auto &sens : proc.block->sensitivity) {
                    if (sens.edge == SensItem::Edge::Star)
                        star = true;
                }
                const std::set<std::string> &watch =
                    star ? proc.info.read : proc.info.listed;
                for (const auto &name : batch) {
                    if (watch.count(name)) {
                        triggered = true;
                        break;
                    }
                }
            }
            if (triggered)
                runProcess(proc);
        }
    }
    _unstable = true;
    // Info, not Warn: oscillating *mutants* are routine during the
    // genetic baseline's search; callers inspect unstable().
    logMessage(LogLevel::Info,
               "event simulation did not settle (oscillation)");
}

void
EventSimulator::runProcess(const Proc &proc)
{
    // A process evaluates atomically: only signals whose value at the
    // END of the run differs from their value BEFORE the run count as
    // changed.  (Intermediate blocking writes — e.g. the running value
    // of an unrolled accumulation loop — must not re-trigger the
    // process itself, or self-reading processes would oscillate.)
    std::map<std::string, Value> pre;
    for (const auto &name : proc.info.assigned) {
        auto it = _values.find(name);
        if (it != _values.end())
            pre[name] = it->second;
    }
    execStmt(*proc.body);
    for (const auto &[name, before] : pre) {
        if (_values.at(name) == before)
            _changed.erase(name);
    }
}

void
EventSimulator::execStmt(const Stmt &stmt)
{
    switch (stmt.kind) {
      case Stmt::Kind::Block:
        for (const auto &s : static_cast<const BlockStmt &>(stmt).stmts)
            execStmt(*s);
        return;
      case Stmt::Kind::If: {
        const auto &i = static_cast<const IfStmt &>(stmt);
        Value cond = evalExpr(*i.cond, 0);
        // X condition: the else branch runs (cond is not true).
        if (cond.isNonZero()) {
            execStmt(*i.then_stmt);
        } else if (i.else_stmt) {
            execStmt(*i.else_stmt);
        }
        return;
      }
      case Stmt::Kind::Case: {
        const auto &c = static_cast<const CaseStmt &>(stmt);
        uint32_t ctx = analysis::exprWidth(*c.subject, _table);
        for (const auto &item : c.items) {
            for (const auto &label : item.labels) {
                ctx = std::max(ctx,
                               analysis::exprWidth(*label, _table));
            }
        }
        Value subject = evalExpr(*c.subject, ctx);
        if (subject.width() < ctx)
            subject = subject.zext(ctx);
        for (const auto &item : c.items) {
            for (const auto &label : item.labels) {
                Value lv = evalExpr(*label, ctx);
                if (lv.width() < ctx)
                    lv = lv.zext(ctx);
                else if (lv.width() > ctx)
                    lv = lv.slice(ctx - 1, 0);
                if (caseMatches(subject, lv, c.mode)) {
                    execStmt(*item.body);
                    return;
                }
            }
        }
        if (c.default_body)
            execStmt(*c.default_body);
        return;
      }
      case Stmt::Kind::Assign: {
        const auto &a = static_cast<const AssignStmt &>(stmt);
        if (a.lhs->kind == Expr::Kind::Concat) {
            const auto &c = static_cast<const ConcatExpr &>(*a.lhs);
            uint32_t total = 0;
            std::vector<uint32_t> widths;
            for (const auto &part : c.parts) {
                std::string name = analysis::lhsBaseName(*part);
                uint32_t w = part->kind == Expr::Kind::Ident
                                 ? _table.widthOf(name)
                                 : 1;
                widths.push_back(w);
                total += w;
            }
            Value rhs = evalExpr(*a.rhs, total);
            if (rhs.width() < total)
                rhs = rhs.zext(total);
            uint32_t off = total;
            for (size_t i = 0; i < c.parts.size(); ++i) {
                off -= widths[i];
                Value piece = rhs.slice(off + widths[i] - 1, off);
                if (a.blocking) {
                    assignNow(*c.parts[i], piece);
                } else {
                    // Queue per-signal; approximate selects on parts.
                    std::string name =
                        analysis::lhsBaseName(*c.parts[i]);
                    _nba[name] = piece;
                }
            }
            return;
        }
        std::string name = analysis::lhsBaseName(*a.lhs);
        uint32_t ctx = a.lhs->kind == Expr::Kind::Ident
                           ? _table.widthOf(name)
                           : 1;
        if (a.lhs->kind == Expr::Kind::RangeSelect) {
            const auto &r =
                static_cast<const RangeSelectExpr &>(*a.lhs);
            int64_t msb =
                analysis::constEvalInt(*r.msb, _table.params());
            int64_t lsb =
                analysis::constEvalInt(*r.lsb, _table.params());
            ctx = static_cast<uint32_t>(std::abs(msb - lsb)) + 1;
        }
        Value rhs = evalExpr(*a.rhs, ctx);
        if (a.blocking) {
            assignNow(*a.lhs, std::move(rhs));
            return;
        }
        // NBA: the RHS and any select index read pre-edge values now;
        // the merged full-signal value is queued for the NBA region.
        uint32_t pos = 0, width = 0;
        std::string base;
        readLhsTarget(*a.lhs, pos, width, base);
        Value target = _values.at(name);
        auto queued = _nba.find(name);
        if (queued != _nba.end())
            target = queued->second;
        if (a.lhs->kind == Expr::Kind::Ident) {
            uint32_t w = target.width();
            if (rhs.width() < w)
                rhs = rhs.zext(w);
            else if (rhs.width() > w)
                rhs = rhs.slice(w - 1, 0);
            target = rhs;
        } else if (pos < target.width()) {
            if (rhs.width() < width)
                rhs = rhs.zext(width);
            else if (rhs.width() > width)
                rhs = rhs.slice(width - 1, 0);
            for (uint32_t b = 0;
                 b < width && pos + b < target.width(); ++b) {
                target.setBit(pos + b, rhs.bit(b));
            }
        }
        _nba[name] = target;
        return;
      }
      case Stmt::Kind::Empty:
        return;
      case Stmt::Kind::For:
        panic("for-loops are unrolled before event simulation");
    }
}

/**
 * Resolve an LHS select against the *current* value: returns the
 * current full value and fills position/width of the selected bits.
 */
Value
EventSimulator::readLhsTarget(const Expr &lhs, uint32_t &pos,
                              uint32_t &width, std::string &name)
{
    name = analysis::lhsBaseName(lhs);
    Value full = _values.at(name);
    int64_t lsb_off = _table.rangeOf(name).lsb;
    switch (lhs.kind) {
      case Expr::Kind::Ident:
        pos = 0;
        width = full.width();
        return full;
      case Expr::Kind::Index: {
        const auto &ix = static_cast<const IndexExpr &>(lhs);
        Value idx = evalExpr(*ix.index, 0);
        if (idx.hasX()) {
            pos = full.width();  // out of range: no write
            width = 1;
            return full;
        }
        int64_t p =
            static_cast<int64_t>(idx.toUint64()) - lsb_off;
        pos = p < 0 || p >= full.width()
                  ? full.width()
                  : static_cast<uint32_t>(p);
        width = 1;
        return full;
      }
      case Expr::Kind::RangeSelect: {
        const auto &r = static_cast<const RangeSelectExpr &>(lhs);
        int64_t msb =
            analysis::constEvalInt(*r.msb, _table.params()) - lsb_off;
        int64_t lsb =
            analysis::constEvalInt(*r.lsb, _table.params()) - lsb_off;
        if (msb < lsb)
            std::swap(msb, lsb);
        pos = static_cast<uint32_t>(std::max<int64_t>(lsb, 0));
        width = static_cast<uint32_t>(msb - lsb + 1);
        return full;
      }
      default:
        fatal("unsupported assignment target in event simulation");
    }
}

void
EventSimulator::assignNow(const Expr &lhs, Value value)
{
    uint32_t pos = 0, width = 0;
    std::string name;
    Value full = readLhsTarget(lhs, pos, width, name);
    if (pos >= full.width())
        return; // X/out-of-range index: no write
    if (lhs.kind == Expr::Kind::Ident) {
        uint32_t w = full.width();
        if (value.width() < w)
            value = value.zext(w);
        else if (value.width() > w)
            value = value.slice(w - 1, 0);
        writeSignal(name, value);
        return;
    }
    if (value.width() < width)
        value = value.zext(width);
    else if (value.width() > width)
        value = value.slice(width - 1, 0);
    for (uint32_t b = 0; b < width && pos + b < full.width(); ++b)
        full.setBit(pos + b, value.bit(b));
    writeSignal(name, full);
}

bool
EventSimulator::caseMatches(const Value &subject, const Value &label,
                            CaseStmt::Mode mode) const
{
    switch (mode) {
      case CaseStmt::Mode::Plain:
        return subject.caseEq(label).isNonZero();
      case CaseStmt::Mode::CaseZ:
        // Label X/Z bits are wildcards (Z folded into X at parse).
        for (uint32_t i = 0; i < subject.width(); ++i) {
            int lb = label.bit(i);
            if (lb < 0)
                continue;
            if (subject.bit(i) != lb)
                return false;
        }
        return true;
      case CaseStmt::Mode::CaseX:
        for (uint32_t i = 0; i < subject.width(); ++i) {
            int lb = label.bit(i);
            int sb = subject.bit(i);
            if (lb < 0 || sb < 0)
                continue;
            if (sb != lb)
                return false;
        }
        return true;
    }
    return false;
}

Value
EventSimulator::evalExpr(const Expr &expr, uint32_t ctx) const
{
    switch (expr.kind) {
      case Expr::Kind::Ident: {
        const auto &name = static_cast<const IdentExpr &>(expr).name;
        auto param = _table.params().find(name);
        if (param != _table.params().end())
            return param->second;
        auto it = _values.find(name);
        check(it != _values.end(), "read of unknown signal: " + name);
        return it->second;
      }
      case Expr::Kind::Literal:
        return static_cast<const LiteralExpr &>(expr).value;
      case Expr::Kind::Call:
        panic("function call survived lowering");
      case Expr::Kind::Unary: {
        const auto &u = static_cast<const UnaryExpr &>(expr);
        switch (u.op) {
          case UnaryOp::BitNot: {
            Value v = evalExpr(*u.operand, ctx);
            if (v.width() < ctx)
                v = v.zext(ctx);
            return ~v;
          }
          case UnaryOp::LogicNot:
            return ~evalExpr(*u.operand, 0).redOr();
          case UnaryOp::Minus: {
            Value v = evalExpr(*u.operand, ctx);
            if (v.width() < ctx)
                v = v.zext(ctx);
            return v.negate();
          }
          case UnaryOp::Plus:
            return evalExpr(*u.operand, ctx);
          case UnaryOp::RedAnd:
            return evalExpr(*u.operand, 0).redAnd();
          case UnaryOp::RedOr:
            return evalExpr(*u.operand, 0).redOr();
          case UnaryOp::RedXor:
            return evalExpr(*u.operand, 0).redXor();
          case UnaryOp::RedNand:
            return ~evalExpr(*u.operand, 0).redAnd();
          case UnaryOp::RedNor:
            return ~evalExpr(*u.operand, 0).redOr();
          case UnaryOp::RedXnor:
            return ~evalExpr(*u.operand, 0).redXor();
        }
        panic("bad unary op");
      }
      case Expr::Kind::Binary:
        return evalBinary(static_cast<const BinaryExpr &>(expr), ctx);
      case Expr::Kind::Ternary: {
        const auto &t = static_cast<const TernaryExpr &>(expr);
        Value cond = evalExpr(*t.cond, 0).redOr();
        Value a = evalExpr(*t.then_expr, ctx);
        Value b = evalExpr(*t.else_expr, ctx);
        uint32_t w = std::max({a.width(), b.width(), ctx});
        if (a.width() < w)
            a = a.zext(w);
        if (b.width() < w)
            b = b.zext(w);
        return Value::ite(cond, a, b);
      }
      case Expr::Kind::Concat: {
        const auto &c = static_cast<const ConcatExpr &>(expr);
        Value acc;
        bool first = true;
        for (const auto &part : c.parts) {
            Value v = evalExpr(*part, 0);
            acc = first ? v : acc.concat(v);
            first = false;
        }
        return acc;
      }
      case Expr::Kind::Repl: {
        const auto &r = static_cast<const ReplExpr &>(expr);
        int64_t count =
            analysis::constEvalInt(*r.count, _table.params());
        return evalExpr(*r.inner, 0)
            .replicate(static_cast<uint32_t>(count));
      }
      case Expr::Kind::Index: {
        const auto &ix = static_cast<const IndexExpr &>(expr);
        Value base = evalExpr(*ix.base, 0);
        int64_t lsb_off = 0;
        if (ix.base->kind == Expr::Kind::Ident) {
            const auto &name =
                static_cast<const IdentExpr &>(*ix.base).name;
            if (_table.isNet(name))
                lsb_off = _table.rangeOf(name).lsb;
        }
        Value idx = evalExpr(*ix.index, 0);
        if (idx.hasX())
            return Value::allX(1);
        int64_t pos = static_cast<int64_t>(
                          idx.width() <= 64
                              ? idx.toUint64()
                              : idx.slice(63, 0).toUint64()) -
                      lsb_off;
        if (pos < 0 || pos >= base.width())
            return Value::allX(1);
        return base.slice(static_cast<uint32_t>(pos),
                          static_cast<uint32_t>(pos));
      }
      case Expr::Kind::RangeSelect: {
        const auto &r = static_cast<const RangeSelectExpr &>(expr);
        Value base = evalExpr(*r.base, 0);
        int64_t lsb_off = 0;
        if (r.base->kind == Expr::Kind::Ident) {
            const auto &name =
                static_cast<const IdentExpr &>(*r.base).name;
            if (_table.isNet(name))
                lsb_off = _table.rangeOf(name).lsb;
        }
        int64_t msb =
            analysis::constEvalInt(*r.msb, _table.params()) - lsb_off;
        int64_t lsb =
            analysis::constEvalInt(*r.lsb, _table.params()) - lsb_off;
        if (msb < lsb)
            std::swap(msb, lsb);
        if (lsb < 0 || msb >= base.width()) {
            return Value::allX(
                static_cast<uint32_t>(msb - lsb + 1));
        }
        return base.slice(static_cast<uint32_t>(msb),
                          static_cast<uint32_t>(lsb));
      }
    }
    panic("unknown expression kind");
}

Value
EventSimulator::evalBinary(const BinaryExpr &b, uint32_t ctx) const
{
    auto harmonized = [&](uint32_t w, Value &x, Value &y) {
        if (x.width() < w)
            x = x.zext(w);
        else if (x.width() > w)
            x = x.slice(w - 1, 0);
        if (y.width() < w)
            y = y.zext(w);
        else if (y.width() > w)
            y = y.slice(w - 1, 0);
    };

    switch (b.op) {
      case BinaryOp::LogicAnd:
        return evalExpr(*b.lhs, 0).redOr() &
               evalExpr(*b.rhs, 0).redOr();
      case BinaryOp::LogicOr:
        return evalExpr(*b.lhs, 0).redOr() |
               evalExpr(*b.rhs, 0).redOr();
      case BinaryOp::Lt:
      case BinaryOp::Le:
      case BinaryOp::Gt:
      case BinaryOp::Ge:
      case BinaryOp::Eq:
      case BinaryOp::Ne:
      case BinaryOp::CaseEq:
      case BinaryOp::CaseNe: {
        uint32_t w = std::max(analysis::exprWidth(*b.lhs, _table),
                              analysis::exprWidth(*b.rhs, _table));
        Value lhs = evalExpr(*b.lhs, w);
        Value rhs = evalExpr(*b.rhs, w);
        w = std::max({w, lhs.width(), rhs.width()});
        harmonized(w, lhs, rhs);
        switch (b.op) {
          case BinaryOp::Lt: return lhs.ult(rhs);
          case BinaryOp::Le: return lhs.ule(rhs);
          case BinaryOp::Gt: return rhs.ult(lhs);
          case BinaryOp::Ge: return rhs.ule(lhs);
          case BinaryOp::Eq: return lhs.eq(rhs);
          case BinaryOp::Ne: return lhs.ne(rhs);
          case BinaryOp::CaseEq: return lhs.caseEq(rhs);
          default: return ~lhs.caseEq(rhs);
        }
      }
      case BinaryOp::Shl:
      case BinaryOp::Shr:
      case BinaryOp::AShr: {
        Value lhs = evalExpr(*b.lhs, ctx);
        uint32_t w = std::max(lhs.width(), ctx);
        Value amount = evalExpr(*b.rhs, 0);
        Value dummy = amount;
        harmonized(w, lhs, dummy);
        if (amount.width() < w)
            amount = amount.zext(w);
        else if (amount.width() > w)
            amount = amount.slice(w - 1, 0);
        switch (b.op) {
          case BinaryOp::Shl: return lhs.shl(amount);
          case BinaryOp::Shr: return lhs.lshr(amount);
          default: return lhs.ashr(amount);
        }
      }
      default:
        break;
    }

    Value lhs = evalExpr(*b.lhs, ctx);
    Value rhs = evalExpr(*b.rhs, ctx);
    uint32_t w = std::max({lhs.width(), rhs.width(), ctx});
    harmonized(w, lhs, rhs);
    switch (b.op) {
      case BinaryOp::Add: return lhs + rhs;
      case BinaryOp::Sub: return lhs - rhs;
      case BinaryOp::Mul: return lhs * rhs;
      case BinaryOp::Div: return lhs.udiv(rhs);
      case BinaryOp::Mod: return lhs.urem(rhs);
      case BinaryOp::BitAnd: return lhs & rhs;
      case BinaryOp::BitOr: return lhs | rhs;
      case BinaryOp::BitXor: return lhs ^ rhs;
      case BinaryOp::BitXnor: return ~(lhs ^ rhs);
      default:
        panic("unhandled binary op");
    }
}

ReplayResult
eventReplay(const Module &mod,
            const std::vector<const Module *> &library,
            const std::string &clock, const trace::IoTrace &io)
{
    ReplayResult result;
    EventSimulator sim(mod, library, clock);
    for (size_t cycle = 0; cycle < io.length(); ++cycle) {
        for (size_t i = 0; i < io.inputs.size(); ++i) {
            if (io.inputs[i].name == clock)
                continue;
            sim.setInput(io.inputs[i].name, io.input_rows[cycle][i]);
        }
        if (clock.empty())
            sim.settleOnly();
        else
            sim.step();
        if (sim.unstable()) {
            result.passed = false;
            result.first_failure = cycle;
            result.failed_output = "<oscillation>";
            return result;
        }
        for (size_t i = 0; i < io.outputs.size(); ++i) {
            Value got = sim.sampledOutput(io.outputs[i].name);
            if (!got.matches(io.output_rows[cycle][i])) {
                result.passed = false;
                result.first_failure = cycle;
                result.failed_output = io.outputs[i].name;
                return result;
            }
        }
    }
    result.first_failure = io.length();
    return result;
}

trace::IoTrace
eventRecord(const Module &mod,
            const std::vector<const Module *> &library,
            const std::string &clock, const trace::InputSequence &stim)
{
    trace::IoTrace io;
    io.inputs = stim.inputs;
    EventSimulator sim(mod, library, clock);
    for (const auto &port : mod.ports) {
        if (port.dir == PortDir::Output) {
            io.outputs.push_back(trace::Column{
                port.name, sim.get(port.name).width()});
        }
    }
    for (size_t cycle = 0; cycle < stim.length(); ++cycle) {
        for (size_t i = 0; i < stim.inputs.size(); ++i) {
            if (stim.inputs[i].name == clock)
                continue;
            sim.setInput(stim.inputs[i].name, stim.rows[cycle][i]);
        }
        if (clock.empty())
            sim.settleOnly();
        else
            sim.step();
        io.input_rows.push_back(stim.rows[cycle]);
        std::vector<Value> out_row;
        for (const auto &col : io.outputs)
            out_row.push_back(sim.sampledOutput(col.name));
        io.output_rows.push_back(std::move(out_row));
    }
    return io;
}

} // namespace rtlrepair::sim
