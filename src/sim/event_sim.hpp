/**
 * @file
 * Event-driven 4-state Verilog simulator over the AST.
 *
 * This simulator implements *simulation* semantics, in contrast to
 * the IR interpreter which implements *synthesis* semantics:
 *  - sensitivity lists are honoured (an incomplete list leaves stale
 *    values — the classic synthesis–simulation mismatch),
 *  - `always @(clk)` triggers on any change of clk, not only edges,
 *  - blocking assignments take effect immediately, non-blocking
 *    assignments are applied in the NBA region of the delta cycle,
 *  - unassigned combinational paths keep their previous value (a
 *    simulated latch),
 *  - X propagates per 4-state rules; `if` takes the else branch on an
 *    X condition; `case` compares with ===-style matching.
 *
 * It is the reproduction's stand-in for iverilog/VCS: trace checking
 * with true event semantics, the cross-simulator repair check of
 * Table 4, and the fitness function of the CirFix baseline all run on
 * it.
 */
#ifndef RTLREPAIR_SIM_EVENT_SIM_HPP
#define RTLREPAIR_SIM_EVENT_SIM_HPP

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/process_info.hpp"
#include "analysis/widths.hpp"
#include "sim/interpreter.hpp"
#include "verilog/ast.hpp"

namespace rtlrepair::sim {

/** Interprets a (flattened) module with event-driven semantics. */
class EventSimulator
{
  public:
    /**
     * @param mod the design (instances are flattened internally).
     * @param library submodule definitions.
     * @param clock name of the clock input toggled by step().
     */
    /**
     * @param reverse_order evaluate triggered processes in reverse
     *        declaration order.  The Verilog standard leaves process
     *        scheduling unspecified; running both orders and
     *        comparing is our analogue of cross-checking a repair
     *        under a second simulator (iverilog in the paper) — it
     *        exposes repairs that rely on racy evaluation order.
     */
    EventSimulator(const verilog::Module &mod,
                   const std::vector<const verilog::Module *> &library,
                   std::string clock, bool reverse_order = false);

    /** Reset all signals to X and re-run initial blocks. */
    void powerOn();

    /** Drive an input for the current cycle. */
    void setInput(const std::string &name, const bv::Value &value);

    /**
     * One clock cycle: settle combinational logic with clk low, then
     * raise the clock, run triggered processes, apply NBAs, settle.
     * Outputs sampled *before* the edge are available via
     * sampledOutput() — this matches the I/O-trace convention.
     */
    void step();

    /** Settle only (no clock edge) — for combinational designs. */
    void settleOnly();

    /** Value of a signal right now. */
    bv::Value get(const std::string &name) const;

    /** Output value sampled before the most recent clock edge. */
    bv::Value sampledOutput(const std::string &name) const;

    bool hasSignal(const std::string &name) const;

    /** Oscillation detected (comb loop in simulation semantics). */
    bool unstable() const { return _unstable; }

  private:
    struct Proc
    {
        const verilog::AlwaysBlock *block;
        analysis::ProcessInfo info;
        verilog::StmtPtr body;  ///< for-loops unrolled
    };

    void runInitialBlocks();
    void settle();
    void runProcess(const Proc &proc);
    void execStmt(const verilog::Stmt &stmt);
    void assignNow(const verilog::Expr &lhs, bv::Value value);
    void writeSignal(const std::string &name, const bv::Value &value);
    bv::Value readLhsTarget(const verilog::Expr &lhs, uint32_t &pos,
                            uint32_t &width, std::string &name);
    bv::Value evalExpr(const verilog::Expr &expr, uint32_t ctx) const;
    bv::Value evalBinary(const verilog::BinaryExpr &expr,
                         uint32_t ctx) const;
    bool caseMatches(const bv::Value &subject, const bv::Value &label,
                     verilog::CaseStmt::Mode mode) const;

    std::unique_ptr<verilog::Module> _mod;
    analysis::SymbolTable _table;
    std::string _clock;
    std::vector<Proc> _procs;
    std::vector<const verilog::ContAssign *> _cont_assigns;
    std::vector<std::set<std::string>> _cont_reads;

    std::map<std::string, bv::Value> _values;
    std::map<std::string, bv::Value> _prev;  ///< for edge detection
    std::set<std::string> _changed;
    /** NBA queue: full-signal final values. */
    std::map<std::string, bv::Value> _nba;
    std::map<std::string, bv::Value> _sampled;
    bool _unstable = false;
};

/**
 * Replay @p io against an event-driven simulation of @p mod; outputs
 * are checked each cycle before the clock edge.  @p clock may be
 * empty for purely combinational designs.
 */
ReplayResult eventReplay(const verilog::Module &mod,
                         const std::vector<const verilog::Module *>
                             &library,
                         const std::string &clock,
                         const trace::IoTrace &io);

/** Record a golden trace with event-driven semantics. */
trace::IoTrace eventRecord(const verilog::Module &mod,
                           const std::vector<const verilog::Module *>
                               &library,
                           const std::string &clock,
                           const trace::InputSequence &stim);

} // namespace rtlrepair::sim

#endif // RTLREPAIR_SIM_EVENT_SIM_HPP
