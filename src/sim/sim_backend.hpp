/**
 * @file
 * Simulation backend selection.
 *
 * Two simulator backends implement identical event-driven semantics:
 * the scalar EventSimulator (sim/event_sim.*) and the bit-parallel
 * 64-lane vectorized simulator (sim/vec_sim.*).  Callers pick one via
 * config (`--sim=vec|event|auto`); `auto` lets the dispatcher choose
 * (vectorized for multi-stimulus batches, scalar for single runs) and
 * honours the RTLREPAIR_SIM environment variable, which is how the CI
 * matrix forces the whole suite onto one backend.
 */
#ifndef RTLREPAIR_SIM_SIM_BACKEND_HPP
#define RTLREPAIR_SIM_SIM_BACKEND_HPP

#include <string>

namespace rtlrepair::sim {

enum class SimBackend
{
    Auto,   ///< vec for batches, event for single runs; env override
    Event,  ///< scalar event-driven simulator
    Vec,    ///< 64-lane bit-parallel simulator
};

/** Parse "auto" / "event" / "vec"; fatal on anything else. */
SimBackend parseSimBackend(const std::string &name);

/** Display name, the inverse of parseSimBackend. */
const char *simBackendName(SimBackend backend);

/**
 * Resolve an Auto request against the RTLREPAIR_SIM environment
 * variable.  Explicit requests pass through unchanged; Auto stays
 * Auto when the variable is unset or itself "auto".
 */
SimBackend resolveSimBackend(SimBackend requested);

} // namespace rtlrepair::sim

#endif // RTLREPAIR_SIM_SIM_BACKEND_HPP
