#include "templates/replace_literals.hpp"

#include "templates/ast_build.hpp"
#include "util/strings.hpp"

namespace rtlrepair::templates {

using namespace verilog;

namespace {

/** Instruments literals in r-value positions. */
class Instrumenter
{
  public:
    Instrumenter(Module &mod, SynthVarTable &vars)
        : _mod(mod), _vars(vars), _build(mod) {}

    void
    run()
    {
        for (auto &item : _mod.items) {
            switch (item->kind) {
              case Item::Kind::ContAssign:
                instrumentExpr(static_cast<ContAssign &>(*item).rhs);
                break;
              case Item::Kind::Always:
                instrumentStmt(
                    static_cast<AlwaysBlock &>(*item).body);
                break;
              default:
                break;
            }
        }
    }

  private:
    void
    instrumentStmt(StmtPtr &stmt)
    {
        switch (stmt->kind) {
          case Stmt::Kind::Block:
            for (auto &s : static_cast<BlockStmt &>(*stmt).stmts)
                instrumentStmt(s);
            return;
          case Stmt::Kind::If: {
            auto &i = static_cast<IfStmt &>(*stmt);
            instrumentExpr(i.cond);
            instrumentStmt(i.then_stmt);
            if (i.else_stmt)
                instrumentStmt(i.else_stmt);
            return;
          }
          case Stmt::Kind::Case: {
            auto &c = static_cast<CaseStmt &>(*stmt);
            instrumentExpr(c.subject);
            // Labels must stay constant (Fig. 6).
            for (auto &item : c.items)
                instrumentStmt(item.body);
            if (c.default_body)
                instrumentStmt(c.default_body);
            return;
          }
          case Stmt::Kind::Assign: {
            auto &a = static_cast<AssignStmt &>(*stmt);
            instrumentExpr(a.rhs);
            // LHS selects stay untouched to preserve
            // synthesizability of the write port.
            return;
          }
          case Stmt::Kind::For:
            // Bounds must stay constant; body literals are fair game.
            instrumentStmt(static_cast<ForStmt &>(*stmt).body);
            return;
          case Stmt::Kind::Empty:
            return;
        }
    }

    void
    instrumentExpr(ExprPtr &expr)
    {
        switch (expr->kind) {
          case Expr::Kind::Literal: {
            const auto &lit = static_cast<const LiteralExpr &>(*expr);
            uint32_t width = lit.value.width();
            std::string phi = _vars.freshPhi(
                expr->id, format("replace literal %s",
                                 lit.value.toVerilogLiteral().c_str()));
            std::string alpha = _vars.freshAlpha(
                expr->id, width, "replacement constant");
            ExprPtr original = std::move(expr);
            expr = _build.ternary(_build.ident(phi),
                                  _build.ident(alpha),
                                  std::move(original));
            return;
          }
          case Expr::Kind::Ident:
            return;
          case Expr::Kind::Unary:
            instrumentExpr(static_cast<UnaryExpr &>(*expr).operand);
            return;
          case Expr::Kind::Binary: {
            auto &b = static_cast<BinaryExpr &>(*expr);
            instrumentExpr(b.lhs);
            instrumentExpr(b.rhs);
            return;
          }
          case Expr::Kind::Ternary: {
            auto &t = static_cast<TernaryExpr &>(*expr);
            instrumentExpr(t.cond);
            instrumentExpr(t.then_expr);
            instrumentExpr(t.else_expr);
            return;
          }
          case Expr::Kind::Concat:
            for (auto &p : static_cast<ConcatExpr &>(*expr).parts)
                instrumentExpr(p);
            return;
          case Expr::Kind::Repl:
            // Count must stay constant.
            instrumentExpr(static_cast<ReplExpr &>(*expr).inner);
            return;
          case Expr::Kind::Index: {
            auto &i = static_cast<IndexExpr &>(*expr);
            instrumentExpr(i.base);
            instrumentExpr(i.index);
            return;
          }
          case Expr::Kind::RangeSelect:
            // Bounds must stay constant.
            instrumentExpr(
                static_cast<RangeSelectExpr &>(*expr).base);
            return;
          case Expr::Kind::Call:
            for (auto &arg : static_cast<CallExpr &>(*expr).args)
                instrumentExpr(arg);
            return;
        }
    }

    Module &_mod;
    SynthVarTable &_vars;
    AstBuild _build;
};

} // namespace

TemplateResult
ReplaceLiteralsTemplate::apply(
    const Module &buggy, const std::vector<const Module *> &library)
{
    (void)library;
    TemplateResult result;
    result.instrumented = buggy.clone();
    Instrumenter inst(*result.instrumented, result.vars);
    inst.run();
    return result;
}

} // namespace rtlrepair::templates
