/**
 * @file
 * Static-analysis preprocessing (paper §4.1).
 *
 * Two fix classes, mirroring how the paper drives Verilator-as-linter:
 *  1. wrong assignment kinds: clocked processes are rewritten to use
 *     non-blocking assignments, combinational processes to blocking;
 *  2. inferred latches: a zero default assignment is inserted at the
 *     start of the offending combinational process (zero is always
 *     width-valid; the Replace Literals template can overwrite it).
 *
 * The number of changes is reported so Table 5's "Preprocessing"
 * column can be regenerated, and so preprocessing-only repairs are
 * recognized.
 */
#ifndef RTLREPAIR_TEMPLATES_PREPROCESS_HPP
#define RTLREPAIR_TEMPLATES_PREPROCESS_HPP

#include <memory>
#include <string>
#include <vector>

#include "verilog/ast.hpp"

namespace rtlrepair::templates {

/** Outcome of preprocessing. */
struct PreprocessResult
{
    std::unique_ptr<verilog::Module> module;
    int changes = 0;
    std::vector<std::string> notes;
};

/** Run the preprocessing fixes on a clone of @p buggy. */
PreprocessResult preprocess(const verilog::Module &buggy);

} // namespace rtlrepair::templates

#endif // RTLREPAIR_TEMPLATES_PREPROCESS_HPP
