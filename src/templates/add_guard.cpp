#include "templates/add_guard.hpp"

#include <set>

#include "analysis/dependencies.hpp"
#include "analysis/process_info.hpp"
#include "analysis/widths.hpp"
#include "templates/ast_build.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace rtlrepair::templates {

using namespace verilog;
using analysis::DependencyGraph;
using analysis::ProcessInfo;
using analysis::SymbolTable;

namespace {

uint32_t
selectorWidth(size_t n)
{
    uint32_t w = 1;
    while ((1ull << w) < n)
        ++w;
    return w;
}

class Instrumenter
{
  public:
    Instrumenter(Module &mod, SynthVarTable &vars, bool subset_rule)
        : _mod(mod), _vars(vars), _build(mod),
          _subset_rule(subset_rule)
    {
        _table = SymbolTable::build(mod);
        _deps = DependencyGraph::build(mod);

        // Clocks must not become guards.
        std::set<std::string> clocks;
        for (const auto &proc : analysis::analyzeProcesses(mod)) {
            for (const auto &e : proc.edge_signals)
                clocks.insert(e);
        }
        for (const auto &[name, range] : _table.nets()) {
            if (range.width == 1 && !clocks.count(name))
                _one_bit_signals.push_back(name);
        }
    }

    void
    run()
    {
        for (auto &item : _mod.items) {
            if (item->kind == Item::Kind::ContAssign) {
                auto &a = static_cast<ContAssign &>(*item);
                std::string target = analysis::lhsBaseName(*a.lhs);
                if (_table.isNet(target) &&
                    _table.widthOf(target) == 1) {
                    instrumentSite(a.rhs, {target}, /*comb=*/true);
                }
            } else if (item->kind == Item::Kind::Always) {
                auto &blk = static_cast<AlwaysBlock &>(*item);
                ProcessInfo info = analysis::analyzeProcess(blk);
                bool comb =
                    info.kind == ProcessInfo::Kind::Combinational;
                std::vector<std::string> targets(
                    info.assigned.begin(), info.assigned.end());
                instrumentStmt(blk.body, targets, comb);
            }
        }
    }

  private:
    void
    instrumentStmt(StmtPtr &stmt,
                   const std::vector<std::string> &targets, bool comb)
    {
        switch (stmt->kind) {
          case Stmt::Kind::Block:
            for (auto &s : static_cast<BlockStmt &>(*stmt).stmts)
                instrumentStmt(s, targets, comb);
            return;
          case Stmt::Kind::If: {
            auto &i = static_cast<IfStmt &>(*stmt);
            instrumentSite(i.cond, targets, comb);
            instrumentStmt(i.then_stmt, targets, comb);
            if (i.else_stmt)
                instrumentStmt(i.else_stmt, targets, comb);
            return;
          }
          case Stmt::Kind::Case: {
            auto &c = static_cast<CaseStmt &>(*stmt);
            for (auto &item : c.items)
                instrumentStmt(item.body, targets, comb);
            if (c.default_body)
                instrumentStmt(c.default_body, targets, comb);
            return;
          }
          case Stmt::Kind::Assign: {
            auto &a = static_cast<AssignStmt &>(*stmt);
            if (a.lhs->kind == Expr::Kind::Ident) {
                const auto &name =
                    static_cast<const IdentExpr &>(*a.lhs).name;
                if (_table.isNet(name) && _table.widthOf(name) == 1)
                    instrumentSite(a.rhs, {name}, comb);
            }
            return;
          }
          case Stmt::Kind::For:
            instrumentStmt(static_cast<ForStmt &>(*stmt).body,
                           targets, comb);
            return;
          case Stmt::Kind::Empty:
            return;
        }
    }

    /** Guard candidates legal for all @p targets. */
    std::vector<std::string>
    candidatesFor(const std::vector<std::string> &targets, bool comb)
    {
        std::vector<std::string> out;
        for (const auto &cand : _one_bit_signals) {
            bool ok = true;
            if (comb) {
                for (const auto &target : targets) {
                    bool legal =
                        _subset_rule
                            ? _deps.subsetRuleAllows(target, cand)
                            : !_deps.wouldCreateCycle(target, cand);
                    if (!legal) {
                        ok = false;
                        break;
                    }
                }
            }
            if (ok)
                out.push_back(cand);
        }
        return out;
    }

    /** Build the α-selected, optionally negated guard literal. */
    ExprPtr
    buildGuardPick(const std::vector<std::string> &candidates,
                   NodeId site, const char *which)
    {
        uint32_t sel_w = selectorWidth(candidates.size());
        std::string sel = _vars.freshAlpha(
            site, sel_w, format("guard %s selector", which));
        std::string neg = _vars.freshAlpha(
            site, 1, format("guard %s polarity", which));

        // Nested ternary over the candidate list.
        ExprPtr pick = _build.ident(candidates.back());
        for (size_t i = candidates.size() - 1; i-- > 0;) {
            pick = _build.ternary(
                _build.eqConst(
                    _build.ident(sel),
                    bv::Value::fromUint(sel_w,
                                        static_cast<uint64_t>(i))),
                _build.ident(candidates[i]), std::move(pick));
        }
        // α_neg ? pick : !pick
        ExprPtr inverted = _build.logicNot(
            pick->clone());
        return _build.ternary(_build.ident(neg), std::move(pick),
                              std::move(inverted));
    }

    void
    instrumentSite(ExprPtr &expr,
                   const std::vector<std::string> &targets, bool comb)
    {
        NodeId site = expr->id;
        std::vector<std::string> candidates =
            candidatesFor(targets, comb);
        // The selector chains below read every candidate: record the
        // new combinational edges so later sites stay acyclic.
        if (comb) {
            for (const auto &target : targets) {
                for (const auto &cand : candidates)
                    _deps.addDependency(target, cand);
            }
        }

        // (φ_inv ? !e : e)
        std::string phi_inv =
            _vars.freshPhi(site, "invert condition");
        ExprPtr original = std::move(expr);
        ExprPtr not_e = _build.logicNot(original->clone());
        ExprPtr inverted =
            _build.ternary(_build.ident(phi_inv), std::move(not_e),
                           std::move(original));

        if (candidates.empty()) {
            expr = std::move(inverted);
            return;
        }

        // guard = φ_b ? (ga || gb) : ga
        std::string phi_g = _vars.freshPhi(site, "add guard");
        std::string phi_b =
            _vars.freshPhi(site, "add second guard disjunct");
        ExprPtr ga = buildGuardPick(candidates, site, "a");
        ExprPtr gb = buildGuardPick(candidates, site, "b");
        ExprPtr both =
            _build.logicOr(ga->clone(), std::move(gb));
        ExprPtr guard = _build.ternary(_build.ident(phi_b),
                                       std::move(both), std::move(ga));

        // e' && (φ_g ? guard : 1'b1)
        ExprPtr gate = _build.ternary(_build.ident(phi_g),
                                      std::move(guard),
                                      _build.boolLit(true));
        expr = _build.logicAnd(std::move(inverted), std::move(gate));
    }

    Module &_mod;
    SynthVarTable &_vars;
    AstBuild _build;
    bool _subset_rule;
    SymbolTable _table;
    DependencyGraph _deps;
    std::vector<std::string> _one_bit_signals;
};

} // namespace

TemplateResult
AddGuardTemplate::apply(const Module &buggy,
                        const std::vector<const Module *> &library)
{
    (void)library;
    TemplateResult result;
    result.instrumented = buggy.clone();
    Instrumenter inst(*result.instrumented, result.vars,
                      _use_subset_rule);
    inst.run();
    return result;
}

} // namespace rtlrepair::templates
