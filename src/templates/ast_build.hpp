/**
 * @file
 * Internal helpers for templates that synthesize AST fragments.
 * Every created node receives a fresh NodeId from the target module.
 */
#ifndef RTLREPAIR_TEMPLATES_AST_BUILD_HPP
#define RTLREPAIR_TEMPLATES_AST_BUILD_HPP

#include "verilog/ast.hpp"

namespace rtlrepair::templates {

/** Fluent AST factory bound to one module's NodeId space. */
class AstBuild
{
  public:
    explicit AstBuild(verilog::Module &mod) : _mod(mod) {}

    verilog::ExprPtr
    ident(const std::string &name)
    {
        auto *e = new verilog::IdentExpr(name);
        e->id = _mod.newNodeId();
        return verilog::ExprPtr(e);
    }

    verilog::ExprPtr
    literal(const bv::Value &value)
    {
        auto *e = new verilog::LiteralExpr(value, true);
        e->id = _mod.newNodeId();
        return verilog::ExprPtr(e);
    }

    verilog::ExprPtr
    boolLit(bool value)
    {
        return literal(bv::Value::fromUint(1, value ? 1 : 0));
    }

    verilog::ExprPtr
    ternary(verilog::ExprPtr cond, verilog::ExprPtr t,
            verilog::ExprPtr e)
    {
        auto *x = new verilog::TernaryExpr(std::move(cond), std::move(t),
                                           std::move(e));
        x->id = _mod.newNodeId();
        return verilog::ExprPtr(x);
    }

    verilog::ExprPtr
    binary(verilog::BinaryOp op, verilog::ExprPtr l, verilog::ExprPtr r)
    {
        auto *x =
            new verilog::BinaryExpr(op, std::move(l), std::move(r));
        x->id = _mod.newNodeId();
        return verilog::ExprPtr(x);
    }

    verilog::ExprPtr
    logicAnd(verilog::ExprPtr l, verilog::ExprPtr r)
    {
        return binary(verilog::BinaryOp::LogicAnd, std::move(l),
                      std::move(r));
    }

    verilog::ExprPtr
    logicOr(verilog::ExprPtr l, verilog::ExprPtr r)
    {
        return binary(verilog::BinaryOp::LogicOr, std::move(l),
                      std::move(r));
    }

    verilog::ExprPtr
    logicNot(verilog::ExprPtr e)
    {
        auto *x = new verilog::UnaryExpr(verilog::UnaryOp::LogicNot,
                                         std::move(e));
        x->id = _mod.newNodeId();
        return verilog::ExprPtr(x);
    }

    verilog::ExprPtr
    eqConst(verilog::ExprPtr l, const bv::Value &value)
    {
        return binary(verilog::BinaryOp::Eq, std::move(l),
                      literal(value));
    }

    verilog::StmtPtr
    assign(verilog::ExprPtr lhs, verilog::ExprPtr rhs, bool blocking)
    {
        auto *s = new verilog::AssignStmt(std::move(lhs), std::move(rhs),
                                          blocking);
        s->id = _mod.newNodeId();
        return verilog::StmtPtr(s);
    }

    verilog::StmtPtr
    ifThen(verilog::ExprPtr cond, verilog::StmtPtr then_stmt)
    {
        auto *s = new verilog::IfStmt(std::move(cond),
                                      std::move(then_stmt), nullptr);
        s->id = _mod.newNodeId();
        return verilog::StmtPtr(s);
    }

    verilog::StmtPtr
    block(std::vector<verilog::StmtPtr> stmts)
    {
        auto *s = new verilog::BlockStmt(std::move(stmts));
        s->id = _mod.newNodeId();
        return verilog::StmtPtr(s);
    }

  private:
    verilog::Module &_mod;
};

} // namespace rtlrepair::templates

#endif // RTLREPAIR_TEMPLATES_AST_BUILD_HPP
