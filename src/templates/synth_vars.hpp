/**
 * @file
 * Synthesis-variable bookkeeping shared by all repair templates.
 *
 * A template instruments the AST with references to fresh free
 * variables: φᵢ (1-bit change indicators, each contributing one unit
 * of repair cost) and αᵢ (free constants).  The table maps variable
 * names to widths/kinds for the elaborator and records which AST site
 * each variable belongs to for diagnostics.
 */
#ifndef RTLREPAIR_TEMPLATES_SYNTH_VARS_HPP
#define RTLREPAIR_TEMPLATES_SYNTH_VARS_HPP

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bv/value.hpp"
#include "elaborate/elaborate.hpp"
#include "verilog/ast.hpp"

namespace rtlrepair::templates {

/** One synthesis variable. */
struct SynthVar
{
    std::string name;
    uint32_t width = 1;
    bool is_phi = false;
    verilog::NodeId site = verilog::kInvalidNode;
    std::string note;
};

/** Collection of synthesis variables created by a template. */
class SynthVarTable
{
  public:
    /** Create a fresh φ variable (cost 1 when assigned true). */
    std::string freshPhi(verilog::NodeId site, const std::string &note);

    /** Create a fresh α constant of @p width bits. */
    std::string freshAlpha(verilog::NodeId site, uint32_t width,
                           const std::string &note);

    const std::vector<SynthVar> &vars() const { return _vars; }
    bool empty() const { return _vars.empty(); }

    /** Names of all φ variables, in creation order. */
    std::vector<std::string> phiNames() const;

    /** Specs to hand to the elaborator. */
    std::vector<elaborate::SynthVarSpec> specs() const;

  private:
    std::vector<SynthVar> _vars;
    int _next = 0;
};

/** A model: concrete values for every synthesis variable. */
struct SynthAssignment
{
    std::map<std::string, bv::Value> values;

    /** Number of φ variables set to one. */
    int changeCount(const SynthVarTable &table) const;

    /** All-φ-zero assignment (the unmodified circuit). */
    static SynthAssignment allOff(const SynthVarTable &table);

    bool operator==(const SynthAssignment &other) const
    {
        return values == other.values;
    }
};

/** Result of applying a repair template. */
struct TemplateResult
{
    std::unique_ptr<verilog::Module> instrumented;
    SynthVarTable vars;
};

/** Interface implemented by each repair template. */
class RepairTemplate
{
  public:
    virtual ~RepairTemplate() = default;
    virtual std::string name() const = 0;
    /**
     * Instrument a clone of @p buggy.  @p library provides submodule
     * definitions for analyses that need them.
     */
    virtual TemplateResult
    apply(const verilog::Module &buggy,
          const std::vector<const verilog::Module *> &library) = 0;
};

/** The paper's three templates, in the order the tool tries them. */
std::vector<std::unique_ptr<RepairTemplate>> standardTemplates();

} // namespace rtlrepair::templates

#endif // RTLREPAIR_TEMPLATES_SYNTH_VARS_HPP
