/**
 * @file
 * Conditional Overwrite repair template (paper §4.2, Fig. 4).
 *
 * For every process and every signal it assigns, the template inserts
 * a new optionally-guarded constant assignment:
 *
 *     if (φ_en)
 *         if ((φ_c1 ? (α_p1 ? c1 : !c1) : 1'b1) && ...)
 *             sig <= α_val;
 *
 * at the start and end of clocked processes, and at the end of
 * combinational processes (a start insertion in a comb process would
 * infer a latch on the φ=0 path).  Guard conditions c_i are mined
 * from the if-conditions of the same process.  Costs: enabling the
 * assignment is 1, each enabled guard term adds 1.
 */
#ifndef RTLREPAIR_TEMPLATES_CONDITIONAL_OVERWRITE_HPP
#define RTLREPAIR_TEMPLATES_CONDITIONAL_OVERWRITE_HPP

#include "templates/synth_vars.hpp"

namespace rtlrepair::templates {

class ConditionalOverwriteTemplate : public RepairTemplate
{
  public:
    /** @param max_conditions guard terms mined per process. */
    explicit ConditionalOverwriteTemplate(size_t max_conditions = 3)
        : _max_conditions(max_conditions)
    {}

    std::string name() const override { return "conditional-overwrite"; }
    TemplateResult
    apply(const verilog::Module &buggy,
          const std::vector<const verilog::Module *> &library) override;

  private:
    size_t _max_conditions;
};

} // namespace rtlrepair::templates

#endif // RTLREPAIR_TEMPLATES_CONDITIONAL_OVERWRITE_HPP
