#include "templates/preprocess.hpp"

#include <set>

#include "analysis/process_info.hpp"
#include "analysis/widths.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/telemetry.hpp"
#include "verilog/ast_util.hpp"

namespace rtlrepair::templates {

using namespace verilog;
using analysis::ProcessInfo;

namespace {

/** Flip assignment kinds in @p stmt to @p blocking; count changes. */
int
normalizeAssignKinds(Stmt &stmt, bool blocking)
{
    int changes = 0;
    switch (stmt.kind) {
      case Stmt::Kind::Block:
        for (auto &s : static_cast<BlockStmt &>(stmt).stmts)
            changes += normalizeAssignKinds(*s, blocking);
        return changes;
      case Stmt::Kind::If: {
        auto &i = static_cast<IfStmt &>(stmt);
        changes += normalizeAssignKinds(*i.then_stmt, blocking);
        if (i.else_stmt)
            changes += normalizeAssignKinds(*i.else_stmt, blocking);
        return changes;
      }
      case Stmt::Kind::Case: {
        auto &c = static_cast<CaseStmt &>(stmt);
        for (auto &item : c.items)
            changes += normalizeAssignKinds(*item.body, blocking);
        if (c.default_body)
            changes += normalizeAssignKinds(*c.default_body, blocking);
        return changes;
      }
      case Stmt::Kind::Assign: {
        auto &a = static_cast<AssignStmt &>(stmt);
        if (a.blocking != blocking) {
            a.blocking = blocking;
            return 1;
        }
        return 0;
      }
      case Stmt::Kind::For:
        return normalizeAssignKinds(*static_cast<ForStmt &>(stmt).body,
                                    blocking);
      case Stmt::Kind::Empty:
        return 0;
    }
    return 0;
}

/** All signals assigned anywhere in a statement tree. */
void
collectMayAssign(const Stmt &stmt, std::set<std::string> &out)
{
    switch (stmt.kind) {
      case Stmt::Kind::Block:
        for (const auto &s : static_cast<const BlockStmt &>(stmt).stmts)
            collectMayAssign(*s, out);
        return;
      case Stmt::Kind::If: {
        const auto &i = static_cast<const IfStmt &>(stmt);
        collectMayAssign(*i.then_stmt, out);
        if (i.else_stmt)
            collectMayAssign(*i.else_stmt, out);
        return;
      }
      case Stmt::Kind::Case: {
        const auto &c = static_cast<const CaseStmt &>(stmt);
        for (const auto &item : c.items)
            collectMayAssign(*item.body, out);
        if (c.default_body)
            collectMayAssign(*c.default_body, out);
        return;
      }
      case Stmt::Kind::Assign: {
        const auto &a = static_cast<const AssignStmt &>(stmt);
        if (a.lhs->kind == verilog::Expr::Kind::Concat) {
            for (const auto &part :
                 static_cast<const verilog::ConcatExpr &>(*a.lhs)
                     .parts) {
                out.insert(analysis::lhsBaseName(*part));
            }
        } else {
            out.insert(analysis::lhsBaseName(*a.lhs));
        }
        return;
      }
      case Stmt::Kind::For:
        collectMayAssign(*static_cast<const ForStmt &>(stmt).body,
                         out);
        return;
      case Stmt::Kind::Empty:
        return;
    }
}

/** Signals assigned on every path (mirrors the linter's analysis). */
std::set<std::string>
mustAssign(const Stmt &stmt)
{
    switch (stmt.kind) {
      case Stmt::Kind::Block: {
        std::set<std::string> out;
        for (const auto &s : static_cast<const BlockStmt &>(stmt).stmts) {
            for (auto &name : mustAssign(*s))
                out.insert(name);
        }
        return out;
      }
      case Stmt::Kind::If: {
        const auto &i = static_cast<const IfStmt &>(stmt);
        if (!i.else_stmt)
            return {};
        std::set<std::string> then_set = mustAssign(*i.then_stmt);
        std::set<std::string> else_set = mustAssign(*i.else_stmt);
        std::set<std::string> out;
        for (const auto &name : then_set) {
            if (else_set.count(name))
                out.insert(name);
        }
        return out;
      }
      case Stmt::Kind::Case: {
        const auto &c = static_cast<const CaseStmt &>(stmt);
        if (!c.default_body || c.items.empty())
            return {};
        std::set<std::string> out = mustAssign(*c.default_body);
        for (const auto &item : c.items) {
            std::set<std::string> arm = mustAssign(*item.body);
            std::set<std::string> merged;
            for (const auto &name : out) {
                if (arm.count(name))
                    merged.insert(name);
            }
            out = std::move(merged);
        }
        return out;
      }
      case Stmt::Kind::Assign:
        return {analysis::lhsBaseName(
            *static_cast<const AssignStmt &>(stmt).lhs)};
      default:
        return {};
    }
}

} // namespace

PreprocessResult
preprocess(const Module &buggy)
{
    static telemetry::Counter s_runs("preprocess.runs");
    telemetry::Span span("preprocess.lint");
    s_runs.add(1);
    PreprocessResult result;
    result.module = buggy.clone();
    Module &mod = *result.module;

    analysis::SymbolTable table;
    bool have_table = true;
    try {
        table = analysis::SymbolTable::build(mod);
    } catch (const FatalError &) {
        have_table = false;
    }

    for (auto &item : mod.items) {
        if (item->kind != Item::Kind::Always)
            continue;
        auto &blk = static_cast<AlwaysBlock &>(*item);
        ProcessInfo info = analysis::analyzeProcess(blk);
        bool clocked = info.kind == ProcessInfo::Kind::Clocked;

        // 1. Assignment kinds.
        int flips = normalizeAssignKinds(*blk.body, !clocked);
        if (flips > 0) {
            result.changes += flips;
            result.notes.push_back(format(
                "normalized %d assignment(s) to %s style in process",
                flips, clocked ? "non-blocking" : "blocking"));
        }

        // 2. Latch defaults for combinational processes.
        if (clocked || !have_table)
            continue;
        StmtPtr unrolled = blk.body->clone();
        try {
            analysis::unrollFors(unrolled, table.params());
        } catch (const FatalError &) {
            continue;
        }
        std::set<std::string> must = mustAssign(*unrolled);
        // Loop variables vanish during unrolling; derive the
        // may-assign set from the unrolled body too.
        std::set<std::string> may;
        collectMayAssign(*unrolled, may);
        std::vector<std::string> latchy;
        for (const auto &name : may) {
            if (!must.count(name))
                latchy.push_back(name);
        }
        if (latchy.empty())
            continue;

        // Wrap the body in a block with zero defaults up front.
        auto *wrapper = new BlockStmt({});
        wrapper->id = mod.newNodeId();
        wrapper->loc = blk.body->loc;
        for (const auto &name : latchy) {
            uint32_t width = 1;
            if (table.isNet(name))
                width = table.widthOf(name);
            auto *lhs = new IdentExpr(name);
            lhs->id = mod.newNodeId();
            auto *rhs =
                new LiteralExpr(bv::Value::zeros(width), true);
            rhs->id = mod.newNodeId();
            auto *assign =
                new AssignStmt(ExprPtr(lhs), ExprPtr(rhs), true);
            assign->id = mod.newNodeId();
            wrapper->stmts.emplace_back(assign);
            ++result.changes;
            result.notes.push_back(
                format("inserted zero default for latch signal '%s'",
                       name.c_str()));
        }
        wrapper->stmts.push_back(std::move(blk.body));
        blk.body.reset(wrapper);
    }

    return result;
}

} // namespace rtlrepair::templates
