/**
 * @file
 * Add Guard repair template (paper §4.2, Fig. 5).
 *
 * Any if-condition or 1-bit assignment RHS `e` may be rewritten to
 * `(¬?)e ∧ ((¬?)a (∨ (¬?)b)?)`.  Costs: inversion 1, simple guard 1,
 * a second disjunct 1 more.  Guard variables a/b are picked from the
 * module's 1-bit signals; candidates are filtered so that no new
 * combinational cycle can arise (synchronous dependencies are
 * ignored, as in the paper).
 */
#ifndef RTLREPAIR_TEMPLATES_ADD_GUARD_HPP
#define RTLREPAIR_TEMPLATES_ADD_GUARD_HPP

#include "templates/synth_vars.hpp"

namespace rtlrepair::templates {

class AddGuardTemplate : public RepairTemplate
{
  public:
    /**
     * @param use_subset_rule use the paper's more conservative
     *        dependency-subset legality rule instead of the exact
     *        cycle check (exposed for the ablation benchmark).
     */
    explicit AddGuardTemplate(bool use_subset_rule = false)
        : _use_subset_rule(use_subset_rule)
    {}

    std::string name() const override { return "add-guard"; }
    TemplateResult
    apply(const verilog::Module &buggy,
          const std::vector<const verilog::Module *> &library) override;

  private:
    bool _use_subset_rule;
};

} // namespace rtlrepair::templates

#endif // RTLREPAIR_TEMPLATES_ADD_GUARD_HPP
