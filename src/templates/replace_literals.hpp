/**
 * @file
 * Replace Literals repair template (paper §4.2, Fig. 6).
 *
 * Every integer literal in an r-value position may be replaced by a
 * freely chosen constant: literal L becomes `φᵢ ? αᵢ : L`.  Literals
 * that must remain compile-time constants are excluded: declaration
 * ranges, parameter values, case labels, replication counts,
 * part-select bounds, and for-loop bounds.
 */
#ifndef RTLREPAIR_TEMPLATES_REPLACE_LITERALS_HPP
#define RTLREPAIR_TEMPLATES_REPLACE_LITERALS_HPP

#include "templates/synth_vars.hpp"

namespace rtlrepair::templates {

class ReplaceLiteralsTemplate : public RepairTemplate
{
  public:
    std::string name() const override { return "replace-literals"; }
    TemplateResult
    apply(const verilog::Module &buggy,
          const std::vector<const verilog::Module *> &library) override;
};

} // namespace rtlrepair::templates

#endif // RTLREPAIR_TEMPLATES_REPLACE_LITERALS_HPP
