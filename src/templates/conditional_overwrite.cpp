#include "templates/conditional_overwrite.hpp"

#include <set>

#include "analysis/process_info.hpp"
#include "analysis/widths.hpp"
#include "templates/ast_build.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace rtlrepair::templates {

using namespace verilog;
using analysis::ProcessInfo;
using analysis::SymbolTable;

namespace {

/** Assigned base names of a statement tree. */
void
collectAssignedNames(const Stmt &stmt, std::set<std::string> &out)
{
    switch (stmt.kind) {
      case Stmt::Kind::Block:
        for (const auto &s : static_cast<const BlockStmt &>(stmt).stmts)
            collectAssignedNames(*s, out);
        return;
      case Stmt::Kind::If: {
        const auto &i = static_cast<const IfStmt &>(stmt);
        collectAssignedNames(*i.then_stmt, out);
        if (i.else_stmt)
            collectAssignedNames(*i.else_stmt, out);
        return;
      }
      case Stmt::Kind::Case: {
        const auto &c = static_cast<const CaseStmt &>(stmt);
        for (const auto &item : c.items)
            collectAssignedNames(*item.body, out);
        if (c.default_body)
            collectAssignedNames(*c.default_body, out);
        return;
      }
      case Stmt::Kind::Assign: {
        const auto &a = static_cast<const AssignStmt &>(stmt);
        if (a.lhs->kind == verilog::Expr::Kind::Concat) {
            for (const auto &part :
                 static_cast<const verilog::ConcatExpr &>(*a.lhs)
                     .parts) {
                out.insert(analysis::lhsBaseName(*part));
            }
        } else {
            out.insert(analysis::lhsBaseName(*a.lhs));
        }
        return;
      }
      case Stmt::Kind::For:
        collectAssignedNames(
            *static_cast<const ForStmt &>(stmt).body, out);
        return;
      case Stmt::Kind::Empty:
        return;
    }
}

/** Collect up to @p limit if-conditions from a statement tree. */
void
collectConditions(const Stmt &stmt, std::vector<const Expr *> &out,
                  size_t limit)
{
    if (out.size() >= limit)
        return;
    switch (stmt.kind) {
      case Stmt::Kind::Block:
        for (const auto &s : static_cast<const BlockStmt &>(stmt).stmts)
            collectConditions(*s, out, limit);
        return;
      case Stmt::Kind::If: {
        const auto &i = static_cast<const IfStmt &>(stmt);
        if (out.size() < limit)
            out.push_back(i.cond.get());
        collectConditions(*i.then_stmt, out, limit);
        if (i.else_stmt)
            collectConditions(*i.else_stmt, out, limit);
        return;
      }
      case Stmt::Kind::Case: {
        const auto &c = static_cast<const CaseStmt &>(stmt);
        for (const auto &item : c.items)
            collectConditions(*item.body, out, limit);
        if (c.default_body)
            collectConditions(*c.default_body, out, limit);
        return;
      }
      case Stmt::Kind::For:
        collectConditions(*static_cast<const ForStmt &>(stmt).body,
                          out, limit);
        return;
      default:
        return;
    }
}

} // namespace

TemplateResult
ConditionalOverwriteTemplate::apply(
    const Module &buggy, const std::vector<const Module *> &library)
{
    (void)library;
    TemplateResult result;
    result.instrumented = buggy.clone();
    Module &mod = *result.instrumented;
    AstBuild build(mod);
    SynthVarTable &vars = result.vars;
    SymbolTable table = SymbolTable::build(mod);

    for (auto &item : mod.items) {
        if (item->kind != Item::Kind::Always)
            continue;
        auto &blk = static_cast<AlwaysBlock &>(*item);
        ProcessInfo info = analysis::analyzeProcess(blk);
        bool clocked = info.kind == ProcessInfo::Kind::Clocked;
        bool blocking_style = !clocked;

        std::vector<const Expr *> conditions;
        collectConditions(*blk.body, conditions, _max_conditions);

        // Loop variables vanish when for-loops unroll at elaboration:
        // derive the overwritable signal set from an unrolled view.
        std::set<std::string> signals;
        {
            StmtPtr unrolled = blk.body->clone();
            try {
                analysis::unrollFors(unrolled, table.params());
            } catch (const FatalError &) {
                // fall back to the raw body below
            }
            collectAssignedNames(*unrolled, signals);
        }

        // One insertion builder per (signal, position).
        auto makeOverwrite = [&](const std::string &signal,
                                 const char *where) -> StmtPtr {
            uint32_t width =
                table.isNet(signal) ? table.widthOf(signal) : 1;
            NodeId site = blk.id;
            std::string phi_en = vars.freshPhi(
                site, format("overwrite %s at %s of process",
                             signal.c_str(), where));
            std::string alpha_val = vars.freshAlpha(
                site, width,
                format("overwrite value for %s", signal.c_str()));

            // Guard: conjunction of optional mined conditions.
            ExprPtr guard;
            for (const Expr *cond : conditions) {
                std::string phi_c = vars.freshPhi(
                    site, format("guard overwrite of %s", signal.c_str()));
                std::string alpha_p = vars.freshAlpha(
                    site, 1, "guard polarity");
                ExprPtr pos = cond->clone();
                ExprPtr neg = build.logicNot(cond->clone());
                ExprPtr picked =
                    build.ternary(build.ident(alpha_p), std::move(pos),
                                  std::move(neg));
                ExprPtr term = build.ternary(build.ident(phi_c),
                                             std::move(picked),
                                             build.boolLit(true));
                guard = guard ? build.logicAnd(std::move(guard),
                                               std::move(term))
                              : std::move(term);
            }

            StmtPtr assign =
                build.assign(build.ident(signal),
                             build.ident(alpha_val), blocking_style);
            StmtPtr inner =
                guard ? build.ifThen(std::move(guard), std::move(assign))
                      : std::move(assign);
            return build.ifThen(build.ident(phi_en), std::move(inner));
        };

        std::vector<StmtPtr> prologue;
        std::vector<StmtPtr> epilogue;
        for (const auto &signal : signals) {
            if (clocked)
                prologue.push_back(makeOverwrite(signal, "start"));
            epilogue.push_back(makeOverwrite(signal, "end"));
        }

        std::vector<StmtPtr> stmts;
        for (auto &s : prologue)
            stmts.push_back(std::move(s));
        stmts.push_back(std::move(blk.body));
        for (auto &s : epilogue)
            stmts.push_back(std::move(s));
        blk.body = build.block(std::move(stmts));
    }

    return result;
}

} // namespace rtlrepair::templates
