#include "templates/synth_vars.hpp"

#include "templates/add_guard.hpp"
#include "templates/conditional_overwrite.hpp"
#include "templates/replace_literals.hpp"
#include "util/strings.hpp"

namespace rtlrepair::templates {

std::string
SynthVarTable::freshPhi(verilog::NodeId site, const std::string &note)
{
    std::string name = format("__synth_phi_%d", _next++);
    _vars.push_back(SynthVar{name, 1, true, site, note});
    return name;
}

std::string
SynthVarTable::freshAlpha(verilog::NodeId site, uint32_t width,
                          const std::string &note)
{
    std::string name = format("__synth_alpha_%d", _next++);
    _vars.push_back(SynthVar{name, width, false, site, note});
    return name;
}

std::vector<std::string>
SynthVarTable::phiNames() const
{
    std::vector<std::string> out;
    for (const auto &v : _vars) {
        if (v.is_phi)
            out.push_back(v.name);
    }
    return out;
}

std::vector<elaborate::SynthVarSpec>
SynthVarTable::specs() const
{
    std::vector<elaborate::SynthVarSpec> out;
    for (const auto &v : _vars)
        out.push_back(elaborate::SynthVarSpec{v.name, v.width, v.is_phi});
    return out;
}

int
SynthAssignment::changeCount(const SynthVarTable &table) const
{
    int count = 0;
    for (const auto &v : table.vars()) {
        if (!v.is_phi)
            continue;
        auto it = values.find(v.name);
        if (it != values.end() && it->second.isNonZero())
            ++count;
    }
    return count;
}

SynthAssignment
SynthAssignment::allOff(const SynthVarTable &table)
{
    SynthAssignment out;
    for (const auto &v : table.vars())
        out.values[v.name] = bv::Value::zeros(v.width);
    return out;
}

std::vector<std::unique_ptr<RepairTemplate>>
standardTemplates()
{
    std::vector<std::unique_ptr<RepairTemplate>> out;
    out.push_back(std::make_unique<ReplaceLiteralsTemplate>());
    out.push_back(std::make_unique<AddGuardTemplate>());
    out.push_back(std::make_unique<ConditionalOverwriteTemplate>());
    return out;
}

} // namespace rtlrepair::templates
