/**
 * @file
 * Output/State Divergence Delta (paper §5).
 *
 * Run the ground-truth and buggy circuits from the same initial state
 * with the same inputs.  Note the first cycle where any state
 * (register) value diverges and the first cycle where any checked
 * output diverges.  OSDD = 0 if the state never diverges before the
 * output does; otherwise it is the distance from the first state
 * divergence to the first output divergence, plus one.
 *
 * The metric requires both designs to have the same state and output
 * variables; otherwise it is undefined (n/a in Table 2).
 */
#ifndef RTLREPAIR_OSDD_OSDD_HPP
#define RTLREPAIR_OSDD_OSDD_HPP

#include <optional>

#include "ir/transition_system.hpp"
#include "trace/io_trace.hpp"

namespace rtlrepair::osdd {

/** Result of the OSDD computation. */
struct OsddResult
{
    /** Defined only when state/output variables match up. */
    std::optional<int> osdd;
    /** First output divergence (trace length if none). */
    size_t first_output_divergence = 0;
    /** First state divergence (trace length if none). */
    size_t first_state_divergence = 0;
    bool output_diverged = false;
    bool state_diverged = false;
};

/**
 * Compute the OSDD of @p buggy against @p golden over @p stim.  Both
 * systems start from zeroed state (the "same starting assignment").
 */
OsddResult compute(const ir::TransitionSystem &golden,
                   const ir::TransitionSystem &buggy,
                   const trace::InputSequence &stim);

} // namespace rtlrepair::osdd

#endif // RTLREPAIR_OSDD_OSDD_HPP
