#include "osdd/osdd.hpp"

#include <algorithm>

#include "sim/interpreter.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace rtlrepair::osdd {

using bv::Value;

OsddResult
compute(const ir::TransitionSystem &golden,
        const ir::TransitionSystem &buggy,
        const trace::InputSequence &stim)
{
    OsddResult result;
    result.first_output_divergence = stim.length();
    result.first_state_divergence = stim.length();

    // The metric requires matching state and output variables.
    bool comparable = golden.states.size() == buggy.states.size() &&
                      golden.outputs.size() == buggy.outputs.size();
    if (comparable) {
        for (size_t i = 0; i < golden.states.size(); ++i) {
            if (buggy.stateIndex(golden.states[i].name) < 0)
                comparable = false;
        }
        for (size_t i = 0; i < golden.outputs.size(); ++i) {
            if (buggy.outputIndex(golden.outputs[i].name) < 0)
                comparable = false;
        }
    }
    if (!comparable)
        return result;

    sim::SimOptions options;
    options.init_policy = sim::XPolicy::Zero;
    options.input_policy = sim::XPolicy::Zero;
    sim::Interpreter gsim(golden, options);
    sim::Interpreter bsim(buggy, options);

    std::vector<int> ginput(stim.inputs.size());
    std::vector<int> binput(stim.inputs.size());
    for (size_t i = 0; i < stim.inputs.size(); ++i) {
        ginput[i] = golden.inputIndex(stim.inputs[i].name);
        binput[i] = buggy.inputIndex(stim.inputs[i].name);
        check(ginput[i] >= 0 && binput[i] >= 0,
              "stimulus input missing: " + stim.inputs[i].name);
    }

    // Start both from the same arbitrary (seeded random) state: a
    // shared nonzero start makes missing-reset bugs diverge, matching
    // the paper's "starting assignment to all state variables".
    Rng rng(0x05dd);
    gsim.reset();
    bsim.reset();
    auto resized = [](const Value &v, uint32_t w) {
        if (v.width() < w)
            return v.zext(w);
        if (v.width() > w)
            return v.slice(w - 1, 0);
        return v;
    };
    for (size_t i = 0; i < golden.states.size(); ++i) {
        Value start = Value::random(golden.states[i].width, rng);
        gsim.setState(i, start);
        int bi = buggy.stateIndex(golden.states[i].name);
        // A bug may shrink or widen a register ("insufficient
        // register size"); seed the overlapping bits identically.
        bsim.setState(static_cast<size_t>(bi),
                      resized(start,
                              buggy.states[static_cast<size_t>(bi)]
                                  .width));
    }

    for (size_t cycle = 0; cycle < stim.length(); ++cycle) {
        for (size_t i = 0; i < stim.inputs.size(); ++i) {
            gsim.setInput(static_cast<size_t>(ginput[i]),
                          stim.rows[cycle][i]);
            bsim.setInput(static_cast<size_t>(binput[i]),
                          stim.rows[cycle][i]);
        }
        gsim.evalCycle();
        bsim.evalCycle();

        // State comparison happens on entry to the cycle.
        auto differs = [&resized](const Value &a, const Value &b) {
            uint32_t w = std::max(a.width(), b.width());
            return resized(a, w) != resized(b, w);
        };
        if (!result.state_diverged) {
            for (size_t i = 0; i < golden.states.size(); ++i) {
                int bi = buggy.stateIndex(golden.states[i].name);
                if (differs(gsim.stateValue(i),
                            bsim.stateValue(
                                static_cast<size_t>(bi)))) {
                    result.state_diverged = true;
                    result.first_state_divergence = cycle;
                    break;
                }
            }
        }
        if (!result.output_diverged) {
            for (size_t i = 0; i < golden.outputs.size(); ++i) {
                int bi = buggy.outputIndex(golden.outputs[i].name);
                if (differs(gsim.output(i),
                            bsim.output(static_cast<size_t>(bi)))) {
                    result.output_diverged = true;
                    result.first_output_divergence = cycle;
                    break;
                }
            }
        }
        if (result.output_diverged)
            break;
        gsim.step();
        bsim.step();
    }

    if (!result.output_diverged) {
        // No observable bug on this stimulus; OSDD undefined-as-zero.
        result.osdd = 0;
        return result;
    }
    if (!result.state_diverged ||
        result.first_state_divergence >
            result.first_output_divergence) {
        result.osdd = 0;  // outputs diverged first: output function bug
        return result;
    }
    result.osdd = static_cast<int>(result.first_output_divergence -
                                   result.first_state_divergence) +
                  1;
    return result;
}

} // namespace rtlrepair::osdd
