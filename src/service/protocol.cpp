#include "service/protocol.hpp"

#include "util/strings.hpp"
#include "verilog/printer.hpp"

namespace rtlrepair::service {

using repair::RepairOutcome;

int
exitCodeFor(RepairOutcome::Status status)
{
    switch (status) {
      case RepairOutcome::Status::Repaired:
        return kExitRepaired;
      case RepairOutcome::Status::NoRepair:
      case RepairOutcome::Status::Degraded:
        return kExitNoRepair;
      case RepairOutcome::Status::Timeout:
        return kExitTimeout;
      case RepairOutcome::Status::CannotSynthesize:
        return kExitBadInput;
    }
    return kExitInternal;
}

const char *
statusWireName(RepairOutcome::Status status)
{
    switch (status) {
      case RepairOutcome::Status::Repaired: return "repaired";
      case RepairOutcome::Status::NoRepair: return "no-repair";
      case RepairOutcome::Status::Timeout: return "timeout";
      case RepairOutcome::Status::CannotSynthesize:
        return "cannot-synthesize";
      case RepairOutcome::Status::Degraded: return "degraded";
    }
    return "?";
}

namespace {

Json
envelope(const char *type)
{
    Json msg = Json::object();
    msg.set("v", Json::number(kProtocolVersion));
    msg.set("type", Json::string(type));
    return msg;
}

std::string
line(const Json &msg)
{
    return msg.dump() + "\n";
}

} // namespace

bool
parseSubmit(const Json &msg, JobRequest &out, std::string &error)
{
    out = JobRequest{};
    out.id = msg.str("id");
    out.tenant = msg.str("tenant");
    out.priority = static_cast<int>(msg.num("priority", 0));
    out.design = msg.str("design");
    out.trace = msg.str("trace");
    out.timeout_seconds = msg.num("timeout", 0.0);
    out.jobs = static_cast<unsigned>(msg.num("jobs", 1));
    out.zero_x = msg.flag("zero_x", false);
    out.incremental = msg.flag("incremental", true);
    out.want_stages = msg.flag("report", false);
    if (out.design.empty()) {
        error = "submit without design source";
        return false;
    }
    if (out.trace.empty()) {
        error = "submit without trace CSV";
        return false;
    }
    if (out.timeout_seconds < 0.0) {
        error = "negative timeout";
        return false;
    }
    return true;
}

std::string
submitLine(const JobRequest &req)
{
    Json msg = envelope("submit");
    msg.set("id", Json::string(req.id));
    if (!req.tenant.empty())
        msg.set("tenant", Json::string(req.tenant));
    if (req.priority != 0)
        msg.set("priority", Json::number(req.priority));
    msg.set("design", Json::string(req.design));
    msg.set("trace", Json::string(req.trace));
    if (req.timeout_seconds > 0.0)
        msg.set("timeout", Json::number(req.timeout_seconds));
    if (req.jobs != 1)
        msg.set("jobs", Json::number(double(req.jobs)));
    if (req.zero_x)
        msg.set("zero_x", Json::boolean(true));
    if (!req.incremental)
        msg.set("incremental", Json::boolean(false));
    if (req.want_stages)
        msg.set("report", Json::boolean(true));
    return line(msg);
}

std::string
acceptedLine(const std::string &id, size_t queue_depth)
{
    Json msg = envelope("accepted");
    msg.set("id", Json::string(id));
    msg.set("queue_depth", Json::number(uint64_t(queue_depth)));
    return line(msg);
}

std::string
rejectedLine(const std::string &id, const std::string &reason)
{
    Json msg = envelope("rejected");
    msg.set("id", Json::string(id));
    msg.set("reason", Json::string(reason));
    return line(msg);
}

std::string
errorLine(const std::string &message, const std::string &id)
{
    Json msg = envelope("error");
    msg.set("message", Json::string(message));
    if (!id.empty())
        msg.set("id", Json::string(id));
    return line(msg);
}

std::string
stageLine(const std::string &id, const repair::StageReport &report)
{
    Json msg = envelope("stage");
    msg.set("id", Json::string(id));
    msg.set("stage", Json::string(report.stage));
    msg.set("status",
            Json::string(repair::stageStatusName(report.status)));
    msg.set("seconds", Json::number(report.seconds));
    if (report.rss_known)
        msg.set("rss_kb", Json::number(uint64_t(report.peak_rss_kb)));
    else
        msg.set("rss", Json::string("unknown"));
    if (report.retries > 0)
        msg.set("retries", Json::number(report.retries));
    if (!report.diagnostic.empty())
        msg.set("diagnostic", Json::string(report.diagnostic));
    return line(msg);
}

std::string
pongLine()
{
    return line(envelope("pong"));
}

std::string
resultLine(const std::string &id, const RepairOutcome &outcome,
           const std::string &repaired_source, const std::string &cache)
{
    Json msg = envelope("result");
    msg.set("id", Json::string(id));
    const char *status = outcome.cancelled ? "cancelled"
                                           : statusWireName(
                                                 outcome.status);
    msg.set("status", Json::string(status));
    msg.set("exit_code", Json::number(exitCodeFor(outcome.status)));
    msg.set("changes",
            Json::number(outcome.changes + outcome.preprocess_changes));
    msg.set("template", Json::string(outcome.template_name));
    msg.set("seconds", Json::number(outcome.seconds));
    msg.set("cache", Json::string(cache));
    msg.set("degraded", Json::boolean(outcome.degraded));
    msg.set("cancelled", Json::boolean(outcome.cancelled));
    if (!outcome.detail.empty())
        msg.set("detail", Json::string(outcome.detail));
    if (!repaired_source.empty())
        msg.set("repaired", Json::string(repaired_source));
    return line(msg);
}

std::string
failureResultLine(const std::string &id, const std::string &status,
                  int exit_code, const std::string &detail)
{
    Json msg = envelope("result");
    msg.set("id", Json::string(id));
    msg.set("status", Json::string(status));
    msg.set("exit_code", Json::number(exit_code));
    msg.set("cache", Json::string("off"));
    if (!detail.empty())
        msg.set("detail", Json::string(detail));
    return line(msg);
}

std::optional<std::string>
messageType(const Json &msg, std::string &error)
{
    if (!msg.isObject()) {
        error = "message is not a JSON object";
        return std::nullopt;
    }
    if (const Json *v = msg.find("v")) {
        if (static_cast<int>(v->asNumber(-1)) != kProtocolVersion) {
            error = format("unsupported protocol version %g",
                           v->asNumber(-1));
            return std::nullopt;
        }
    }
    std::string type = msg.str("type");
    if (type.empty()) {
        error = "message without type";
        return std::nullopt;
    }
    return type;
}

} // namespace rtlrepair::service
