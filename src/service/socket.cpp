#include "service/socket.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/strings.hpp"

namespace rtlrepair::service {

void
Fd::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
}

bool
isUnixAddress(const std::string &address)
{
    return address.find('/') != std::string::npos;
}

namespace {

bool
fillUnixAddr(const std::string &path, sockaddr_un &addr,
             std::string &error)
{
    if (path.size() >= sizeof(addr.sun_path)) {
        error = format("unix socket path too long (%zu bytes)",
                       path.size());
        return false;
    }
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

bool
splitHostPort(const std::string &address, std::string &host,
              std::string &port, std::string &error)
{
    size_t colon = address.rfind(':');
    if (colon == std::string::npos || colon + 1 >= address.size()) {
        error = "TCP address must be host:port";
        return false;
    }
    host = address.substr(0, colon);
    port = address.substr(colon + 1);
    if (host.empty())
        host = "127.0.0.1";
    return true;
}

} // namespace

Fd
listenOn(const std::string &address, std::string &error)
{
    if (isUnixAddress(address)) {
        sockaddr_un addr;
        if (!fillUnixAddr(address, addr, error))
            return Fd();
        Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
        if (!fd.valid()) {
            error = format("socket: %s", std::strerror(errno));
            return Fd();
        }
        // A daemon that was SIGKILLed leaves its socket file behind;
        // binding over it is the restart path, so unlink first.
        ::unlink(address.c_str());
        if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) != 0) {
            error = format("bind %s: %s", address.c_str(),
                           std::strerror(errno));
            return Fd();
        }
        if (::listen(fd.get(), 64) != 0) {
            error = format("listen: %s", std::strerror(errno));
            return Fd();
        }
        return fd;
    }

    std::string host, port;
    if (!splitHostPort(address, host, port, error))
        return Fd();
    addrinfo hints = {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo *res = nullptr;
    int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
    if (rc != 0) {
        error = format("resolve %s: %s", address.c_str(),
                       gai_strerror(rc));
        return Fd();
    }
    Fd fd;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        Fd candidate(::socket(ai->ai_family, ai->ai_socktype,
                              ai->ai_protocol));
        if (!candidate.valid())
            continue;
        int one = 1;
        ::setsockopt(candidate.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof one);
        if (::bind(candidate.get(), ai->ai_addr, ai->ai_addrlen) == 0 &&
            ::listen(candidate.get(), 64) == 0) {
            fd = std::move(candidate);
            break;
        }
    }
    ::freeaddrinfo(res);
    if (!fd.valid())
        error = format("cannot listen on %s: %s", address.c_str(),
                       std::strerror(errno));
    return fd;
}

Fd
acceptOn(const Fd &listener, int timeout_ms)
{
    pollfd pfd = {listener.get(), POLLIN, 0};
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc <= 0)
        return Fd();  // timeout or EINTR: caller re-checks its token
    int fd = ::accept(listener.get(), nullptr, nullptr);
    return Fd(fd);
}

Fd
connectTo(const std::string &address, std::string &error)
{
    if (isUnixAddress(address)) {
        sockaddr_un addr;
        if (!fillUnixAddr(address, addr, error))
            return Fd();
        Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
        if (!fd.valid()) {
            error = format("socket: %s", std::strerror(errno));
            return Fd();
        }
        if (::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) != 0) {
            error = format("connect %s: %s", address.c_str(),
                           std::strerror(errno));
            return Fd();
        }
        return fd;
    }

    std::string host, port;
    if (!splitHostPort(address, host, port, error))
        return Fd();
    addrinfo hints = {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
    if (rc != 0) {
        error = format("resolve %s: %s", address.c_str(),
                       gai_strerror(rc));
        return Fd();
    }
    Fd fd;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        Fd candidate(::socket(ai->ai_family, ai->ai_socktype,
                              ai->ai_protocol));
        if (!candidate.valid())
            continue;
        if (::connect(candidate.get(), ai->ai_addr, ai->ai_addrlen) ==
            0) {
            int one = 1;
            ::setsockopt(candidate.get(), IPPROTO_TCP, TCP_NODELAY,
                         &one, sizeof one);
            fd = std::move(candidate);
            break;
        }
    }
    ::freeaddrinfo(res);
    if (!fd.valid())
        error = format("cannot connect to %s: %s", address.c_str(),
                       std::strerror(errno));
    return fd;
}

bool
writeAll(const Fd &fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        // MSG_NOSIGNAL: a peer that vanished mid-write must surface
        // as EPIPE here, not as a process-killing SIGPIPE.
        ssize_t n = ::send(fd.get(), data.data() + off,
                           data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

LineReader::Io
LineReader::readLine(std::string &line, int timeout_ms)
{
    while (true) {
        size_t nl = _buf.find('\n');
        if (nl != std::string::npos) {
            line = _buf.substr(0, nl);
            _buf.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return Io::Line;
        }
        pollfd pfd = {_fd, POLLIN, 0};
        int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc == 0)
            return Io::Again;
        if (rc < 0)
            return errno == EINTR ? Io::Again : Io::Error;
        char chunk[4096];
        ssize_t n = ::recv(_fd, chunk, sizeof chunk, 0);
        if (n == 0)
            return Io::Eof;
        if (n < 0)
            return errno == EINTR ? Io::Again : Io::Error;
        _buf.append(chunk, static_cast<size_t>(n));
    }
}

} // namespace rtlrepair::service
