/**
 * @file
 * Crash-recovery journal for the repaird daemon: an append-only
 * NDJSON log of job starts and completions.
 *
 * Every admitted job writes a `start` record before it runs and a
 * `done` record when its result has been produced (whatever the
 * outcome — success, failure, cancellation).  On startup the daemon
 * replays the log: a `start` without a matching `done` is a job the
 * previous process lost mid-flight (SIGKILL, OOM-kill, power), and is
 * reported to clients as "interrupted" instead of vanishing silently.
 *
 * Job ids are idempotent: re-submitting an interrupted id clears it
 * from the interrupted set (a fresh `start` supersedes the orphan).
 * Records are flushed and fsynced per append — the journal is worth
 * a syscall per job; it is the only thing that survives SIGKILL.
 */
#ifndef RTLREPAIR_SERVICE_JOURNAL_HPP
#define RTLREPAIR_SERVICE_JOURNAL_HPP

#include <mutex>
#include <string>
#include <vector>

namespace rtlrepair::service {

/** One job the previous daemon instance lost mid-flight. */
struct InterruptedJob
{
    std::string id;
    std::string tenant;
};

class Journal
{
  public:
    Journal() = default;

    /**
     * Open (creating if absent) the journal at @p path and replay it;
     * interrupted jobs are available via interrupted() afterwards.
     * Returns false + @p error when the file cannot be opened or
     * created.  An empty path disables journaling (all appends become
     * no-ops) and always succeeds.
     */
    bool open(const std::string &path, std::string &error);

    bool enabled() const { return _fd >= 0; }

    /** Jobs found started-but-unfinished at open() time. */
    const std::vector<InterruptedJob> &interrupted() const
    {
        return _interrupted;
    }

    /** Remove @p id from the interrupted set (resubmitted). */
    void clearInterrupted(const std::string &id);

    /** Append a start record for @p id / @p tenant. */
    void logStart(const std::string &id, const std::string &tenant);

    /** Append a done record (@p status is the wire status name). */
    void logDone(const std::string &id, const std::string &status);

    ~Journal();

  private:
    void append(const std::string &line);

    std::mutex _mutex;
    int _fd = -1;
    std::vector<InterruptedJob> _interrupted;
};

} // namespace rtlrepair::service

#endif // RTLREPAIR_SERVICE_JOURNAL_HPP
