/**
 * @file
 * repaird: the long-lived repair-as-a-service daemon.
 *
 * One process serves many clients over a Unix/TCP socket speaking
 * the NDJSON protocol (service/protocol.hpp).  The moving parts:
 *
 *   accept thread ──> connection threads ──> JobQueue ──> worker
 *                                                         threads
 *
 * Robustness invariants (the point of the daemon, enforced by
 * tests/service_test and the service-smoke CI job):
 *
 *   - Fault isolation.  Every job runs inside the same containment
 *     the CLI uses (StageGuards + the FatalError / PanicError /
 *     bad_alloc / StageTimeoutError taxonomy); a poisoned job
 *     produces an error result for that job only and never perturbs
 *     sibling jobs' results.  The service layer itself has
 *     deterministic fault-injection sites (service:accept,
 *     service:decode, service:dispatch, service:respond) so its
 *     degradation paths are testable end-to-end.
 *   - Admission control.  A bounded priority queue with explicit
 *     rejection (overloaded / tenant-busy / duplicate /
 *     shutting-down) — backpressure, not OOM.
 *   - Budgets.  Per-job timeouts are clamped to a server maximum and
 *     enforced through the existing StageGuard time slices; peak-RSS
 *     watermarks ride GuardConfig.  Client disconnect cancels the
 *     job's CancelToken, which the SAT conflict loop polls.
 *   - Crash recovery.  An append-only journal records job start/done;
 *     a restarted daemon reports jobs the previous instance lost as
 *     "interrupted" (recover request) instead of dropping them
 *     silently.
 *   - Warm state.  A bounded LRU cache of preprocess+elaboration
 *     results keyed by design digest serves resubmitted designs
 *     without recomputing the pipeline prefix.
 */
#ifndef RTLREPAIR_SERVICE_SERVER_HPP
#define RTLREPAIR_SERVICE_SERVER_HPP

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/cache.hpp"
#include "service/job_queue.hpp"
#include "service/journal.hpp"
#include "service/protocol.hpp"
#include "service/socket.hpp"
#include "util/stopwatch.hpp"

namespace rtlrepair::service {

struct ServerConfig
{
    /** Unix socket path (contains '/') or host:port. */
    std::string listen;
    /** Append-only crash-recovery journal ("" = disabled). */
    std::string journal_path;
    /** Concurrent repair jobs (worker threads). */
    unsigned workers = 2;
    /** Bounded queue: jobs waiting beyond the running ones. */
    size_t queue_depth = 16;
    /** Max jobs one tenant may have admitted at once (0 = off). */
    size_t tenant_cap = 8;
    /** Timeout granted when a submit does not ask for one. */
    double default_timeout = 60.0;
    /** Hard per-job ceiling; requested timeouts are clamped to it. */
    double max_job_seconds = 300.0;
    /** Per-job peak-RSS watermark in MiB (0 = off). */
    size_t max_rss_mb = 0;
    /** Cross-job elaboration cache budget in MiB (0 = off). */
    size_t cache_mb = 64;
    /** Clamp on the per-job worker-thread request. */
    unsigned max_job_threads = 8;
};

class Server
{
  public:
    explicit Server(ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind + listen, replay the journal, and spawn the accept and
     * worker threads.  False + @p error on failure (address in use,
     * unwritable journal, ...).
     */
    bool start(std::string &error);

    /**
     * Begin shutdown: stop admitting, cancel every in-flight job
     * (their partial results flush to clients as cancelled), wake
     * all threads.  Safe to call more than once; called from the
     * signal path via the stop token's observer loop in repaird.
     */
    void requestStop();

    /** Join all threads (returns once requestStop() has completed). */
    void wait();

    /** Token that trips when the server is asked to stop. */
    CancelToken &stopToken() { return _stop; }

    /** Jobs the previous daemon instance lost (journal replay). */
    const std::vector<InterruptedJob> &interrupted() const;

    ElabCache &cache() { return _cache; }

  private:
    struct Connection;
    struct Job;

    void acceptLoop();
    void connectionLoop(std::shared_ptr<Connection> conn);
    void workerLoop();
    void handleLine(const std::shared_ptr<Connection> &conn,
                    const std::string &line);
    void handleSubmit(const std::shared_ptr<Connection> &conn,
                      const Json &msg);
    void runJob(const std::shared_ptr<Job> &job);
    void finishJob(const std::shared_ptr<Job> &job,
                   const std::string &wire_status,
                   const std::string &response);
    Json statsJson();

    /** Send one line to @p conn (serialized, dead-safe). */
    static bool send(const std::shared_ptr<Connection> &conn,
                     const std::string &line);

    ServerConfig _config;
    CancelToken _stop;
    Fd _listener;
    Journal _journal;
    ElabCache _cache;
    JobQueue<Job> _queue;

    std::mutex _mutex;  ///< guards _active, _recent, _conn_threads
    std::map<std::string, std::shared_ptr<Job>> _active;
    /** Recent result lines for idempotent re-query, newest last. */
    std::deque<std::pair<std::string, std::string>> _recent;

    std::thread _accept_thread;
    std::vector<std::thread> _workers;
    std::vector<std::thread> _conn_threads;
};

} // namespace rtlrepair::service

#endif // RTLREPAIR_SERVICE_SERVER_HPP
