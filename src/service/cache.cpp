#include "service/cache.hpp"

#include "util/digest.hpp"
#include "util/telemetry.hpp"
#include "verilog/printer.hpp"

namespace rtlrepair::service {

namespace {

telemetry::Counter &
cacheCounter(const char *what)
{
    return telemetry::counter(std::string("service.cache.") + what,
                              telemetry::MetricKind::Unstable);
}

} // namespace

size_t
ElabCache::estimateBytes(const Entry &entry)
{
    // An estimate is enough to bound memory: AST cost is proxied by
    // the printed source, IR cost by its arrays.  Both undercount
    // allocator overhead, so budgets should be set with headroom.
    size_t bytes = sizeof(Slot);
    if (entry.module)
        bytes += verilog::print(*entry.module).size() * 2;
    const ir::TransitionSystem &sys = entry.sys;
    bytes += sys.nodes.size() * sizeof(ir::Node);
    bytes += sys.consts.size() * 32;
    bytes += (sys.states.size() + sys.inputs.size() +
              sys.synth_vars.size() + sys.outputs.size()) *
             96;
    for (const auto &[name, ref] : sys.signals)
        bytes += name.size() + 16 + sizeof(ref);
    for (const auto &note : entry.preprocess_notes)
        bytes += note.size() + 32;
    return bytes;
}

repair::ElaborationCache::Entry
ElabCache::copyEntry(const Entry &entry)
{
    Entry copy;
    copy.module = entry.module ? entry.module->clone() : nullptr;
    copy.preprocess_changes = entry.preprocess_changes;
    copy.preprocess_notes = entry.preprocess_notes;
    copy.sys = entry.sys;
    return copy;
}

bool
ElabCache::lookup(uint64_t key, Entry &out)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _index.find(key);
    if (it == _index.end()) {
        ++_stats.misses;
        cacheCounter("miss").add(1);
        return false;
    }
    // Refresh recency, then hand the caller its own copy.
    _lru.splice(_lru.begin(), _lru, it->second);
    out = copyEntry(it->second->entry);
    ++_stats.hits;
    cacheCounter("hit").add(1);
    return true;
}

void
ElabCache::store(uint64_t key, const Entry &entry)
{
    if (_max_bytes == 0)
        return;
    Entry copy = copyEntry(entry);
    size_t bytes = estimateBytes(copy);
    if (bytes > _max_bytes)
        return;  // a single over-budget design would evict everything

    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _index.find(key);
    if (it != _index.end()) {
        // Concurrent cold submissions of the same design race to
        // store; first wins, the rest just refresh recency.
        _lru.splice(_lru.begin(), _lru, it->second);
        return;
    }
    while (_bytes + bytes > _max_bytes && !_lru.empty()) {
        const Slot &victim = _lru.back();
        _bytes -= victim.bytes;
        _index.erase(victim.key);
        _lru.pop_back();
        ++_stats.evictions;
        cacheCounter("evict").add(1);
    }
    _lru.push_front(Slot{key, std::move(copy), bytes});
    _index[key] = _lru.begin();
    _bytes += bytes;
    ++_stats.stores;
    cacheCounter("store").add(1);
}

ElabCache::Stats
ElabCache::stats() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    Stats s = _stats;
    s.entries = _lru.size();
    s.bytes = _bytes;
    return s;
}

uint64_t
designDigest(const std::string &design_source,
             const std::vector<std::string> &library_sources)
{
    uint64_t h = fnv1a64(design_source);
    for (const auto &lib : library_sources) {
        h = fnv1a64("\x1f", h);  // separator: concat must not collide
        h = fnv1a64(lib, h);
    }
    return h;
}

uint64_t
jobDigest(const std::string &design_source,
          const std::string &trace_csv)
{
    uint64_t h = fnv1a64(design_source);
    h = fnv1a64("\x1f", h);
    h = fnv1a64(trace_csv, h);
    return h;
}

} // namespace rtlrepair::service
