#include "service/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/strings.hpp"

namespace rtlrepair::service {

Json
Json::boolean(bool b)
{
    Json j;
    j._kind = Kind::Bool;
    j._bool = b;
    return j;
}

Json
Json::number(double n)
{
    Json j;
    j._kind = Kind::Number;
    j._num = n;
    return j;
}

Json
Json::number(uint64_t n)
{
    return number(static_cast<double>(n));
}

Json
Json::string(std::string s)
{
    Json j;
    j._kind = Kind::String;
    j._str = std::move(s);
    return j;
}

Json
Json::array()
{
    Json j;
    j._kind = Kind::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j._kind = Kind::Object;
    return j;
}

bool
Json::asBool(bool dflt) const
{
    return _kind == Kind::Bool ? _bool : dflt;
}

double
Json::asNumber(double dflt) const
{
    return _kind == Kind::Number ? _num : dflt;
}

const Json *
Json::find(const std::string &key) const
{
    if (_kind != Kind::Object)
        return nullptr;
    auto it = _object.find(key);
    return it == _object.end() ? nullptr : &it->second;
}

std::string
Json::str(const std::string &key, const std::string &dflt) const
{
    const Json *v = find(key);
    return v && v->_kind == Kind::String ? v->_str : dflt;
}

double
Json::num(const std::string &key, double dflt) const
{
    const Json *v = find(key);
    return v && v->_kind == Kind::Number ? v->_num : dflt;
}

bool
Json::flag(const std::string &key, bool dflt) const
{
    const Json *v = find(key);
    return v && v->_kind == Kind::Bool ? v->_bool : dflt;
}

Json &
Json::set(const std::string &key, Json value)
{
    if (_kind == Kind::Object)
        _object[key] = std::move(value);
    return *this;
}

Json &
Json::push(Json value)
{
    if (_kind == Kind::Array)
        _array.push_back(std::move(value));
    return *this;
}

std::string
jsonQuote(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    out += '"';
    for (char raw : text) {
        unsigned char c = static_cast<unsigned char>(raw);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += raw;  // UTF-8 bytes pass through untouched
            }
        }
    }
    out += '"';
    return out;
}

std::string
Json::dump() const
{
    switch (_kind) {
      case Kind::Null:
        return "null";
      case Kind::Bool:
        return _bool ? "true" : "false";
      case Kind::Number: {
        // Integers (the common case: counts, exit codes) print
        // without a fraction so they re-parse identically.
        if (std::floor(_num) == _num && std::fabs(_num) < 1e15)
            return format("%lld", static_cast<long long>(_num));
        return format("%.17g", _num);
      }
      case Kind::String:
        return jsonQuote(_str);
      case Kind::Array: {
        std::string out = "[";
        for (size_t i = 0; i < _array.size(); ++i) {
            if (i)
                out += ',';
            out += _array[i].dump();
        }
        return out + "]";
      }
      case Kind::Object: {
        std::string out = "{";
        bool first = true;
        for (const auto &[key, value] : _object) {
            if (!first)
                out += ',';
            first = false;
            out += jsonQuote(key);
            out += ':';
            out += value.dump();
        }
        return out + "}";
      }
    }
    return "null";
}

namespace {

class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : _s(text), _error(error)
    {
    }

    bool
    parse(Json &out)
    {
        skipWs();
        if (!value(out))
            return false;
        skipWs();
        if (_pos != _s.size())
            return fail("trailing characters after value");
        return true;
    }

  private:
    bool
    fail(const char *msg)
    {
        if (_error && _error->empty())
            *_error = format("%s at offset %zu", msg, _pos);
        return false;
    }

    void
    skipWs()
    {
        while (_pos < _s.size() &&
               (_s[_pos] == ' ' || _s[_pos] == '\t' ||
                _s[_pos] == '\n' || _s[_pos] == '\r')) {
            ++_pos;
        }
    }

    bool
    literal(const char *word, Json &out, Json value)
    {
        size_t n = std::strlen(word);
        if (_s.compare(_pos, n, word) != 0)
            return fail("bad literal");
        _pos += n;
        out = std::move(value);
        return true;
    }

    bool
    value(Json &out)
    {
        skipWs();
        if (_pos >= _s.size())
            return fail("unexpected end of input");
        switch (_s[_pos]) {
          case '{': return object(out);
          case '[': return array(out);
          case '"': {
            std::string s;
            if (!string(s))
                return false;
            out = Json::string(std::move(s));
            return true;
          }
          case 't': return literal("true", out, Json::boolean(true));
          case 'f': return literal("false", out, Json::boolean(false));
          case 'n': return literal("null", out, Json::null());
          default: return number(out);
        }
    }

    bool
    hex4(uint32_t &cp)
    {
        if (_pos + 4 > _s.size())
            return fail("truncated \\u escape");
        cp = 0;
        for (int i = 0; i < 4; ++i) {
            char c = _s[_pos++];
            cp <<= 4;
            if (c >= '0' && c <= '9')
                cp |= static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                cp |= static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                cp |= static_cast<uint32_t>(c - 'A' + 10);
            else
                return fail("bad \\u escape");
        }
        return true;
    }

    void
    appendUtf8(std::string &out, uint32_t cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool
    string(std::string &out)
    {
        ++_pos;  // opening quote
        out.clear();
        while (true) {
            if (_pos >= _s.size())
                return fail("unterminated string");
            char c = _s[_pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (_pos >= _s.size())
                return fail("unterminated escape");
            char esc = _s[_pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                uint32_t cp = 0;
                if (!hex4(cp))
                    return false;
                // Surrogate pairs: protocol strings are byte-oriented
                // so unpaired surrogates become U+FFFD.
                if (cp >= 0xd800 && cp <= 0xdbff &&
                    _s.compare(_pos, 2, "\\u") == 0) {
                    _pos += 2;
                    uint32_t lo = 0;
                    if (!hex4(lo))
                        return false;
                    if (lo >= 0xdc00 && lo <= 0xdfff) {
                        uint32_t full = 0x10000 +
                                        ((cp - 0xd800) << 10) +
                                        (lo - 0xdc00);
                        out += static_cast<char>(0xf0 | (full >> 18));
                        out += static_cast<char>(
                            0x80 | ((full >> 12) & 0x3f));
                        out += static_cast<char>(
                            0x80 | ((full >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (full & 0x3f));
                        break;
                    }
                    cp = 0xfffd;
                }
                appendUtf8(out, cp >= 0xd800 && cp <= 0xdfff ? 0xfffd
                                                             : cp);
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
    }

    bool
    number(Json &out)
    {
        size_t start = _pos;
        if (_pos < _s.size() && (_s[_pos] == '-' || _s[_pos] == '+'))
            ++_pos;
        // RFC 8259: no leading zeros ("01" is two tokens, an error).
        if (_pos + 1 < _s.size() && _s[_pos] == '0' &&
            std::isdigit(static_cast<unsigned char>(_s[_pos + 1])))
            return fail("leading zero in number");
        bool digits = false;
        while (_pos < _s.size() &&
               (std::isdigit(static_cast<unsigned char>(_s[_pos])) ||
                _s[_pos] == '.' || _s[_pos] == 'e' || _s[_pos] == 'E' ||
                _s[_pos] == '-' || _s[_pos] == '+')) {
            digits = digits ||
                     std::isdigit(static_cast<unsigned char>(_s[_pos]));
            ++_pos;
        }
        if (!digits)
            return fail("bad number");
        out = Json::number(
            std::atof(_s.substr(start, _pos - start).c_str()));
        return true;
    }

    bool
    array(Json &out)
    {
        out = Json::array();
        ++_pos;  // '['
        skipWs();
        if (_pos < _s.size() && _s[_pos] == ']') {
            ++_pos;
            return true;
        }
        while (true) {
            Json elem;
            if (!value(elem))
                return false;
            out.push(std::move(elem));
            skipWs();
            if (_pos >= _s.size())
                return fail("unterminated array");
            if (_s[_pos] == ',') {
                ++_pos;
                continue;
            }
            if (_s[_pos] == ']') {
                ++_pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    object(Json &out)
    {
        out = Json::object();
        ++_pos;  // '{'
        skipWs();
        if (_pos < _s.size() && _s[_pos] == '}') {
            ++_pos;
            return true;
        }
        while (true) {
            skipWs();
            if (_pos >= _s.size() || _s[_pos] != '"')
                return fail("expected object key");
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (_pos >= _s.size() || _s[_pos] != ':')
                return fail("expected ':'");
            ++_pos;
            Json val;
            if (!value(val))
                return false;
            out.set(key, std::move(val));
            skipWs();
            if (_pos >= _s.size())
                return fail("unterminated object");
            if (_s[_pos] == ',') {
                ++_pos;
                continue;
            }
            if (_s[_pos] == '}') {
                ++_pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    const std::string &_s;
    std::string *_error;
    size_t _pos = 0;
};

} // namespace

bool
Json::parse(const std::string &text, Json &out, std::string *error)
{
    if (error)
        error->clear();
    return Parser(text, error).parse(out);
}

} // namespace rtlrepair::service
