#include "service/job_queue.hpp"

namespace rtlrepair::service {

const char *
admissionReason(Admission verdict)
{
    switch (verdict) {
      case Admission::Admitted: return "admitted";
      case Admission::Overloaded: return "overloaded";
      case Admission::TenantBusy: return "tenant-busy";
      case Admission::Duplicate: return "duplicate";
      case Admission::ShuttingDown: return "shutting-down";
    }
    return "?";
}

} // namespace rtlrepair::service
