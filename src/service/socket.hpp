/**
 * @file
 * Thin POSIX socket layer for the repaird daemon and its clients:
 * RAII fds, Unix-domain and TCP listeners/connectors behind one
 * address spec, and a line-buffered reader for NDJSON framing.
 *
 * Address specs: anything containing a '/' is a Unix-domain socket
 * path ("/tmp/repaird.sock", "./daemon.sock"); otherwise "host:port"
 * ("127.0.0.1:7411").  Unix sockets are the default deployment —
 * filesystem permissions are the authentication story.
 *
 * All reads poll with a timeout so callers can interleave a
 * CancelToken check; a cancelled loop sees Io::Again rather than
 * blocking forever in recv().
 */
#ifndef RTLREPAIR_SERVICE_SOCKET_HPP
#define RTLREPAIR_SERVICE_SOCKET_HPP

#include <string>

namespace rtlrepair::service {

/** Owned file descriptor (closes on destruction, move-only). */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : _fd(fd) {}
    ~Fd() { close(); }

    Fd(Fd &&other) noexcept : _fd(other._fd) { other._fd = -1; }
    Fd &
    operator=(Fd &&other) noexcept
    {
        if (this != &other) {
            close();
            _fd = other._fd;
            other._fd = -1;
        }
        return *this;
    }

    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    int get() const { return _fd; }
    bool valid() const { return _fd >= 0; }
    void close();

  private:
    int _fd = -1;
};

/** True when @p address names a Unix-domain socket path. */
bool isUnixAddress(const std::string &address);

/**
 * Bind + listen on @p address.  Replaces a stale Unix socket file
 * (daemon restart after SIGKILL).  Returns an invalid Fd and fills
 * @p error on failure.
 */
Fd listenOn(const std::string &address, std::string &error);

/** Accept one connection; invalid Fd on timeout/EINTR (poll again)
 *  and on a closed listener. */
Fd acceptOn(const Fd &listener, int timeout_ms);

/** Connect to @p address; invalid Fd + @p error on failure. */
Fd connectTo(const std::string &address, std::string &error);

/** Write all of @p data; false on a broken connection. */
bool writeAll(const Fd &fd, const std::string &data);

/**
 * Buffered newline-framed reader.  readLine() polls in @p timeout_ms
 * slices so callers can check cancellation between slices.
 */
class LineReader
{
  public:
    enum class Io { Line, Again, Eof, Error };

    explicit LineReader(int fd) : _fd(fd) {}

    /** Next complete line (without the '\n') into @p line. */
    Io readLine(std::string &line, int timeout_ms);

  private:
    int _fd;
    std::string _buf;
};

} // namespace rtlrepair::service

#endif // RTLREPAIR_SERVICE_SOCKET_HPP
