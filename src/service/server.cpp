#include "service/server.hpp"

#include <atomic>
#include <deque>

#include "service/json.hpp"
#include "trace/io_trace.hpp"
#include "util/digest.hpp"
#include "util/fault.hpp"
#include "util/strings.hpp"
#include "util/telemetry.hpp"
#include "verilog/parser.hpp"
#include "verilog/printer.hpp"

namespace rtlrepair::service {

namespace {

constexpr int kPollMs = 200;
constexpr size_t kRecentResults = 128;

telemetry::Counter &
serviceCounter(const char *what)
{
    return telemetry::counter(std::string("service.") + what,
                              telemetry::MetricKind::Unstable);
}

/** Default idempotent job id when the client did not choose one:
 *  content-addressed, so a blind resubmit of the same inputs maps to
 *  the same job. */
std::string
defaultJobId(const JobRequest &req)
{
    return format("job-%016llx",
                  (unsigned long long)jobDigest(req.design,
                                                req.trace));
}

Json
responseEnvelope(const char *type)
{
    Json msg = Json::object();
    msg.set("v", Json::number(kProtocolVersion));
    msg.set("type", Json::string(type));
    return msg;
}

} // namespace

/**
 * One client connection.  Reads happen on the connection thread;
 * writes come from connection and worker threads alike and are
 * serialized by write_mutex.  `alive` flips once (EOF, write error,
 * injected respond fault) and every later send becomes a no-op —
 * a dead client must not wedge its jobs.
 */
struct Server::Connection
{
    Fd fd;
    std::mutex write_mutex;
    std::atomic<bool> alive{true};
    /** Jobs submitted over this connection (for disconnect-cancel). */
    std::mutex jobs_mutex;
    std::vector<std::weak_ptr<Job>> jobs;
};

/** One admitted job: the request plus its cancellation scope. */
struct Server::Job
{
    JobRequest req;
    CancelToken cancel;
    std::shared_ptr<Connection> conn;
};

Server::Server(ServerConfig config)
    : _config(std::move(config)),
      _cache(_config.cache_mb * 1024 * 1024),
      _queue(_config.queue_depth, _config.tenant_cap)
{
}

Server::~Server()
{
    requestStop();
    wait();
}

const std::vector<InterruptedJob> &
Server::interrupted() const
{
    return _journal.interrupted();
}

bool
Server::start(std::string &error)
{
    if (!_journal.open(_config.journal_path, error))
        return false;
    _listener = listenOn(_config.listen, error);
    if (!_listener.valid())
        return false;
    if (_config.workers == 0)
        _config.workers = 1;
    for (unsigned i = 0; i < _config.workers; ++i)
        _workers.emplace_back(&Server::workerLoop, this);
    _accept_thread = std::thread(&Server::acceptLoop, this);
    return true;
}

void
Server::requestStop()
{
    _stop.cancel();
    _queue.shutdown();
    std::lock_guard<std::mutex> lock(_mutex);
    for (auto &[id, job] : _active)
        job->cancel.cancel();
}

void
Server::wait()
{
    if (_accept_thread.joinable())
        _accept_thread.join();
    for (auto &worker : _workers)
        if (worker.joinable())
            worker.join();
    // The accept thread is down, so no new connection threads can
    // appear; steal the list and join outside the lock.
    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        conns.swap(_conn_threads);
    }
    for (auto &conn : conns)
        if (conn.joinable())
            conn.join();
}

bool
Server::send(const std::shared_ptr<Connection> &conn,
             const std::string &line)
{
    if (!conn->alive.load(std::memory_order_relaxed))
        return false;
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    if (!writeAll(conn->fd, line)) {
        conn->alive.store(false, std::memory_order_relaxed);
        return false;
    }
    return true;
}

void
Server::acceptLoop()
{
    while (!_stop.cancelled()) {
        Fd client = acceptOn(_listener, kPollMs);
        if (!client.valid())
            continue;
        // Accept-path fault site: a fault here may drop this one
        // connection but must leave the daemon serving.
        try {
            faultPoint("service:accept");
        } catch (const FatalError &) {
            serviceCounter("accept.faulted").add(1);
            continue;
        } catch (const PanicError &) {
            serviceCounter("accept.faulted").add(1);
            continue;
        } catch (const std::bad_alloc &) {
            serviceCounter("accept.faulted").add(1);
            continue;
        } catch (const StageTimeoutError &) {
            serviceCounter("accept.faulted").add(1);
            continue;
        }
        serviceCounter("connections").add(1);
        auto conn = std::make_shared<Connection>();
        conn->fd = std::move(client);
        std::lock_guard<std::mutex> lock(_mutex);
        _conn_threads.emplace_back(&Server::connectionLoop, this, conn);
    }
}

void
Server::connectionLoop(std::shared_ptr<Connection> conn)
{
    LineReader reader(conn->fd.get());
    std::string line;
    while (!_stop.cancelled() &&
           conn->alive.load(std::memory_order_relaxed)) {
        LineReader::Io io = reader.readLine(line, kPollMs);
        if (io == LineReader::Io::Again)
            continue;
        if (io != LineReader::Io::Line)
            break;
        handleLine(conn, line);
    }
    conn->alive.store(false, std::memory_order_relaxed);
    // Client gone: cancel everything it still has in flight.  The
    // token trips, the conflict-loop polls see it, and each job
    // unwinds as cancelled instead of burning a worker for a result
    // nobody will read.
    std::lock_guard<std::mutex> lock(conn->jobs_mutex);
    for (auto &weak : conn->jobs)
        if (auto job = weak.lock())
            job->cancel.cancel();
}

void
Server::handleLine(const std::shared_ptr<Connection> &conn,
                   const std::string &line)
{
    // Decode-path fault site: a poisoned request degrades to an error
    // response on this connection; the daemon and its siblings are
    // untouched.
    try {
        faultPoint("service:decode");
    } catch (const FatalError &e) {
        send(conn, errorLine(format("decode fault: %s", e.what())));
        return;
    } catch (const PanicError &e) {
        send(conn, errorLine(format("decode fault: %s", e.what())));
        return;
    } catch (const std::bad_alloc &) {
        send(conn, errorLine("decode fault: out of memory"));
        return;
    } catch (const StageTimeoutError &e) {
        send(conn, errorLine(format("decode fault: %s", e.what())));
        return;
    }

    Json msg;
    std::string error;
    if (!Json::parse(line, msg, &error)) {
        send(conn, errorLine(format("bad JSON: %s", error.c_str())));
        return;
    }
    std::optional<std::string> type = messageType(msg, error);
    if (!type) {
        send(conn, errorLine(error));
        return;
    }

    if (*type == "submit") {
        handleSubmit(conn, msg);
    } else if (*type == "cancel") {
        std::string id = msg.str("id");
        std::shared_ptr<Job> job;
        {
            std::lock_guard<std::mutex> lock(_mutex);
            auto it = _active.find(id);
            if (it != _active.end())
                job = it->second;
        }
        if (!job) {
            send(conn, errorLine("unknown job", id));
            return;
        }
        job->cancel.cancel();
        Json reply = responseEnvelope("cancelled");
        reply.set("id", Json::string(id));
        send(conn, reply.dump() + "\n");
    } else if (*type == "query") {
        std::string id = msg.str("id");
        bool active = false;
        std::string recent;
        {
            std::lock_guard<std::mutex> lock(_mutex);
            active = _active.count(id) > 0;
            if (!active) {
                for (const auto &[rid, result] : _recent)
                    if (rid == id)
                        recent = result;
            }
        }
        if (active) {
            Json reply = responseEnvelope("job");
            reply.set("id", Json::string(id));
            reply.set("state", Json::string("active"));
            send(conn, reply.dump() + "\n");
        } else if (!recent.empty()) {
            send(conn, recent);  // idempotent result replay
        } else {
            send(conn, errorLine("unknown job", id));
        }
    } else if (*type == "recover") {
        Json reply = responseEnvelope("recovered");
        Json jobs = Json::array();
        for (const auto &lost : _journal.interrupted()) {
            Json entry = Json::object();
            entry.set("id", Json::string(lost.id));
            if (!lost.tenant.empty())
                entry.set("tenant", Json::string(lost.tenant));
            entry.set("status", Json::string("interrupted"));
            entry.set("exit_code", Json::number(kExitTimeout));
            jobs.push(std::move(entry));
        }
        reply.set("jobs", std::move(jobs));
        send(conn, reply.dump() + "\n");
    } else if (*type == "stats") {
        send(conn, statsJson().dump() + "\n");
    } else if (*type == "ping") {
        send(conn, pongLine());
    } else {
        send(conn,
             errorLine(format("unknown request type \"%s\"",
                              type->c_str())));
    }
}

void
Server::handleSubmit(const std::shared_ptr<Connection> &conn,
                     const Json &msg)
{
    JobRequest req;
    std::string error;
    if (!parseSubmit(msg, req, error)) {
        send(conn, errorLine(error, msg.str("id")));
        send(conn, rejectedLine(msg.str("id"), "bad-request"));
        serviceCounter("jobs.rejected").add(1);
        return;
    }
    if (req.id.empty())
        req.id = defaultJobId(req);

    auto job = std::make_shared<Job>();
    job->req = req;
    job->conn = conn;
    Admission verdict =
        _queue.submit(req.id, req.tenant, req.priority, job);
    if (verdict != Admission::Admitted) {
        send(conn, rejectedLine(req.id, admissionReason(verdict)));
        serviceCounter("jobs.rejected").add(1);
        return;
    }

    // Journal before acknowledging: once the client sees "accepted",
    // a daemon crash must surface this id as interrupted.
    _journal.clearInterrupted(req.id);
    _journal.logStart(req.id, req.tenant);
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _active[req.id] = job;
    }
    {
        std::lock_guard<std::mutex> lock(conn->jobs_mutex);
        conn->jobs.push_back(job);
    }
    serviceCounter("jobs.accepted").add(1);
    send(conn, acceptedLine(req.id, _queue.queued()));
}

void
Server::workerLoop()
{
    while (true) {
        std::shared_ptr<Job> job = _queue.pop(kPollMs);
        if (!job) {
            if (_stop.cancelled())
                break;  // queue drained (pop prefers jobs over null)
            continue;
        }
        runJob(job);
    }
}

void
Server::finishJob(const std::shared_ptr<Job> &job,
                  const std::string &wire_status,
                  const std::string &response)
{
    // Respond-path fault site: the client may lose its result line,
    // but the journal, queue slot and cache stay consistent — the
    // client can re-query the id after reconnecting.
    bool respond_ok = true;
    try {
        faultPoint("service:respond");
    } catch (const FatalError &) {
        respond_ok = false;
    } catch (const PanicError &) {
        respond_ok = false;
    } catch (const std::bad_alloc &) {
        respond_ok = false;
    } catch (const StageTimeoutError &) {
        respond_ok = false;
    }
    if (respond_ok)
        send(job->conn, response);
    else
        job->conn->alive.store(false, std::memory_order_relaxed);

    _journal.logDone(job->req.id, wire_status);
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _recent.emplace_back(job->req.id, response);
        while (_recent.size() > kRecentResults)
            _recent.pop_front();
        _active.erase(job->req.id);
    }
    _queue.release(job->req.id, job->req.tenant);
    serviceCounter("jobs.completed").add(1);
}

void
Server::runJob(const std::shared_ptr<Job> &job)
{
    const JobRequest &req = job->req;
    try {
        if (job->cancel.cancelled()) {
            // Cancelled while queued (disconnect or explicit cancel):
            // never start the pipeline.
            finishJob(job, "cancelled",
                      failureResultLine(req.id, "cancelled",
                                        kExitTimeout,
                                        "cancelled before start"));
            return;
        }
        // Dispatch-path fault site: this job degrades to an internal
        // error; the worker thread survives to run the next job.
        faultPoint("service:dispatch");

        std::vector<repair::StageReport> svc_stages;
        verilog::SourceFile file;
        {
            repair::StageGuard guard("parse", svc_stages);
            if (!guard.run(
                    [&] { file = verilog::parse(req.design); })) {
                const repair::StageReport &r = guard.report();
                finishJob(job,
                          r.user_error ? "bad-input" : "error",
                          failureResultLine(
                              req.id,
                              r.user_error ? "bad-input" : "error",
                              r.user_error ? kExitBadInput
                                           : kExitInternal,
                              format("parse: %s",
                                     r.diagnostic.c_str())));
                return;
            }
        }
        trace::IoTrace io;
        {
            repair::StageGuard guard("trace", svc_stages);
            if (!guard.run(
                    [&] { io = trace::IoTrace::fromCsv(req.trace); })) {
                const repair::StageReport &r = guard.report();
                finishJob(job,
                          r.user_error ? "bad-input" : "error",
                          failureResultLine(
                              req.id,
                              r.user_error ? "bad-input" : "error",
                              r.user_error ? kExitBadInput
                                           : kExitInternal,
                              format("trace: %s",
                                     r.diagnostic.c_str())));
                return;
            }
        }
        repair::foldStageCounters(svc_stages);

        std::vector<const verilog::Module *> library;
        std::vector<std::string> library_sources;
        for (const auto &m : file.modules) {
            if (m.get() != &file.top()) {
                library.push_back(m.get());
                library_sources.push_back(verilog::print(*m));
            }
        }

        // Per-tenant budgets: the requested timeout is clamped to the
        // server ceiling, worker threads to the server clamp; the RSS
        // watermark rides the existing guard machinery.
        repair::RepairConfig config;
        config.timeout_seconds = req.timeout_seconds > 0.0
                                     ? req.timeout_seconds
                                     : _config.default_timeout;
        if (_config.max_job_seconds > 0.0 &&
            config.timeout_seconds > _config.max_job_seconds)
            config.timeout_seconds = _config.max_job_seconds;
        config.x_policy = req.zero_x ? sim::XPolicy::Zero
                                     : sim::XPolicy::Random;
        config.engine.incremental = req.incremental;
        config.jobs = req.jobs == 0 ? 1 : req.jobs;
        if (config.jobs > _config.max_job_threads)
            config.jobs = _config.max_job_threads;
        config.guard.max_rss_mb = _config.max_rss_mb;
        config.cancel = &job->cancel;
        if (_config.cache_mb > 0) {
            config.elab_cache = &_cache;
            config.cache_key =
                designDigest(verilog::print(file.top()),
                             library_sources);
        }

        repair::RepairOutcome outcome =
            repair::repairDesign(file.top(), library, io, config);

        if (req.want_stages) {
            for (const auto &report : svc_stages)
                send(job->conn, stageLine(req.id, report));
            for (const auto &report : outcome.stages)
                send(job->conn, stageLine(req.id, report));
        }

        std::string repaired_source;
        if (outcome.status ==
                repair::RepairOutcome::Status::Repaired &&
            outcome.repaired)
            repaired_source = verilog::print(*outcome.repaired);
        const char *cache = _config.cache_mb == 0 ? "off"
                            : outcome.elab_cache_hit ? "hit"
                                                     : "miss";
        std::string wire_status =
            outcome.cancelled ? "cancelled"
                              : statusWireName(outcome.status);
        if (outcome.cancelled)
            serviceCounter("jobs.cancelled").add(1);
        finishJob(job, wire_status,
                  resultLine(req.id, outcome, repaired_source, cache));
    } catch (const FatalError &e) {
        serviceCounter("jobs.faulted").add(1);
        finishJob(job, "bad-input",
                  failureResultLine(req.id, "bad-input", kExitBadInput,
                                    e.what()));
    } catch (const PanicError &e) {
        serviceCounter("jobs.faulted").add(1);
        finishJob(job, "error",
                  failureResultLine(req.id, "error", kExitInternal,
                                    e.what()));
    } catch (const StageTimeoutError &e) {
        serviceCounter("jobs.faulted").add(1);
        finishJob(job, "timeout",
                  failureResultLine(req.id, "timeout", kExitTimeout,
                                    e.what()));
    } catch (const std::bad_alloc &) {
        serviceCounter("jobs.faulted").add(1);
        finishJob(job, "error",
                  failureResultLine(req.id, "error", kExitInternal,
                                    "out of memory"));
    } catch (const std::exception &e) {
        serviceCounter("jobs.faulted").add(1);
        finishJob(job, "error",
                  failureResultLine(req.id, "error", kExitInternal,
                                    format("unexpected: %s",
                                           e.what())));
    }
}

Json
Server::statsJson()
{
    Json reply = responseEnvelope("stats");
    reply.set("queued", Json::number(uint64_t(_queue.queued())));
    reply.set("admitted", Json::number(uint64_t(_queue.admitted())));
    reply.set("workers", Json::number(uint64_t(_config.workers)));
    reply.set("interrupted",
              Json::number(uint64_t(_journal.interrupted().size())));
    ElabCache::Stats cache = _cache.stats();
    Json cache_obj = Json::object();
    cache_obj.set("hits", Json::number(cache.hits));
    cache_obj.set("misses", Json::number(cache.misses));
    cache_obj.set("stores", Json::number(cache.stores));
    cache_obj.set("evictions", Json::number(cache.evictions));
    cache_obj.set("entries", Json::number(uint64_t(cache.entries)));
    cache_obj.set("bytes", Json::number(uint64_t(cache.bytes)));
    reply.set("cache", std::move(cache_obj));
    return reply;
}

} // namespace rtlrepair::service
