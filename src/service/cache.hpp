/**
 * @file
 * Cross-job elaboration cache: the service-side implementation of
 * repair::ElaborationCache.
 *
 * Keyed by the FNV-1a 64 digest of the submitted design + library
 * sources (the same hash family golden_trace_test pins its oracle
 * with), each entry holds the preprocessed module and its base
 * elaboration — the design-dependent pipeline prefix that a fleet of
 * users resubmitting near-identical designs would otherwise recompute
 * per job.  Lookups clone; cached state is never aliased into a
 * running job, so a poisoned job cannot corrupt warm state for its
 * siblings.
 *
 * Memory is bounded: entries carry an estimated byte cost and the
 * cache evicts least-recently-used entries past the budget.  Hits,
 * misses, stores and evictions are telemetry counters
 * (service.cache.*, Unstable: concurrent submissions race for the
 * first miss).
 */
#ifndef RTLREPAIR_SERVICE_CACHE_HPP
#define RTLREPAIR_SERVICE_CACHE_HPP

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "repair/driver.hpp"

namespace rtlrepair::service {

class ElabCache : public repair::ElaborationCache
{
  public:
    /** @p max_bytes caps the summed entry estimates (0 = disabled:
     *  every lookup misses, stores are dropped). */
    explicit ElabCache(size_t max_bytes) : _max_bytes(max_bytes) {}

    bool lookup(uint64_t key, Entry &out) override;
    void store(uint64_t key, const Entry &entry) override;

    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t stores = 0;
        uint64_t evictions = 0;
        size_t entries = 0;
        size_t bytes = 0;
    };
    Stats stats() const;

  private:
    struct Slot
    {
        uint64_t key = 0;
        Entry entry;
        size_t bytes = 0;
    };

    static size_t estimateBytes(const Entry &entry);
    static Entry copyEntry(const Entry &entry);

    mutable std::mutex _mutex;
    size_t _max_bytes;
    size_t _bytes = 0;
    /** MRU front, LRU back. */
    std::list<Slot> _lru;
    std::unordered_map<uint64_t, std::list<Slot>::iterator> _index;
    Stats _stats;
};

/** Digest of a design + library source set, the elab-cache key (and
 *  the default idempotent job id on the client). */
uint64_t designDigest(const std::string &design_source,
                      const std::vector<std::string> &library_sources =
                          {});

/** Digest of a full submission (design + trace): the default
 *  content-addressed job id, identical on client and server. */
uint64_t jobDigest(const std::string &design_source,
                   const std::string &trace_csv);

} // namespace rtlrepair::service

#endif // RTLREPAIR_SERVICE_CACHE_HPP
