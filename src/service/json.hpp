/**
 * @file
 * Minimal JSON value type for the repaird NDJSON wire protocol.
 *
 * The protocol carries whole Verilog sources and trace CSVs inside
 * JSON strings, so unlike the bench-local reader in perf_gate this
 * implementation round-trips arbitrary bytes: every control
 * character, quote and backslash is escaped on write and unescaped on
 * read (including \uXXXX for the C0 range).  Writing always produces
 * a single line — the NDJSON framing invariant — because the escaper
 * never emits a raw newline.
 *
 * Parsing is strict enough to reject the malformed framings the
 * fault-injection tests throw at the daemon (truncated objects,
 * trailing garbage, bad escapes) and never throws: callers on the
 * request path must treat a bad line as that client's error, not as
 * an exception unwinding the accept loop.
 */
#ifndef RTLREPAIR_SERVICE_JSON_HPP
#define RTLREPAIR_SERVICE_JSON_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rtlrepair::service {

/** A parsed JSON value (object keys are sorted; duplicates keep the
 *  last occurrence). */
class Json
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Json() = default;
    static Json null() { return Json(); }
    static Json boolean(bool b);
    static Json number(double n);
    static Json number(uint64_t n);
    static Json number(int n) { return number(double(n)); }
    static Json string(std::string s);
    static Json array();
    static Json object();

    Kind kind() const { return _kind; }
    bool isObject() const { return _kind == Kind::Object; }
    bool isArray() const { return _kind == Kind::Array; }
    bool isString() const { return _kind == Kind::String; }
    bool isNumber() const { return _kind == Kind::Number; }

    /** Value accessors; wrong-kind access returns the default. */
    bool asBool(bool dflt = false) const;
    double asNumber(double dflt = 0.0) const;
    const std::string &asString() const { return _str; }
    const std::vector<Json> &items() const { return _array; }

    /** Object field lookup; nullptr when absent or not an object. */
    const Json *find(const std::string &key) const;
    /** Typed field helpers (default when absent / wrong kind). */
    std::string str(const std::string &key,
                    const std::string &dflt = "") const;
    double num(const std::string &key, double dflt = 0.0) const;
    bool flag(const std::string &key, bool dflt = false) const;

    /** Mutators (no-ops unless this is an object/array). */
    Json &set(const std::string &key, Json value);
    Json &push(Json value);

    /** Serialize as a single line (no raw newlines anywhere). */
    std::string dump() const;

    /**
     * Parse @p text into @p out.  Returns false (and fills @p error)
     * on malformed input, including trailing non-whitespace.  Never
     * throws.
     */
    static bool parse(const std::string &text, Json &out,
                      std::string *error = nullptr);

  private:
    Kind _kind = Kind::Null;
    bool _bool = false;
    double _num = 0.0;
    std::string _str;
    std::vector<Json> _array;
    std::map<std::string, Json> _object;
};

/** Escape @p text as a JSON string literal including the quotes. */
std::string jsonQuote(const std::string &text);

} // namespace rtlrepair::service

#endif // RTLREPAIR_SERVICE_JSON_HPP
