/**
 * @file
 * Bounded priority job queue with explicit admission control — the
 * backpressure layer between the daemon's accept path and its
 * repair workers.
 *
 * Admission is decided synchronously at submit time so the client
 * always gets an explicit verdict (accepted / rejected+reason)
 * instead of an unbounded queue quietly converting overload into
 * memory exhaustion:
 *   - Overloaded: queued jobs at capacity -> "overloaded".
 *   - Per-tenant cap: a tenant may only have so many jobs admitted
 *     (queued + running) at once -> "tenant-busy"; one noisy tenant
 *     cannot occupy the whole queue.
 *   - Duplicate id: job ids are idempotent handles; an id that is
 *     already queued or running is rejected ("duplicate") rather
 *     than run twice.
 *   - Shutdown: a draining queue admits nothing ("shutting-down").
 *
 * Dequeue order: highest priority first, FIFO within a priority
 * level (stable: ties never reorder).
 */
#ifndef RTLREPAIR_SERVICE_JOB_QUEUE_HPP
#define RTLREPAIR_SERVICE_JOB_QUEUE_HPP

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace rtlrepair::service {

/** Why admission failed (Admitted = it did not fail). */
enum class Admission {
    Admitted,
    Overloaded,
    TenantBusy,
    Duplicate,
    ShuttingDown,
};

/** Wire string for a rejection ("overloaded", ...). */
const char *admissionReason(Admission verdict);

/**
 * The queue holds opaque shared_ptr<T> handles; the server
 * instantiates it with its Job record.  Bookkeeping (ids, tenants)
 * lives here so admission stays a single synchronized decision.
 */
template <typename T>
class JobQueue
{
  public:
    JobQueue(size_t capacity, size_t tenant_cap)
        : _capacity(capacity), _tenant_cap(tenant_cap)
    {
    }

    /**
     * Try to admit @p job.  On Admitted the job is queued and
     * release() must eventually be called with the same id/tenant
     * once the job has fully finished running.
     */
    Admission
    submit(const std::string &id, const std::string &tenant,
           int priority, std::shared_ptr<T> job)
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (_shutdown)
            return Admission::ShuttingDown;
        if (_admitted.count(id))
            return Admission::Duplicate;
        if (_queued >= _capacity)
            return Admission::Overloaded;
        if (_tenant_cap > 0 && _tenant_load[tenant] >= _tenant_cap)
            return Admission::TenantBusy;
        _admitted.insert({id, tenant});
        ++_tenant_load[tenant];
        ++_queued;
        _levels[priority].push_back(std::move(job));
        _cv.notify_one();
        return Admission::Admitted;
    }

    /**
     * Pop the next job (highest priority, FIFO within it); blocks up
     * to @p timeout_ms.  Returns nullptr on timeout or shutdown —
     * callers poll their stop token between calls.
     */
    std::shared_ptr<T>
    pop(int timeout_ms)
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                     [&] { return _queued > 0 || _shutdown; });
        if (_queued == 0)
            return nullptr;
        auto level = _levels.rbegin();  // highest priority first
        std::shared_ptr<T> job = std::move(level->second.front());
        level->second.pop_front();
        if (level->second.empty())
            _levels.erase(std::next(level).base());
        --_queued;
        return job;
    }

    /** A finished (or abandoned) job frees its id and tenant slot. */
    void
    release(const std::string &id, const std::string &tenant)
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (_admitted.erase(id) == 0)
            return;
        auto it = _tenant_load.find(tenant);
        if (it != _tenant_load.end() && --it->second == 0)
            _tenant_load.erase(it);
    }

    /** Stop admitting; wake all poppers. */
    void
    shutdown()
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _shutdown = true;
        _cv.notify_all();
    }

    size_t
    queued() const
    {
        std::lock_guard<std::mutex> lock(_mutex);
        return _queued;
    }

    /** Admitted = queued + running (ids holding a slot). */
    size_t
    admitted() const
    {
        std::lock_guard<std::mutex> lock(_mutex);
        return _admitted.size();
    }

  private:
    mutable std::mutex _mutex;
    std::condition_variable _cv;
    size_t _capacity;
    size_t _tenant_cap;
    size_t _queued = 0;
    bool _shutdown = false;
    /** priority -> FIFO of jobs at that priority. */
    std::map<int, std::deque<std::shared_ptr<T>>> _levels;
    /** id -> tenant for everything admitted and not yet released. */
    std::map<std::string, std::string> _admitted;
    std::map<std::string, size_t> _tenant_load;
};

} // namespace rtlrepair::service

#endif // RTLREPAIR_SERVICE_JOB_QUEUE_HPP
