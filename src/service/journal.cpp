#include "service/journal.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <map>

#include <fcntl.h>
#include <unistd.h>

#include "service/json.hpp"
#include "util/strings.hpp"

namespace rtlrepair::service {

bool
Journal::open(const std::string &path, std::string &error)
{
    if (path.empty())
        return true;  // journaling disabled

    // Replay first: the interrupted set is computed from the log as
    // the previous process left it, before this process appends.
    {
        std::ifstream in(path);
        std::map<std::string, InterruptedJob> open_jobs;
        std::string line;
        while (in && std::getline(in, line)) {
            if (line.empty())
                continue;
            Json rec;
            // A torn final line (the crash happened mid-append) is
            // expected; skip anything unparsable.
            if (!Json::parse(line, rec, nullptr) || !rec.isObject())
                continue;
            std::string event = rec.str("event");
            std::string id = rec.str("job");
            if (id.empty())
                continue;
            if (event == "start")
                open_jobs[id] = {id, rec.str("tenant")};
            else if (event == "done")
                open_jobs.erase(id);
        }
        _interrupted.clear();
        for (auto &[id, job] : open_jobs)
            _interrupted.push_back(std::move(job));
    }

    _fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (_fd < 0) {
        error = format("cannot open journal %s: %s", path.c_str(),
                       std::strerror(errno));
        return false;
    }
    return true;
}

Journal::~Journal()
{
    if (_fd >= 0)
        ::close(_fd);
}

void
Journal::clearInterrupted(const std::string &id)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _interrupted.erase(
        std::remove_if(_interrupted.begin(), _interrupted.end(),
                       [&](const InterruptedJob &j) {
                           return j.id == id;
                       }),
        _interrupted.end());
}

void
Journal::append(const std::string &line)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_fd < 0)
        return;
    size_t off = 0;
    while (off < line.size()) {
        ssize_t n =
            ::write(_fd, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return;  // a failing journal must not take jobs down
        }
        off += static_cast<size_t>(n);
    }
    ::fsync(_fd);
}

void
Journal::logStart(const std::string &id, const std::string &tenant)
{
    Json rec = Json::object();
    rec.set("event", Json::string("start"));
    rec.set("job", Json::string(id));
    if (!tenant.empty())
        rec.set("tenant", Json::string(tenant));
    append(rec.dump() + "\n");
}

void
Journal::logDone(const std::string &id, const std::string &status)
{
    Json rec = Json::object();
    rec.set("event", Json::string("done"));
    rec.set("job", Json::string(id));
    rec.set("status", Json::string(status));
    append(rec.dump() + "\n");
}

} // namespace rtlrepair::service
