#include "service/client.hpp"

#include <chrono>
#include <cstdio>
#include <thread>
#include <unistd.h>

#include "service/cache.hpp"
#include "service/json.hpp"
#include "util/strings.hpp"

namespace rtlrepair::service {

namespace {

constexpr int kPollMs = 200;

/** splitmix64: tiny, seedable, good enough for backoff jitter. */
uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Client::Client(ClientConfig config) : _config(std::move(config))
{
    _rng = _config.jitter_seed != 0
               ? _config.jitter_seed
               : 0x2545f4914f6cdd1dull ^ uint64_t(::getpid());
    if (_config.max_attempts < 1)
        _config.max_attempts = 1;
}

Client::~Client() = default;

void
Client::close()
{
    _reader.reset();
    _fd = Fd();
}

uint64_t
Client::nextRand()
{
    return splitmix64(_rng);
}

int
Client::backoffMs(int attempt)
{
    int64_t backoff = _config.initial_backoff_ms;
    for (int i = 0; i < attempt && backoff < _config.max_backoff_ms;
         ++i)
        backoff *= 2;
    if (backoff > _config.max_backoff_ms)
        backoff = _config.max_backoff_ms;
    // Full jitter on the upper half: [backoff/2, backoff].
    int64_t half = backoff / 2;
    return int(half + (half > 0 ? int64_t(nextRand() % uint64_t(half + 1))
                                : 0));
}

bool
Client::connect(std::string &error, const CancelToken *cancel)
{
    close();
    for (int attempt = 0; attempt < _config.max_attempts; ++attempt) {
        if (cancel && cancel->cancelled()) {
            error = "cancelled";
            return false;
        }
        if (attempt > 0) {
            int sleep_ms = backoffMs(attempt - 1);
            // Sleep in slices so Ctrl-C is honoured promptly.
            while (sleep_ms > 0) {
                if (cancel && cancel->cancelled()) {
                    error = "cancelled";
                    return false;
                }
                int slice = sleep_ms < kPollMs ? sleep_ms : kPollMs;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(slice));
                sleep_ms -= slice;
            }
        }
        Fd fd = connectTo(_config.address, error);
        if (fd.valid()) {
            _fd = std::move(fd);
            _reader = std::make_unique<LineReader>(_fd.get());
            return true;
        }
    }
    error = format("cannot connect to %s after %d attempts: %s",
                   _config.address.c_str(), _config.max_attempts,
                   error.c_str());
    return false;
}

bool
Client::sendLine(const std::string &line)
{
    if (!_fd.valid())
        return false;
    if (!writeAll(_fd, line)) {
        close();
        return false;
    }
    return true;
}

LineReader::Io
Client::readLine(std::string &line, int timeout_ms)
{
    if (!_reader)
        return LineReader::Io::Error;
    return _reader->readLine(line, timeout_ms);
}

int
Client::runJob(const JobRequest &request, JobResult &result,
               const CancelToken *cancel)
{
    JobRequest req = request;
    if (req.id.empty())
        req.id = format("job-%016llx",
                        (unsigned long long)jobDigest(req.design,
                                                      req.trace));
    result = JobResult{};

    if (!sendLine(submitLine(req))) {
        result.detail = "connection lost before submit";
        return kExitInternal;
    }

    bool cancel_sent = false;
    std::string line;
    while (true) {
        if (cancel && cancel->cancelled() && !cancel_sent) {
            // Forward the signal as an explicit cancel; the daemon
            // flushes the partial result as status "cancelled".
            Json msg = Json::object();
            msg.set("v", Json::number(kProtocolVersion));
            msg.set("type", Json::string("cancel"));
            msg.set("id", Json::string(req.id));
            sendLine(msg.dump() + "\n");
            cancel_sent = true;
        }

        LineReader::Io io = readLine(line, kPollMs);
        if (io == LineReader::Io::Again)
            continue;
        if (io != LineReader::Io::Line) {
            // Connection lost mid-job: reconnect with backoff and
            // re-query the idempotent id.
            std::string error;
            if (!connect(error, cancel)) {
                result.detail = error;
                return cancel_sent ? kExitTimeout : kExitInternal;
            }
            Json query = Json::object();
            query.set("v", Json::number(kProtocolVersion));
            query.set("type", Json::string("query"));
            query.set("id", Json::string(req.id));
            if (!sendLine(query.dump() + "\n"))
                continue;  // lost again; reconnect on next read
            continue;
        }

        Json msg;
        std::string parse_error;
        if (!Json::parse(line, msg, &parse_error))
            continue;  // tolerate garbage; the result line matters
        std::string type = msg.str("type");
        std::string id = msg.str("id");
        if (!id.empty() && id != req.id)
            continue;  // other job multiplexed on this connection

        if (type == "accepted") {
            continue;
        } else if (type == "rejected") {
            result.status = "rejected";
            result.detail = msg.str("reason");
            result.exit_code = kExitRejected;
            return result.exit_code;
        } else if (type == "stage") {
            if (req.want_stages)
                std::printf("stage %-12s %-8s %6.2fs%s\n",
                            msg.str("stage").c_str(),
                            msg.str("status").c_str(),
                            msg.num("seconds", 0.0),
                            msg.find("rss_kb")
                                ? format(" rss=%.0fkB",
                                         msg.num("rss_kb", 0.0))
                                      .c_str()
                                : " rss=?");
            continue;
        } else if (type == "result") {
            result.status = msg.str("status");
            result.exit_code =
                int(msg.num("exit_code", kExitInternal));
            result.detail = msg.str("detail");
            result.repaired = msg.str("repaired");
            result.cache = msg.str("cache");
            return result.exit_code;
        } else if (type == "job") {
            continue;  // still active after reconnect; keep waiting
        } else if (type == "error") {
            // After a reconnect, "unknown job" means the daemon was
            // itself restarted and lost the job: ask recover.
            if (msg.str("message").find("unknown job") !=
                std::string::npos) {
                Json recover = Json::object();
                recover.set("v", Json::number(kProtocolVersion));
                recover.set("type", Json::string("recover"));
                sendLine(recover.dump() + "\n");
                continue;
            }
            result.status = "error";
            result.detail = msg.str("message");
            result.exit_code = kExitInternal;
            return result.exit_code;
        } else if (type == "recovered") {
            const Json *jobs = msg.find("jobs");
            bool interrupted = false;
            if (jobs)
                for (const Json &lost : jobs->items())
                    interrupted |= lost.str("id") == req.id;
            if (interrupted) {
                result.status = "interrupted";
                result.interrupted = true;
                result.detail =
                    "daemon restarted with the job in flight";
                result.exit_code = kExitTimeout;
                return result.exit_code;
            }
            // Unknown to the daemon and not interrupted: it never saw
            // the submit (crashed between connect and journal).
            result.status = "error";
            result.detail = "job lost before admission";
            result.exit_code = kExitInternal;
            return result.exit_code;
        }
        // Unknown response types are skipped (forward compatibility).
    }
}

} // namespace rtlrepair::service
