/**
 * @file
 * The repaird wire protocol: newline-delimited JSON (NDJSON),
 * version 1.
 *
 * Every line is one JSON object with a `"v": 1` version field and a
 * `"type"` discriminator.  Client -> server lines are requests
 * (submit / cancel / query / recover / stats / ping); server ->
 * client lines are responses and per-job event streams.  Responses
 * that belong to a job carry its `"id"`; a client multiplexing jobs
 * over one connection demultiplexes on that field.
 *
 * Request types:
 *   submit   {id?, tenant?, priority?, design, trace, timeout?,
 *             jobs?, zero_x?, incremental?, report?}
 *   cancel   {id}
 *   query    {id}           — state of a queued/running/recent job
 *   recover  {}             — jobs interrupted by a daemon crash
 *   stats    {}             — queue/cache/counter snapshot
 *   ping     {}
 *
 * Response types:
 *   accepted    {id, queue_depth}
 *   rejected    {id, reason}      — admission control verdicts:
 *               "overloaded" (queue full), "tenant-busy" (per-tenant
 *               cap), "duplicate" (id already in flight),
 *               "shutting-down", "bad-request" (malformed submit)
 *   stage       {id, stage, status, seconds, rss_kb|rss:"unknown",
 *                retries?, diagnostic?}
 *   result      {id, status, exit_code, changes, template, seconds,
 *                cache, degraded, cancelled, detail, repaired?}
 *   error       {message, id?}   — protocol-level failure (bad JSON,
 *               unknown type, injected decode fault); the connection
 *               survives
 *   pong / stats / recovered / cancelled — mirrors of their requests
 *
 * An interrupted job (daemon died with the job in flight, discovered
 * through the journal on restart) is reported by `recover` as
 * status "interrupted" with the exit code of a timeout, the closest
 * honest mapping: work was started and never finished.
 */
#ifndef RTLREPAIR_SERVICE_PROTOCOL_HPP
#define RTLREPAIR_SERVICE_PROTOCOL_HPP

#include <cstdint>
#include <optional>
#include <string>

#include "repair/driver.hpp"
#include "service/json.hpp"

namespace rtlrepair::service {

/** Protocol version spoken by this build. */
constexpr int kProtocolVersion = 1;

/** Stable CLI/service exit codes (documented in repair_cli). */
constexpr int kExitRepaired = 0;
constexpr int kExitNoRepair = 2;
constexpr int kExitTimeout = 3;
constexpr int kExitBadInput = 4;
constexpr int kExitInternal = 5;

/** Map a repair outcome to the stable exit code. */
int exitCodeFor(repair::RepairOutcome::Status status);

/** Wire name of a repair outcome ("repaired", "no-repair", ...). */
const char *statusWireName(repair::RepairOutcome::Status status);

/** One parsed submit request. */
struct JobRequest
{
    std::string id;       ///< idempotent job id (client-chosen)
    std::string tenant;   ///< admission-control bucket ("" = default)
    int priority = 0;     ///< higher runs first within the queue
    std::string design;   ///< Verilog source text
    std::string trace;    ///< I/O trace CSV text
    double timeout_seconds = 0.0;  ///< 0 = server default
    unsigned jobs = 1;    ///< worker threads inside the repair
    bool zero_x = false;
    bool incremental = true;
    bool want_stages = false;  ///< stream per-stage reports
};

/** Parse a submit object into @p out; false + error on bad fields. */
bool parseSubmit(const Json &msg, JobRequest &out, std::string &error);

/** Serialize @p req as a submit line (the client side). */
std::string submitLine(const JobRequest &req);

/** @name Server response lines (each includes v/type/trailing \n). */
///@{
std::string acceptedLine(const std::string &id, size_t queue_depth);
std::string rejectedLine(const std::string &id,
                         const std::string &reason);
std::string errorLine(const std::string &message,
                      const std::string &id = "");
std::string stageLine(const std::string &id,
                      const repair::StageReport &report);
std::string pongLine();

/**
 * Result line for a finished job.  @p repaired_source is the patched
 * design when status==Repaired; @p cache is "hit", "miss" or "off".
 */
std::string resultLine(const std::string &id,
                       const repair::RepairOutcome &outcome,
                       const std::string &repaired_source,
                       const std::string &cache);

/** Result line for a job that never produced an outcome. */
std::string failureResultLine(const std::string &id,
                              const std::string &status, int exit_code,
                              const std::string &detail);
///@}

/**
 * Validate the protocol envelope of a parsed line: object, `v` == 1
 * (or absent — tolerated for hand-written test traffic), `type`
 * present.  Returns the type, or nullopt with @p error filled.
 */
std::optional<std::string> messageType(const Json &msg,
                                       std::string &error);

} // namespace rtlrepair::service

#endif // RTLREPAIR_SERVICE_PROTOCOL_HPP
