/**
 * @file
 * Thin client for the repaird daemon — the library behind
 * `repair_cli --connect`.
 *
 * Connection management is where the robustness lives:
 *   - connect() retries with exponential backoff and jitter (so a
 *     fleet of clients restarting against one daemon does not
 *     thundering-herd it);
 *   - a connection lost mid-job reconnects the same way and then
 *     re-queries the job id — ids are idempotent handles, so the
 *     result is replayed from the daemon's recent-results ring if it
 *     completed while we were gone;
 *   - if the daemon itself was restarted and lost the job, the
 *     recover request reports it as interrupted rather than hanging
 *     the client forever.
 *
 * runJob() drives one submission end to end and maps the result to
 * the stable repair_cli exit codes (plus kExitRejected for admission
 * refusals, which are not job outcomes).
 */
#ifndef RTLREPAIR_SERVICE_CLIENT_HPP
#define RTLREPAIR_SERVICE_CLIENT_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "service/protocol.hpp"
#include "service/socket.hpp"
#include "util/stopwatch.hpp"

namespace rtlrepair::service {

/** Admission rejection ("overloaded", "tenant-busy", ...) — distinct
 *  from every job outcome so scripts can retry later. */
constexpr int kExitRejected = 6;

struct ClientConfig
{
    /** Daemon address: Unix path (contains '/') or host:port. */
    std::string address;
    /** Connection attempts before giving up (>= 1). */
    int max_attempts = 5;
    /** First retry delay; doubles per attempt up to the cap. */
    int initial_backoff_ms = 100;
    int max_backoff_ms = 2000;
    /** Jitter PRNG seed; 0 derives one from the pid so concurrent
     *  clients spread out. */
    uint64_t jitter_seed = 0;
};

/** What one runJob() produced, beyond the exit code. */
struct JobResult
{
    std::string status;    ///< wire status ("repaired", ...)
    int exit_code = kExitInternal;
    std::string detail;
    std::string repaired;  ///< patched source when repaired
    std::string cache;     ///< "hit" / "miss" / "off"
    bool interrupted = false;  ///< daemon lost the job (crash)
};

class Client
{
  public:
    explicit Client(ClientConfig config);
    ~Client();

    /** Connect with retry + backoff; false + @p error when every
     *  attempt failed or @p cancel tripped. */
    bool connect(std::string &error,
                 const CancelToken *cancel = nullptr);

    bool connected() const { return _fd.valid(); }
    void close();

    /** One raw protocol line out (false = connection lost). */
    bool sendLine(const std::string &line);

    /** Next server line (without '\n'); polls so @p cancel can be
     *  checked between slices. */
    LineReader::Io readLine(std::string &line, int timeout_ms);

    /**
     * Drive @p req to completion: submit, stream stage lines to
     * stdout (when req.want_stages), survive reconnects, honour
     * @p cancel by sending a cancel request and waiting for the
     * flushed partial result.  Fills @p result and returns its exit
     * code.
     */
    int runJob(const JobRequest &req, JobResult &result,
               const CancelToken *cancel = nullptr);

  private:
    /** Backoff with jitter for attempt @p attempt (0-based). */
    int backoffMs(int attempt);
    uint64_t nextRand();

    ClientConfig _config;
    Fd _fd;
    std::unique_ptr<LineReader> _reader;
    uint64_t _rng;
};

} // namespace rtlrepair::service

#endif // RTLREPAIR_SERVICE_CLIENT_HPP
