#include "smt/bitblast.hpp"

#include "util/logging.hpp"

namespace rtlrepair::smt {

using ir::Node;
using ir::NodeKind;
using ir::NodeRef;

Word
wordOfValue(const bv::Value &value)
{
    Word out(value.width());
    for (uint32_t i = 0; i < value.width(); ++i) {
        // X bits read as zero in the 2-state circuit.
        out[i] = value.bit(i) == 1 ? kAigTrue : kAigFalse;
    }
    return out;
}

Word
freshWord(Aig &aig, uint32_t width)
{
    Word out(width);
    for (uint32_t i = 0; i < width; ++i)
        out[i] = aig.newVar();
    return out;
}

CycleWords
blastCycle(Aig &aig, const ir::TransitionSystem &sys,
           const CycleBindings &bindings)
{
    check(bindings.states.size() == sys.states.size(),
          "state binding count mismatch");
    check(bindings.inputs.size() == sys.inputs.size(),
          "input binding count mismatch");
    check(bindings.synth.size() == sys.synth_vars.size(),
          "synth binding count mismatch");

    CycleWords result;
    result.node_bits.resize(sys.nodes.size());

    for (NodeRef ref = 0; ref < sys.nodes.size(); ++ref) {
        const Node &n = sys.nodes[ref];
        auto arg = [&](int i) -> const Word & {
            return result.node_bits[n.args[i]];
        };
        Word &out = result.node_bits[ref];
        switch (n.kind) {
          case NodeKind::Const:
            out = wordOfValue(sys.consts[n.index]);
            break;
          case NodeKind::Input:
            out = bindings.inputs[n.index];
            break;
          case NodeKind::SynthVar:
            out = bindings.synth[n.index];
            break;
          case NodeKind::State:
            out = bindings.states[n.index];
            break;
          case NodeKind::Not:
            out = wordNot(aig, arg(0));
            break;
          case NodeKind::Neg:
            out = wordNeg(aig, arg(0));
            break;
          case NodeKind::RedAnd:
            out = Word{wordRedAnd(aig, arg(0))};
            break;
          case NodeKind::RedOr:
            out = Word{wordRedOr(aig, arg(0))};
            break;
          case NodeKind::RedXor:
            out = Word{wordRedXor(aig, arg(0))};
            break;
          case NodeKind::And:
            out = wordAnd(aig, arg(0), arg(1));
            break;
          case NodeKind::Or:
            out = wordOr(aig, arg(0), arg(1));
            break;
          case NodeKind::Xor:
            out = wordXor(aig, arg(0), arg(1));
            break;
          case NodeKind::Add:
            out = wordAdd(aig, arg(0), arg(1));
            break;
          case NodeKind::Sub:
            out = wordSub(aig, arg(0), arg(1));
            break;
          case NodeKind::Mul:
            out = wordMul(aig, arg(0), arg(1));
            break;
          case NodeKind::UDiv:
            out = wordUDiv(aig, arg(0), arg(1));
            break;
          case NodeKind::URem:
            out = wordURem(aig, arg(0), arg(1));
            break;
          case NodeKind::Shl:
            out = wordShl(aig, arg(0), arg(1));
            break;
          case NodeKind::LShr:
            out = wordLShr(aig, arg(0), arg(1));
            break;
          case NodeKind::AShr:
            out = wordAShr(aig, arg(0), arg(1));
            break;
          case NodeKind::Eq:
            out = Word{wordEq(aig, arg(0), arg(1))};
            break;
          case NodeKind::Ult:
            out = Word{wordULt(aig, arg(0), arg(1))};
            break;
          case NodeKind::Ule:
            out = Word{wordULe(aig, arg(0), arg(1))};
            break;
          case NodeKind::Slt:
            out = Word{wordSLt(aig, arg(0), arg(1))};
            break;
          case NodeKind::Sle:
            out = Word{wordSLe(aig, arg(0), arg(1))};
            break;
          case NodeKind::Concat: {
            const Word &high = arg(0);
            const Word &low = arg(1);
            out = low;
            out.insert(out.end(), high.begin(), high.end());
            break;
          }
          case NodeKind::Slice: {
            const Word &base = arg(0);
            out.assign(base.begin() + n.b, base.begin() + n.a + 1);
            break;
          }
          case NodeKind::Ite:
            out = wordMux(aig, arg(0)[0], arg(1), arg(2));
            break;
          case NodeKind::ZExt: {
            out = arg(0);
            out.resize(n.width, kAigFalse);
            break;
          }
          case NodeKind::SExt: {
            out = arg(0);
            AigLit msb = out.back();
            out.resize(n.width, msb);
            break;
          }
        }
        check(out.size() == n.width, "blast width mismatch");
    }

    for (const auto &st : sys.states)
        result.next_states.push_back(result.node_bits[st.next]);
    for (const auto &o : sys.outputs)
        result.outputs.push_back(result.node_bits[o.ref]);
    return result;
}

} // namespace rtlrepair::smt
