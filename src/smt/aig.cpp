#include "smt/aig.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace rtlrepair::smt {

Aig::Aig()
{
    // Node 0: the constant (lit 0 = false, lit 1 = true).
    _nodes.push_back(Node{kVarMark, 0});
}

AigLit
Aig::newVar()
{
    uint32_t n = static_cast<uint32_t>(_nodes.size());
    _nodes.push_back(Node{kVarMark, 1});
    return n << 1;
}

bool
Aig::isVar(uint32_t n) const
{
    return n != 0 && _nodes[n].a == kVarMark;
}

bool
Aig::isAnd(uint32_t n) const
{
    return n != 0 && _nodes[n].a != kVarMark;
}

AigLit
Aig::andOf(AigLit a, AigLit b)
{
    // Local simplifications.
    if (a == kAigFalse || b == kAigFalse)
        return kAigFalse;
    if (a == kAigTrue)
        return b;
    if (b == kAigTrue)
        return a;
    if (a == b)
        return a;
    if (a == aigNot(b))
        return kAigFalse;

    if (a > b)
        std::swap(a, b);
    uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
    auto &bucket = _hash[key];
    for (uint32_t n : bucket) {
        if (_nodes[n].a == a && _nodes[n].b == b)
            return n << 1;
    }
    uint32_t n = static_cast<uint32_t>(_nodes.size());
    _nodes.push_back(Node{a, b});
    bucket.push_back(n);
    return n << 1;
}

AigLit
Aig::xorOf(AigLit a, AigLit b)
{
    // a ^ b = ~(~( a & ~b ) & ~( ~a & b ))
    return aigNot(andOf(aigNot(andOf(a, aigNot(b))),
                        aigNot(andOf(aigNot(a), b))));
}

AigLit
Aig::mux(AigLit cond, AigLit then_l, AigLit else_l)
{
    if (cond == kAigTrue)
        return then_l;
    if (cond == kAigFalse)
        return else_l;
    if (then_l == else_l)
        return then_l;
    return aigNot(andOf(aigNot(andOf(cond, then_l)),
                        aigNot(andOf(aigNot(cond), else_l))));
}

// ---------------------------------------------------------------------
// Word-level operators
// ---------------------------------------------------------------------

Word
wordConst(uint64_t value, uint32_t width)
{
    Word w(width, kAigFalse);
    for (uint32_t i = 0; i < width && i < 64; ++i) {
        if ((value >> i) & 1u)
            w[i] = kAigTrue;
    }
    return w;
}

Word
wordNot(Aig &, const Word &a)
{
    Word out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = aigNot(a[i]);
    return out;
}

Word
wordAnd(Aig &aig, const Word &a, const Word &b)
{
    check(a.size() == b.size(), "wordAnd width mismatch");
    Word out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = aig.andOf(a[i], b[i]);
    return out;
}

Word
wordOr(Aig &aig, const Word &a, const Word &b)
{
    check(a.size() == b.size(), "wordOr width mismatch");
    Word out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = aig.orOf(a[i], b[i]);
    return out;
}

Word
wordXor(Aig &aig, const Word &a, const Word &b)
{
    check(a.size() == b.size(), "wordXor width mismatch");
    Word out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = aig.xorOf(a[i], b[i]);
    return out;
}

namespace {

/** Full adder; returns sum, updates carry. */
AigLit
fullAdder(Aig &aig, AigLit a, AigLit b, AigLit &carry)
{
    AigLit sum = aig.xorOf(aig.xorOf(a, b), carry);
    carry = aig.orOf(aig.andOf(a, b),
                     aig.andOf(carry, aig.orOf(a, b)));
    return sum;
}

} // namespace

Word
wordAdd(Aig &aig, const Word &a, const Word &b)
{
    check(a.size() == b.size(), "wordAdd width mismatch");
    Word out(a.size());
    AigLit carry = kAigFalse;
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = fullAdder(aig, a[i], b[i], carry);
    return out;
}

Word
wordSub(Aig &aig, const Word &a, const Word &b)
{
    check(a.size() == b.size(), "wordSub width mismatch");
    // a - b = a + ~b + 1
    Word out(a.size());
    AigLit carry = kAigTrue;
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = fullAdder(aig, a[i], aigNot(b[i]), carry);
    return out;
}

Word
wordNeg(Aig &aig, const Word &a)
{
    Word zero = wordConst(0, static_cast<uint32_t>(a.size()));
    return wordSub(aig, zero, a);
}

Word
wordMul(Aig &aig, const Word &a, const Word &b)
{
    size_t w = a.size();
    check(w == b.size(), "wordMul width mismatch");
    Word acc = wordConst(0, static_cast<uint32_t>(w));
    for (size_t i = 0; i < w; ++i) {
        // acc += (a & {w{b[i]}}) << i
        Word partial(w, kAigFalse);
        for (size_t j = 0; i + j < w; ++j)
            partial[i + j] = aig.andOf(a[j], b[i]);
        acc = wordAdd(aig, acc, partial);
    }
    return acc;
}

namespace {

/** Shared restoring division; returns {quotient, remainder}. */
std::pair<Word, Word>
divRem(Aig &aig, const Word &a, const Word &b)
{
    size_t w = a.size();
    Word quotient(w, kAigFalse);
    Word remainder = wordConst(0, static_cast<uint32_t>(w));
    for (size_t i = w; i-- > 0;) {
        // remainder = (remainder << 1) | a[i]
        Word shifted(w, kAigFalse);
        for (size_t j = 1; j < w; ++j)
            shifted[j] = remainder[j - 1];
        shifted[0] = a[i];
        AigLit ge = wordULe(aig, b, shifted);
        Word diff = wordSub(aig, shifted, b);
        remainder = wordMux(aig, ge, diff, shifted);
        quotient[i] = ge;
    }
    return {quotient, remainder};
}

} // namespace

Word
wordUDiv(Aig &aig, const Word &a, const Word &b)
{
    auto [q, r] = divRem(aig, a, b);
    (void)r;
    // Division by zero: Verilog yields X; the 2-state circuit reads
    // all-ones (matching common synthesis results for a restoring
    // divider).  Our divider naturally produces all-ones for b == 0.
    return q;
}

Word
wordURem(Aig &aig, const Word &a, const Word &b)
{
    auto [q, r] = divRem(aig, a, b);
    (void)q;
    return r;
}

namespace {

Word
shiftVar(Aig &aig, const Word &a, const Word &amount, bool left,
         AigLit fill)
{
    size_t w = a.size();
    Word cur = a;
    // Barrel shifter over the log2 bits of the amount that matter.
    uint32_t stages = 0;
    while ((1ull << stages) < w)
        ++stages;
    for (uint32_t s = 0; s < stages && s < amount.size(); ++s) {
        size_t dist = 1ull << s;
        Word shifted(w, fill);
        for (size_t i = 0; i < w; ++i) {
            if (left) {
                if (i >= dist)
                    shifted[i] = cur[i - dist];
            } else {
                if (i + dist < w)
                    shifted[i] = cur[i + dist];
            }
        }
        Word next(w);
        for (size_t i = 0; i < w; ++i)
            next[i] = aig.mux(amount[s], shifted[i], cur[i]);
        cur = std::move(next);
    }
    // If any higher amount bit is set, the result is all fill bits.
    AigLit overflow = kAigFalse;
    for (size_t s = stages; s < amount.size(); ++s)
        overflow = aig.orOf(overflow, amount[s]);
    // Shifting by >= w within the covered bits: amount == w..2^stages-1
    // is already handled by the stages when w is a power of two; to be
    // exact for non-powers of two, also saturate when amount >= w.
    Word width_const =
        wordConst(w, static_cast<uint32_t>(amount.size()));
    AigLit too_big = wordULe(aig, width_const, amount);
    overflow = aig.orOf(overflow, too_big);
    Word out(w);
    for (size_t i = 0; i < w; ++i)
        out[i] = aig.mux(overflow, fill, cur[i]);
    return out;
}

} // namespace

Word
wordShl(Aig &aig, const Word &a, const Word &amount)
{
    return shiftVar(aig, a, amount, true, kAigFalse);
}

Word
wordLShr(Aig &aig, const Word &a, const Word &amount)
{
    return shiftVar(aig, a, amount, false, kAigFalse);
}

Word
wordAShr(Aig &aig, const Word &a, const Word &amount)
{
    return shiftVar(aig, a, amount, false, a.back());
}

AigLit
wordEq(Aig &aig, const Word &a, const Word &b)
{
    check(a.size() == b.size(), "wordEq width mismatch");
    AigLit eq = kAigTrue;
    for (size_t i = 0; i < a.size(); ++i)
        eq = aig.andOf(eq, aigNot(aig.xorOf(a[i], b[i])));
    return eq;
}

AigLit
wordULt(Aig &aig, const Word &a, const Word &b)
{
    check(a.size() == b.size(), "wordULt width mismatch");
    // Ripple comparator from LSB: lt_i = (~a & b) | (a==b) & lt_{i-1}
    AigLit lt = kAigFalse;
    for (size_t i = 0; i < a.size(); ++i) {
        AigLit bit_lt = aig.andOf(aigNot(a[i]), b[i]);
        AigLit bit_eq = aigNot(aig.xorOf(a[i], b[i]));
        lt = aig.orOf(bit_lt, aig.andOf(bit_eq, lt));
    }
    return lt;
}

AigLit
wordULe(Aig &aig, const Word &a, const Word &b)
{
    return aigNot(wordULt(aig, b, a));
}

AigLit
wordSLt(Aig &aig, const Word &a, const Word &b)
{
    AigLit sa = a.back();
    AigLit sb = b.back();
    AigLit diff_sign = aig.xorOf(sa, sb);
    AigLit ult = wordULt(aig, a, b);
    // Different signs: a < b iff a is negative.
    return aig.mux(diff_sign, sa, ult);
}

AigLit
wordSLe(Aig &aig, const Word &a, const Word &b)
{
    return aigNot(wordSLt(aig, b, a));
}

AigLit
wordRedAnd(Aig &aig, const Word &a)
{
    AigLit acc = kAigTrue;
    for (AigLit l : a)
        acc = aig.andOf(acc, l);
    return acc;
}

AigLit
wordRedOr(Aig &aig, const Word &a)
{
    AigLit acc = kAigFalse;
    for (AigLit l : a)
        acc = aig.orOf(acc, l);
    return acc;
}

AigLit
wordRedXor(Aig &aig, const Word &a)
{
    AigLit acc = kAigFalse;
    for (AigLit l : a)
        acc = aig.xorOf(acc, l);
    return acc;
}

Word
wordMux(Aig &aig, AigLit cond, const Word &t, const Word &e)
{
    check(t.size() == e.size(), "wordMux width mismatch");
    Word out(t.size());
    for (size_t i = 0; i < t.size(); ++i)
        out[i] = aig.mux(cond, t[i], e[i]);
    return out;
}

} // namespace rtlrepair::smt
