#include "smt/bv_solver.hpp"

#include <algorithm>
#include <map>

#include "util/logging.hpp"

namespace rtlrepair::smt {

using sat::LBool;
using sat::Lit;
using sat::mkLit;
using sat::Var;

Var
BvSolver::varOfNode(uint32_t node)
{
    if (_node_var.size() < _aig.numNodes())
        _node_var.resize(_aig.numNodes(), -1);
    if (_node_var[node] >= 0)
        return _node_var[node];

    // Iterative DFS to encode the AND cone below this node.
    std::vector<uint32_t> stack{node};
    while (!stack.empty()) {
        uint32_t cur = stack.back();
        if (_node_var[cur] >= 0) {
            stack.pop_back();
            continue;
        }
        if (cur == 0) {
            // Node 0 is the constant FALSE (kAigFalse is the plain
            // literal, kAigTrue its complement); force its SAT var
            // accordingly so satLitOf() maps constants faithfully.
            Var v = _sat.newVar();
            _sat.addClause(mkLit(v, true));
            _node_var[cur] = v;
            stack.pop_back();
            continue;
        }
        if (_aig.isVar(cur)) {
            _node_var[cur] = _sat.newVar();
            stack.pop_back();
            continue;
        }
        AigLit a = _aig.fanin0(cur);
        AigLit b = _aig.fanin1(cur);
        bool ready = true;
        if (_node_var[aigNode(a)] < 0) {
            stack.push_back(aigNode(a));
            ready = false;
        }
        if (_node_var[aigNode(b)] < 0) {
            stack.push_back(aigNode(b));
            ready = false;
        }
        if (!ready)
            continue;
        Var v = _sat.newVar();
        Lit la = mkLit(_node_var[aigNode(a)], aigCompl(a));
        Lit lb = mkLit(_node_var[aigNode(b)], aigCompl(b));
        Lit lv = mkLit(v);
        // v <-> a & b
        _sat.addClause(~lv, la);
        _sat.addClause(~lv, lb);
        _sat.addClause(lv, ~la, ~lb);
        _node_var[cur] = v;
        stack.pop_back();
    }
    return _node_var[node];
}

Lit
BvSolver::satLitOf(AigLit lit)
{
    // Constants work too: node 0's SAT var is forced false, so the
    // plain literal (kAigFalse) maps to False and the complemented
    // one (kAigTrue) to True.
    Var v = varOfNode(aigNode(lit));
    return mkLit(v, aigCompl(lit) != 0);
}

void
BvSolver::assertLit(AigLit lit)
{
    if (lit == kAigTrue)
        return;
    if (lit == kAigFalse) {
        // Assert false: make the instance UNSAT.
        Var v = _sat.newVar();
        _sat.addClause(mkLit(v));
        _sat.addClause(mkLit(v, true));
        return;
    }
    _sat.addClause(satLitOf(lit));
}

void
BvSolver::assertWordEquals(const Word &word, const bv::Value &value)
{
    // Width mismatches occur when a bug changes a port width (e.g.
    // the mux_k1 benchmark); compare zero-extended like a testbench
    // comparison against a wider vector would.
    bv::Value expected = value;
    if (expected.width() < word.size())
        expected = expected.zext(static_cast<uint32_t>(word.size()));
    for (uint32_t i = 0; i < expected.width(); ++i) {
        int bit = expected.bit(i);
        if (bit < 0)
            continue; // unknown bits are not constrained
        AigLit lit = i < word.size() ? word[i] : kAigFalse;
        assertLit(bit == 1 ? lit : aigNot(lit));
    }
}

sat::Lit
BvSolver::newActivationLit()
{
    return mkLit(_sat.newVar());
}

void
BvSolver::assertLitIf(Lit act, AigLit lit)
{
    if (lit == kAigTrue)
        return;
    if (lit == kAigFalse) {
        _sat.addClause(~act);
        return;
    }
    _sat.addClause(~act, satLitOf(lit));
}

void
BvSolver::assertWordEqualsIf(Lit act, const Word &word,
                             const bv::Value &value)
{
    bv::Value expected = value;
    if (expected.width() < word.size())
        expected = expected.zext(static_cast<uint32_t>(word.size()));
    for (uint32_t i = 0; i < expected.width(); ++i) {
        int bit = expected.bit(i);
        if (bit < 0)
            continue; // unknown bits are not constrained
        AigLit lit = i < word.size() ? word[i] : kAigFalse;
        assertLitIf(act, bit == 1 ? lit : aigNot(lit));
    }
}

void
BvSolver::assertWordsEqual(const Word &a, const Word &b)
{
    size_t width = std::max(a.size(), b.size());
    for (size_t i = 0; i < width; ++i) {
        AigLit la = i < a.size() ? a[i] : kAigFalse;
        AigLit lb = i < b.size() ? b[i] : kAigFalse;
        if (la == lb)
            continue;
        Lit sa = satLitOf(la);
        Lit sb = satLitOf(lb);
        _sat.addClause(~sa, sb);
        _sat.addClause(sa, ~sb);
    }
}

Result
BvSolver::solve(const std::vector<AigLit> &assumptions,
                const Deadline *deadline)
{
    std::vector<Lit> assumps;
    assumps.reserve(assumptions.size());
    for (AigLit l : assumptions) {
        if (l == kAigTrue)
            continue;
        if (l == kAigFalse)
            return Result::Unsat;
        assumps.push_back(satLitOf(l));
    }
    LBool result = _sat.solve(assumps, deadline);
    switch (result) {
      case LBool::True: return Result::Sat;
      case LBool::False: return Result::Unsat;
      case LBool::Undef: return Result::Timeout;
    }
    return Result::Timeout;
}

bool
BvSolver::modelValue(AigLit lit)
{
    // Nodes that were Tseitin-encoded take their value from the SAT
    // model; unencoded and-gates are *evaluated* through the AIG from
    // their fanins (they are fully determined by the model), and
    // unencoded variables are unconstrained — any value works, we
    // pick false.
    std::vector<uint32_t> stack{aigNode(lit)};
    std::map<uint32_t, bool> cache;
    auto known = [&](uint32_t node, bool &value) {
        if (node == 0) {
            value = false;
            return true;
        }
        if (node < _node_var.size() && _node_var[node] >= 0) {
            value = _sat.modelValue(_node_var[node]);
            return true;
        }
        auto it = cache.find(node);
        if (it != cache.end()) {
            value = it->second;
            return true;
        }
        if (_aig.isVar(node)) {
            value = false;  // unconstrained free variable
            return true;
        }
        return false;
    };
    auto litValue = [&](AigLit l, bool &value) {
        bool v;
        if (!known(aigNode(l), v))
            return false;
        value = aigCompl(l) ? !v : v;
        return true;
    };
    while (!stack.empty()) {
        uint32_t node = stack.back();
        bool ignored;
        if (known(node, ignored)) {
            stack.pop_back();
            continue;
        }
        AigLit a = _aig.fanin0(node);
        AigLit b = _aig.fanin1(node);
        bool va, vb;
        bool have_a = litValue(a, va);
        bool have_b = litValue(b, vb);
        if (have_a && have_b) {
            cache[node] = va && vb;
            stack.pop_back();
            continue;
        }
        if (!have_a)
            stack.push_back(aigNode(a));
        if (!have_b)
            stack.push_back(aigNode(b));
    }
    bool result;
    check(litValue(lit, result), "AIG model evaluation failed");
    return result;
}

bv::Value
BvSolver::modelWord(const Word &word)
{
    bv::Value out =
        bv::Value::zeros(static_cast<uint32_t>(word.size()));
    for (size_t i = 0; i < word.size(); ++i) {
        out.setBit(static_cast<uint32_t>(i),
                   modelValue(word[i]) ? 1 : 0);
    }
    return out;
}

// ---------------------------------------------------------------------
// Totalizer
// ---------------------------------------------------------------------

Totalizer::Totalizer(BvSolver &solver,
                     const std::vector<AigLit> &inputs)
    : _solver(&solver), _sat(&solver.satCore())
{
    // A SAT literal that is always true (for out-of-range queries).
    Var tv = _sat->newVar();
    _sat->addClause(mkLit(tv));
    _true_lit = mkLit(tv);

    // Leaves: one singleton list per input.
    std::vector<std::vector<Lit>> layer;
    for (AigLit in : inputs)
        layer.push_back({_solver->satLitOf(in)});

    if (layer.empty())
        return;
    // Balanced merge tree.
    while (layer.size() > 1) {
        std::vector<std::vector<Lit>> next;
        for (size_t i = 0; i + 1 < layer.size(); i += 2)
            next.push_back(merge(layer[i], layer[i + 1]));
        if (layer.size() % 2 == 1)
            next.push_back(layer.back());
        layer = std::move(next);
    }
    _outputs = layer[0];
}

void
Totalizer::extend(const std::vector<AigLit> &more_inputs)
{
    if (more_inputs.empty())
        return;
    std::vector<std::vector<Lit>> layer;
    for (AigLit in : more_inputs)
        layer.push_back({_solver->satLitOf(in)});
    while (layer.size() > 1) {
        std::vector<std::vector<Lit>> next;
        for (size_t i = 0; i + 1 < layer.size(); i += 2)
            next.push_back(merge(layer[i], layer[i + 1]));
        if (layer.size() % 2 == 1)
            next.push_back(layer.back());
        layer = std::move(next);
    }
    if (_outputs.empty())
        _outputs = layer[0];
    else
        _outputs = merge(_outputs, layer[0]);
}

std::vector<Lit>
Totalizer::merge(const std::vector<Lit> &a, const std::vector<Lit> &b)
{
    size_t n = a.size() + b.size();
    std::vector<Lit> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(mkLit(_sat->newVar()));

    // One-sided clauses: (sum >= i+j) -> out_{i+j}.
    // a_i -> out_i
    for (size_t i = 0; i < a.size(); ++i)
        _sat->addClause(~a[i], out[i]);
    // b_j -> out_j
    for (size_t j = 0; j < b.size(); ++j)
        _sat->addClause(~b[j], out[j]);
    // a_i & b_j -> out_{i+j+1}
    for (size_t i = 0; i < a.size(); ++i) {
        for (size_t j = 0; j < b.size(); ++j)
            _sat->addClause(~a[i], ~b[j], out[i + j + 1]);
    }
    return out;
}

Lit
Totalizer::geq(size_t k) const
{
    check(k >= 1, "geq is 1-based");
    if (k > _outputs.size())
        return ~_true_lit;  // impossible
    return _outputs[k - 1];
}

Lit
Totalizer::atMost(size_t k) const
{
    if (k >= _outputs.size())
        return _true_lit;  // trivially satisfied
    return ~geq(k + 1);
}

} // namespace rtlrepair::smt
