/**
 * @file
 * The SMT facade: AIG + incremental Tseitin encoding + CDCL SAT.
 *
 * Plays the role of bitwuzla in the paper's flow.  The repair
 * synthesizer asserts AIG literals (trace equalities), solves under
 * assumptions (the Σφ cardinality bound), and reads back the model of
 * the synthesis variables.
 */
#ifndef RTLREPAIR_SMT_BV_SOLVER_HPP
#define RTLREPAIR_SMT_BV_SOLVER_HPP

#include <optional>

#include "bv/value.hpp"
#include "sat/solver.hpp"
#include "smt/aig.hpp"
#include "util/stopwatch.hpp"

namespace rtlrepair::smt {

/** Solver result. */
enum class Result { Sat, Unsat, Timeout };

/** Incremental AIG-to-SAT solver. */
class BvSolver
{
  public:
    BvSolver() = default;

    /** The underlying graph (build formulas directly on it). */
    Aig &aig() { return _aig; }

    /** Permanently assert @p lit true. */
    void assertLit(AigLit lit);

    /** Assert a word equals a constant (unknown bits skipped). */
    void assertWordEquals(const Word &word, const bv::Value &value);

    /**
     * Fresh SAT literal with no constraints, for gating assertions:
     * the incremental repair query guards its per-window trace anchor
     * and blocking clauses behind such literals so that moving the
     * window is an assumption change (or a single retiring unit
     * clause), not a solver rebuild.
     */
    sat::Lit newActivationLit();

    /** Assert @p act implies @p lit (clause ¬act ∨ lit). */
    void assertLitIf(sat::Lit act, AigLit lit);

    /** assertWordEquals gated behind @p act. */
    void assertWordEqualsIf(sat::Lit act, const Word &word,
                            const bv::Value &value);

    /** Permanently assert two words are bitwise equal (the shorter
     *  word is zero-extended). */
    void assertWordsEqual(const Word &a, const Word &b);

    /** Solve under AIG-literal assumptions. */
    Result solve(const std::vector<AigLit> &assumptions = {},
                 const Deadline *deadline = nullptr);

    /** Model value of an AIG literal (valid after Sat). */
    bool modelValue(AigLit lit);
    /** Model value of a word as an integer value. */
    bv::Value modelWord(const Word &word);

    /** SAT literal for an AIG literal (Tseitin-encodes on demand). */
    sat::Lit satLitOf(AigLit lit);

    /** Access the SAT core (statistics, cardinality encoders). */
    const sat::Solver &satSolver() const { return _sat; }
    sat::Solver &satCore() { return _sat; }

  private:
    sat::Var varOfNode(uint32_t node);

    Aig _aig;
    sat::Solver _sat;
    std::vector<int32_t> _node_var;  ///< AIG node -> SAT var (-1 unset)
};

/**
 * Totalizer cardinality encoder over a set of AIG literals (the φ
 * indicator variables).  Provides monotone "sum ≥ k" outputs with the
 * one-sided clauses needed for at-most-k assumptions: assuming
 * ¬geq(k+1) enforces Σ ≤ k.
 */
class Totalizer
{
  public:
    /** Build over @p inputs inside @p solver (encodes immediately). */
    Totalizer(BvSolver &solver, const std::vector<AigLit> &inputs);

    /**
     * Extend the encoder with additional inputs: a fresh merge tree
     * over @p more_inputs is merged into the existing outputs.  Sound
     * for the one-sided encoding — old outputs keep meaning "sum ≥ k"
     * over the enlarged input set because the merge only adds
     * implications from the old outputs into the new ones.
     */
    void extend(const std::vector<AigLit> &more_inputs);

    size_t size() const { return _outputs.size(); }

    /** SAT literal meaning "at least k inputs are true", 1-based. */
    sat::Lit geq(size_t k) const;

    /** Assumption literal enforcing "at most k inputs are true". */
    sat::Lit atMost(size_t k) const;

  private:
    std::vector<sat::Lit> merge(const std::vector<sat::Lit> &a,
                                const std::vector<sat::Lit> &b);

    BvSolver *_solver = nullptr;
    sat::Solver *_sat = nullptr;
    std::vector<sat::Lit> _outputs;  ///< outputs[i] = "sum >= i+1"
    sat::Lit _true_lit;
};

} // namespace rtlrepair::smt

#endif // RTLREPAIR_SMT_BV_SOLVER_HPP
