/**
 * @file
 * And-Inverter Graph with structural hashing.
 *
 * The AIG is the shared 2-state circuit representation: the
 * bit-blaster lowers transition-system words onto it, the SMT facade
 * Tseitin-encodes it into the SAT solver, and the gate-level netlist
 * (used for the paper's synthesis-mismatch checks) simulates it
 * directly.
 */
#ifndef RTLREPAIR_SMT_AIG_HPP
#define RTLREPAIR_SMT_AIG_HPP

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace rtlrepair::smt {

/**
 * AIG literal: 2*node + complement bit.  Node 0 is the constant, so
 * literal 0 = false and literal 1 = true.
 */
using AigLit = uint32_t;

constexpr AigLit kAigFalse = 0;
constexpr AigLit kAigTrue = 1;

inline AigLit aigNot(AigLit l) { return l ^ 1u; }
inline uint32_t aigNode(AigLit l) { return l >> 1; }
inline bool aigCompl(AigLit l) { return l & 1u; }

/** The graph. */
class Aig
{
  public:
    Aig();

    /** Allocate a free variable node. */
    AigLit newVar();

    /** Number of nodes (including the constant). */
    size_t numNodes() const { return _nodes.size(); }

    /** Is node @p n a variable (not const, not and)? */
    bool isVar(uint32_t n) const;
    /** Is node @p n an and-gate? */
    bool isAnd(uint32_t n) const;
    /** Fan-ins of and-node @p n. */
    AigLit fanin0(uint32_t n) const { return _nodes[n].a; }
    AigLit fanin1(uint32_t n) const { return _nodes[n].b; }

    /** @name Boolean operators (hashed, locally simplified) @{ */
    AigLit andOf(AigLit a, AigLit b);
    AigLit orOf(AigLit a, AigLit b) { return aigNot(andOf(aigNot(a), aigNot(b))); }
    AigLit xorOf(AigLit a, AigLit b);
    AigLit mux(AigLit cond, AigLit then_l, AigLit else_l);
    /** @} */

    /** Constant literal for a boolean. */
    static AigLit constOf(bool b) { return b ? kAigTrue : kAigFalse; }

  private:
    struct Node
    {
        AigLit a;
        AigLit b;
    };
    static constexpr AigLit kVarMark = 0xffffffffu;

    std::vector<Node> _nodes;
    std::unordered_map<uint64_t, std::vector<uint32_t>> _hash;
};

/** A word is a vector of AIG literals, LSB first. */
using Word = std::vector<AigLit>;

/** @name Word-level operators on AIGs (the bit-blasting library) @{ */
Word wordConst(uint64_t value, uint32_t width);
Word wordNot(Aig &aig, const Word &a);
Word wordAnd(Aig &aig, const Word &a, const Word &b);
Word wordOr(Aig &aig, const Word &a, const Word &b);
Word wordXor(Aig &aig, const Word &a, const Word &b);
Word wordAdd(Aig &aig, const Word &a, const Word &b);
Word wordSub(Aig &aig, const Word &a, const Word &b);
Word wordNeg(Aig &aig, const Word &a);
Word wordMul(Aig &aig, const Word &a, const Word &b);
/** Restoring divider; returns quotient. Division by zero -> all ones. */
Word wordUDiv(Aig &aig, const Word &a, const Word &b);
Word wordURem(Aig &aig, const Word &a, const Word &b);
Word wordShl(Aig &aig, const Word &a, const Word &amount);
Word wordLShr(Aig &aig, const Word &a, const Word &amount);
Word wordAShr(Aig &aig, const Word &a, const Word &amount);
AigLit wordEq(Aig &aig, const Word &a, const Word &b);
AigLit wordULt(Aig &aig, const Word &a, const Word &b);
AigLit wordULe(Aig &aig, const Word &a, const Word &b);
AigLit wordSLt(Aig &aig, const Word &a, const Word &b);
AigLit wordSLe(Aig &aig, const Word &a, const Word &b);
AigLit wordRedAnd(Aig &aig, const Word &a);
AigLit wordRedOr(Aig &aig, const Word &a);
AigLit wordRedXor(Aig &aig, const Word &a);
Word wordMux(Aig &aig, AigLit cond, const Word &t, const Word &e);
/** @} */

} // namespace rtlrepair::smt

#endif // RTLREPAIR_SMT_AIG_HPP
