/**
 * @file
 * Word-level bit-blaster: evaluates one transition-system cycle onto
 * an AIG, given literal bindings for states, inputs, and synthesis
 * variables.  The unroller calls this once per cycle of the repair
 * window, feeding each cycle's next-state words into the next.
 */
#ifndef RTLREPAIR_SMT_BITBLAST_HPP
#define RTLREPAIR_SMT_BITBLAST_HPP

#include "bv/value.hpp"
#include "ir/transition_system.hpp"
#include "smt/aig.hpp"

namespace rtlrepair::smt {

/** Leaf bindings for one unrolled cycle. */
struct CycleBindings
{
    std::vector<Word> states;   ///< indexed like sys.states
    std::vector<Word> inputs;   ///< indexed like sys.inputs
    std::vector<Word> synth;    ///< indexed like sys.synth_vars
};

/** Result of blasting one cycle. */
struct CycleWords
{
    std::vector<Word> node_bits;   ///< per NodeRef
    std::vector<Word> next_states; ///< indexed like sys.states
    std::vector<Word> outputs;     ///< indexed like sys.outputs
};

/** Convert a fully known (or policy-resolved) value to literals. */
Word wordOfValue(const bv::Value &value);

/**
 * Blast one cycle of @p sys.  X bits inside design constants read as
 * zero (the 2-state synthesized circuit).
 */
CycleWords blastCycle(Aig &aig, const ir::TransitionSystem &sys,
                      const CycleBindings &bindings);

/** Allocate fresh AIG variables for a word of @p width bits. */
Word freshWord(Aig &aig, uint32_t width);

} // namespace rtlrepair::smt

#endif // RTLREPAIR_SMT_BITBLAST_HPP
