/**
 * @file
 * Elaboration: synthesizable Verilog AST -> word-level transition
 * system.  This plays the role of `yosys` in the paper's flow
 * (Verilog -> btor2).
 *
 * Supported semantics:
 *  - a single clock domain; every edge-triggered process must use the
 *    same clock (resolved through wire aliases).  `posedge clk or
 *    posedge rst` style async resets are converted to synchronous
 *    resets with a warning, matching the paper's manual benchmark
 *    preparation (§6.1).
 *  - non-blocking assignments read stale register values; blocking
 *    assignments are visible to later reads in the same process.
 *    Mixing both kinds on one signal in one process is rejected.
 *  - level-sensitive processes elaborate as full combinational logic
 *    regardless of their sensitivity list — exactly what a synthesis
 *    tool does.  (This is the root of the synthesis–simulation
 *    mismatch the paper's gate-level checks catch.)
 *  - module instances are flattened; parameters are resolved at
 *    flatten time.
 *  - `initial` blocks consisting of constant register assignments
 *    become state init values; anything else in them is rejected.
 *  - latch-inferring code (a comb signal unassigned on some path) is
 *    rejected unless ElaborateOptions::allow_latches is set, in which
 *    case the unassigned paths read as X.  Reading a comb signal
 *    before assigning it (a combinational self-loop) is always
 *    rejected — this is why the paper's counter_w1 benchmark cannot
 *    be repaired symbolically.
 */
#ifndef RTLREPAIR_ELABORATE_ELABORATE_HPP
#define RTLREPAIR_ELABORATE_ELABORATE_HPP

#include <string>
#include <vector>

#include "analysis/const_eval.hpp"
#include "ir/transition_system.hpp"
#include "verilog/ast.hpp"

namespace rtlrepair::elaborate {

/** A free synthesis variable injected by a repair template. */
struct SynthVarSpec
{
    std::string name;
    uint32_t width = 1;
    bool is_phi = false;
};

/** Options controlling elaboration. */
struct ElaborateOptions
{
    /** Top-level parameter overrides. */
    analysis::ConstEnv param_overrides;
    /** Synthesis variables to resolve as free symbolic constants. */
    std::vector<SynthVarSpec> synth_vars;
    /** Library modules available for instance resolution. */
    std::vector<const verilog::Module *> library;
    /** Tolerate latches (unassigned paths read X) instead of failing. */
    bool allow_latches = false;
};

/**
 * Elaborate @p top into a transition system.
 * @throws FatalError when the design is not synthesizable under the
 *         supported subset (latches, comb loops, multiple drivers,
 *         several clocks, ...).
 */
ir::TransitionSystem elaborate(const verilog::Module &top,
                               const ElaborateOptions &opts = {});

/** Convenience: elaborate the first module of a parsed file. */
ir::TransitionSystem elaborate(const verilog::SourceFile &file,
                               const ElaborateOptions &opts = {});

/**
 * Flatten a module hierarchy into a single module (instances inlined
 * with renamed nets, parameters substituted).  Exposed for the
 * event-driven simulator, which interprets flat ASTs.
 */
std::unique_ptr<verilog::Module>
flattenHierarchy(const verilog::Module &top,
                 const ElaborateOptions &opts = {});

} // namespace rtlrepair::elaborate

#endif // RTLREPAIR_ELABORATE_ELABORATE_HPP
