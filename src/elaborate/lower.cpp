#include "elaborate/lower.hpp"

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "util/logging.hpp"
#include "util/strings.hpp"
#include "verilog/ast_util.hpp"

namespace rtlrepair::elaborate {

using namespace verilog;
using analysis::ConstEnv;
using bv::Value;

namespace {

constexpr int kMaxFunctionDepth = 32;
constexpr int64_t kMaxFunctionLoopIterations = 1024;

std::string
signedSuffix(int64_t v)
{
    // Negative values would put a '-' into an identifier; spell it out.
    if (v < 0) {
        std::string out("m");
        out += std::to_string(-v);
        return out;
    }
    return std::to_string(v);
}

std::vector<ItemPtr>
cloneItems(const std::vector<ItemPtr> &items)
{
    std::vector<ItemPtr> copy;
    copy.reserve(items.size());
    for (const auto &item : items)
        copy.push_back(item->clone());
    return copy;
}

class Lowerer
{
  public:
    Lowerer(Module &m, const ConstEnv &overrides)
        : _m(m), _overrides(overrides)
    {
    }

    void
    run()
    {
        collectParams();
        _m.items = expandGenerates(std::move(_m.items));
        // Generate bodies may declare localparams; pick them up for
        // the passes below (memory depths, function loop bounds).
        collectParams();
        inlineFunctions();
        lowerMemories();
        mergePartialContAssigns();
    }

  private:
    // -----------------------------------------------------------------
    // Shared helpers
    // -----------------------------------------------------------------

    ExprPtr
    makeLiteral(uint32_t width, uint64_t value, SourceLoc loc = {})
    {
        auto *lit = new LiteralExpr(Value::fromUint(width, value), true);
        lit->id = _m.newNodeId();
        lit->loc = loc;
        return ExprPtr(lit);
    }

    ExprPtr
    makeXLiteral(uint32_t width, SourceLoc loc = {})
    {
        auto *lit = new LiteralExpr(Value::allX(width), true);
        lit->id = _m.newNodeId();
        lit->loc = loc;
        return ExprPtr(lit);
    }

    ExprPtr
    makeIdent(const std::string &name, SourceLoc loc = {})
    {
        auto *ident = new IdentExpr(name);
        ident->id = _m.newNodeId();
        ident->loc = loc;
        return ExprPtr(ident);
    }

    /** Coerce @p e to exactly @p width bits (zero-extend / truncate). */
    ExprPtr
    wrapWidth(ExprPtr e, uint32_t width)
    {
        if (e->kind == Expr::Kind::Literal) {
            auto &lit = static_cast<LiteralExpr &>(*e);
            if (lit.value.width() == width)
                return e;
            Value v = lit.value.width() > width
                          ? lit.value.slice(width - 1, 0)
                          : lit.value.zext(width);
            auto *adjusted = new LiteralExpr(v, true);
            adjusted->id = e->id;
            adjusted->loc = e->loc;
            return ExprPtr(adjusted);
        }
        SourceLoc loc = e->loc;
        std::vector<ExprPtr> parts;
        parts.push_back(makeLiteral(width, 0, loc));
        parts.push_back(std::move(e));
        auto *cat = new ConcatExpr(std::move(parts));
        cat->id = _m.newNodeId();
        cat->loc = loc;
        auto *sel = new RangeSelectExpr(ExprPtr(cat),
                                        makeLiteral(32, width - 1, loc),
                                        makeLiteral(32, 0, loc));
        sel->id = _m.newNodeId();
        sel->loc = loc;
        return ExprPtr(sel);
    }

    // -----------------------------------------------------------------
    // Parameter environment
    // -----------------------------------------------------------------

    void
    collectParams()
    {
        for (const auto &item : _m.items) {
            if (item->kind != Item::Kind::Param)
                continue;
            const auto &p = static_cast<const ParamDecl &>(*item);
            auto ov = _overrides.find(p.name);
            if (ov != _overrides.end() && !p.is_local) {
                _params[p.name] = ov->second;
                continue;
            }
            // Tolerate values we cannot fold yet (e.g. referencing a
            // function); SymbolTable::build reports those later.
            auto v = analysis::tryConstEval(*p.value, _params);
            if (v)
                _params[p.name] = *v;
        }
    }

    // -----------------------------------------------------------------
    // Generate unrolling
    // -----------------------------------------------------------------

    std::vector<ItemPtr>
    expandGenerates(std::vector<ItemPtr> items)
    {
        std::vector<ItemPtr> out;
        out.reserve(items.size());
        for (auto &item : items) {
            switch (item->kind) {
              case Item::Kind::Genvar:
                break; // compiled away
              case Item::Kind::GenFor:
                expandGenFor(static_cast<GenFor &>(*item), out);
                break;
              case Item::Kind::GenIf:
                expandGenIf(static_cast<GenIf &>(*item), out);
                break;
              default:
                out.push_back(std::move(item));
                break;
            }
        }
        return out;
    }

    void
    expandGenFor(GenFor &g, std::vector<ItemPtr> &out)
    {
        std::string label =
            g.label.empty() ? format("genblk%d", ++_genblk) : g.label;
        int64_t v = analysis::constEvalInt(*g.init, _params);
        int64_t iterations = 0;
        while (true) {
            ConstEnv env = _params;
            env[g.genvar] =
                Value::fromUint(32, static_cast<uint64_t>(v));
            Value cond = analysis::constEval(*g.cond, env);
            if (cond.hasX()) {
                fatal(format("line %u:%u: generate-for condition "
                             "evaluates to X",
                             g.loc.line, g.loc.col));
            }
            if (cond.isZero())
                break;
            if (++iterations > kMaxGenerateIterations) {
                fatal(format("line %u:%u: generate-for loop exceeds "
                             "%lld iterations (does it terminate?)",
                             g.loc.line, g.loc.col,
                             static_cast<long long>(
                                 kMaxGenerateIterations)));
            }

            std::vector<ItemPtr> body = cloneItems(g.body);
            substituteGenvar(body, g.genvar, v);
            // Expand nested generates before applying this level's
            // prefix so composed names read outer-first, matching
            // the flattened form of `row[0].even.t`.
            body = expandGenerates(std::move(body));
            std::string prefix =
                label + "__" + signedSuffix(v) + "__";
            std::set<std::string> declared;
            collectDeclaredNames(body, declared);
            renameDeclared(body, declared, prefix);
            for (auto &sub : body)
                out.push_back(std::move(sub));

            v = analysis::constEvalInt(*g.step, env);
        }
    }

    void
    expandGenIf(GenIf &g, std::vector<ItemPtr> &out)
    {
        Value cond = analysis::constEval(*g.cond, _params);
        if (cond.hasX()) {
            fatal(format("line %u:%u: generate-if condition evaluates "
                         "to X",
                         g.loc.line, g.loc.col));
        }
        bool taken = cond.isNonZero();
        std::vector<ItemPtr> body =
            std::move(taken ? g.then_items : g.else_items);
        const std::string &branch_label =
            taken ? g.then_label : g.else_label;
        body = expandGenerates(std::move(body));
        if (!branch_label.empty()) {
            std::set<std::string> declared;
            collectDeclaredNames(body, declared);
            renameDeclared(body, declared, branch_label + "__");
        }
        for (auto &sub : body)
            out.push_back(std::move(sub));
    }

    void
    substituteGenvar(std::vector<ItemPtr> &items,
                     const std::string &genvar, int64_t value)
    {
        rewriteItemsExprs(items, [&](ExprPtr &e) {
            if (e->kind != Expr::Kind::Ident)
                return;
            if (static_cast<IdentExpr &>(*e).name != genvar)
                return;
            auto *lit = new LiteralExpr(
                Value::fromUint(32, static_cast<uint64_t>(value)),
                false);
            lit->id = e->id;
            lit->loc = e->loc;
            e.reset(lit);
        });
    }

    void
    collectDeclaredNames(const std::vector<ItemPtr> &items,
                         std::set<std::string> &out)
    {
        for (const auto &item : items) {
            switch (item->kind) {
              case Item::Kind::Net:
                out.insert(static_cast<const NetDecl &>(*item).name);
                break;
              case Item::Kind::Param:
                out.insert(static_cast<const ParamDecl &>(*item).name);
                break;
              case Item::Kind::Instance:
                out.insert(static_cast<const Instance &>(*item)
                               .instance_name);
                break;
              case Item::Kind::Function:
                out.insert(
                    static_cast<const FunctionDecl &>(*item).name);
                break;
              case Item::Kind::Genvar:
                out.insert(static_cast<const GenvarDecl &>(*item).name);
                break;
              case Item::Kind::GenFor:
                collectDeclaredNames(
                    static_cast<const GenFor &>(*item).body, out);
                break;
              case Item::Kind::GenIf: {
                const auto &gi = static_cast<const GenIf &>(*item);
                collectDeclaredNames(gi.then_items, out);
                collectDeclaredNames(gi.else_items, out);
                break;
              }
              case Item::Kind::ContAssign:
              case Item::Kind::Always:
              case Item::Kind::Initial:
                break;
            }
        }
    }

    void
    renameDeclared(std::vector<ItemPtr> &items,
                   const std::set<std::string> &declared,
                   const std::string &prefix)
    {
        for (auto &item : items) {
            switch (item->kind) {
              case Item::Kind::Net: {
                auto &n = static_cast<NetDecl &>(*item);
                if (declared.count(n.name))
                    n.name = prefix + n.name;
                break;
              }
              case Item::Kind::Param: {
                auto &p = static_cast<ParamDecl &>(*item);
                if (declared.count(p.name))
                    p.name = prefix + p.name;
                break;
              }
              case Item::Kind::Instance: {
                auto &inst = static_cast<Instance &>(*item);
                if (declared.count(inst.instance_name))
                    inst.instance_name = prefix + inst.instance_name;
                break;
              }
              case Item::Kind::Function: {
                auto &f = static_cast<FunctionDecl &>(*item);
                if (declared.count(f.name))
                    f.name = prefix + f.name;
                break;
              }
              case Item::Kind::Genvar: {
                auto &gv = static_cast<GenvarDecl &>(*item);
                if (declared.count(gv.name))
                    gv.name = prefix + gv.name;
                break;
              }
              case Item::Kind::Always: {
                auto &blk = static_cast<AlwaysBlock &>(*item);
                for (auto &sens : blk.sensitivity) {
                    if (declared.count(sens.signal))
                        sens.signal = prefix + sens.signal;
                }
                break;
              }
              case Item::Kind::GenFor:
                renameDeclared(static_cast<GenFor &>(*item).body,
                               declared, prefix);
                break;
              case Item::Kind::GenIf: {
                auto &gi = static_cast<GenIf &>(*item);
                renameDeclared(gi.then_items, declared, prefix);
                renameDeclared(gi.else_items, declared, prefix);
                break;
              }
              case Item::Kind::ContAssign:
              case Item::Kind::Initial:
                break;
            }
        }
        rewriteItemsExprs(items, [&](ExprPtr &e) {
            if (e->kind == Expr::Kind::Ident) {
                auto &ident = static_cast<IdentExpr &>(*e);
                if (declared.count(ident.name))
                    ident.name = prefix + ident.name;
            } else if (e->kind == Expr::Kind::Call) {
                auto &call = static_cast<CallExpr &>(*e);
                if (declared.count(call.callee))
                    call.callee = prefix + call.callee;
            }
        });
    }

    // -----------------------------------------------------------------
    // Function inlining
    // -----------------------------------------------------------------

    void
    inlineFunctions()
    {
        std::vector<ItemPtr> kept;
        kept.reserve(_m.items.size());
        for (auto &item : _m.items) {
            if (item->kind == Item::Kind::Function) {
                auto *f = static_cast<FunctionDecl *>(item.get());
                if (_functions.count(f->name)) {
                    fatal(format(
                        "line %u:%u: duplicate function '%s'",
                        f->loc.line, f->loc.col, f->name.c_str()));
                }
                _functions[f->name] = f;
                _function_storage.push_back(std::move(item));
            } else {
                kept.push_back(std::move(item));
            }
        }
        _m.items = std::move(kept);

        rewriteModuleExprs(_m, [this](ExprPtr &e) {
            if (e->kind != Expr::Kind::Call)
                return;
            // Arguments were already inlined by the post-order walk.
            ExprPtr inlined =
                inlineCall(static_cast<CallExpr &>(*e), 0);
            inlined->loc = e->loc;
            e = std::move(inlined);
        });
    }

    /** Environment of a symbolic function evaluation. */
    using FnEnv = std::map<std::string, ExprPtr>;

    ExprPtr
    inlineCall(const CallExpr &call, int depth)
    {
        if (depth > kMaxFunctionDepth) {
            fatal(format("line %u:%u: function call depth exceeds %d "
                         "(recursive functions are outside the "
                         "synthesizable subset)",
                         call.loc.line, call.loc.col,
                         kMaxFunctionDepth));
        }
        auto it = _functions.find(call.callee);
        if (it == _functions.end()) {
            fatal(format("line %u:%u: call of undefined function '%s'",
                         call.loc.line, call.loc.col,
                         call.callee.c_str()));
        }
        const FunctionDecl &decl = *it->second;
        if (call.args.size() != decl.inputs.size()) {
            fatal(format("line %u:%u: function '%s' takes %zu "
                         "argument(s), got %zu",
                         call.loc.line, call.loc.col,
                         call.callee.c_str(), decl.inputs.size(),
                         call.args.size()));
        }

        std::map<std::string, uint32_t> widths;
        FnEnv env;
        for (size_t i = 0; i < decl.inputs.size(); ++i) {
            uint32_t w = varWidth(decl.inputs[i]);
            widths[decl.inputs[i].name] = w;
            env[decl.inputs[i].name] =
                wrapWidth(call.args[i]->clone(), w);
        }
        for (const auto &local : decl.locals) {
            uint32_t w = varWidth(local);
            widths[local.name] = w;
            env[local.name] = makeXLiteral(w, decl.loc);
        }
        uint32_t ret_width = returnWidth(decl);
        widths[decl.name] = ret_width;
        env[decl.name] = makeXLiteral(ret_width, decl.loc);

        evalFnStmt(*decl.body, env, widths, decl);

        ExprPtr result = env[decl.name]->clone();
        // The body may call other functions; resolve those too.
        rewriteExprTree(result, [this, depth](ExprPtr &e) {
            if (e->kind != Expr::Kind::Call)
                return;
            ExprPtr inlined =
                inlineCall(static_cast<CallExpr &>(*e), depth + 1);
            inlined->loc = e->loc;
            e = std::move(inlined);
        });
        return result;
    }

    uint32_t
    varWidth(const FunctionVar &var)
    {
        if (var.is_integer)
            return 32;
        if (!var.msb)
            return 1;
        int64_t msb = analysis::constEvalInt(*var.msb, _params);
        int64_t lsb = analysis::constEvalInt(*var.lsb, _params);
        return static_cast<uint32_t>(msb > lsb ? msb - lsb
                                               : lsb - msb) +
               1u;
    }

    uint32_t
    returnWidth(const FunctionDecl &decl)
    {
        if (!decl.ret_msb)
            return 1;
        int64_t msb = analysis::constEvalInt(*decl.ret_msb, _params);
        int64_t lsb = analysis::constEvalInt(*decl.ret_lsb, _params);
        return static_cast<uint32_t>(msb > lsb ? msb - lsb
                                               : lsb - msb) +
               1u;
    }

    /** Clone @p expr with current symbolic variable values spliced in. */
    ExprPtr
    substituteFnEnv(const Expr &expr, const FnEnv &env)
    {
        ExprPtr copy = expr.clone();
        rewriteExprTree(copy, [&env](ExprPtr &e) {
            if (e->kind != Expr::Kind::Ident)
                return;
            auto it = env.find(static_cast<IdentExpr &>(*e).name);
            if (it == env.end())
                return;
            ExprPtr value = it->second->clone();
            value->loc = e->loc;
            e = std::move(value);
        });
        return copy;
    }

    /**
     * Symbolically execute a function-body statement, updating @p env.
     * @return the set of variables assigned somewhere in the subtree.
     */
    std::set<std::string>
    evalFnStmt(const Stmt &stmt, FnEnv &env,
               const std::map<std::string, uint32_t> &widths,
               const FunctionDecl &decl)
    {
        switch (stmt.kind) {
          case Stmt::Kind::Block: {
            std::set<std::string> assigned;
            for (const auto &s :
                 static_cast<const BlockStmt &>(stmt).stmts) {
                auto sub = evalFnStmt(*s, env, widths, decl);
                assigned.insert(sub.begin(), sub.end());
            }
            return assigned;
          }
          case Stmt::Kind::Assign: {
            const auto &a = static_cast<const AssignStmt &>(stmt);
            if (!a.blocking) {
                fatal(format("line %u:%u: non-blocking assignment "
                             "inside function '%s'",
                             a.loc.line, a.loc.col,
                             decl.name.c_str()));
            }
            if (a.lhs->kind != Expr::Kind::Ident) {
                fatal(format("line %u:%u: function '%s' may only "
                             "assign whole variables",
                             a.loc.line, a.loc.col,
                             decl.name.c_str()));
            }
            const std::string &name =
                static_cast<const IdentExpr &>(*a.lhs).name;
            auto w = widths.find(name);
            if (w == widths.end()) {
                fatal(format("line %u:%u: function '%s' assigns "
                             "'%s', which is not a local or the "
                             "return value",
                             a.loc.line, a.loc.col,
                             decl.name.c_str(), name.c_str()));
            }
            env[name] =
                wrapWidth(substituteFnEnv(*a.rhs, env), w->second);
            return {name};
          }
          case Stmt::Kind::If: {
            const auto &i = static_cast<const IfStmt &>(stmt);
            ExprPtr cond = substituteFnEnv(*i.cond, env);
            auto cv = analysis::tryConstEval(*cond, _params);
            if (cv && !cv->hasX()) {
                if (cv->isNonZero())
                    return evalFnStmt(*i.then_stmt, env, widths, decl);
                if (i.else_stmt)
                    return evalFnStmt(*i.else_stmt, env, widths, decl);
                return {};
            }
            FnEnv then_env = cloneEnv(env);
            FnEnv else_env = cloneEnv(env);
            auto then_set =
                evalFnStmt(*i.then_stmt, then_env, widths, decl);
            std::set<std::string> else_set;
            if (i.else_stmt) {
                else_set =
                    evalFnStmt(*i.else_stmt, else_env, widths, decl);
            }
            std::set<std::string> assigned = then_set;
            assigned.insert(else_set.begin(), else_set.end());
            for (const auto &name : assigned) {
                auto *merge = new TernaryExpr(
                    cond->clone(), then_env[name]->clone(),
                    else_env[name]->clone());
                merge->id = _m.newNodeId();
                merge->loc = i.loc;
                env[name] = ExprPtr(merge);
            }
            return assigned;
          }
          case Stmt::Kind::Case: {
            const auto &c = static_cast<const CaseStmt &>(stmt);
            if (c.mode != CaseStmt::Mode::Plain) {
                fatal(format("line %u:%u: casez/casex inside function "
                             "'%s' is outside the synthesizable "
                             "subset",
                             c.loc.line, c.loc.col,
                             decl.name.c_str()));
            }
            StmtPtr chain = desugarCase(c);
            if (!chain)
                return {};
            return evalFnStmt(*chain, env, widths, decl);
          }
          case Stmt::Kind::For: {
            const auto &f = static_cast<const ForStmt &>(stmt);
            check(f.init->kind == Stmt::Kind::Assign &&
                      f.step->kind == Stmt::Kind::Assign,
                  "for loop with non-assignment init/step");
            const auto &init =
                static_cast<const AssignStmt &>(*f.init);
            const auto &step =
                static_cast<const AssignStmt &>(*f.step);
            if (init.lhs->kind != Expr::Kind::Ident ||
                step.lhs->kind != Expr::Kind::Ident) {
                fatal(format("line %u:%u: for loop inside function "
                             "'%s' must use a simple loop variable",
                             f.loc.line, f.loc.col,
                             decl.name.c_str()));
            }
            const std::string &var =
                static_cast<const IdentExpr &>(*init.lhs).name;
            auto w = widths.find(var);
            if (w == widths.end()) {
                fatal(format("line %u:%u: loop variable '%s' is not "
                             "declared in function '%s'",
                             f.loc.line, f.loc.col, var.c_str(),
                             decl.name.c_str()));
            }
            std::set<std::string> assigned{var};
            env[var] = constFnExpr(*init.rhs, env, f.loc,
                                   decl.name.c_str());
            int64_t iterations = 0;
            while (true) {
                ExprPtr cond = substituteFnEnv(*f.cond, env);
                auto cv = analysis::tryConstEval(*cond, _params);
                if (!cv || cv->hasX()) {
                    fatal(format(
                        "line %u:%u: for-loop condition inside "
                        "function '%s' must be compile-time constant",
                        f.loc.line, f.loc.col, decl.name.c_str()));
                }
                if (cv->isZero())
                    break;
                if (++iterations > kMaxFunctionLoopIterations) {
                    fatal(format(
                        "line %u:%u: for loop inside function '%s' "
                        "exceeds %lld iterations",
                        f.loc.line, f.loc.col, decl.name.c_str(),
                        static_cast<long long>(
                            kMaxFunctionLoopIterations)));
                }
                auto sub = evalFnStmt(*f.body, env, widths, decl);
                assigned.insert(sub.begin(), sub.end());
                env[var] = constFnExpr(*step.rhs, env, f.loc,
                                       decl.name.c_str());
            }
            return assigned;
          }
          case Stmt::Kind::Empty:
            return {};
        }
        panic("unknown statement kind in function body");
    }

    /** Evaluate @p expr to a constant literal under the fn env. */
    ExprPtr
    constFnExpr(const Expr &expr, const FnEnv &env, SourceLoc loc,
                const char *fn_name)
    {
        ExprPtr sub = substituteFnEnv(expr, env);
        auto v = analysis::tryConstEval(*sub, _params);
        if (!v || v->hasX()) {
            fatal(format("line %u:%u: for-loop bound inside function "
                         "'%s' must be compile-time constant",
                         loc.line, loc.col, fn_name));
        }
        auto *lit = new LiteralExpr(*v, true);
        lit->id = _m.newNodeId();
        lit->loc = loc;
        return ExprPtr(lit);
    }

    FnEnv
    cloneEnv(const FnEnv &env)
    {
        FnEnv copy;
        for (const auto &[name, value] : env)
            copy[name] = value->clone();
        return copy;
    }

    /** Rewrite a plain case statement into an if/else chain. */
    StmtPtr
    desugarCase(const CaseStmt &c)
    {
        StmtPtr chain =
            c.default_body ? c.default_body->clone() : nullptr;
        for (size_t i = c.items.size(); i-- > 0;) {
            const CaseItem &item = c.items[i];
            ExprPtr cond;
            for (const auto &label : item.labels) {
                auto *eq = new BinaryExpr(BinaryOp::Eq,
                                          c.subject->clone(),
                                          label->clone());
                eq->id = _m.newNodeId();
                eq->loc = c.loc;
                if (!cond) {
                    cond = ExprPtr(eq);
                } else {
                    auto *orx = new BinaryExpr(BinaryOp::LogicOr,
                                               std::move(cond),
                                               ExprPtr(eq));
                    orx->id = _m.newNodeId();
                    orx->loc = c.loc;
                    cond = ExprPtr(orx);
                }
            }
            if (!cond)
                continue;
            auto *branch = new IfStmt(std::move(cond),
                                      item.body->clone(),
                                      std::move(chain));
            branch->id = _m.newNodeId();
            branch->loc = c.loc;
            chain = StmtPtr(branch);
        }
        return chain;
    }

    // -----------------------------------------------------------------
    // Memory lowering (word banks)
    // -----------------------------------------------------------------

    struct MemInfo
    {
        int64_t lo = 0;
        int64_t hi = 0;
        uint32_t width = 1;
    };

    void
    lowerMemories()
    {
        // Pass 1: replace memory declarations with per-word registers.
        std::vector<ItemPtr> out;
        out.reserve(_m.items.size());
        for (auto &item : _m.items) {
            if (item->kind != Item::Kind::Net ||
                !static_cast<NetDecl &>(*item).isMemory()) {
                out.push_back(std::move(item));
                continue;
            }
            auto &n = static_cast<NetDecl &>(*item);
            if (n.dir != PortDir::Unknown) {
                fatal(format("line %u:%u: memory '%s' cannot be a "
                             "port",
                             n.loc.line, n.loc.col, n.name.c_str()));
            }
            int64_t a = analysis::constEvalInt(*n.arr_msb, _params);
            int64_t b = analysis::constEvalInt(*n.arr_lsb, _params);
            MemInfo info;
            info.lo = std::min(a, b);
            info.hi = std::max(a, b);
            if (info.hi - info.lo + 1 > kMaxMemoryWords) {
                fatal(format("line %u:%u: memory '%s' has %lld words "
                             "(limit %lld)",
                             n.loc.line, n.loc.col, n.name.c_str(),
                             static_cast<long long>(info.hi - info.lo +
                                                    1),
                             static_cast<long long>(kMaxMemoryWords)));
            }
            if (n.msb) {
                int64_t msb =
                    analysis::constEvalInt(*n.msb, _params);
                int64_t lsb =
                    analysis::constEvalInt(*n.lsb, _params);
                info.width = static_cast<uint32_t>(
                                 msb > lsb ? msb - lsb : lsb - msb) +
                             1u;
            }
            _memories[n.name] = info;
            for (int64_t addr = info.lo; addr <= info.hi; ++addr) {
                auto *word = new NetDecl();
                word->id = _m.newNodeId();
                word->loc = n.loc;
                word->name = memoryWordName(n.name, addr);
                word->net = n.net;
                word->is_signed = n.is_signed;
                word->msb = n.msb ? n.msb->clone() : nullptr;
                word->lsb = n.lsb ? n.lsb->clone() : nullptr;
                out.emplace_back(word);
            }
        }
        _m.items = std::move(out);
        if (_memories.empty())
            return;

        // Pass 2: procedural writes (and continuous-assign targets).
        for (auto &item : _m.items) {
            if (item->kind == Item::Kind::Always) {
                rewriteStmtTree(static_cast<AlwaysBlock &>(*item).body,
                                [this](StmtPtr &s) {
                                    lowerMemoryWrite(s);
                                });
            } else if (item->kind == Item::Kind::Initial) {
                rewriteStmtTree(
                    static_cast<InitialBlock &>(*item).body,
                    [this](StmtPtr &s) { lowerMemoryWrite(s); });
            } else if (item->kind == Item::Kind::ContAssign) {
                lowerContAssignTarget(
                    static_cast<ContAssign &>(*item));
            }
        }

        // Pass 3: reads.
        rewriteModuleExprs(_m, [this](ExprPtr &e) {
            if (e->kind != Expr::Kind::Index)
                return;
            auto &ix = static_cast<IndexExpr &>(*e);
            const MemInfo *mem = memOf(*ix.base);
            if (!mem)
                return;
            e = lowerMemoryRead(ix, *mem);
        });

        // Pass 4: whatever still names a memory is outside the subset.
        rewriteModuleExprs(_m, [this](ExprPtr &e) {
            if (e->kind != Expr::Kind::Ident)
                return;
            const auto &name = static_cast<IdentExpr &>(*e).name;
            if (_memories.count(name)) {
                fatal(format("line %u:%u: memory '%s' used without an "
                             "index",
                             e->loc.line, e->loc.col, name.c_str()));
            }
        });

        // A memory in a sensitivity list means "any word".
        for (auto &item : _m.items) {
            if (item->kind != Item::Kind::Always)
                continue;
            auto &blk = static_cast<AlwaysBlock &>(*item);
            std::vector<SensItem> expanded;
            for (auto &sens : blk.sensitivity) {
                auto mem = _memories.find(sens.signal);
                if (mem == _memories.end()) {
                    expanded.push_back(sens);
                    continue;
                }
                for (int64_t addr = mem->second.lo;
                     addr <= mem->second.hi; ++addr) {
                    SensItem word = sens;
                    word.signal =
                        memoryWordName(sens.signal, addr);
                    expanded.push_back(word);
                }
            }
            blk.sensitivity = std::move(expanded);
        }
    }

    // -----------------------------------------------------------------
    // Partial continuous assigns
    // -----------------------------------------------------------------

    /**
     * Merge continuous assignments that drive constant bit/part
     * selects of one net into a single full-width assignment of a
     * concatenation (undriven bits read X).  Unrolled generate
     * blocks produce exactly this shape (`assign y[i] = ...` per
     * iteration); the elaborator itself only accepts whole-signal
     * continuous assignments.
     */
    void
    mergePartialContAssigns()
    {
        struct NetRange
        {
            int64_t lo = 0;
            uint32_t width = 1;
        };
        std::map<std::string, NetRange> nets;
        for (const auto &item : _m.items) {
            if (item->kind != Item::Kind::Net)
                continue;
            const auto &n = static_cast<const NetDecl &>(*item);
            NetRange r;
            if (n.msb) {
                auto mv = analysis::tryConstEval(*n.msb, _params);
                auto lv = analysis::tryConstEval(*n.lsb, _params);
                if (!mv || !lv || mv->hasX() || lv->hasX())
                    continue;
                int64_t msb = static_cast<int64_t>(mv->toUint64());
                int64_t lsb = static_cast<int64_t>(lv->toUint64());
                r.lo = std::min(msb, lsb);
                r.width =
                    static_cast<uint32_t>(std::llabs(msb - lsb)) + 1u;
            }
            nets[n.name] = r;
        }

        // Constant slices collected per driven net.
        struct Piece
        {
            int64_t lo = 0;
            int64_t hi = 0;
            ExprPtr rhs;
            const ContAssign *src = nullptr;
        };
        std::map<std::string, std::vector<Piece>> banks;
        for (const auto &item : _m.items) {
            if (item->kind != Item::Kind::ContAssign)
                continue;
            const auto &a = static_cast<const ContAssign &>(*item);
            std::string name;
            int64_t sel_hi = 0, sel_lo = 0;
            if (a.lhs->kind == Expr::Kind::Index) {
                const auto &ix = static_cast<IndexExpr &>(*a.lhs);
                if (ix.base->kind != Expr::Kind::Ident)
                    continue;
                auto iv = analysis::tryConstEval(*ix.index, _params);
                if (!iv || iv->hasX())
                    continue;
                name = static_cast<IdentExpr &>(*ix.base).name;
                sel_hi = sel_lo = static_cast<int64_t>(iv->toUint64());
            } else if (a.lhs->kind == Expr::Kind::RangeSelect) {
                const auto &rs =
                    static_cast<RangeSelectExpr &>(*a.lhs);
                if (rs.base->kind != Expr::Kind::Ident)
                    continue;
                auto mv = analysis::tryConstEval(*rs.msb, _params);
                auto lv = analysis::tryConstEval(*rs.lsb, _params);
                if (!mv || !lv || mv->hasX() || lv->hasX())
                    continue;
                name = static_cast<IdentExpr &>(*rs.base).name;
                sel_hi = static_cast<int64_t>(mv->toUint64());
                sel_lo = static_cast<int64_t>(lv->toUint64());
                if (sel_hi < sel_lo)
                    std::swap(sel_hi, sel_lo);
            } else {
                continue;
            }
            auto net = nets.find(name);
            if (net == nets.end())
                continue;
            const NetRange &r = net->second;
            int64_t p_lo = sel_lo - r.lo;
            int64_t p_hi = sel_hi - r.lo;
            if (p_lo < 0 || p_hi >= r.width) {
                fatal(format("line %u:%u: continuous assignment to "
                             "bits [%lld:%lld] of '%s' is out of "
                             "range",
                             a.loc.line, a.loc.col,
                             static_cast<long long>(sel_hi),
                             static_cast<long long>(sel_lo),
                             name.c_str()));
            }
            uint32_t piece_width =
                static_cast<uint32_t>(p_hi - p_lo) + 1u;
            Piece piece;
            piece.lo = p_lo;
            piece.hi = p_hi;
            piece.rhs = wrapWidth(a.rhs->clone(), piece_width);
            piece.src = &a;
            banks[name].push_back(std::move(piece));
        }
        if (banks.empty())
            return;

        // Assemble one full-width assign per driven net, filling
        // undriven bits with X.
        std::map<const ContAssign *, ItemPtr> replacement;
        std::set<const ContAssign *> drop;
        for (auto &[name, pieces] : banks) {
            const NetRange &r = nets.at(name);
            std::sort(pieces.begin(), pieces.end(),
                      [](const Piece &a, const Piece &b) {
                          return a.lo < b.lo;
                      });
            for (size_t i = 1; i < pieces.size(); ++i) {
                if (pieces[i].lo <= pieces[i - 1].hi) {
                    const ContAssign &a = *pieces[i].src;
                    fatal(format("line %u:%u: bit %lld of '%s' has "
                                 "multiple continuous drivers",
                                 a.loc.line, a.loc.col,
                                 static_cast<long long>(pieces[i].lo +
                                                        r.lo),
                                 name.c_str()));
                }
            }
            SourceLoc loc = pieces.front().src->loc;
            // Concat parts are written MSB first.
            std::vector<ExprPtr> parts;
            int64_t next = r.width; // first unfilled bit from the top
            for (auto it = pieces.rbegin(); it != pieces.rend();
                 ++it) {
                if (it->hi + 1 < next) {
                    parts.push_back(makeXLiteral(
                        static_cast<uint32_t>(next - it->hi - 1),
                        loc));
                }
                next = it->lo;
                parts.push_back(std::move(it->rhs));
            }
            if (next > 0) {
                parts.push_back(
                    makeXLiteral(static_cast<uint32_t>(next), loc));
            }
            ExprPtr rhs;
            if (parts.size() == 1) {
                rhs = std::move(parts.front());
            } else {
                auto *cat = new ConcatExpr(std::move(parts));
                cat->id = _m.newNodeId();
                cat->loc = loc;
                rhs = ExprPtr(cat);
            }
            auto *merged = new ContAssign();
            merged->id = _m.newNodeId();
            merged->loc = loc;
            merged->lhs = makeIdent(name, loc);
            merged->rhs = std::move(rhs);
            replacement[pieces.front().src] = ItemPtr(merged);
            for (size_t i = 1; i < pieces.size(); ++i)
                drop.insert(pieces[i].src);
        }

        std::vector<ItemPtr> out;
        out.reserve(_m.items.size());
        for (auto &item : _m.items) {
            if (item->kind == Item::Kind::ContAssign) {
                const auto *a =
                    static_cast<const ContAssign *>(item.get());
                if (drop.count(a))
                    continue;
                auto rep = replacement.find(a);
                if (rep != replacement.end()) {
                    out.push_back(std::move(rep->second));
                    continue;
                }
            }
            out.push_back(std::move(item));
        }
        _m.items = std::move(out);
    }

    /** The memory a (possibly indexed) base expression names, if any. */
    const MemInfo *
    memOf(const Expr &base)
    {
        if (base.kind != Expr::Kind::Ident)
            return nullptr;
        auto it =
            _memories.find(static_cast<const IdentExpr &>(base).name);
        return it == _memories.end() ? nullptr : &it->second;
    }

    void
    lowerMemoryWrite(StmtPtr &s)
    {
        if (s->kind != Stmt::Kind::Assign)
            return;
        auto &a = static_cast<AssignStmt &>(*s);
        // mem[addr] <= rhs
        if (a.lhs->kind == Expr::Kind::Index) {
            auto &ix = static_cast<IndexExpr &>(*a.lhs);
            if (const MemInfo *mem = memOf(*ix.base)) {
                rewriteWordWrite(s, a, ix, *mem);
                return;
            }
            // mem[addr][bit] <= rhs: resolve the word, keep the
            // bit-select.
            if (ix.base->kind == Expr::Kind::Index) {
                auto &inner = static_cast<IndexExpr &>(*ix.base);
                if (const MemInfo *mem = memOf(*inner.base)) {
                    inner.base = resolveConstWord(
                        inner, *mem,
                        "bit-select write to a memory word");
                    // Collapse Index(Ident word, bit).
                    ix.base = std::move(inner.base);
                }
            }
            return;
        }
        if (a.lhs->kind == Expr::Kind::RangeSelect) {
            auto &r = static_cast<RangeSelectExpr &>(*a.lhs);
            if (r.base->kind == Expr::Kind::Index) {
                auto &inner = static_cast<IndexExpr &>(*r.base);
                if (const MemInfo *mem = memOf(*inner.base)) {
                    r.base = resolveConstWord(
                        inner, *mem,
                        "part-select write to a memory word");
                }
            }
            return;
        }
        if (a.lhs->kind == Expr::Kind::Concat) {
            for (auto &part :
                 static_cast<ConcatExpr &>(*a.lhs).parts) {
                if (part->kind != Expr::Kind::Index)
                    continue;
                auto &ix = static_cast<IndexExpr &>(*part);
                if (const MemInfo *mem = memOf(*ix.base)) {
                    part = resolveConstWord(
                        ix, *mem,
                        "memory write inside a concatenation");
                }
            }
        }
    }

    /**
     * Resolve mem[constant] to the word register; used where a
     * dynamic address cannot be expressed (nested selects, concats).
     */
    ExprPtr
    resolveConstWord(IndexExpr &ix, const MemInfo &mem,
                     const char *what)
    {
        const auto &name =
            static_cast<const IdentExpr &>(*ix.base).name;
        auto idx = analysis::tryConstEval(*ix.index, _params);
        if (!idx || idx->hasX()) {
            fatal(format("line %u:%u: %s requires a constant address "
                         "(memory '%s')",
                         ix.loc.line, ix.loc.col, what,
                         name.c_str()));
        }
        int64_t addr = static_cast<int64_t>(idx->toUint64());
        if (addr < mem.lo || addr > mem.hi) {
            fatal(format("line %u:%u: address %lld is outside memory "
                         "'%s' range [%lld:%lld]",
                         ix.loc.line, ix.loc.col,
                         static_cast<long long>(addr), name.c_str(),
                         static_cast<long long>(mem.lo),
                         static_cast<long long>(mem.hi)));
        }
        return makeIdent(memoryWordName(name, addr), ix.loc);
    }

    void
    rewriteWordWrite(StmtPtr &s, AssignStmt &a, IndexExpr &ix,
                     const MemInfo &mem)
    {
        const auto &name =
            static_cast<const IdentExpr &>(*ix.base).name;
        auto idx = analysis::tryConstEval(*ix.index, _params);
        if (idx && !idx->hasX()) {
            int64_t addr = static_cast<int64_t>(idx->toUint64());
            if (addr < mem.lo || addr > mem.hi) {
                logMessage(LogLevel::Warn,
                           format("line %u:%u: write to '%s[%lld]' is "
                                  "out of range; dropped",
                                  a.loc.line, a.loc.col, name.c_str(),
                                  static_cast<long long>(addr)));
                auto *empty = new EmptyStmt();
                empty->id = s->id;
                empty->loc = s->loc;
                s.reset(empty);
                return;
            }
            a.lhs = makeIdent(memoryWordName(name, addr), ix.loc);
            return;
        }
        // Dynamic address: one guarded write per word; an X or
        // out-of-range address matches no guard and drops the write,
        // as in event-driven simulation.
        StmtPtr chain;
        for (int64_t addr = mem.hi; addr >= mem.lo; --addr) {
            auto *eq = new BinaryExpr(
                BinaryOp::Eq, ix.index->clone(),
                makeLiteral(32, static_cast<uint64_t>(addr), ix.loc));
            eq->id = _m.newNodeId();
            eq->loc = ix.loc;
            auto *write = new AssignStmt(
                makeIdent(memoryWordName(name, addr), ix.loc),
                a.rhs->clone(), a.blocking);
            write->id = _m.newNodeId();
            write->loc = a.loc;
            auto *branch = new IfStmt(ExprPtr(eq), StmtPtr(write),
                                      std::move(chain));
            branch->id = _m.newNodeId();
            branch->loc = a.loc;
            chain = StmtPtr(branch);
        }
        if (!chain) {
            chain = StmtPtr(new EmptyStmt());
            chain->id = s->id;
        }
        s = std::move(chain);
    }

    void
    lowerContAssignTarget(ContAssign &a)
    {
        if (a.lhs->kind != Expr::Kind::Index)
            return;
        auto &ix = static_cast<IndexExpr &>(*a.lhs);
        if (const MemInfo *mem = memOf(*ix.base)) {
            a.lhs = resolveConstWord(
                ix, *mem, "continuous assignment to a memory");
        }
    }

    ExprPtr
    lowerMemoryRead(IndexExpr &ix, const MemInfo &mem)
    {
        const auto &name =
            static_cast<const IdentExpr &>(*ix.base).name;
        auto idx = analysis::tryConstEval(*ix.index, _params);
        if (idx && !idx->hasX()) {
            int64_t addr = static_cast<int64_t>(idx->toUint64());
            if (addr < mem.lo || addr > mem.hi) {
                logMessage(LogLevel::Warn,
                           format("line %u:%u: read of '%s[%lld]' is "
                                  "out of range; reads as X",
                                  ix.loc.line, ix.loc.col,
                                  name.c_str(),
                                  static_cast<long long>(addr)));
                return makeXLiteral(mem.width, ix.loc);
            }
            return makeIdent(memoryWordName(name, addr), ix.loc);
        }
        // Dynamic address: select chain ending in X (unmatched or X
        // address reads all-X).
        ExprPtr acc = makeXLiteral(mem.width, ix.loc);
        for (int64_t addr = mem.hi; addr >= mem.lo; --addr) {
            auto *eq = new BinaryExpr(
                BinaryOp::Eq, ix.index->clone(),
                makeLiteral(32, static_cast<uint64_t>(addr), ix.loc));
            eq->id = _m.newNodeId();
            eq->loc = ix.loc;
            auto *sel = new TernaryExpr(
                ExprPtr(eq), makeIdent(memoryWordName(name, addr),
                                       ix.loc),
                std::move(acc));
            sel->id = _m.newNodeId();
            sel->loc = ix.loc;
            acc = ExprPtr(sel);
        }
        return acc;
    }

    Module &_m;
    const ConstEnv &_overrides;
    ConstEnv _params;
    int _genblk = 0;
    std::map<std::string, const FunctionDecl *> _functions;
    std::vector<ItemPtr> _function_storage;
    std::map<std::string, MemInfo> _memories;
};

} // namespace

std::string
memoryWordName(const std::string &mem, int64_t addr)
{
    return mem + "__w" + signedSuffix(addr);
}

void
lowerModule(Module &module, const ConstEnv &overrides)
{
    Lowerer(module, overrides).run();
}

} // namespace rtlrepair::elaborate
