/**
 * @file
 * Lowering of the extended synthesizable subset onto the core subset.
 *
 * Three source-level features are compiled away before flattening and
 * elaboration ever see them, so every backend (elaborator, event
 * simulator, vectorized simulator, SMT/gate encodings) agrees on their
 * semantics by construction:
 *
 *  - `generate`/`genvar` for-blocks and if-generates are unrolled:
 *    each iteration's items are cloned with the genvar replaced by a
 *    literal and body-local names uniquified as `<label>__<i>__<name>`.
 *  - `function` calls are inlined into pure expressions.  The body is
 *    evaluated symbolically (blocking assignments, if/case, constant
 *    for-loops); the result is width-adjusted to the declared return
 *    range.
 *  - memories (`reg [7:0] mem [0:15]`) are bit-blasted into one
 *    register per word (`mem__w<addr>`).  Constant-index accesses
 *    resolve to the word directly; dynamic reads become a select
 *    chain ending in X, dynamic writes an if-chain so an X or
 *    out-of-range address drops the write — matching event-driven
 *    Verilog simulation.
 */
#ifndef RTLREPAIR_ELABORATE_LOWER_HPP
#define RTLREPAIR_ELABORATE_LOWER_HPP

#include "analysis/const_eval.hpp"
#include "verilog/ast.hpp"

namespace rtlrepair::elaborate {

/**
 * Lower @p module in place.  @p overrides are top-level parameter
 * overrides (generate bounds and memory depths see them).
 * @throws FatalError on constructs outside the subset (recursive
 *         functions, non-constant generate bounds, bare memory
 *         references, ...).
 */
void lowerModule(verilog::Module &module,
                 const analysis::ConstEnv &overrides = {});

/** Name of the lowered register holding @p mem word @p addr. */
std::string memoryWordName(const std::string &mem, int64_t addr);

/** Maximum addressable words per memory accepted by the lowering. */
constexpr int64_t kMaxMemoryWords = 4096;

/** Maximum generate-for iterations before we assume divergence. */
constexpr int64_t kMaxGenerateIterations = 4096;

} // namespace rtlrepair::elaborate

#endif // RTLREPAIR_ELABORATE_LOWER_HPP
