#include "elaborate/elaborate.hpp"

#include "elaborate/lower.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/process_info.hpp"
#include "analysis/widths.hpp"
#include "ir/builder.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/telemetry.hpp"
#include "verilog/ast_util.hpp"

namespace rtlrepair::elaborate {

using namespace verilog;
using analysis::ConstEnv;
using analysis::NetRange;
using analysis::ProcessInfo;
using analysis::SymbolTable;
using bv::Value;
using ir::Builder;
using ir::NodeKind;
using ir::NodeRef;

namespace {

constexpr int kMaxInstanceDepth = 16;

// ---------------------------------------------------------------------
// Instance flattening
// ---------------------------------------------------------------------

const Module *
findLibraryModule(const std::vector<const Module *> &library,
                  const std::string &name)
{
    for (const Module *m : library) {
        if (m && m->name == name)
            return m;
    }
    return nullptr;
}

/** Flattens a module hierarchy into a single module. */
class Flattener
{
  public:
    explicit Flattener(const ElaborateOptions &opts) : _opts(opts) {}

    std::unique_ptr<Module>
    run(const Module &top)
    {
        _dest = top.clone();
        // Compile generate blocks, function calls, and memories away
        // before flattening so instance bodies only contain the core
        // subset.
        lowerModule(*_dest, _opts.param_overrides);
        SymbolTable top_table =
            SymbolTable::build(*_dest, _opts.param_overrides);
        std::vector<ItemPtr> original = std::move(_dest->items);
        _dest->items.clear();
        for (auto &item : original) {
            if (item->kind != Item::Kind::Instance) {
                _dest->items.push_back(std::move(item));
                continue;
            }
            flattenInstance(static_cast<const Instance &>(*item),
                            top_table.params(), "", 0);
        }
        return std::move(_dest);
    }

  private:
    void
    flattenInstance(const Instance &inst, const ConstEnv &parent_env,
                    const std::string &parent_prefix, int depth)
    {
        if (depth > kMaxInstanceDepth)
            fatal("instance hierarchy too deep (recursive modules?)");
        const Module *child_src =
            findLibraryModule(_opts.library, inst.module_name);
        if (!child_src)
            fatal("unknown module in instantiation: " + inst.module_name);
        std::string prefix = parent_prefix + inst.instance_name + "__";

        // Resolve parameter overrides for the child.
        ConstEnv overrides;
        if (!inst.params.empty()) {
            std::vector<std::string> param_names;
            for (const auto &item : child_src->items) {
                if (item->kind == Item::Kind::Param) {
                    const auto &p = static_cast<const ParamDecl &>(*item);
                    if (!p.is_local)
                        param_names.push_back(p.name);
                }
            }
            size_t ordered = 0;
            for (const auto &conn : inst.params) {
                if (!conn.expr)
                    continue;
                Value v = analysis::constEval(*conn.expr, parent_env);
                if (!conn.port.empty()) {
                    overrides[conn.port] = v;
                } else {
                    // Malformed instantiations come straight from the
                    // user's source: FatalError, never a panic.
                    if (ordered >= param_names.size())
                        fatal("too many ordered parameter overrides");
                    overrides[param_names[ordered++]] = v;
                }
            }
        }
        // Lower the child under its per-instance parameter bindings:
        // generates may unroll differently for every instantiation.
        std::unique_ptr<Module> lowered = child_src->clone();
        lowerModule(*lowered, overrides);
        const Module *child = lowered.get();
        SymbolTable child_table = SymbolTable::build(*child, overrides);
        const ConstEnv &child_env = child_table.params();

        // Emit renamed copies of the child's items.
        for (const auto &item : child->items) {
            switch (item->kind) {
              case Item::Kind::Param:
                break; // substituted by renameExpr
              case Item::Kind::Net: {
                const auto &n = static_cast<const NetDecl &>(*item);
                auto *decl = new NetDecl();
                decl->id = _dest->newNodeId();
                decl->loc = n.loc;
                decl->name = prefix + n.name;
                decl->net = n.net;
                decl->is_signed = n.is_signed;
                decl->dir = PortDir::Unknown;
                const NetRange &range = child_table.rangeOf(n.name);
                if (range.width > 1 || range.lsb != 0 || n.msb) {
                    decl->msb = makeLiteral(static_cast<uint64_t>(
                        range.lsb + range.width - 1));
                    decl->lsb =
                        makeLiteral(static_cast<uint64_t>(range.lsb));
                }
                _dest->items.emplace_back(decl);
                break;
              }
              case Item::Kind::ContAssign:
              case Item::Kind::Always:
              case Item::Kind::Initial: {
                ItemPtr copy = item->clone();
                renameItem(*copy, prefix, child_env);
                refreshIds(*copy);
                _dest->items.push_back(std::move(copy));
                break;
              }
              case Item::Kind::Instance:
                flattenInstance(static_cast<const Instance &>(*item),
                                child_env, prefix, depth + 1);
                break;
              case Item::Kind::Function:
              case Item::Kind::Genvar:
              case Item::Kind::GenFor:
              case Item::Kind::GenIf:
                panic("generate/function item survived lowering");
            }
        }

        // Connect ports.
        size_t ordered = 0;
        for (const auto &conn : inst.ports) {
            std::string port_name = conn.port;
            if (port_name.empty()) {
                if (ordered >= child->ports.size())
                    fatal("too many ordered port connections");
                port_name = child->ports[ordered++].name;
            }
            PortDir dir = child->portDir(port_name);
            if (dir == PortDir::Unknown) {
                fatal(format("instance '%s': unknown port '%s'",
                             inst.instance_name.c_str(),
                             port_name.c_str()));
            }
            if (!conn.expr)
                continue; // unconnected: child input floats to X
            ExprPtr outer = conn.expr->clone();
            if (!parent_prefix.empty())
                renameExpr(outer, parent_prefix, parent_env);
            auto *assign = new ContAssign();
            assign->id = _dest->newNodeId();
            assign->loc = inst.loc;
            auto *child_net = new IdentExpr(prefix + port_name);
            child_net->id = _dest->newNodeId();
            if (dir == PortDir::Input) {
                assign->lhs = ExprPtr(child_net);
                assign->rhs = std::move(outer);
            } else if (dir == PortDir::Output) {
                assign->lhs = std::move(outer);
                assign->rhs = ExprPtr(child_net);
            } else {
                fatal("inout ports are outside the subset");
            }
            _dest->items.emplace_back(assign);
        }
    }

    ExprPtr
    makeLiteral(uint64_t v)
    {
        auto *lit = new LiteralExpr(Value::fromUint(32, v), false);
        lit->id = _dest->newNodeId();
        return ExprPtr(lit);
    }

    /** Rename idents with @p prefix, substituting parameters. */
    void
    renameExpr(ExprPtr &expr, const std::string &prefix,
               const ConstEnv &env)
    {
        rewriteExprTree(expr, [&](ExprPtr &e) {
            if (e->kind != Expr::Kind::Ident)
                return;
            auto &ident = static_cast<IdentExpr &>(*e);
            auto param = env.find(ident.name);
            if (param != env.end()) {
                auto *lit = new LiteralExpr(param->second, true);
                lit->id = e->id;
                lit->loc = e->loc;
                e.reset(lit);
                return;
            }
            ident.name = prefix + ident.name;
        });
    }

    void
    renameItem(Item &item, const std::string &prefix, const ConstEnv &env)
    {
        switch (item.kind) {
          case Item::Kind::ContAssign: {
            auto &a = static_cast<ContAssign &>(item);
            renameExpr(a.lhs, prefix, env);
            renameExpr(a.rhs, prefix, env);
            return;
          }
          case Item::Kind::Always: {
            auto &blk = static_cast<AlwaysBlock &>(item);
            for (auto &sens : blk.sensitivity) {
                if (!sens.signal.empty())
                    sens.signal = prefix + sens.signal;
            }
            rewriteStmtExprs(blk.body, [&](ExprPtr &e) {
                renameExpr(e, prefix, env);
            });
            return;
          }
          case Item::Kind::Initial: {
            auto &blk = static_cast<InitialBlock &>(item);
            rewriteStmtExprs(blk.body, [&](ExprPtr &e) {
                renameExpr(e, prefix, env);
            });
            return;
          }
          default:
            return;
        }
    }

    /** Give cloned child nodes fresh ids in the parent's space. */
    void
    refreshIds(Item &item)
    {
        item.id = _dest->newNodeId();
        auto fresh_expr = [this](ExprPtr &e) {
            e->id = _dest->newNodeId();
        };
        switch (item.kind) {
          case Item::Kind::ContAssign: {
            auto &a = static_cast<ContAssign &>(item);
            rewriteExprTree(a.lhs, fresh_expr);
            rewriteExprTree(a.rhs, fresh_expr);
            return;
          }
          case Item::Kind::Always: {
            auto &blk = static_cast<AlwaysBlock &>(item);
            rewriteStmtTree(blk.body, [this](StmtPtr &s) {
                s->id = _dest->newNodeId();
            });
            rewriteStmtExprs(blk.body, fresh_expr);
            return;
          }
          case Item::Kind::Initial: {
            auto &blk = static_cast<InitialBlock &>(item);
            rewriteStmtTree(blk.body, [this](StmtPtr &s) {
                s->id = _dest->newNodeId();
            });
            rewriteStmtExprs(blk.body, fresh_expr);
            return;
          }
          default:
            return;
        }
    }

    const ElaborateOptions &_opts;
    std::unique_ptr<Module> _dest;
};

// ---------------------------------------------------------------------
// Elaboration proper
// ---------------------------------------------------------------------

/** Sentinel for "assigned somewhere in the process but not yet". */
constexpr NodeRef kUnassigned = ir::kNullRef;

/** Assigned base names of a statement tree (post-unrolling). */
void
collectAssigned(const Stmt &stmt, std::set<std::string> &out)
{
    switch (stmt.kind) {
      case Stmt::Kind::Block:
        for (const auto &s : static_cast<const BlockStmt &>(stmt).stmts)
            collectAssigned(*s, out);
        return;
      case Stmt::Kind::If: {
        const auto &i = static_cast<const IfStmt &>(stmt);
        collectAssigned(*i.then_stmt, out);
        if (i.else_stmt)
            collectAssigned(*i.else_stmt, out);
        return;
      }
      case Stmt::Kind::Case: {
        const auto &c = static_cast<const CaseStmt &>(stmt);
        for (const auto &item : c.items)
            collectAssigned(*item.body, out);
        if (c.default_body)
            collectAssigned(*c.default_body, out);
        return;
      }
      case Stmt::Kind::Assign: {
        const auto &a = static_cast<const AssignStmt &>(stmt);
        if (a.lhs->kind == Expr::Kind::Concat) {
            for (const auto &part :
                 static_cast<const ConcatExpr &>(*a.lhs).parts) {
                out.insert(analysis::lhsBaseName(*part));
            }
        } else {
            out.insert(analysis::lhsBaseName(*a.lhs));
        }
        return;
      }
      case Stmt::Kind::For:
        collectAssigned(*static_cast<const ForStmt &>(stmt).body, out);
        return;
      case Stmt::Kind::Empty:
        return;
    }
}

/** How a signal is driven. */
enum class DriverKind { Input, State, Comb };

class Elaborator
{
  public:
    Elaborator(const Module &top, const ElaborateOptions &opts)
        : _opts(opts), _builder(top.name)
    {
        Flattener flattener(opts);
        _mod = flattener.run(top);
        _table = SymbolTable::build(*_mod, opts.param_overrides);
        for (const auto &sv : opts.synth_vars) {
            _synth_names.insert(sv.name);
            _table.addNet(sv.name, NetRange{sv.width, 0});
        }
    }

    ir::TransitionSystem
    run()
    {
        classifySignals();
        createInputs();
        createStates();
        createSynthVars();
        elaborateClockedProcesses();
        // Elaborate comb signals that nothing else pulled in.
        for (const auto &[name, kind] : _driver) {
            if (kind == DriverKind::Comb)
                getSignal(name);
        }
        createOutputs();
        nameAllSignals();
        return _builder.finish();
    }

  private:
    // -- signal classification ------------------------------------------

    void
    classifySignals()
    {
        _processes = analysis::analyzeProcesses(*_mod);
        // Unroll for-loops once per process; loop variables are
        // substituted away and must not appear as driven signals.
        for (const auto &proc : _processes) {
            StmtPtr body = proc.block->body->clone();
            analysis::unrollFors(body, _table.params());
            std::set<std::string> assigned;
            collectAssigned(*body, assigned);
            _unrolled.push_back(std::move(body));
            _assigned.push_back(std::move(assigned));
        }

        // Wire aliases (pure `assign a = b;`) for clock resolution.
        for (const auto &item : _mod->items) {
            if (item->kind != Item::Kind::ContAssign)
                continue;
            const auto &a = static_cast<const ContAssign &>(*item);
            if (a.lhs->kind == Expr::Kind::Ident &&
                a.rhs->kind == Expr::Kind::Ident) {
                _alias_sources[static_cast<const IdentExpr &>(*a.lhs)
                                   .name] =
                    static_cast<const IdentExpr &>(*a.rhs).name;
            }
        }

        // Identify the clock.
        std::set<std::string> clock_candidates;
        for (const auto &proc : _processes) {
            if (proc.kind == ProcessInfo::Kind::Clocked)
                clock_candidates.insert(resolveAlias(proc.clock));
        }
        if (clock_candidates.size() > 1) {
            fatal("multiple clock domains are outside the subset: " +
                  join(std::vector<std::string>(clock_candidates.begin(),
                                                clock_candidates.end()),
                       ", "));
        }
        if (!clock_candidates.empty()) {
            _clock = *clock_candidates.begin();
            _clock_aliases = collectAliasesOf(_clock);
        }

        // Driver table.
        for (const auto &port : _mod->ports) {
            if (port.dir == PortDir::Unknown)
                fatal("port without direction: " + port.name);
            if (port.dir == PortDir::Inout)
                fatal("inout ports are outside the subset");
            if (port.dir == PortDir::Input)
                _driver[port.name] = DriverKind::Input;
        }
        for (const auto &item : _mod->items) {
            if (item->kind != Item::Kind::ContAssign)
                continue;
            const auto &a = static_cast<const ContAssign &>(*item);
            std::string name = analysis::lhsBaseName(*a.lhs);
            noteDriver(name, DriverKind::Comb);
            _cont_assigns[name] = &a;
        }
        for (size_t i = 0; i < _processes.size(); ++i) {
            const ProcessInfo &proc = _processes[i];
            DriverKind kind = proc.kind == ProcessInfo::Kind::Clocked
                                  ? DriverKind::State
                                  : DriverKind::Comb;
            for (const auto &name : _assigned[i]) {
                noteDriver(name, kind);
                _defining_process[name] = i;
            }
        }
    }

    void
    noteDriver(const std::string &name, DriverKind kind)
    {
        auto [it, inserted] = _driver.emplace(name, kind);
        if (!inserted) {
            if (it->second == DriverKind::Input)
                fatal("assignment to input port: " + name);
            fatal("signal has multiple drivers: " + name);
        }
    }

    std::string
    resolveAlias(const std::string &name) const
    {
        std::string cur = name;
        for (int i = 0; i < 32; ++i) {
            auto it = _alias_sources.find(cur);
            if (it == _alias_sources.end())
                return cur;
            cur = it->second;
        }
        return cur;
    }

    std::set<std::string>
    collectAliasesOf(const std::string &target) const
    {
        std::set<std::string> out{target};
        for (const auto &[alias, source] : _alias_sources) {
            (void)source;
            if (resolveAlias(alias) == target)
                out.insert(alias);
        }
        return out;
    }

    // -- IR leaf creation --------------------------------------------------

    void
    createInputs()
    {
        for (const auto &port : _mod->ports) {
            if (port.dir != PortDir::Input)
                continue;
            if (port.name == _clock)
                continue; // the clock is implicit in the IR
            _values[port.name] =
                _builder.input(port.name, _table.widthOf(port.name));
        }
    }

    void
    createStates()
    {
        for (size_t i = 0; i < _processes.size(); ++i) {
            if (_processes[i].kind != ProcessInfo::Kind::Clocked)
                continue;
            for (const auto &name : _assigned[i]) {
                if (_values.count(name))
                    continue;
                _values[name] =
                    _builder.state(name, _table.widthOf(name));
            }
        }
        applyInitialBlocks();
    }

    void
    applyInitialBlocks()
    {
        for (const auto &item : _mod->items) {
            if (item->kind != Item::Kind::Initial)
                continue;
            applyInitialStmt(
                *static_cast<const InitialBlock &>(*item).body);
        }
    }

    void
    applyInitialStmt(const Stmt &stmt)
    {
        switch (stmt.kind) {
          case Stmt::Kind::Block:
            for (const auto &s :
                 static_cast<const BlockStmt &>(stmt).stmts) {
                applyInitialStmt(*s);
            }
            return;
          case Stmt::Kind::Assign: {
            const auto &a = static_cast<const AssignStmt &>(stmt);
            std::string name = analysis::lhsBaseName(*a.lhs);
            auto driver = _driver.find(name);
            if (driver == _driver.end() ||
                driver->second != DriverKind::State) {
                fatal("initial block assigns non-register: " + name);
            }
            Value v = analysis::constEval(*a.rhs, _table.params());
            uint32_t w = _table.widthOf(name);
            if (v.width() < w)
                v = v.zext(w);
            else if (v.width() > w)
                v = v.slice(w - 1, 0);
            _builder.setInit(_values.at(name), v);
            return;
          }
          case Stmt::Kind::Empty:
            return;
          default:
            fatal("initial blocks may only contain constant register "
                  "assignments");
        }
    }

    void
    createSynthVars()
    {
        for (const auto &sv : _opts.synth_vars) {
            _values[sv.name] =
                _builder.synthVar(sv.name, sv.width, sv.is_phi);
        }
    }

    // -- signal resolution ---------------------------------------------

    NodeRef
    getSignal(const std::string &name)
    {
        auto it = _values.find(name);
        if (it != _values.end())
            return it->second;
        if (_clock_aliases.count(name))
            fatal("clock signal used as data: " + name);

        auto driver = _driver.find(name);
        if (driver == _driver.end()) {
            if (!_table.isNet(name))
                fatal("reference to undeclared signal: " + name);
            logMessage(LogLevel::Info, "undriven signal: " + name);
            NodeRef ref =
                _builder.constant(Value::allX(_table.widthOf(name)));
            _values[name] = ref;
            return ref;
        }

        check(driver->second == DriverKind::Comb,
              "inputs and states are pre-registered");
        if (!_in_progress.insert(name).second)
            fatal("combinational loop through signal: " + name);

        auto cont = _cont_assigns.find(name);
        if (cont != _cont_assigns.end())
            elaborateContAssign(*cont->second);
        else
            elaborateCombProcess(_defining_process.at(name));
        _in_progress.erase(name);
        return _values.at(name);
    }

    void
    elaborateContAssign(const ContAssign &assign)
    {
        std::string name = analysis::lhsBaseName(*assign.lhs);
        uint32_t width = _table.widthOf(name);
        if (assign.lhs->kind != Expr::Kind::Ident) {
            fatal("continuous assignment to a bit/part select is "
                  "outside the subset: " +
                  name);
        }
        NodeRef rhs = elabExpr(*assign.rhs, nullptr, width);
        _values[name] = _builder.resize(rhs, width);
    }

    // -- process execution -----------------------------------------------

    /** Blocking-visible and non-blocking environments of a process. */
    struct Env
    {
        std::map<std::string, NodeRef> current;
        std::map<std::string, NodeRef> nba;
    };

    void
    elaborateCombProcess(size_t proc_index)
    {
        if (_comb_done.count(proc_index))
            return;
        const Stmt &body = *_unrolled[proc_index];

        Env env;
        for (const auto &name : _assigned[proc_index])
            env.current[name] = kUnassigned;

        execStmt(body, env);

        for (const auto &name : _assigned[proc_index]) {
            NodeRef val = env.current.at(name);
            if (val == kUnassigned)
                val = latchX(name);
            _values[name] = val;
        }
        _comb_done.insert(proc_index);
    }

    void
    elaborateClockedProcesses()
    {
        for (size_t i = 0; i < _processes.size(); ++i) {
            const ProcessInfo &proc = _processes[i];
            if (proc.kind != ProcessInfo::Kind::Clocked)
                continue;
            if (proc.edge_signals.size() > 1) {
                logMessage(LogLevel::Warn,
                           "async set/reset edges converted to "
                           "synchronous semantics in " +
                               _mod->name);
            }

            const Stmt &body = *_unrolled[i];

            std::map<std::string, bool> uses_nba;
            scanAssignKinds(body, uses_nba);

            Env env;
            for (const auto &[name, nba] : uses_nba) {
                NodeRef state = _values.at(name);
                if (nba)
                    env.nba[name] = state;
                else
                    env.current[name] = state;
            }

            execStmt(body, env);

            for (const auto &[name, nba] : uses_nba) {
                NodeRef next =
                    nba ? env.nba.at(name) : env.current.at(name);
                _builder.setNext(_values.at(name), next);
            }
        }
    }

    void
    scanAssignKinds(const Stmt &stmt,
                    std::map<std::string, bool> &uses_nba)
    {
        switch (stmt.kind) {
          case Stmt::Kind::Block:
            for (const auto &s :
                 static_cast<const BlockStmt &>(stmt).stmts) {
                scanAssignKinds(*s, uses_nba);
            }
            return;
          case Stmt::Kind::If: {
            const auto &i = static_cast<const IfStmt &>(stmt);
            scanAssignKinds(*i.then_stmt, uses_nba);
            if (i.else_stmt)
                scanAssignKinds(*i.else_stmt, uses_nba);
            return;
          }
          case Stmt::Kind::Case: {
            const auto &c = static_cast<const CaseStmt &>(stmt);
            for (const auto &item : c.items)
                scanAssignKinds(*item.body, uses_nba);
            if (c.default_body)
                scanAssignKinds(*c.default_body, uses_nba);
            return;
          }
          case Stmt::Kind::Assign: {
            const auto &a = static_cast<const AssignStmt &>(stmt);
            if (a.lhs->kind == Expr::Kind::Concat) {
                for (const auto &part :
                     static_cast<const ConcatExpr &>(*a.lhs).parts) {
                    noteAssignKind(analysis::lhsBaseName(*part),
                                   !a.blocking, uses_nba);
                }
            } else {
                noteAssignKind(analysis::lhsBaseName(*a.lhs),
                               !a.blocking, uses_nba);
            }
            return;
          }
          default:
            return;
        }
    }

    void
    noteAssignKind(const std::string &name, bool nba,
                   std::map<std::string, bool> &uses_nba)
    {
        auto [it, inserted] = uses_nba.emplace(name, nba);
        if (!inserted && it->second != nba) {
            fatal("signal assigned with both blocking and non-blocking "
                  "assignments: " +
                  name);
        }
    }

    void
    execStmt(const Stmt &stmt, Env &env)
    {
        switch (stmt.kind) {
          case Stmt::Kind::Block:
            for (const auto &s :
                 static_cast<const BlockStmt &>(stmt).stmts) {
                execStmt(*s, env);
            }
            return;
          case Stmt::Kind::If: {
            const auto &i = static_cast<const IfStmt &>(stmt);
            NodeRef cond = _builder.truthy(elabExpr(*i.cond, &env, 0));
            Env then_env = env;
            Env else_env = env;
            execStmt(*i.then_stmt, then_env);
            if (i.else_stmt)
                execStmt(*i.else_stmt, else_env);
            mergeEnvs(cond, then_env, else_env, env);
            return;
          }
          case Stmt::Kind::Case:
            execCase(static_cast<const CaseStmt &>(stmt), env);
            return;
          case Stmt::Kind::Assign: {
            const auto &a = static_cast<const AssignStmt &>(stmt);
            execAssign(a, env);
            return;
          }
          case Stmt::Kind::Empty:
            return;
          case Stmt::Kind::For:
            panic("for-loops must be unrolled before execution");
        }
    }

    void
    execCase(const CaseStmt &c, Env &env)
    {
        // Context width: subject and labels harmonize.
        uint32_t ctx = analysis::exprWidth(*c.subject, _table);
        for (const auto &item : c.items) {
            for (const auto &label : item.labels)
                ctx = std::max(ctx, analysis::exprWidth(*label, _table));
        }
        NodeRef subject =
            _builder.resize(elabExpr(*c.subject, &env, ctx), ctx);

        struct Arm
        {
            NodeRef cond;
            const Stmt *body;
        };
        std::vector<Arm> arms;
        std::set<uint64_t> label_values;
        bool labels_const = true;
        for (const auto &item : c.items) {
            NodeRef cond = ir::kNullRef;
            for (const auto &label : item.labels) {
                NodeRef one =
                    caseLabelMatch(subject, ctx, *label, c.mode, env);
                cond = cond == ir::kNullRef
                           ? one
                           : _builder.binary(NodeKind::Or, cond, one);
                auto lit =
                    analysis::tryConstEval(*label, _table.params());
                if (lit && !lit->hasX() && lit->width() <= 64) {
                    label_values.insert(lit->toUint64());
                } else {
                    labels_const = false;
                }
            }
            arms.push_back(Arm{cond, item.body.get()});
        }

        // Full-case detection: a plain case with constant labels that
        // cover the whole subject range needs no default (synthesis
        // treats the last arm as the catch-all).
        bool full_case = false;
        if (!c.default_body && c.mode == CaseStmt::Mode::Plain &&
            labels_const && ctx <= 20 && !arms.empty()) {
            full_case = label_values.size() == (1ull << ctx);
        }

        Env result = env;
        size_t chain_end = arms.size();
        if (c.default_body) {
            execStmt(*c.default_body, result);
        } else if (full_case) {
            execStmt(*arms.back().body, result);
            chain_end = arms.size() - 1;
        }
        for (size_t i = chain_end; i-- > 0;) {
            Env arm_env = env;
            execStmt(*arms[i].body, arm_env);
            Env merged;
            mergeEnvs(arms[i].cond, arm_env, result, merged);
            result = std::move(merged);
        }
        env = std::move(result);
    }

    NodeRef
    caseLabelMatch(NodeRef subject, uint32_t sw, const Expr &label,
                   CaseStmt::Mode mode, Env &env)
    {
        auto lit = analysis::tryConstEval(label, _table.params());
        if (lit && lit->hasX() && mode != CaseStmt::Mode::Plain) {
            // Wildcard bits: compare only the known label bits.
            Value mask = Value::zeros(sw);
            Value bits = Value::zeros(sw);
            for (uint32_t i = 0; i < sw && i < lit->width(); ++i) {
                int b = lit->bit(i);
                if (b >= 0) {
                    mask.setBit(i, 1);
                    bits.setBit(i, b);
                }
            }
            NodeRef masked = _builder.binary(NodeKind::And, subject,
                                             _builder.constant(mask));
            return _builder.binary(NodeKind::Eq, masked,
                                   _builder.constant(bits));
        }
        NodeRef value = elabExpr(label, &env, sw);
        return _builder.binary(NodeKind::Eq, subject,
                               _builder.resize(value, sw));
    }

    void
    mergeEnvs(NodeRef cond, const Env &then_env, const Env &else_env,
              Env &out)
    {
        Env merged;
        mergeMaps(cond, then_env.current, else_env.current,
                  merged.current);
        mergeMaps(cond, then_env.nba, else_env.nba, merged.nba);
        out = std::move(merged);
    }

    void
    mergeMaps(NodeRef cond, const std::map<std::string, NodeRef> &t,
              const std::map<std::string, NodeRef> &e,
              std::map<std::string, NodeRef> &out)
    {
        for (const auto &[name, tv] : t) {
            auto it = e.find(name);
            NodeRef ev = it != e.end() ? it->second : kUnassigned;
            if (tv == ev) {
                out[name] = tv;
            } else if (tv == kUnassigned) {
                out[name] = _builder.ite(cond, latchX(name), ev);
            } else if (ev == kUnassigned) {
                out[name] = _builder.ite(cond, tv, latchX(name));
            } else {
                out[name] = _builder.ite(cond, tv, ev);
            }
        }
        for (const auto &[name, ev] : e) {
            if (!t.count(name))
                out[name] = ev;
        }
    }

    NodeRef
    latchX(const std::string &name)
    {
        if (!_opts.allow_latches) {
            fatal("latch inferred for signal (not synthesizable): " +
                  name);
        }
        return _builder.constant(Value::allX(_table.widthOf(name)));
    }

    void
    execAssign(const AssignStmt &a, Env &env)
    {
        if (a.lhs->kind == Expr::Kind::Concat) {
            // {hi, ..., lo} = rhs: the last part takes the low bits.
            const auto &c = static_cast<const ConcatExpr &>(*a.lhs);
            uint32_t total = 0;
            std::vector<uint32_t> widths;
            for (const auto &part : c.parts) {
                uint32_t w = lhsWidth(*part);
                widths.push_back(w);
                total += w;
            }
            NodeRef rhs =
                _builder.resize(elabExpr(*a.rhs, &env, total), total);
            uint32_t off = total;
            for (size_t i = 0; i < c.parts.size(); ++i) {
                off -= widths[i];
                NodeRef piece =
                    _builder.slice(rhs, off + widths[i] - 1, off);
                assignTo(*c.parts[i], piece, env, a.blocking);
            }
            return;
        }
        uint32_t ctx = lhsWidth(*a.lhs);
        NodeRef rhs = elabExpr(*a.rhs, &env, ctx);
        assignTo(*a.lhs, rhs, env, a.blocking);
    }

    /** Width of an assignment target (for RHS context sizing). */
    uint32_t
    lhsWidth(const Expr &lhs)
    {
        switch (lhs.kind) {
          case Expr::Kind::Ident:
            return _table.widthOf(
                static_cast<const IdentExpr &>(lhs).name);
          case Expr::Kind::Index:
            return 1;
          case Expr::Kind::RangeSelect: {
            const auto &r = static_cast<const RangeSelectExpr &>(lhs);
            int64_t msb = analysis::constEvalInt(*r.msb, _table.params());
            int64_t lsb = analysis::constEvalInt(*r.lsb, _table.params());
            return static_cast<uint32_t>(std::llabs(msb - lsb)) + 1u;
          }
          default:
            fatal("unsupported assignment target");
        }
    }

    void
    assignTo(const Expr &lhs, NodeRef rhs, Env &env, bool blocking)
    {
        std::string name = analysis::lhsBaseName(lhs);
        auto &target_map = blocking ? env.current : env.nba;
        auto slot = target_map.find(name);
        if (slot == target_map.end()) {
            // Mixed-kind in a comb process: fall back to blocking.
            slot = env.current.find(name);
            check(slot != env.current.end(),
                  "assignment to signal not tracked by process env: " +
                      name);
        }
        uint32_t width = _table.widthOf(name);

        NodeRef old_val = slot->second;
        if (old_val == kUnassigned && lhs.kind != Expr::Kind::Ident)
            old_val = latchX(name);

        slot->second = buildLhsWrite(lhs, old_val, rhs, width, env);
    }

    NodeRef
    buildLhsWrite(const Expr &lhs, NodeRef old_val, NodeRef rhs,
                  uint32_t width, Env &env)
    {
        switch (lhs.kind) {
          case Expr::Kind::Ident:
            return _builder.resize(rhs, width);
          case Expr::Kind::Index: {
            const auto &ix = static_cast<const IndexExpr &>(lhs);
            std::string base = analysis::lhsBaseName(*ix.base);
            int64_t lsb_off = _table.rangeOf(base).lsb;
            auto const_idx =
                analysis::tryConstEval(*ix.index, _table.params());
            NodeRef bit = _builder.resize(rhs, 1);
            if (const_idx && !const_idx->hasX()) {
                int64_t pos =
                    static_cast<int64_t>(const_idx->toUint64()) -
                    lsb_off;
                if (pos < 0 || pos >= static_cast<int64_t>(width)) {
                    logMessage(LogLevel::Warn,
                               "out-of-range constant bit write to " +
                                   base);
                    return old_val;
                }
                return splicePart(old_val, bit,
                                  static_cast<uint32_t>(pos), width);
            }
            NodeRef idx =
                _builder.resize(elabExpr(*ix.index, &env, 0), width);
            if (lsb_off != 0) {
                idx = _builder.binary(
                    NodeKind::Sub, idx,
                    _builder.constantUint(
                        width, static_cast<uint64_t>(lsb_off)));
            }
            NodeRef one = _builder.constantUint(width, 1);
            NodeRef mask = _builder.binary(NodeKind::Shl, one, idx);
            NodeRef cleared = _builder.binary(NodeKind::And, old_val,
                                              _builder.notOf(mask));
            NodeRef shifted = _builder.binary(
                NodeKind::Shl, _builder.zext(bit, width), idx);
            return _builder.binary(NodeKind::Or, cleared, shifted);
          }
          case Expr::Kind::RangeSelect: {
            const auto &r = static_cast<const RangeSelectExpr &>(lhs);
            std::string base = analysis::lhsBaseName(*r.base);
            int64_t lsb_off = _table.rangeOf(base).lsb;
            int64_t msb =
                analysis::constEvalInt(*r.msb, _table.params()) -
                lsb_off;
            int64_t lsb =
                analysis::constEvalInt(*r.lsb, _table.params()) -
                lsb_off;
            if (msb < lsb)
                std::swap(msb, lsb);
            // Out-of-range selects are written by the user, not by
            // the tool: FatalError, never a panic.
            if (!(lsb >= 0 && msb < static_cast<int64_t>(width)))
                fatal("part-select write out of range on " + base);
            uint32_t part_w = static_cast<uint32_t>(msb - lsb + 1);
            NodeRef part = _builder.resize(rhs, part_w);
            return splicePart(old_val, part,
                              static_cast<uint32_t>(lsb), width);
          }
          default:
            fatal("unsupported assignment target");
        }
    }

    /** Replace bits [pos +: width(part)] of old_val with part. */
    NodeRef
    splicePart(NodeRef old_val, NodeRef part, uint32_t pos,
               uint32_t width)
    {
        uint32_t pw = _builder.widthOf(part);
        check(pos + pw <= width, "splice out of range");
        NodeRef result = part;
        if (pos > 0) {
            NodeRef low = _builder.slice(old_val, pos - 1, 0);
            result = _builder.concat(result, low);
        }
        if (pos + pw < width) {
            NodeRef high = _builder.slice(old_val, width - 1, pos + pw);
            result = _builder.concat(high, result);
        }
        return result;
    }

    // -- expressions ------------------------------------------------------

    NodeRef
    readSignal(const std::string &name, Env *env)
    {
        if (env) {
            auto it = env->current.find(name);
            if (it != env->current.end()) {
                if (it->second == kUnassigned) {
                    fatal("signal read before assignment in "
                          "combinational process (latch/loop): " +
                          name);
                }
                return it->second;
            }
        }
        auto param = _table.params().find(name);
        if (param != _table.params().end())
            return _builder.constant(param->second);
        return getSignal(name);
    }

    /**
     * Elaborate an expression.  @p ctx is the context width (0 for
     * self-determined); arithmetic and bitwise operators compute at
     * max(operand widths, ctx), reproducing Verilog's
     * context-determined sizing so carries and shifts behave like a
     * real simulator.
     */
    NodeRef
    elabExpr(const Expr &expr, Env *env, uint32_t ctx)
    {
        switch (expr.kind) {
          case Expr::Kind::Ident:
            return readSignal(static_cast<const IdentExpr &>(expr).name,
                              env);
          case Expr::Kind::Literal:
            return _builder.constant(
                static_cast<const LiteralExpr &>(expr).value);
          case Expr::Kind::Call:
            panic("function call survived lowering");
          case Expr::Kind::Unary: {
            const auto &u = static_cast<const UnaryExpr &>(expr);
            switch (u.op) {
              case UnaryOp::BitNot: {
                NodeRef v = elabExpr(*u.operand, env, ctx);
                if (ctx > _builder.widthOf(v))
                    v = _builder.resize(v, ctx);
                return _builder.notOf(v);
              }
              case UnaryOp::LogicNot:
                return _builder.notOf(
                    _builder.truthy(elabExpr(*u.operand, env, 0)));
              case UnaryOp::Minus: {
                NodeRef v = elabExpr(*u.operand, env, ctx);
                if (ctx > _builder.widthOf(v))
                    v = _builder.resize(v, ctx);
                return _builder.unary(NodeKind::Neg, v);
              }
              case UnaryOp::Plus:
                return elabExpr(*u.operand, env, ctx);
              case UnaryOp::RedAnd:
                return _builder.unary(NodeKind::RedAnd,
                                      elabExpr(*u.operand, env, 0));
              case UnaryOp::RedOr:
                return _builder.unary(NodeKind::RedOr,
                                      elabExpr(*u.operand, env, 0));
              case UnaryOp::RedXor:
                return _builder.unary(NodeKind::RedXor,
                                      elabExpr(*u.operand, env, 0));
              case UnaryOp::RedNand:
                return _builder.notOf(_builder.unary(
                    NodeKind::RedAnd, elabExpr(*u.operand, env, 0)));
              case UnaryOp::RedNor:
                return _builder.notOf(_builder.unary(
                    NodeKind::RedOr, elabExpr(*u.operand, env, 0)));
              case UnaryOp::RedXnor:
                return _builder.notOf(_builder.unary(
                    NodeKind::RedXor, elabExpr(*u.operand, env, 0)));
            }
            panic("bad unary op");
          }
          case Expr::Kind::Binary:
            return elabBinary(static_cast<const BinaryExpr &>(expr), env,
                              ctx);
          case Expr::Kind::Ternary: {
            const auto &t = static_cast<const TernaryExpr &>(expr);
            NodeRef cond = _builder.truthy(elabExpr(*t.cond, env, 0));
            NodeRef a = elabExpr(*t.then_expr, env, ctx);
            NodeRef b = elabExpr(*t.else_expr, env, ctx);
            uint32_t w = std::max(
                {_builder.widthOf(a), _builder.widthOf(b), ctx});
            return _builder.ite(cond, _builder.resize(a, w),
                                _builder.resize(b, w));
          }
          case Expr::Kind::Concat: {
            const auto &c = static_cast<const ConcatExpr &>(expr);
            NodeRef acc = ir::kNullRef;
            for (const auto &part : c.parts) {
                NodeRef v = elabExpr(*part, env, 0);
                acc = acc == ir::kNullRef ? v : _builder.concat(acc, v);
            }
            if (acc == ir::kNullRef)
                fatal("empty concatenation");
            return acc;
          }
          case Expr::Kind::Repl: {
            const auto &r = static_cast<const ReplExpr &>(expr);
            int64_t count =
                analysis::constEvalInt(*r.count, _table.params());
            if (count <= 0)
                fatal("non-positive replication count");
            NodeRef inner = elabExpr(*r.inner, env, 0);
            NodeRef acc = inner;
            for (int64_t i = 1; i < count; ++i)
                acc = _builder.concat(acc, inner);
            return acc;
          }
          case Expr::Kind::Index: {
            const auto &ix = static_cast<const IndexExpr &>(expr);
            NodeRef base = elabExpr(*ix.base, env, 0);
            uint32_t bw = _builder.widthOf(base);
            int64_t lsb_off = 0;
            if (ix.base->kind == Expr::Kind::Ident) {
                const auto &name =
                    static_cast<const IdentExpr &>(*ix.base).name;
                if (_table.isNet(name))
                    lsb_off = _table.rangeOf(name).lsb;
            }
            auto const_idx =
                analysis::tryConstEval(*ix.index, _table.params());
            if (const_idx && !const_idx->hasX()) {
                int64_t pos =
                    static_cast<int64_t>(const_idx->toUint64()) -
                    lsb_off;
                if (pos < 0 || pos >= static_cast<int64_t>(bw)) {
                    // Out-of-bounds reads yield X in Verilog.
                    return _builder.constant(Value::allX(1));
                }
                return _builder.slice(base, static_cast<uint32_t>(pos),
                                      static_cast<uint32_t>(pos));
            }
            NodeRef idx =
                _builder.resize(elabExpr(*ix.index, env, 0), bw);
            if (lsb_off != 0) {
                idx = _builder.binary(
                    NodeKind::Sub, idx,
                    _builder.constantUint(
                        bw, static_cast<uint64_t>(lsb_off)));
            }
            NodeRef shifted = _builder.binary(NodeKind::LShr, base, idx);
            return _builder.slice(shifted, 0, 0);
          }
          case Expr::Kind::RangeSelect: {
            const auto &r = static_cast<const RangeSelectExpr &>(expr);
            NodeRef base = elabExpr(*r.base, env, 0);
            int64_t lsb_off = 0;
            if (r.base->kind == Expr::Kind::Ident) {
                const auto &name =
                    static_cast<const IdentExpr &>(*r.base).name;
                if (_table.isNet(name))
                    lsb_off = _table.rangeOf(name).lsb;
            }
            int64_t msb =
                analysis::constEvalInt(*r.msb, _table.params()) -
                lsb_off;
            int64_t lsb =
                analysis::constEvalInt(*r.lsb, _table.params()) -
                lsb_off;
            if (msb < lsb)
                std::swap(msb, lsb);
            uint32_t bw = _builder.widthOf(base);
            if (!(lsb >= 0 && msb < static_cast<int64_t>(bw)))
                fatal("part-select read out of range");
            return _builder.slice(base, static_cast<uint32_t>(msb),
                                  static_cast<uint32_t>(lsb));
          }
        }
        panic("unknown expression kind");
    }

    NodeRef
    elabBinary(const BinaryExpr &b, Env *env, uint32_t ctx)
    {
        // Comparison operands size each other (their own context).
        auto cmpCtx = [&]() {
            return std::max(analysis::exprWidth(*b.lhs, _table),
                            analysis::exprWidth(*b.rhs, _table));
        };

        switch (b.op) {
          case BinaryOp::LogicAnd:
            return _builder.binary(
                NodeKind::And,
                _builder.truthy(elabExpr(*b.lhs, env, 0)),
                _builder.truthy(elabExpr(*b.rhs, env, 0)));
          case BinaryOp::LogicOr:
            return _builder.binary(
                NodeKind::Or,
                _builder.truthy(elabExpr(*b.lhs, env, 0)),
                _builder.truthy(elabExpr(*b.rhs, env, 0)));
          case BinaryOp::Lt:
          case BinaryOp::Le:
          case BinaryOp::Gt:
          case BinaryOp::Ge:
          case BinaryOp::Eq:
          case BinaryOp::Ne:
          case BinaryOp::CaseEq:
          case BinaryOp::CaseNe: {
            uint32_t w = cmpCtx();
            NodeRef lhs =
                _builder.resize(elabExpr(*b.lhs, env, w), w);
            NodeRef rhs =
                _builder.resize(elabExpr(*b.rhs, env, w), w);
            switch (b.op) {
              case BinaryOp::Lt:
                return _builder.binary(NodeKind::Ult, lhs, rhs);
              case BinaryOp::Le:
                return _builder.binary(NodeKind::Ule, lhs, rhs);
              case BinaryOp::Gt:
                return _builder.binary(NodeKind::Ult, rhs, lhs);
              case BinaryOp::Ge:
                return _builder.binary(NodeKind::Ule, rhs, lhs);
              case BinaryOp::Eq:
              case BinaryOp::CaseEq:
                return _builder.binary(NodeKind::Eq, lhs, rhs);
              default:
                return _builder.notOf(
                    _builder.binary(NodeKind::Eq, lhs, rhs));
            }
          }
          case BinaryOp::Shl:
          case BinaryOp::Shr:
          case BinaryOp::AShr: {
            NodeRef lhs = elabExpr(*b.lhs, env, ctx);
            uint32_t w = std::max(_builder.widthOf(lhs), ctx);
            lhs = _builder.resize(lhs, w);
            NodeRef amount =
                _builder.resize(elabExpr(*b.rhs, env, 0), w);
            NodeKind kind = b.op == BinaryOp::Shl ? NodeKind::Shl
                            : b.op == BinaryOp::Shr ? NodeKind::LShr
                                                    : NodeKind::AShr;
            return _builder.binary(kind, lhs, amount);
          }
          default:
            break;
        }

        // Arithmetic / bitwise: context-determined width.
        NodeRef lhs = elabExpr(*b.lhs, env, ctx);
        NodeRef rhs = elabExpr(*b.rhs, env, ctx);
        uint32_t w = std::max(
            {_builder.widthOf(lhs), _builder.widthOf(rhs), ctx});
        lhs = _builder.resize(lhs, w);
        rhs = _builder.resize(rhs, w);
        switch (b.op) {
          case BinaryOp::Add:
            return _builder.binary(NodeKind::Add, lhs, rhs);
          case BinaryOp::Sub:
            return _builder.binary(NodeKind::Sub, lhs, rhs);
          case BinaryOp::Mul:
            return _builder.binary(NodeKind::Mul, lhs, rhs);
          case BinaryOp::Div:
            return _builder.binary(NodeKind::UDiv, lhs, rhs);
          case BinaryOp::Mod:
            return _builder.binary(NodeKind::URem, lhs, rhs);
          case BinaryOp::BitAnd:
            return _builder.binary(NodeKind::And, lhs, rhs);
          case BinaryOp::BitOr:
            return _builder.binary(NodeKind::Or, lhs, rhs);
          case BinaryOp::BitXor:
            return _builder.binary(NodeKind::Xor, lhs, rhs);
          case BinaryOp::BitXnor:
            return _builder.notOf(
                _builder.binary(NodeKind::Xor, lhs, rhs));
          default:
            panic("unhandled binary op");
        }
    }

    // -- outputs -----------------------------------------------------------

    void
    createOutputs()
    {
        for (const auto &port : _mod->ports) {
            if (port.dir != PortDir::Output)
                continue;
            _builder.addOutput(port.name, getSignal(port.name));
        }
    }

    void
    nameAllSignals()
    {
        for (const auto &[name, ref] : _values) {
            if (_synth_names.count(name))
                continue;
            _builder.nameSignal(name, ref);
        }
    }

    const ElaborateOptions &_opts;
    std::unique_ptr<Module> _mod;
    SymbolTable _table;
    Builder _builder;

    std::vector<ProcessInfo> _processes;
    std::vector<StmtPtr> _unrolled;
    std::vector<std::set<std::string>> _assigned;
    std::map<std::string, DriverKind> _driver;
    std::map<std::string, const ContAssign *> _cont_assigns;
    std::map<std::string, size_t> _defining_process;
    std::map<std::string, std::string> _alias_sources;
    std::map<std::string, NodeRef> _values;
    std::set<std::string> _synth_names;
    std::set<std::string> _in_progress;
    std::set<size_t> _comb_done;
    std::set<std::string> _clock_aliases;
    std::string _clock;
};

} // namespace

// Unstable: template-task elaborations run on pool workers, and a
// cancelled task may or may not have elaborated before it stopped.
static telemetry::Counter s_elab_runs("elaborate.runs",
                                      telemetry::MetricKind::Unstable);
static telemetry::Counter s_elab_states("elaborate.states",
                                        telemetry::MetricKind::Unstable);

ir::TransitionSystem
elaborate(const Module &top, const ElaborateOptions &opts)
{
    telemetry::Span span("elaborate.ir");
    s_elab_runs.add(1);
    Elaborator elab(top, opts);
    ir::TransitionSystem sys = elab.run();
    s_elab_states.add(sys.states.size());
    return sys;
}

std::unique_ptr<Module>
flattenHierarchy(const Module &top, const ElaborateOptions &opts)
{
    Flattener flattener(opts);
    return flattener.run(top);
}

ir::TransitionSystem
elaborate(const SourceFile &file, const ElaborateOptions &opts)
{
    ElaborateOptions with_library = opts;
    for (const auto &m : file.modules) {
        if (m.get() != &file.top())
            with_library.library.push_back(m.get());
    }
    return elaborate(file.top(), with_library);
}

} // namespace rtlrepair::elaborate
