#include "verilog/lexer.hpp"

#include <cctype>
#include <unordered_map>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace rtlrepair::verilog {

const char *
tokenKindName(TokenKind kind)
{
    switch (kind) {
      case TokenKind::Eof: return "end of file";
      case TokenKind::Identifier: return "identifier";
      case TokenKind::SystemName: return "system identifier";
      case TokenKind::Number: return "number";
      case TokenKind::String: return "string";
      case TokenKind::KwModule: return "'module'";
      case TokenKind::KwEndmodule: return "'endmodule'";
      case TokenKind::KwInput: return "'input'";
      case TokenKind::KwOutput: return "'output'";
      case TokenKind::KwInout: return "'inout'";
      case TokenKind::KwWire: return "'wire'";
      case TokenKind::KwReg: return "'reg'";
      case TokenKind::KwInteger: return "'integer'";
      case TokenKind::KwGenvar: return "'genvar'";
      case TokenKind::KwParameter: return "'parameter'";
      case TokenKind::KwLocalparam: return "'localparam'";
      case TokenKind::KwAssign: return "'assign'";
      case TokenKind::KwAlways: return "'always'";
      case TokenKind::KwInitial: return "'initial'";
      case TokenKind::KwBegin: return "'begin'";
      case TokenKind::KwEnd: return "'end'";
      case TokenKind::KwIf: return "'if'";
      case TokenKind::KwElse: return "'else'";
      case TokenKind::KwCase: return "'case'";
      case TokenKind::KwCasez: return "'casez'";
      case TokenKind::KwCasex: return "'casex'";
      case TokenKind::KwEndcase: return "'endcase'";
      case TokenKind::KwDefault: return "'default'";
      case TokenKind::KwPosedge: return "'posedge'";
      case TokenKind::KwNegedge: return "'negedge'";
      case TokenKind::KwOr: return "'or'";
      case TokenKind::KwFor: return "'for'";
      case TokenKind::KwSigned: return "'signed'";
      case TokenKind::KwFunction: return "'function'";
      case TokenKind::KwEndfunction: return "'endfunction'";
      case TokenKind::KwGenerate: return "'generate'";
      case TokenKind::KwEndgenerate: return "'endgenerate'";
      case TokenKind::LParen: return "'('";
      case TokenKind::RParen: return "')'";
      case TokenKind::LBracket: return "'['";
      case TokenKind::RBracket: return "']'";
      case TokenKind::LBrace: return "'{'";
      case TokenKind::RBrace: return "'}'";
      case TokenKind::Semicolon: return "';'";
      case TokenKind::Comma: return "','";
      case TokenKind::Dot: return "'.'";
      case TokenKind::Colon: return "':'";
      case TokenKind::Question: return "'?'";
      case TokenKind::At: return "'@'";
      case TokenKind::Hash: return "'#'";
      case TokenKind::Equals: return "'='";
      case TokenKind::Plus: return "'+'";
      case TokenKind::Minus: return "'-'";
      case TokenKind::Star: return "'*'";
      case TokenKind::Slash: return "'/'";
      case TokenKind::Percent: return "'%'";
      case TokenKind::Amp: return "'&'";
      case TokenKind::Pipe: return "'|'";
      case TokenKind::Caret: return "'^'";
      case TokenKind::Tilde: return "'~'";
      case TokenKind::Bang: return "'!'";
      case TokenKind::AmpAmp: return "'&&'";
      case TokenKind::PipePipe: return "'||'";
      case TokenKind::EqEq: return "'=='";
      case TokenKind::BangEq: return "'!='";
      case TokenKind::EqEqEq: return "'==='";
      case TokenKind::BangEqEq: return "'!=='";
      case TokenKind::Lt: return "'<'";
      case TokenKind::LtEq: return "'<='";
      case TokenKind::Gt: return "'>'";
      case TokenKind::GtEq: return "'>='";
      case TokenKind::Shl: return "'<<'";
      case TokenKind::Shr: return "'>>'";
      case TokenKind::AShl: return "'<<<'";
      case TokenKind::AShr: return "'>>>'";
      case TokenKind::TildeAmp: return "'~&'";
      case TokenKind::TildePipe: return "'~|'";
      case TokenKind::TildeCaret: return "'~^'";
    }
    return "?";
}

namespace {

const std::unordered_map<std::string_view, TokenKind> kKeywords = {
    {"module", TokenKind::KwModule},
    {"endmodule", TokenKind::KwEndmodule},
    {"input", TokenKind::KwInput},
    {"output", TokenKind::KwOutput},
    {"inout", TokenKind::KwInout},
    {"wire", TokenKind::KwWire},
    {"reg", TokenKind::KwReg},
    {"integer", TokenKind::KwInteger},
    {"genvar", TokenKind::KwGenvar},
    {"parameter", TokenKind::KwParameter},
    {"localparam", TokenKind::KwLocalparam},
    {"assign", TokenKind::KwAssign},
    {"always", TokenKind::KwAlways},
    {"initial", TokenKind::KwInitial},
    {"begin", TokenKind::KwBegin},
    {"end", TokenKind::KwEnd},
    {"if", TokenKind::KwIf},
    {"else", TokenKind::KwElse},
    {"case", TokenKind::KwCase},
    {"casez", TokenKind::KwCasez},
    {"casex", TokenKind::KwCasex},
    {"endcase", TokenKind::KwEndcase},
    {"default", TokenKind::KwDefault},
    {"posedge", TokenKind::KwPosedge},
    {"negedge", TokenKind::KwNegedge},
    {"or", TokenKind::KwOr},
    {"for", TokenKind::KwFor},
    {"signed", TokenKind::KwSigned},
    {"function", TokenKind::KwFunction},
    {"endfunction", TokenKind::KwEndfunction},
    {"generate", TokenKind::KwGenerate},
    {"endgenerate", TokenKind::KwEndgenerate},
};

/** Cursor over the source text that tracks line/column. */
class Cursor
{
  public:
    explicit Cursor(std::string_view src) : _src(src) {}

    bool done() const { return _pos >= _src.size(); }
    char peek(size_t ahead = 0) const
    {
        size_t i = _pos + ahead;
        return i < _src.size() ? _src[i] : '\0';
    }

    char
    advance()
    {
        char c = _src[_pos++];
        if (c == '\n') {
            ++_line;
            _col = 1;
        } else {
            ++_col;
        }
        return c;
    }

    SourceLoc loc() const { return {_line, _col}; }

  private:
    std::string_view _src;
    size_t _pos = 0;
    uint32_t _line = 1;
    uint32_t _col = 1;
};

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return isIdentStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '$';
}

bool
isBaseDigit(char c)
{
    return std::isxdigit(static_cast<unsigned char>(c)) || c == 'x' ||
           c == 'X' || c == 'z' || c == 'Z' || c == '?' || c == '_';
}

} // namespace

std::vector<Token>
lex(std::string_view source)
{
    Cursor cur(source);
    std::vector<Token> tokens;

    auto emit = [&tokens](TokenKind kind, std::string text, SourceLoc loc) {
        tokens.push_back(Token{kind, std::move(text), loc});
    };

    while (!cur.done()) {
        char c = cur.peek();
        SourceLoc loc = cur.loc();

        if (std::isspace(static_cast<unsigned char>(c))) {
            cur.advance();
            continue;
        }
        // Line comment
        if (c == '/' && cur.peek(1) == '/') {
            while (!cur.done() && cur.peek() != '\n')
                cur.advance();
            continue;
        }
        // Block comment
        if (c == '/' && cur.peek(1) == '*') {
            cur.advance();
            cur.advance();
            while (!cur.done() &&
                   !(cur.peek() == '*' && cur.peek(1) == '/')) {
                cur.advance();
            }
            if (cur.done())
                fatal(format("line %u: unterminated block comment",
                             loc.line));
            cur.advance();
            cur.advance();
            continue;
        }
        // Attribute block (* ... *) — but `(*)` is the sensitivity
        // wildcard of `always @(*)`, not an attribute.
        if (c == '(' && cur.peek(1) == '*' && cur.peek(2) != ')') {
            cur.advance();
            cur.advance();
            while (!cur.done() &&
                   !(cur.peek() == '*' && cur.peek(1) == ')')) {
                cur.advance();
            }
            if (cur.done())
                fatal(format("line %u: unterminated attribute", loc.line));
            cur.advance();
            cur.advance();
            continue;
        }
        // Compiler directives such as `timescale: skip to end of line.
        if (c == '`') {
            while (!cur.done() && cur.peek() != '\n')
                cur.advance();
            continue;
        }
        if (c == '"') {
            cur.advance();
            std::string text;
            while (!cur.done() && cur.peek() != '"') {
                if (cur.peek() == '\\')
                    cur.advance();
                text += cur.advance();
            }
            if (cur.done())
                fatal(format("line %u: unterminated string", loc.line));
            cur.advance();
            emit(TokenKind::String, std::move(text), loc);
            continue;
        }
        if (c == '$') {
            cur.advance();
            std::string text = "$";
            while (!cur.done() && isIdentChar(cur.peek()))
                text += cur.advance();
            emit(TokenKind::SystemName, std::move(text), loc);
            continue;
        }
        if (c == '\\') { // escaped identifier: up to whitespace
            cur.advance();
            std::string text;
            while (!cur.done() && !std::isspace(
                       static_cast<unsigned char>(cur.peek()))) {
                text += cur.advance();
            }
            emit(TokenKind::Identifier, std::move(text), loc);
            continue;
        }
        if (isIdentStart(c)) {
            std::string text;
            while (!cur.done() && isIdentChar(cur.peek()))
                text += cur.advance();
            auto it = kKeywords.find(text);
            if (it != kKeywords.end()) {
                emit(it->second, std::move(text), loc);
            } else {
                emit(TokenKind::Identifier, std::move(text), loc);
            }
            continue;
        }
        // Number: decimal size, optionally followed by 'b/'h/'o/'d digits,
        // or a bare based literal starting with '.
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '\'') {
            std::string text;
            while (!cur.done() && (std::isdigit(
                       static_cast<unsigned char>(cur.peek())) ||
                       cur.peek() == '_')) {
                text += cur.advance();
            }
            // Optional whitespace between size and base is legal Verilog;
            // peek past spaces without consuming unless a base follows.
            size_t look = 0;
            while (cur.peek(look) == ' ' || cur.peek(look) == '\t')
                ++look;
            if (cur.peek(look) == '\'') {
                for (size_t i = 0; i <= look; ++i)
                    cur.advance(); // spaces + the tick
                text += '\'';
                if (!cur.done() && (cur.peek() == 's' || cur.peek() == 'S'))
                    text += cur.advance();
                if (cur.done())
                    fatal(format("line %u: truncated literal", loc.line));
                char base = cur.advance();
                text += base;
                while (!cur.done() && isBaseDigit(cur.peek()))
                    text += cur.advance();
            }
            emit(TokenKind::Number, std::move(text), loc);
            continue;
        }

        // Operators and punctuation.
        auto two = [&cur](char a, char b) {
            return cur.peek() == a && cur.peek(1) == b;
        };
        auto three = [&cur](char a, char b, char d) {
            return cur.peek() == a && cur.peek(1) == b && cur.peek(2) == d;
        };
        auto take = [&cur](int n) {
            for (int i = 0; i < n; ++i)
                cur.advance();
        };

        if (three('=', '=', '=')) { take(3); emit(TokenKind::EqEqEq, "===", loc); continue; }
        if (three('!', '=', '=')) { take(3); emit(TokenKind::BangEqEq, "!==", loc); continue; }
        if (three('<', '<', '<')) { take(3); emit(TokenKind::AShl, "<<<", loc); continue; }
        if (three('>', '>', '>')) { take(3); emit(TokenKind::AShr, ">>>", loc); continue; }
        if (two('=', '=')) { take(2); emit(TokenKind::EqEq, "==", loc); continue; }
        if (two('!', '=')) { take(2); emit(TokenKind::BangEq, "!=", loc); continue; }
        if (two('<', '=')) { take(2); emit(TokenKind::LtEq, "<=", loc); continue; }
        if (two('>', '=')) { take(2); emit(TokenKind::GtEq, ">=", loc); continue; }
        if (two('<', '<')) { take(2); emit(TokenKind::Shl, "<<", loc); continue; }
        if (two('>', '>')) { take(2); emit(TokenKind::Shr, ">>", loc); continue; }
        if (two('&', '&')) { take(2); emit(TokenKind::AmpAmp, "&&", loc); continue; }
        if (two('|', '|')) { take(2); emit(TokenKind::PipePipe, "||", loc); continue; }
        if (two('~', '&')) { take(2); emit(TokenKind::TildeAmp, "~&", loc); continue; }
        if (two('~', '|')) { take(2); emit(TokenKind::TildePipe, "~|", loc); continue; }
        if (two('~', '^')) { take(2); emit(TokenKind::TildeCaret, "~^", loc); continue; }
        if (two('^', '~')) { take(2); emit(TokenKind::TildeCaret, "^~", loc); continue; }

        TokenKind kind;
        switch (c) {
          case '(': kind = TokenKind::LParen; break;
          case ')': kind = TokenKind::RParen; break;
          case '[': kind = TokenKind::LBracket; break;
          case ']': kind = TokenKind::RBracket; break;
          case '{': kind = TokenKind::LBrace; break;
          case '}': kind = TokenKind::RBrace; break;
          case ';': kind = TokenKind::Semicolon; break;
          case ',': kind = TokenKind::Comma; break;
          case '.': kind = TokenKind::Dot; break;
          case ':': kind = TokenKind::Colon; break;
          case '?': kind = TokenKind::Question; break;
          case '@': kind = TokenKind::At; break;
          case '#': kind = TokenKind::Hash; break;
          case '=': kind = TokenKind::Equals; break;
          case '+': kind = TokenKind::Plus; break;
          case '-': kind = TokenKind::Minus; break;
          case '*': kind = TokenKind::Star; break;
          case '/': kind = TokenKind::Slash; break;
          case '%': kind = TokenKind::Percent; break;
          case '&': kind = TokenKind::Amp; break;
          case '|': kind = TokenKind::Pipe; break;
          case '^': kind = TokenKind::Caret; break;
          case '~': kind = TokenKind::Tilde; break;
          case '!': kind = TokenKind::Bang; break;
          case '<': kind = TokenKind::Lt; break;
          case '>': kind = TokenKind::Gt; break;
          default:
            fatal(format("line %u:%u: unexpected character '%c'",
                         loc.line, loc.col, c));
        }
        cur.advance();
        emit(kind, std::string(1, c), loc);
    }

    tokens.push_back(Token{TokenKind::Eof, "", cur.loc()});
    return tokens;
}

} // namespace rtlrepair::verilog
