/**
 * @file
 * Hand-written lexer for the synthesizable Verilog subset.
 *
 * Comments and `(* ... *)` attribute blocks are skipped.  Based number
 * literals (including a separate size prefix, e.g. `4 'b10x1`) are
 * assembled into a single Number token whose text is the canonical
 * literal spelling.
 */
#ifndef RTLREPAIR_VERILOG_LEXER_HPP
#define RTLREPAIR_VERILOG_LEXER_HPP

#include <string>
#include <string_view>
#include <vector>

#include "verilog/token.hpp"

namespace rtlrepair::verilog {

/** Lex @p source completely; throws FatalError on bad input. */
std::vector<Token> lex(std::string_view source);

} // namespace rtlrepair::verilog

#endif // RTLREPAIR_VERILOG_LEXER_HPP
