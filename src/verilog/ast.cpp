#include "verilog/ast.hpp"

#include "util/logging.hpp"

namespace rtlrepair::verilog {

namespace {

/** Copy the base-class fields shared by all node categories. */
template <typename T>
T *
withMeta(T *node, const Expr &src)
{
    node->id = src.id;
    node->loc = src.loc;
    return node;
}

template <typename T>
T *
withMeta(T *node, const Stmt &src)
{
    node->id = src.id;
    node->loc = src.loc;
    return node;
}

template <typename T>
T *
withMeta(T *node, const Item &src)
{
    node->id = src.id;
    node->loc = src.loc;
    return node;
}

ExprPtr
cloneOrNull(const ExprPtr &e)
{
    return e ? e->clone() : nullptr;
}

StmtPtr
cloneOrNull(const StmtPtr &s)
{
    return s ? s->clone() : nullptr;
}

} // namespace

ExprPtr
IdentExpr::clone() const
{
    return ExprPtr(withMeta(new IdentExpr(name), *this));
}

ExprPtr
LiteralExpr::clone() const
{
    return ExprPtr(withMeta(new LiteralExpr(value, is_sized), *this));
}

ExprPtr
UnaryExpr::clone() const
{
    return ExprPtr(withMeta(new UnaryExpr(op, operand->clone()), *this));
}

ExprPtr
BinaryExpr::clone() const
{
    return ExprPtr(
        withMeta(new BinaryExpr(op, lhs->clone(), rhs->clone()), *this));
}

ExprPtr
TernaryExpr::clone() const
{
    return ExprPtr(withMeta(
        new TernaryExpr(cond->clone(), then_expr->clone(),
                        else_expr->clone()),
        *this));
}

ExprPtr
ConcatExpr::clone() const
{
    std::vector<ExprPtr> copy;
    copy.reserve(parts.size());
    for (const auto &p : parts)
        copy.push_back(p->clone());
    return ExprPtr(withMeta(new ConcatExpr(std::move(copy)), *this));
}

ExprPtr
ReplExpr::clone() const
{
    return ExprPtr(
        withMeta(new ReplExpr(count->clone(), inner->clone()), *this));
}

ExprPtr
IndexExpr::clone() const
{
    return ExprPtr(
        withMeta(new IndexExpr(base->clone(), index->clone()), *this));
}

ExprPtr
RangeSelectExpr::clone() const
{
    return ExprPtr(withMeta(
        new RangeSelectExpr(base->clone(), msb->clone(), lsb->clone()),
        *this));
}

ExprPtr
CallExpr::clone() const
{
    std::vector<ExprPtr> copy;
    copy.reserve(args.size());
    for (const auto &a : args)
        copy.push_back(a->clone());
    return ExprPtr(withMeta(new CallExpr(callee, std::move(copy)), *this));
}

StmtPtr
BlockStmt::clone() const
{
    std::vector<StmtPtr> copy;
    copy.reserve(stmts.size());
    for (const auto &s : stmts)
        copy.push_back(s->clone());
    auto *node = withMeta(new BlockStmt(std::move(copy)), *this);
    node->label = label;
    return StmtPtr(node);
}

StmtPtr
IfStmt::clone() const
{
    return StmtPtr(withMeta(
        new IfStmt(cond->clone(), then_stmt->clone(),
                   cloneOrNull(else_stmt)),
        *this));
}

StmtPtr
CaseStmt::clone() const
{
    std::vector<CaseItem> copy;
    copy.reserve(items.size());
    for (const auto &item : items) {
        CaseItem ci;
        for (const auto &label : item.labels)
            ci.labels.push_back(label->clone());
        ci.body = cloneOrNull(item.body);
        copy.push_back(std::move(ci));
    }
    return StmtPtr(withMeta(
        new CaseStmt(subject->clone(), std::move(copy),
                     cloneOrNull(default_body), mode),
        *this));
}

StmtPtr
AssignStmt::clone() const
{
    auto *node =
        withMeta(new AssignStmt(lhs->clone(), rhs->clone(), blocking),
                 *this);
    node->has_delay = has_delay;
    return StmtPtr(node);
}

StmtPtr
ForStmt::clone() const
{
    return StmtPtr(withMeta(
        new ForStmt(init->clone(), cond->clone(), step->clone(),
                    body->clone()),
        *this));
}

StmtPtr
EmptyStmt::clone() const
{
    return StmtPtr(withMeta(new EmptyStmt(), *this));
}

ItemPtr
NetDecl::clone() const
{
    auto *node = withMeta(new NetDecl(), *this);
    node->name = name;
    node->net = net;
    node->is_signed = is_signed;
    node->dir = dir;
    node->msb = cloneOrNull(msb);
    node->lsb = cloneOrNull(lsb);
    node->arr_msb = cloneOrNull(arr_msb);
    node->arr_lsb = cloneOrNull(arr_lsb);
    return ItemPtr(node);
}

ItemPtr
ParamDecl::clone() const
{
    auto *node = withMeta(new ParamDecl(), *this);
    node->name = name;
    node->value = value->clone();
    node->is_local = is_local;
    return ItemPtr(node);
}

ItemPtr
ContAssign::clone() const
{
    auto *node = withMeta(new ContAssign(), *this);
    node->lhs = lhs->clone();
    node->rhs = rhs->clone();
    return ItemPtr(node);
}

ItemPtr
AlwaysBlock::clone() const
{
    auto *node = withMeta(new AlwaysBlock(), *this);
    node->sensitivity = sensitivity;
    node->body = body->clone();
    return ItemPtr(node);
}

ItemPtr
InitialBlock::clone() const
{
    auto *node = withMeta(new InitialBlock(), *this);
    node->body = body->clone();
    return ItemPtr(node);
}

namespace {

FunctionVar
cloneVar(const FunctionVar &v)
{
    FunctionVar copy;
    copy.name = v.name;
    copy.msb = cloneOrNull(v.msb);
    copy.lsb = cloneOrNull(v.lsb);
    copy.is_integer = v.is_integer;
    return copy;
}

std::vector<ItemPtr>
cloneItems(const std::vector<ItemPtr> &items)
{
    std::vector<ItemPtr> copy;
    copy.reserve(items.size());
    for (const auto &item : items)
        copy.push_back(item->clone());
    return copy;
}

} // namespace

ItemPtr
FunctionDecl::clone() const
{
    auto *node = withMeta(new FunctionDecl(), *this);
    node->name = name;
    node->ret_msb = cloneOrNull(ret_msb);
    node->ret_lsb = cloneOrNull(ret_lsb);
    for (const auto &v : inputs)
        node->inputs.push_back(cloneVar(v));
    for (const auto &v : locals)
        node->locals.push_back(cloneVar(v));
    node->body = body->clone();
    return ItemPtr(node);
}

ItemPtr
GenvarDecl::clone() const
{
    auto *node = withMeta(new GenvarDecl(), *this);
    node->name = name;
    return ItemPtr(node);
}

ItemPtr
GenFor::clone() const
{
    auto *node = withMeta(new GenFor(), *this);
    node->genvar = genvar;
    node->init = init->clone();
    node->cond = cond->clone();
    node->step = step->clone();
    node->label = label;
    node->body = cloneItems(body);
    return ItemPtr(node);
}

ItemPtr
GenIf::clone() const
{
    auto *node = withMeta(new GenIf(), *this);
    node->cond = cond->clone();
    node->then_label = then_label;
    node->else_label = else_label;
    node->then_items = cloneItems(then_items);
    node->else_items = cloneItems(else_items);
    return ItemPtr(node);
}

ItemPtr
Instance::clone() const
{
    auto *node = withMeta(new Instance(), *this);
    node->module_name = module_name;
    node->instance_name = instance_name;
    for (const auto &c : params)
        node->params.push_back(Connection{c.port, cloneOrNull(c.expr)});
    for (const auto &c : ports)
        node->ports.push_back(Connection{c.port, cloneOrNull(c.expr)});
    return ItemPtr(node);
}

std::unique_ptr<Module>
Module::clone() const
{
    auto copy = std::make_unique<Module>();
    copy->name = name;
    copy->ports = ports;
    copy->next_node_id = next_node_id;
    copy->items.reserve(items.size());
    for (const auto &item : items)
        copy->items.push_back(item->clone());
    return copy;
}

const NetDecl *
Module::findNet(const std::string &net_name) const
{
    for (const auto &item : items) {
        if (item->kind != Item::Kind::Net)
            continue;
        const auto *decl = static_cast<const NetDecl *>(item.get());
        if (decl->name == net_name)
            return decl;
    }
    return nullptr;
}

NetDecl *
Module::findNet(const std::string &net_name)
{
    return const_cast<NetDecl *>(
        static_cast<const Module *>(this)->findNet(net_name));
}

const ParamDecl *
Module::findParam(const std::string &param_name) const
{
    for (const auto &item : items) {
        if (item->kind != Item::Kind::Param)
            continue;
        const auto *decl = static_cast<const ParamDecl *>(item.get());
        if (decl->name == param_name)
            return decl;
    }
    return nullptr;
}

PortDir
Module::portDir(const std::string &port_name) const
{
    for (const auto &port : ports) {
        if (port.name == port_name)
            return port.dir;
    }
    return PortDir::Unknown;
}

Module &
SourceFile::top() const
{
    check(!modules.empty(), "source file has no modules");
    return *modules.front();
}

Module *
SourceFile::find(const std::string &name) const
{
    for (const auto &m : modules) {
        if (m->name == name)
            return m.get();
    }
    return nullptr;
}

} // namespace rtlrepair::verilog
