/**
 * @file
 * AST utilities: structural equality, expression rewriting,
 * simplification (constant folding), substitution, and line diffs.
 *
 * The repair patcher relies on simplify() to fold template machinery
 * away once the synthesis variables have concrete values, so the
 * repaired source looks like a human edit (paper §3, "Repairing the
 * Verilog Code").
 */
#ifndef RTLREPAIR_VERILOG_AST_UTIL_HPP
#define RTLREPAIR_VERILOG_AST_UTIL_HPP

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "verilog/ast.hpp"

namespace rtlrepair::verilog {

/** Structural equality, ignoring NodeIds and source locations. */
bool equal(const Expr &a, const Expr &b);
bool equal(const Stmt &a, const Stmt &b);
bool equal(const Module &a, const Module &b);

/**
 * Post-order rewrite of every expression slot reachable from @p expr.
 * The callback may replace the pointed-to expression.
 */
void rewriteExprTree(ExprPtr &expr,
                     const std::function<void(ExprPtr &)> &fn);

/** Rewrite every expression inside a statement tree (post-order). */
void rewriteStmtExprs(StmtPtr &stmt,
                      const std::function<void(ExprPtr &)> &fn);

/** Rewrite every expression in the module (including item exprs). */
void rewriteModuleExprs(Module &module,
                        const std::function<void(ExprPtr &)> &fn);

/**
 * Rewrite every expression inside an item list, recursing into
 * generate-block bodies and function declarations.  Used by the
 * lowering pass, which works on item lists before they are spliced
 * into a flat module.
 */
void rewriteItemsExprs(std::vector<ItemPtr> &items,
                       const std::function<void(ExprPtr &)> &fn);

/** Visit every statement in a tree (pre-order), with replacement. */
void rewriteStmtTree(StmtPtr &stmt,
                     const std::function<void(StmtPtr &)> &fn);

/** Collect all identifier names used in @p expr. */
void collectIdents(const Expr &expr, std::set<std::string> &out);

/** Replace identifier references by literal values. */
void substituteIdents(ExprPtr &expr,
                      const std::map<std::string, bv::Value> &values);

/**
 * Constant folding and cleanup: const ternaries collapse, identity
 * operands (x&&1, x||0, 0^x, ...) vanish, if(const) statements are
 * replaced by the taken branch, and empty statements are dropped from
 * blocks.  Works in place.
 */
void simplifyExpr(ExprPtr &expr);
void simplifyStmt(StmtPtr &stmt);
void simplifyModule(Module &module);

/** One hunk line of a diff: prefix ' ', '-' or '+'. */
struct DiffLine
{
    char tag;
    std::string text;
};

/** LCS line diff of two texts. */
std::vector<DiffLine> diffLines(const std::string &before,
                                const std::string &after);

/** Render only the changed lines (with +/- prefixes). */
std::string formatDiff(const std::vector<DiffLine> &diff);

/** Count of (added, removed) lines between two texts. */
std::pair<int, int> countDiff(const std::string &before,
                              const std::string &after);

} // namespace rtlrepair::verilog

#endif // RTLREPAIR_VERILOG_AST_UTIL_HPP
