#include "verilog/printer.hpp"

#include <sstream>

#include "util/logging.hpp"

namespace rtlrepair::verilog {

namespace {

const char *
unaryOpText(UnaryOp op)
{
    switch (op) {
      case UnaryOp::BitNot: return "~";
      case UnaryOp::LogicNot: return "!";
      case UnaryOp::Minus: return "-";
      case UnaryOp::Plus: return "+";
      case UnaryOp::RedAnd: return "&";
      case UnaryOp::RedOr: return "|";
      case UnaryOp::RedXor: return "^";
      case UnaryOp::RedNand: return "~&";
      case UnaryOp::RedNor: return "~|";
      case UnaryOp::RedXnor: return "~^";
    }
    return "?";
}

const char *
binaryOpText(BinaryOp op)
{
    switch (op) {
      case BinaryOp::Add: return "+";
      case BinaryOp::Sub: return "-";
      case BinaryOp::Mul: return "*";
      case BinaryOp::Div: return "/";
      case BinaryOp::Mod: return "%";
      case BinaryOp::BitAnd: return "&";
      case BinaryOp::BitOr: return "|";
      case BinaryOp::BitXor: return "^";
      case BinaryOp::BitXnor: return "~^";
      case BinaryOp::LogicAnd: return "&&";
      case BinaryOp::LogicOr: return "||";
      case BinaryOp::Shl: return "<<";
      case BinaryOp::Shr: return ">>";
      case BinaryOp::AShr: return ">>>";
      case BinaryOp::Lt: return "<";
      case BinaryOp::Le: return "<=";
      case BinaryOp::Gt: return ">";
      case BinaryOp::Ge: return ">=";
      case BinaryOp::Eq: return "==";
      case BinaryOp::Ne: return "!=";
      case BinaryOp::CaseEq: return "===";
      case BinaryOp::CaseNe: return "!==";
    }
    return "?";
}

class PrintVisitor
{
  public:
    std::ostringstream out;

    void
    indent(int level)
    {
        for (int i = 0; i < level; ++i)
            out << "    ";
    }

    void
    printExpr(const Expr &e, bool parens = false)
    {
        switch (e.kind) {
          case Expr::Kind::Ident:
            out << static_cast<const IdentExpr &>(e).name;
            return;
          case Expr::Kind::Literal: {
            const auto &lit = static_cast<const LiteralExpr &>(e);
            if (!lit.is_sized && !lit.value.hasX() &&
                lit.value.width() == 32) {
                out << lit.value.toUint64();
            } else {
                out << lit.value.toVerilogLiteral();
            }
            return;
          }
          case Expr::Kind::Unary: {
            const auto &u = static_cast<const UnaryExpr &>(e);
            out << unaryOpText(u.op);
            printExpr(*u.operand, true);
            return;
          }
          case Expr::Kind::Binary: {
            const auto &b = static_cast<const BinaryExpr &>(e);
            if (parens)
                out << "(";
            printExpr(*b.lhs, true);
            out << " " << binaryOpText(b.op) << " ";
            printExpr(*b.rhs, true);
            if (parens)
                out << ")";
            return;
          }
          case Expr::Kind::Ternary: {
            const auto &t = static_cast<const TernaryExpr &>(e);
            if (parens)
                out << "(";
            printExpr(*t.cond, true);
            out << " ? ";
            printExpr(*t.then_expr, true);
            out << " : ";
            printExpr(*t.else_expr, true);
            if (parens)
                out << ")";
            return;
          }
          case Expr::Kind::Concat: {
            const auto &c = static_cast<const ConcatExpr &>(e);
            out << "{";
            for (size_t i = 0; i < c.parts.size(); ++i) {
                if (i > 0)
                    out << ", ";
                printExpr(*c.parts[i]);
            }
            out << "}";
            return;
          }
          case Expr::Kind::Repl: {
            const auto &r = static_cast<const ReplExpr &>(e);
            out << "{";
            printExpr(*r.count);
            out << "{";
            printExpr(*r.inner);
            out << "}}";
            return;
          }
          case Expr::Kind::Index: {
            const auto &i = static_cast<const IndexExpr &>(e);
            printExpr(*i.base, true);
            out << "[";
            printExpr(*i.index);
            out << "]";
            return;
          }
          case Expr::Kind::RangeSelect: {
            const auto &r = static_cast<const RangeSelectExpr &>(e);
            printExpr(*r.base, true);
            out << "[";
            printExpr(*r.msb);
            out << ":";
            printExpr(*r.lsb);
            out << "]";
            return;
          }
          case Expr::Kind::Call: {
            const auto &c = static_cast<const CallExpr &>(e);
            out << c.callee << "(";
            for (size_t i = 0; i < c.args.size(); ++i) {
                if (i > 0)
                    out << ", ";
                printExpr(*c.args[i]);
            }
            out << ")";
            return;
          }
        }
        panic("unknown expression kind");
    }

    void
    printStmt(const Stmt &s, int level)
    {
        switch (s.kind) {
          case Stmt::Kind::Block: {
            const auto &b = static_cast<const BlockStmt &>(s);
            indent(level);
            out << "begin";
            if (!b.label.empty())
                out << " : " << b.label;
            out << "\n";
            for (const auto &stmt : b.stmts)
                printStmt(*stmt, level + 1);
            indent(level);
            out << "end\n";
            return;
          }
          case Stmt::Kind::If: {
            const auto &i = static_cast<const IfStmt &>(s);
            indent(level);
            out << "if (";
            printExpr(*i.cond);
            out << ")\n";
            printStmt(*i.then_stmt, level + 1);
            if (i.else_stmt) {
                indent(level);
                out << "else\n";
                printStmt(*i.else_stmt, level + 1);
            }
            return;
          }
          case Stmt::Kind::Case: {
            const auto &c = static_cast<const CaseStmt &>(s);
            indent(level);
            switch (c.mode) {
              case CaseStmt::Mode::Plain: out << "case ("; break;
              case CaseStmt::Mode::CaseZ: out << "casez ("; break;
              case CaseStmt::Mode::CaseX: out << "casex ("; break;
            }
            printExpr(*c.subject);
            out << ")\n";
            for (const auto &item : c.items) {
                indent(level + 1);
                for (size_t i = 0; i < item.labels.size(); ++i) {
                    if (i > 0)
                        out << ", ";
                    printExpr(*item.labels[i]);
                }
                out << ":\n";
                printStmt(*item.body, level + 2);
            }
            if (c.default_body) {
                indent(level + 1);
                out << "default:\n";
                printStmt(*c.default_body, level + 2);
            }
            indent(level);
            out << "endcase\n";
            return;
          }
          case Stmt::Kind::Assign: {
            const auto &a = static_cast<const AssignStmt &>(s);
            indent(level);
            printExpr(*a.lhs);
            out << (a.blocking ? " = " : " <= ");
            printExpr(*a.rhs);
            out << ";\n";
            return;
          }
          case Stmt::Kind::For: {
            const auto &f = static_cast<const ForStmt &>(s);
            const auto &init = static_cast<const AssignStmt &>(*f.init);
            const auto &step = static_cast<const AssignStmt &>(*f.step);
            indent(level);
            out << "for (";
            printExpr(*init.lhs);
            out << " = ";
            printExpr(*init.rhs);
            out << "; ";
            printExpr(*f.cond);
            out << "; ";
            printExpr(*step.lhs);
            out << " = ";
            printExpr(*step.rhs);
            out << ")\n";
            printStmt(*f.body, level + 1);
            return;
          }
          case Stmt::Kind::Empty:
            indent(level);
            out << ";\n";
            return;
        }
        panic("unknown statement kind");
    }

    void
    printRange(const NetDecl &decl)
    {
        if (decl.msb) {
            out << "[";
            printExpr(*decl.msb);
            out << ":";
            printExpr(*decl.lsb);
            out << "] ";
        }
    }

    void
    printItem(const Item &item)
    {
        switch (item.kind) {
          case Item::Kind::Net: {
            const auto &decl = static_cast<const NetDecl &>(item);
            out << "    ";
            switch (decl.dir) {
              case PortDir::Input: out << "input "; break;
              case PortDir::Output: out << "output "; break;
              case PortDir::Inout: out << "inout "; break;
              case PortDir::Unknown: break;
            }
            switch (decl.net) {
              case NetKind::Wire: out << "wire "; break;
              case NetKind::Reg: out << "reg "; break;
              case NetKind::Integer: out << "integer "; break;
            }
            if (decl.is_signed)
                out << "signed ";
            printRange(decl);
            out << decl.name;
            if (decl.isMemory()) {
                out << " [";
                printExpr(*decl.arr_msb);
                out << ":";
                printExpr(*decl.arr_lsb);
                out << "]";
            }
            out << ";\n";
            return;
          }
          case Item::Kind::Param: {
            const auto &p = static_cast<const ParamDecl &>(item);
            out << "    " << (p.is_local ? "localparam " : "parameter ")
                << p.name << " = ";
            printExpr(*p.value);
            out << ";\n";
            return;
          }
          case Item::Kind::ContAssign: {
            const auto &a = static_cast<const ContAssign &>(item);
            out << "    assign ";
            printExpr(*a.lhs);
            out << " = ";
            printExpr(*a.rhs);
            out << ";\n";
            return;
          }
          case Item::Kind::Always: {
            const auto &a = static_cast<const AlwaysBlock &>(item);
            out << "    always @(";
            for (size_t i = 0; i < a.sensitivity.size(); ++i) {
                if (i > 0)
                    out << " or ";
                const SensItem &s = a.sensitivity[i];
                switch (s.edge) {
                  case SensItem::Edge::Posedge:
                    out << "posedge " << s.signal;
                    break;
                  case SensItem::Edge::Negedge:
                    out << "negedge " << s.signal;
                    break;
                  case SensItem::Edge::Level:
                    out << s.signal;
                    break;
                  case SensItem::Edge::Star:
                    out << "*";
                    break;
                }
            }
            out << ")\n";
            printStmt(*a.body, 1);
            return;
          }
          case Item::Kind::Initial: {
            const auto &i = static_cast<const InitialBlock &>(item);
            out << "    initial\n";
            printStmt(*i.body, 1);
            return;
          }
          case Item::Kind::Instance: {
            const auto &inst = static_cast<const Instance &>(item);
            out << "    " << inst.module_name << " ";
            if (!inst.params.empty()) {
                out << "#(";
                printConnections(inst.params);
                out << ") ";
            }
            out << inst.instance_name << " (";
            printConnections(inst.ports);
            out << ");\n";
            return;
          }
          case Item::Kind::Function: {
            const auto &f = static_cast<const FunctionDecl &>(item);
            out << "    function ";
            if (f.ret_msb) {
                out << "[";
                printExpr(*f.ret_msb);
                out << ":";
                printExpr(*f.ret_lsb);
                out << "] ";
            }
            out << f.name << ";\n";
            for (const auto &in : f.inputs)
                printFunctionVar("input", in);
            for (const auto &local : f.locals)
                printFunctionVar(local.is_integer ? "integer" : "reg",
                                 local);
            printStmt(*f.body, 1);
            out << "    endfunction\n";
            return;
          }
          case Item::Kind::Genvar: {
            const auto &g = static_cast<const GenvarDecl &>(item);
            out << "    genvar " << g.name << ";\n";
            return;
          }
          case Item::Kind::GenFor: {
            const auto &g = static_cast<const GenFor &>(item);
            out << "    for (" << g.genvar << " = ";
            printExpr(*g.init);
            out << "; ";
            printExpr(*g.cond);
            out << "; " << g.genvar << " = ";
            printExpr(*g.step);
            out << ") begin";
            if (!g.label.empty())
                out << " : " << g.label;
            out << "\n";
            for (const auto &sub : g.body)
                printItem(*sub);
            out << "    end\n";
            return;
          }
          case Item::Kind::GenIf: {
            const auto &g = static_cast<const GenIf &>(item);
            out << "    if (";
            printExpr(*g.cond);
            out << ") begin";
            if (!g.then_label.empty())
                out << " : " << g.then_label;
            out << "\n";
            for (const auto &sub : g.then_items)
                printItem(*sub);
            out << "    end\n";
            if (!g.else_items.empty() || !g.else_label.empty()) {
                out << "    else begin";
                if (!g.else_label.empty())
                    out << " : " << g.else_label;
                out << "\n";
                for (const auto &sub : g.else_items)
                    printItem(*sub);
                out << "    end\n";
            }
            return;
          }
        }
        panic("unknown item kind");
    }

    void
    printFunctionVar(const char *keyword, const FunctionVar &var)
    {
        out << "        " << keyword << " ";
        if (var.msb && !var.is_integer) {
            out << "[";
            printExpr(*var.msb);
            out << ":";
            printExpr(*var.lsb);
            out << "] ";
        }
        out << var.name << ";\n";
    }

    void
    printConnections(const std::vector<Connection> &conns)
    {
        for (size_t i = 0; i < conns.size(); ++i) {
            if (i > 0)
                out << ", ";
            const Connection &c = conns[i];
            if (!c.port.empty()) {
                out << "." << c.port << "(";
                if (c.expr)
                    printExpr(*c.expr);
                out << ")";
            } else if (c.expr) {
                printExpr(*c.expr);
            }
        }
    }

    void
    printModule(const Module &m)
    {
        out << "module " << m.name << " (";
        for (size_t i = 0; i < m.ports.size(); ++i) {
            if (i > 0)
                out << ", ";
            out << m.ports[i].name;
        }
        out << ");\n";
        for (const auto &item : m.items)
            printItem(*item);
        out << "endmodule\n";
    }
};

} // namespace

std::string
print(const Module &module)
{
    PrintVisitor visitor;
    visitor.printModule(module);
    return visitor.out.str();
}

std::string
print(const Expr &expr)
{
    PrintVisitor visitor;
    visitor.printExpr(expr);
    return visitor.out.str();
}

std::string
print(const Stmt &stmt, int indent)
{
    PrintVisitor visitor;
    visitor.printStmt(stmt, indent);
    return visitor.out.str();
}

} // namespace rtlrepair::verilog
