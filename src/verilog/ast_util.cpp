#include "verilog/ast_util.hpp"

#include <algorithm>
#include <optional>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace rtlrepair::verilog {

// ---------------------------------------------------------------------
// Structural equality
// ---------------------------------------------------------------------

bool
equal(const Expr &a, const Expr &b)
{
    if (a.kind != b.kind)
        return false;
    switch (a.kind) {
      case Expr::Kind::Ident:
        return static_cast<const IdentExpr &>(a).name ==
               static_cast<const IdentExpr &>(b).name;
      case Expr::Kind::Literal: {
        const auto &la = static_cast<const LiteralExpr &>(a);
        const auto &lb = static_cast<const LiteralExpr &>(b);
        return la.value == lb.value;
      }
      case Expr::Kind::Unary: {
        const auto &ua = static_cast<const UnaryExpr &>(a);
        const auto &ub = static_cast<const UnaryExpr &>(b);
        return ua.op == ub.op && equal(*ua.operand, *ub.operand);
      }
      case Expr::Kind::Binary: {
        const auto &ba = static_cast<const BinaryExpr &>(a);
        const auto &bb = static_cast<const BinaryExpr &>(b);
        return ba.op == bb.op && equal(*ba.lhs, *bb.lhs) &&
               equal(*ba.rhs, *bb.rhs);
      }
      case Expr::Kind::Ternary: {
        const auto &ta = static_cast<const TernaryExpr &>(a);
        const auto &tb = static_cast<const TernaryExpr &>(b);
        return equal(*ta.cond, *tb.cond) &&
               equal(*ta.then_expr, *tb.then_expr) &&
               equal(*ta.else_expr, *tb.else_expr);
      }
      case Expr::Kind::Concat: {
        const auto &ca = static_cast<const ConcatExpr &>(a);
        const auto &cb = static_cast<const ConcatExpr &>(b);
        if (ca.parts.size() != cb.parts.size())
            return false;
        for (size_t i = 0; i < ca.parts.size(); ++i) {
            if (!equal(*ca.parts[i], *cb.parts[i]))
                return false;
        }
        return true;
      }
      case Expr::Kind::Repl: {
        const auto &ra = static_cast<const ReplExpr &>(a);
        const auto &rb = static_cast<const ReplExpr &>(b);
        return equal(*ra.count, *rb.count) && equal(*ra.inner, *rb.inner);
      }
      case Expr::Kind::Index: {
        const auto &ia = static_cast<const IndexExpr &>(a);
        const auto &ib = static_cast<const IndexExpr &>(b);
        return equal(*ia.base, *ib.base) && equal(*ia.index, *ib.index);
      }
      case Expr::Kind::RangeSelect: {
        const auto &ra = static_cast<const RangeSelectExpr &>(a);
        const auto &rb = static_cast<const RangeSelectExpr &>(b);
        return equal(*ra.base, *rb.base) && equal(*ra.msb, *rb.msb) &&
               equal(*ra.lsb, *rb.lsb);
      }
      case Expr::Kind::Call: {
        const auto &ca = static_cast<const CallExpr &>(a);
        const auto &cb = static_cast<const CallExpr &>(b);
        if (ca.callee != cb.callee || ca.args.size() != cb.args.size())
            return false;
        for (size_t i = 0; i < ca.args.size(); ++i) {
            if (!equal(*ca.args[i], *cb.args[i]))
                return false;
        }
        return true;
      }
    }
    return false;
}

namespace {

bool
equalOrBothNull(const StmtPtr &a, const StmtPtr &b)
{
    if (!a || !b)
        return !a && !b;
    return equal(*a, *b);
}

bool
equalOrBothNull(const ExprPtr &a, const ExprPtr &b)
{
    if (!a || !b)
        return !a && !b;
    return equal(*a, *b);
}

} // namespace

bool
equal(const Stmt &a, const Stmt &b)
{
    if (a.kind != b.kind)
        return false;
    switch (a.kind) {
      case Stmt::Kind::Block: {
        const auto &ba = static_cast<const BlockStmt &>(a);
        const auto &bb = static_cast<const BlockStmt &>(b);
        if (ba.stmts.size() != bb.stmts.size())
            return false;
        for (size_t i = 0; i < ba.stmts.size(); ++i) {
            if (!equal(*ba.stmts[i], *bb.stmts[i]))
                return false;
        }
        return true;
      }
      case Stmt::Kind::If: {
        const auto &ia = static_cast<const IfStmt &>(a);
        const auto &ib = static_cast<const IfStmt &>(b);
        return equal(*ia.cond, *ib.cond) &&
               equal(*ia.then_stmt, *ib.then_stmt) &&
               equalOrBothNull(ia.else_stmt, ib.else_stmt);
      }
      case Stmt::Kind::Case: {
        const auto &ca = static_cast<const CaseStmt &>(a);
        const auto &cb = static_cast<const CaseStmt &>(b);
        if (ca.mode != cb.mode || !equal(*ca.subject, *cb.subject))
            return false;
        if (ca.items.size() != cb.items.size())
            return false;
        for (size_t i = 0; i < ca.items.size(); ++i) {
            const auto &ia = ca.items[i];
            const auto &ib = cb.items[i];
            if (ia.labels.size() != ib.labels.size())
                return false;
            for (size_t j = 0; j < ia.labels.size(); ++j) {
                if (!equal(*ia.labels[j], *ib.labels[j]))
                    return false;
            }
            if (!equal(*ia.body, *ib.body))
                return false;
        }
        return equalOrBothNull(ca.default_body, cb.default_body);
      }
      case Stmt::Kind::Assign: {
        const auto &aa = static_cast<const AssignStmt &>(a);
        const auto &ab = static_cast<const AssignStmt &>(b);
        return aa.blocking == ab.blocking && equal(*aa.lhs, *ab.lhs) &&
               equal(*aa.rhs, *ab.rhs);
      }
      case Stmt::Kind::For: {
        const auto &fa = static_cast<const ForStmt &>(a);
        const auto &fb = static_cast<const ForStmt &>(b);
        return equal(*fa.init, *fb.init) && equal(*fa.cond, *fb.cond) &&
               equal(*fa.step, *fb.step) && equal(*fa.body, *fb.body);
      }
      case Stmt::Kind::Empty:
        return true;
    }
    return false;
}

namespace {

bool
equalItem(const Item &a, const Item &b)
{
    if (a.kind != b.kind)
        return false;
    switch (a.kind) {
      case Item::Kind::Net: {
        const auto &na = static_cast<const NetDecl &>(a);
        const auto &nb = static_cast<const NetDecl &>(b);
        if (na.name != nb.name || na.net != nb.net || na.dir != nb.dir)
            return false;
        if (!!na.msb != !!nb.msb)
            return false;
        if (na.msb && (!equal(*na.msb, *nb.msb) ||
                       !equal(*na.lsb, *nb.lsb))) {
            return false;
        }
        return equalOrBothNull(na.arr_msb, nb.arr_msb) &&
               equalOrBothNull(na.arr_lsb, nb.arr_lsb);
      }
      case Item::Kind::Param: {
        const auto &pa = static_cast<const ParamDecl &>(a);
        const auto &pb = static_cast<const ParamDecl &>(b);
        return pa.name == pb.name && pa.is_local == pb.is_local &&
               equal(*pa.value, *pb.value);
      }
      case Item::Kind::ContAssign: {
        const auto &ca = static_cast<const ContAssign &>(a);
        const auto &cb = static_cast<const ContAssign &>(b);
        return equal(*ca.lhs, *cb.lhs) && equal(*ca.rhs, *cb.rhs);
      }
      case Item::Kind::Always: {
        const auto &aa = static_cast<const AlwaysBlock &>(a);
        const auto &ab = static_cast<const AlwaysBlock &>(b);
        if (aa.sensitivity.size() != ab.sensitivity.size())
            return false;
        for (size_t i = 0; i < aa.sensitivity.size(); ++i) {
            if (aa.sensitivity[i].edge != ab.sensitivity[i].edge ||
                aa.sensitivity[i].signal != ab.sensitivity[i].signal) {
                return false;
            }
        }
        return equal(*aa.body, *ab.body);
      }
      case Item::Kind::Initial: {
        const auto &ia = static_cast<const InitialBlock &>(a);
        const auto &ib = static_cast<const InitialBlock &>(b);
        return equal(*ia.body, *ib.body);
      }
      case Item::Kind::Instance: {
        const auto &xa = static_cast<const Instance &>(a);
        const auto &xb = static_cast<const Instance &>(b);
        if (xa.module_name != xb.module_name ||
            xa.instance_name != xb.instance_name ||
            xa.ports.size() != xb.ports.size() ||
            xa.params.size() != xb.params.size()) {
            return false;
        }
        auto conn_equal = [](const Connection &ca, const Connection &cb) {
            if (ca.port != cb.port || !!ca.expr != !!cb.expr)
                return false;
            return !ca.expr || equal(*ca.expr, *cb.expr);
        };
        for (size_t i = 0; i < xa.ports.size(); ++i) {
            if (!conn_equal(xa.ports[i], xb.ports[i]))
                return false;
        }
        for (size_t i = 0; i < xa.params.size(); ++i) {
            if (!conn_equal(xa.params[i], xb.params[i]))
                return false;
        }
        return true;
      }
      case Item::Kind::Function: {
        const auto &fa = static_cast<const FunctionDecl &>(a);
        const auto &fb = static_cast<const FunctionDecl &>(b);
        auto var_equal = [](const FunctionVar &va,
                            const FunctionVar &vb) {
            if (va.name != vb.name || va.is_integer != vb.is_integer)
                return false;
            if (!!va.msb != !!vb.msb)
                return false;
            return !va.msb ||
                   (equal(*va.msb, *vb.msb) && equal(*va.lsb, *vb.lsb));
        };
        if (fa.name != fb.name ||
            fa.inputs.size() != fb.inputs.size() ||
            fa.locals.size() != fb.locals.size() ||
            !equalOrBothNull(fa.ret_msb, fb.ret_msb) ||
            !equalOrBothNull(fa.ret_lsb, fb.ret_lsb)) {
            return false;
        }
        for (size_t i = 0; i < fa.inputs.size(); ++i) {
            if (!var_equal(fa.inputs[i], fb.inputs[i]))
                return false;
        }
        for (size_t i = 0; i < fa.locals.size(); ++i) {
            if (!var_equal(fa.locals[i], fb.locals[i]))
                return false;
        }
        return equal(*fa.body, *fb.body);
      }
      case Item::Kind::Genvar:
        return static_cast<const GenvarDecl &>(a).name ==
               static_cast<const GenvarDecl &>(b).name;
      case Item::Kind::GenFor: {
        const auto &ga = static_cast<const GenFor &>(a);
        const auto &gb = static_cast<const GenFor &>(b);
        if (ga.genvar != gb.genvar || ga.label != gb.label ||
            ga.body.size() != gb.body.size() ||
            !equal(*ga.init, *gb.init) || !equal(*ga.cond, *gb.cond) ||
            !equal(*ga.step, *gb.step)) {
            return false;
        }
        for (size_t i = 0; i < ga.body.size(); ++i) {
            if (!equalItem(*ga.body[i], *gb.body[i]))
                return false;
        }
        return true;
      }
      case Item::Kind::GenIf: {
        const auto &ga = static_cast<const GenIf &>(a);
        const auto &gb = static_cast<const GenIf &>(b);
        if (ga.then_label != gb.then_label ||
            ga.else_label != gb.else_label ||
            ga.then_items.size() != gb.then_items.size() ||
            ga.else_items.size() != gb.else_items.size() ||
            !equal(*ga.cond, *gb.cond)) {
            return false;
        }
        for (size_t i = 0; i < ga.then_items.size(); ++i) {
            if (!equalItem(*ga.then_items[i], *gb.then_items[i]))
                return false;
        }
        for (size_t i = 0; i < ga.else_items.size(); ++i) {
            if (!equalItem(*ga.else_items[i], *gb.else_items[i]))
                return false;
        }
        return true;
      }
    }
    return false;
}

} // namespace

bool
equal(const Module &a, const Module &b)
{
    if (a.name != b.name || a.items.size() != b.items.size())
        return false;
    if (a.ports.size() != b.ports.size())
        return false;
    for (size_t i = 0; i < a.ports.size(); ++i) {
        if (a.ports[i].name != b.ports[i].name)
            return false;
    }
    for (size_t i = 0; i < a.items.size(); ++i) {
        if (!equalItem(*a.items[i], *b.items[i]))
            return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Rewriting
// ---------------------------------------------------------------------

void
rewriteExprTree(ExprPtr &expr, const std::function<void(ExprPtr &)> &fn)
{
    check(expr != nullptr, "rewriteExprTree on null expression");
    switch (expr->kind) {
      case Expr::Kind::Ident:
      case Expr::Kind::Literal:
        break;
      case Expr::Kind::Unary:
        rewriteExprTree(static_cast<UnaryExpr &>(*expr).operand, fn);
        break;
      case Expr::Kind::Binary: {
        auto &b = static_cast<BinaryExpr &>(*expr);
        rewriteExprTree(b.lhs, fn);
        rewriteExprTree(b.rhs, fn);
        break;
      }
      case Expr::Kind::Ternary: {
        auto &t = static_cast<TernaryExpr &>(*expr);
        rewriteExprTree(t.cond, fn);
        rewriteExprTree(t.then_expr, fn);
        rewriteExprTree(t.else_expr, fn);
        break;
      }
      case Expr::Kind::Concat: {
        auto &c = static_cast<ConcatExpr &>(*expr);
        for (auto &part : c.parts)
            rewriteExprTree(part, fn);
        break;
      }
      case Expr::Kind::Repl: {
        auto &r = static_cast<ReplExpr &>(*expr);
        rewriteExprTree(r.count, fn);
        rewriteExprTree(r.inner, fn);
        break;
      }
      case Expr::Kind::Index: {
        auto &i = static_cast<IndexExpr &>(*expr);
        rewriteExprTree(i.base, fn);
        rewriteExprTree(i.index, fn);
        break;
      }
      case Expr::Kind::RangeSelect: {
        auto &r = static_cast<RangeSelectExpr &>(*expr);
        rewriteExprTree(r.base, fn);
        rewriteExprTree(r.msb, fn);
        rewriteExprTree(r.lsb, fn);
        break;
      }
      case Expr::Kind::Call: {
        auto &c = static_cast<CallExpr &>(*expr);
        for (auto &arg : c.args)
            rewriteExprTree(arg, fn);
        break;
      }
    }
    fn(expr);
}

void
rewriteStmtExprs(StmtPtr &stmt, const std::function<void(ExprPtr &)> &fn)
{
    check(stmt != nullptr, "rewriteStmtExprs on null statement");
    switch (stmt->kind) {
      case Stmt::Kind::Block: {
        auto &b = static_cast<BlockStmt &>(*stmt);
        for (auto &s : b.stmts)
            rewriteStmtExprs(s, fn);
        break;
      }
      case Stmt::Kind::If: {
        auto &i = static_cast<IfStmt &>(*stmt);
        rewriteExprTree(i.cond, fn);
        rewriteStmtExprs(i.then_stmt, fn);
        if (i.else_stmt)
            rewriteStmtExprs(i.else_stmt, fn);
        break;
      }
      case Stmt::Kind::Case: {
        auto &c = static_cast<CaseStmt &>(*stmt);
        rewriteExprTree(c.subject, fn);
        for (auto &item : c.items) {
            for (auto &label : item.labels)
                rewriteExprTree(label, fn);
            rewriteStmtExprs(item.body, fn);
        }
        if (c.default_body)
            rewriteStmtExprs(c.default_body, fn);
        break;
      }
      case Stmt::Kind::Assign: {
        auto &a = static_cast<AssignStmt &>(*stmt);
        rewriteExprTree(a.lhs, fn);
        rewriteExprTree(a.rhs, fn);
        break;
      }
      case Stmt::Kind::For: {
        auto &f = static_cast<ForStmt &>(*stmt);
        rewriteStmtExprs(f.init, fn);
        rewriteExprTree(f.cond, fn);
        rewriteStmtExprs(f.step, fn);
        rewriteStmtExprs(f.body, fn);
        break;
      }
      case Stmt::Kind::Empty:
        break;
    }
}

void
rewriteItemsExprs(std::vector<ItemPtr> &items,
                  const std::function<void(ExprPtr &)> &fn)
{
    auto walk = [&fn](std::vector<ItemPtr> &sub) {
        rewriteItemsExprs(sub, fn);
    };
    for (auto &item : items) {
        switch (item->kind) {
          case Item::Kind::Net: {
            auto &n = static_cast<NetDecl &>(*item);
            if (n.msb) {
                rewriteExprTree(n.msb, fn);
                rewriteExprTree(n.lsb, fn);
            }
            if (n.arr_msb) {
                rewriteExprTree(n.arr_msb, fn);
                rewriteExprTree(n.arr_lsb, fn);
            }
            break;
          }
          case Item::Kind::Param:
            rewriteExprTree(static_cast<ParamDecl &>(*item).value, fn);
            break;
          case Item::Kind::ContAssign: {
            auto &a = static_cast<ContAssign &>(*item);
            rewriteExprTree(a.lhs, fn);
            rewriteExprTree(a.rhs, fn);
            break;
          }
          case Item::Kind::Always:
            rewriteStmtExprs(static_cast<AlwaysBlock &>(*item).body, fn);
            break;
          case Item::Kind::Initial:
            rewriteStmtExprs(static_cast<InitialBlock &>(*item).body, fn);
            break;
          case Item::Kind::Instance: {
            auto &inst = static_cast<Instance &>(*item);
            for (auto &c : inst.params) {
                if (c.expr)
                    rewriteExprTree(c.expr, fn);
            }
            for (auto &c : inst.ports) {
                if (c.expr)
                    rewriteExprTree(c.expr, fn);
            }
            break;
          }
          case Item::Kind::Function: {
            auto &f = static_cast<FunctionDecl &>(*item);
            if (f.ret_msb) {
                rewriteExprTree(f.ret_msb, fn);
                rewriteExprTree(f.ret_lsb, fn);
            }
            auto rewrite_var = [&fn](FunctionVar &v) {
                if (v.msb) {
                    rewriteExprTree(v.msb, fn);
                    rewriteExprTree(v.lsb, fn);
                }
            };
            for (auto &v : f.inputs)
                rewrite_var(v);
            for (auto &v : f.locals)
                rewrite_var(v);
            rewriteStmtExprs(f.body, fn);
            break;
          }
          case Item::Kind::Genvar:
            break;
          case Item::Kind::GenFor: {
            auto &g = static_cast<GenFor &>(*item);
            rewriteExprTree(g.init, fn);
            rewriteExprTree(g.cond, fn);
            rewriteExprTree(g.step, fn);
            walk(g.body);
            break;
          }
          case Item::Kind::GenIf: {
            auto &g = static_cast<GenIf &>(*item);
            rewriteExprTree(g.cond, fn);
            walk(g.then_items);
            walk(g.else_items);
            break;
          }
        }
    }
}

void
rewriteModuleExprs(Module &module,
                   const std::function<void(ExprPtr &)> &fn)
{
    rewriteItemsExprs(module.items, fn);
}

void
rewriteStmtTree(StmtPtr &stmt, const std::function<void(StmtPtr &)> &fn)
{
    check(stmt != nullptr, "rewriteStmtTree on null statement");
    fn(stmt);
    switch (stmt->kind) {
      case Stmt::Kind::Block: {
        auto &b = static_cast<BlockStmt &>(*stmt);
        for (auto &s : b.stmts)
            rewriteStmtTree(s, fn);
        break;
      }
      case Stmt::Kind::If: {
        auto &i = static_cast<IfStmt &>(*stmt);
        rewriteStmtTree(i.then_stmt, fn);
        if (i.else_stmt)
            rewriteStmtTree(i.else_stmt, fn);
        break;
      }
      case Stmt::Kind::Case: {
        auto &c = static_cast<CaseStmt &>(*stmt);
        for (auto &item : c.items)
            rewriteStmtTree(item.body, fn);
        if (c.default_body)
            rewriteStmtTree(c.default_body, fn);
        break;
      }
      case Stmt::Kind::For:
        rewriteStmtTree(static_cast<ForStmt &>(*stmt).body, fn);
        break;
      case Stmt::Kind::Assign:
      case Stmt::Kind::Empty:
        break;
    }
}

void
collectIdents(const Expr &expr, std::set<std::string> &out)
{
    switch (expr.kind) {
      case Expr::Kind::Ident:
        out.insert(static_cast<const IdentExpr &>(expr).name);
        return;
      case Expr::Kind::Literal:
        return;
      case Expr::Kind::Unary:
        collectIdents(*static_cast<const UnaryExpr &>(expr).operand, out);
        return;
      case Expr::Kind::Binary: {
        const auto &b = static_cast<const BinaryExpr &>(expr);
        collectIdents(*b.lhs, out);
        collectIdents(*b.rhs, out);
        return;
      }
      case Expr::Kind::Ternary: {
        const auto &t = static_cast<const TernaryExpr &>(expr);
        collectIdents(*t.cond, out);
        collectIdents(*t.then_expr, out);
        collectIdents(*t.else_expr, out);
        return;
      }
      case Expr::Kind::Concat:
        for (const auto &p :
             static_cast<const ConcatExpr &>(expr).parts) {
            collectIdents(*p, out);
        }
        return;
      case Expr::Kind::Repl: {
        const auto &r = static_cast<const ReplExpr &>(expr);
        collectIdents(*r.count, out);
        collectIdents(*r.inner, out);
        return;
      }
      case Expr::Kind::Index: {
        const auto &i = static_cast<const IndexExpr &>(expr);
        collectIdents(*i.base, out);
        collectIdents(*i.index, out);
        return;
      }
      case Expr::Kind::RangeSelect: {
        const auto &r = static_cast<const RangeSelectExpr &>(expr);
        collectIdents(*r.base, out);
        collectIdents(*r.msb, out);
        collectIdents(*r.lsb, out);
        return;
      }
      case Expr::Kind::Call:
        // The callee is a function name, not a signal.
        for (const auto &arg :
             static_cast<const CallExpr &>(expr).args) {
            collectIdents(*arg, out);
        }
        return;
    }
}

void
substituteIdents(ExprPtr &expr,
                 const std::map<std::string, bv::Value> &values)
{
    rewriteExprTree(expr, [&values](ExprPtr &e) {
        if (e->kind != Expr::Kind::Ident)
            return;
        auto it = values.find(static_cast<IdentExpr &>(*e).name);
        if (it == values.end())
            return;
        auto *lit = new LiteralExpr(it->second, true);
        lit->id = e->id;
        lit->loc = e->loc;
        e.reset(lit);
    });
}

// ---------------------------------------------------------------------
// Simplification
// ---------------------------------------------------------------------

namespace {

const LiteralExpr *
asLiteral(const ExprPtr &e)
{
    return e && e->kind == Expr::Kind::Literal
               ? static_cast<const LiteralExpr *>(e.get())
               : nullptr;
}

/** Is this a fully-known 1-bit literal with the given value? */
bool
isBoolLiteral(const ExprPtr &e, bool value)
{
    const LiteralExpr *lit = asLiteral(e);
    if (!lit || lit->value.hasX())
        return false;
    if (value)
        return lit->value.isNonZero() && lit->value.width() == 1;
    return lit->value.isZero();
}

/** Truthiness of a literal condition: 1, 0, or -1 if unknown/not lit. */
int
litTruth(const ExprPtr &e)
{
    const LiteralExpr *lit = asLiteral(e);
    if (!lit || lit->value.hasX())
        return -1;
    return lit->value.isNonZero() ? 1 : 0;
}

/** Fold a binary operator over two known literal values. */
std::optional<bv::Value>
foldBinaryLiterals(BinaryOp op, bv::Value lhs, bv::Value rhs)
{
    using bv::Value;
    if (lhs.hasX() || rhs.hasX())
        return std::nullopt;
    uint32_t w = std::max(lhs.width(), rhs.width());
    if (lhs.width() < w)
        lhs = lhs.zext(w);
    if (rhs.width() < w)
        rhs = rhs.zext(w);
    switch (op) {
      case BinaryOp::Add: return lhs + rhs;
      case BinaryOp::Sub: return lhs - rhs;
      case BinaryOp::Mul: return lhs * rhs;
      case BinaryOp::Div: return lhs.udiv(rhs);
      case BinaryOp::Mod: return lhs.urem(rhs);
      case BinaryOp::BitAnd: return lhs & rhs;
      case BinaryOp::BitOr: return lhs | rhs;
      case BinaryOp::BitXor: return lhs ^ rhs;
      case BinaryOp::BitXnor: return ~(lhs ^ rhs);
      case BinaryOp::LogicAnd: return lhs.redOr() & rhs.redOr();
      case BinaryOp::LogicOr: return lhs.redOr() | rhs.redOr();
      case BinaryOp::Shl: return lhs.shl(rhs);
      case BinaryOp::Shr: return lhs.lshr(rhs);
      case BinaryOp::AShr: return lhs.ashr(rhs);
      case BinaryOp::Lt: return lhs.ult(rhs);
      case BinaryOp::Le: return lhs.ule(rhs);
      case BinaryOp::Gt: return rhs.ult(lhs);
      case BinaryOp::Ge: return rhs.ule(lhs);
      case BinaryOp::Eq: return lhs.eq(rhs);
      case BinaryOp::Ne: return lhs.ne(rhs);
      case BinaryOp::CaseEq: return lhs.caseEq(rhs);
      case BinaryOp::CaseNe: return ~lhs.caseEq(rhs);
    }
    return std::nullopt;
}

void
simplifyOne(ExprPtr &e)
{
    switch (e->kind) {
      case Expr::Kind::Ternary: {
        auto &t = static_cast<TernaryExpr &>(*e);
        int truth = litTruth(t.cond);
        if (truth == 1) {
            e = std::move(t.then_expr);
        } else if (truth == 0) {
            e = std::move(t.else_expr);
        }
        return;
      }
      case Expr::Kind::Binary: {
        auto &b = static_cast<BinaryExpr &>(*e);
        const LiteralExpr *la = asLiteral(b.lhs);
        const LiteralExpr *lb = asLiteral(b.rhs);
        if (la && lb) {
            auto folded =
                foldBinaryLiterals(b.op, la->value, lb->value);
            if (folded) {
                auto *lit = new LiteralExpr(*folded, true);
                lit->id = e->id;
                e.reset(lit);
                return;
            }
        }
        switch (b.op) {
          case BinaryOp::LogicAnd:
            if (isBoolLiteral(b.lhs, true)) {
                e = std::move(b.rhs);
            } else if (isBoolLiteral(b.rhs, true)) {
                e = std::move(b.lhs);
            } else if (litTruth(b.lhs) == 0 || litTruth(b.rhs) == 0) {
                auto *lit =
                    new LiteralExpr(bv::Value::fromUint(1, 0), true);
                lit->id = e->id;
                e.reset(lit);
            }
            return;
          case BinaryOp::LogicOr:
            if (isBoolLiteral(b.lhs, false)) {
                e = std::move(b.rhs);
            } else if (isBoolLiteral(b.rhs, false)) {
                e = std::move(b.lhs);
            } else if (litTruth(b.lhs) == 1 || litTruth(b.rhs) == 1) {
                auto *lit =
                    new LiteralExpr(bv::Value::fromUint(1, 1), true);
                lit->id = e->id;
                e.reset(lit);
            }
            return;
          case BinaryOp::BitAnd:
            // x & 1'b1 == x only for 1-bit x; conservative: literal
            // all-ones of width 1.
            if (isBoolLiteral(b.rhs, true)) {
                e = std::move(b.lhs);
            } else if (isBoolLiteral(b.lhs, true)) {
                e = std::move(b.rhs);
            }
            return;
          case BinaryOp::BitOr:
            if (isBoolLiteral(b.rhs, false)) {
                e = std::move(b.lhs);
            } else if (isBoolLiteral(b.lhs, false)) {
                e = std::move(b.rhs);
            }
            return;
          case BinaryOp::BitXor:
            if (isBoolLiteral(b.rhs, false)) {
                e = std::move(b.lhs);
            } else if (isBoolLiteral(b.lhs, false)) {
                e = std::move(b.rhs);
            }
            return;
          default:
            return;
        }
      }
      case Expr::Kind::Unary: {
        auto &u = static_cast<UnaryExpr &>(*e);
        if (const LiteralExpr *lu = asLiteral(u.operand);
            lu && !lu->value.hasX()) {
            std::optional<bv::Value> folded;
            switch (u.op) {
              case UnaryOp::BitNot: folded = ~lu->value; break;
              case UnaryOp::LogicNot:
                folded = ~lu->value.redOr();
                break;
              case UnaryOp::Minus: folded = lu->value.negate(); break;
              case UnaryOp::Plus: folded = lu->value; break;
              case UnaryOp::RedAnd: folded = lu->value.redAnd(); break;
              case UnaryOp::RedOr: folded = lu->value.redOr(); break;
              case UnaryOp::RedXor: folded = lu->value.redXor(); break;
              default: break;
            }
            if (folded) {
                auto *lit = new LiteralExpr(*folded, true);
                lit->id = e->id;
                e.reset(lit);
                return;
            }
        }
        // Fold double negation introduced by guard folding.
        if (u.op == UnaryOp::LogicNot &&
            u.operand->kind == Expr::Kind::Unary) {
            auto &inner = static_cast<UnaryExpr &>(*u.operand);
            if (inner.op == UnaryOp::LogicNot) {
                e = std::move(inner.operand);
            }
        }
        return;
      }
      default:
        return;
    }
}

bool
isEmptyStmt(const StmtPtr &s)
{
    if (!s)
        return true;
    if (s->kind == Stmt::Kind::Empty)
        return true;
    if (s->kind == Stmt::Kind::Block) {
        const auto &b = static_cast<const BlockStmt &>(*s);
        for (const auto &inner : b.stmts) {
            if (!isEmptyStmt(inner))
                return false;
        }
        return true;
    }
    return false;
}

} // namespace

void
simplifyExpr(ExprPtr &expr)
{
    rewriteExprTree(expr, simplifyOne);
}

void
simplifyStmt(StmtPtr &stmt)
{
    rewriteStmtExprs(stmt, simplifyOne);
    // Fold if(const) and drop dead statements, bottom-up.
    std::function<void(StmtPtr &)> fold = [&fold](StmtPtr &s) {
        switch (s->kind) {
          case Stmt::Kind::Block: {
            auto &b = static_cast<BlockStmt &>(*s);
            for (auto &inner : b.stmts)
                fold(inner);
            // Splice unlabeled nested blocks into their parent and
            // drop empty statements.
            std::vector<StmtPtr> flat;
            for (auto &inner : b.stmts) {
                if (inner->kind == Stmt::Kind::Empty)
                    continue;
                if (inner->kind == Stmt::Kind::Block &&
                    static_cast<BlockStmt &>(*inner).label.empty()) {
                    auto &nested = static_cast<BlockStmt &>(*inner);
                    for (auto &sub : nested.stmts)
                        flat.push_back(std::move(sub));
                } else {
                    flat.push_back(std::move(inner));
                }
            }
            b.stmts = std::move(flat);
            return;
          }
          case Stmt::Kind::If: {
            auto &i = static_cast<IfStmt &>(*s);
            fold(i.then_stmt);
            if (i.else_stmt)
                fold(i.else_stmt);
            int truth = litTruth(i.cond);
            if (truth == 1) {
                s = std::move(i.then_stmt);
            } else if (truth == 0) {
                if (i.else_stmt) {
                    s = std::move(i.else_stmt);
                } else {
                    auto *empty = new EmptyStmt();
                    empty->id = s->id;
                    s.reset(empty);
                }
            } else if (isEmptyStmt(i.then_stmt) &&
                       isEmptyStmt(i.else_stmt)) {
                auto *empty = new EmptyStmt();
                empty->id = s->id;
                s.reset(empty);
            } else if (i.else_stmt && isEmptyStmt(i.else_stmt)) {
                i.else_stmt.reset();
            }
            return;
          }
          case Stmt::Kind::Case: {
            auto &c = static_cast<CaseStmt &>(*s);
            for (auto &item : c.items)
                fold(item.body);
            if (c.default_body)
                fold(c.default_body);
            return;
          }
          case Stmt::Kind::For:
            fold(static_cast<ForStmt &>(*s).body);
            return;
          case Stmt::Kind::Assign:
          case Stmt::Kind::Empty:
            return;
        }
    };
    fold(stmt);
}

void
simplifyModule(Module &module)
{
    for (auto &item : module.items) {
        switch (item->kind) {
          case Item::Kind::ContAssign: {
            auto &a = static_cast<ContAssign &>(*item);
            simplifyExpr(a.rhs);
            break;
          }
          case Item::Kind::Always:
            simplifyStmt(static_cast<AlwaysBlock &>(*item).body);
            break;
          default:
            break;
        }
    }
}

// ---------------------------------------------------------------------
// Diffs
// ---------------------------------------------------------------------

std::vector<DiffLine>
diffLines(const std::string &before, const std::string &after)
{
    std::vector<std::string> a = split(before, '\n');
    std::vector<std::string> b = split(after, '\n');
    // Drop a trailing empty line from the final newline.
    if (!a.empty() && a.back().empty())
        a.pop_back();
    if (!b.empty() && b.back().empty())
        b.pop_back();

    size_t n = a.size(), m = b.size();
    // LCS dynamic program (sources here are small).
    std::vector<std::vector<uint32_t>> lcs(n + 1,
                                           std::vector<uint32_t>(m + 1, 0));
    for (size_t i = n; i-- > 0;) {
        for (size_t j = m; j-- > 0;) {
            if (a[i] == b[j]) {
                lcs[i][j] = lcs[i + 1][j + 1] + 1;
            } else {
                lcs[i][j] = std::max(lcs[i + 1][j], lcs[i][j + 1]);
            }
        }
    }
    std::vector<DiffLine> out;
    size_t i = 0, j = 0;
    while (i < n && j < m) {
        if (a[i] == b[j]) {
            out.push_back({' ', a[i]});
            ++i;
            ++j;
        } else if (lcs[i + 1][j] >= lcs[i][j + 1]) {
            out.push_back({'-', a[i]});
            ++i;
        } else {
            out.push_back({'+', b[j]});
            ++j;
        }
    }
    for (; i < n; ++i)
        out.push_back({'-', a[i]});
    for (; j < m; ++j)
        out.push_back({'+', b[j]});
    return out;
}

std::string
formatDiff(const std::vector<DiffLine> &diff)
{
    std::string out;
    for (const auto &line : diff) {
        if (line.tag == ' ')
            continue;
        out += line.tag;
        out += ' ';
        out += line.text;
        out += '\n';
    }
    return out;
}

std::pair<int, int>
countDiff(const std::string &before, const std::string &after)
{
    int added = 0, removed = 0;
    for (const auto &line : diffLines(before, after)) {
        if (line.tag == '+')
            ++added;
        else if (line.tag == '-')
            ++removed;
    }
    return {added, removed};
}

} // namespace rtlrepair::verilog
