#include "verilog/parser.hpp"

#include <fstream>
#include <set>
#include <sstream>

#include "util/logging.hpp"
#include "util/strings.hpp"
#include "verilog/lexer.hpp"

namespace rtlrepair::verilog {

namespace {

/** Recursive-descent parser over a pre-lexed token stream. */
class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens)
        : _tokens(std::move(tokens)) {}

    SourceFile
    parseSourceFile()
    {
        SourceFile file;
        while (!at(TokenKind::Eof))
            file.modules.push_back(parseModule());
        return file;
    }

    ExprPtr
    parseSingleExpression()
    {
        _module = std::make_unique<Module>();
        ExprPtr e = parseExpr();
        expect(TokenKind::Eof);
        return e;
    }

  private:
    // -- token helpers ------------------------------------------------

    const Token &peek(size_t ahead = 0) const
    {
        size_t i = _pos + ahead;
        return i < _tokens.size() ? _tokens[i] : _tokens.back();
    }

    bool at(TokenKind kind) const { return peek().kind == kind; }

    const Token &
    advance()
    {
        const Token &t = _tokens[_pos];
        if (_pos + 1 < _tokens.size())
            ++_pos;
        return t;
    }

    bool
    accept(TokenKind kind)
    {
        if (!at(kind))
            return false;
        advance();
        return true;
    }

    const Token &
    expect(TokenKind kind)
    {
        if (!at(kind)) {
            fail(format("expected %s, found %s '%s'", tokenKindName(kind),
                        tokenKindName(peek().kind), peek().text.c_str()));
        }
        return advance();
    }

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        failAt(peek().loc, msg);
    }

    [[noreturn]] static void
    failAt(SourceLoc loc, const std::string &msg)
    {
        fatal(format("line %u:%u: %s", loc.line, loc.col, msg.c_str()));
    }

    /**
     * Verilog reserved words our lexer does not tokenize (they lex as
     * plain identifiers).  Flagged eagerly wherever a statement or
     * item may start so the diagnostic lands on the keyword itself
     * instead of on whatever token the misparse trips over later.
     */
    static bool
    isUnsupportedKeyword(const std::string &text)
    {
        static const std::set<std::string> kUnsupported = {
            "task",      "endtask",   "while",    "repeat",
            "forever",   "wait",      "disable",  "fork",
            "join",      "force",     "release",  "deassign",
            "defparam",  "specify",   "endspecify", "primitive",
            "endprimitive", "table",  "endtable", "real",
            "time",      "event",     "realtime", "specparam",
            "tri",       "tri0",      "tri1",     "trireg",
            "wand",      "wor",       "supply0",  "supply1",
            "automatic", "pullup",    "pulldown",
        };
        return kUnsupported.count(text) > 0;
    }

    // -- node helpers -------------------------------------------------

    template <typename T>
    T *
    tag(T *node, SourceLoc loc)
    {
        node->id = _module->newNodeId();
        node->loc = loc;
        return node;
    }

    ExprPtr
    makeIdent(std::string name, SourceLoc loc)
    {
        return ExprPtr(tag(new IdentExpr(std::move(name)), loc));
    }

    // -- module level -------------------------------------------------

    std::unique_ptr<Module>
    parseModule()
    {
        _module = std::make_unique<Module>();
        _items = &_module->items;
        expect(TokenKind::KwModule);
        _module->name = expect(TokenKind::Identifier).text;

        if (accept(TokenKind::Hash))
            parseParameterPortList();

        if (accept(TokenKind::LParen)) {
            if (!at(TokenKind::RParen))
                parsePortList();
            expect(TokenKind::RParen);
        }
        expect(TokenKind::Semicolon);

        while (!at(TokenKind::KwEndmodule))
            parseItem();
        expect(TokenKind::KwEndmodule);

        return std::move(_module);
    }

    /** #(parameter A = 1, parameter [3:0] B = 2) */
    void
    parseParameterPortList()
    {
        expect(TokenKind::LParen);
        expect(TokenKind::KwParameter);
        parseParamAssignments(/*is_local=*/false, /*stop_at_paren=*/true);
        while (accept(TokenKind::Comma)) {
            accept(TokenKind::KwParameter); // keyword may be repeated
            parseParamAssignments(false, true);
        }
        expect(TokenKind::RParen);
    }

    /** ANSI or plain port list inside the module header parens. */
    void
    parsePortList()
    {
        PortDir dir = PortDir::Unknown;
        NetKind net = NetKind::Wire;
        bool is_signed = false;
        ExprPtr msb, lsb;
        bool have_decl = false;

        do {
            if (at(TokenKind::KwInput) || at(TokenKind::KwOutput) ||
                at(TokenKind::KwInout)) {
                dir = at(TokenKind::KwInput) ? PortDir::Input
                    : at(TokenKind::KwOutput) ? PortDir::Output
                                              : PortDir::Inout;
                advance();
                net = NetKind::Wire;
                is_signed = false;
                msb.reset();
                lsb.reset();
                have_decl = true;
                if (accept(TokenKind::KwReg))
                    net = NetKind::Reg;
                else
                    accept(TokenKind::KwWire);
                if (accept(TokenKind::KwSigned))
                    is_signed = true;
                if (at(TokenKind::LBracket))
                    parseRange(msb, lsb);
            }
            const Token &name_tok = expect(TokenKind::Identifier);
            Port port;
            port.name = name_tok.text;
            port.dir = dir;
            _module->ports.push_back(port);
            if (have_decl) {
                auto *decl = tag(new NetDecl(), name_tok.loc);
                decl->name = name_tok.text;
                decl->net = net;
                decl->is_signed = is_signed;
                decl->dir = dir;
                decl->msb = msb ? msb->clone() : nullptr;
                decl->lsb = lsb ? lsb->clone() : nullptr;
                _items->emplace_back(decl);
            }
        } while (accept(TokenKind::Comma));
    }

    /** [msb:lsb] */
    void
    parseRange(ExprPtr &msb, ExprPtr &lsb)
    {
        expect(TokenKind::LBracket);
        msb = parseExpr();
        expect(TokenKind::Colon);
        lsb = parseExpr();
        expect(TokenKind::RBracket);
    }

    void
    parseItem()
    {
        switch (peek().kind) {
          case TokenKind::KwInput:
          case TokenKind::KwOutput:
          case TokenKind::KwInout:
            parsePortDeclItem();
            return;
          case TokenKind::KwWire:
          case TokenKind::KwReg:
            parseNetDeclItem();
            return;
          case TokenKind::KwInteger:
            parseIntegerDeclItem();
            return;
          case TokenKind::KwParameter:
            advance();
            parseParamAssignments(false, false);
            expect(TokenKind::Semicolon);
            return;
          case TokenKind::KwLocalparam:
            advance();
            parseParamAssignments(true, false);
            expect(TokenKind::Semicolon);
            return;
          case TokenKind::KwAssign:
            parseContAssign();
            return;
          case TokenKind::KwAlways:
            parseAlways();
            return;
          case TokenKind::KwInitial: {
            SourceLoc loc = peek().loc;
            advance();
            auto *item = tag(new InitialBlock(), loc);
            item->body = parseStmt();
            _items->emplace_back(item);
            return;
          }
          case TokenKind::Identifier:
            if (isUnsupportedKeyword(peek().text)) {
                fail(format("unsupported keyword '%s' at module level: "
                            "outside the synthesizable subset",
                            peek().text.c_str()));
            }
            parseInstance();
            return;
          case TokenKind::KwFunction:
            parseFunction();
            return;
          case TokenKind::KwGenerate:
            parseGenerateRegion();
            return;
          case TokenKind::KwGenvar:
            parseGenvarDecl();
            return;
          case TokenKind::KwFor:
            parseGenFor();
            return;
          case TokenKind::KwIf:
            parseGenIf();
            return;
          default:
            fail("unexpected token at module level");
        }
    }

    // -- generate constructs ------------------------------------------

    void
    parseGenvarDecl()
    {
        expect(TokenKind::KwGenvar);
        do {
            const Token &name_tok = expect(TokenKind::Identifier);
            auto *decl = tag(new GenvarDecl(), name_tok.loc);
            decl->name = name_tok.text;
            _items->emplace_back(decl);
        } while (accept(TokenKind::Comma));
        expect(TokenKind::Semicolon);
    }

    /** `generate ... endgenerate` is a transparent wrapper. */
    void
    parseGenerateRegion()
    {
        expect(TokenKind::KwGenerate);
        while (!at(TokenKind::KwEndgenerate)) {
            if (at(TokenKind::Eof))
                fail("unterminated generate region");
            parseItem();
        }
        expect(TokenKind::KwEndgenerate);
    }

    /**
     * `begin [: label] items end`, or a single unlabeled item, parsed
     * into @p into.  Returns the label (empty when absent).
     */
    std::string
    parseGenBlock(std::vector<ItemPtr> &into)
    {
        std::string label;
        std::vector<ItemPtr> *saved = _items;
        _items = &into;
        if (accept(TokenKind::KwBegin)) {
            if (accept(TokenKind::Colon))
                label = expect(TokenKind::Identifier).text;
            while (!at(TokenKind::KwEnd)) {
                if (at(TokenKind::Eof))
                    fail("unterminated generate block");
                parseItem();
            }
            expect(TokenKind::KwEnd);
        } else {
            parseItem();
        }
        _items = saved;
        return label;
    }

    void
    parseGenFor()
    {
        SourceLoc loc = peek().loc;
        expect(TokenKind::KwFor);
        auto *item = tag(new GenFor(), loc);
        expect(TokenKind::LParen);
        item->genvar = expect(TokenKind::Identifier).text;
        expect(TokenKind::Equals);
        item->init = parseExpr();
        expect(TokenKind::Semicolon);
        item->cond = parseExpr();
        expect(TokenKind::Semicolon);
        const Token &step_var = expect(TokenKind::Identifier);
        if (step_var.text != item->genvar) {
            failAt(step_var.loc,
                   "generate-for step must update the loop genvar");
        }
        expect(TokenKind::Equals);
        item->step = parseExpr();
        expect(TokenKind::RParen);
        item->label = parseGenBlock(item->body);
        _items->emplace_back(item);
    }

    void
    parseGenIf()
    {
        SourceLoc loc = peek().loc;
        expect(TokenKind::KwIf);
        auto *item = tag(new GenIf(), loc);
        expect(TokenKind::LParen);
        item->cond = parseExpr();
        expect(TokenKind::RParen);
        item->then_label = parseGenBlock(item->then_items);
        if (accept(TokenKind::KwElse)) {
            if (at(TokenKind::KwIf)) {
                // else-if chains nest as a one-item else block.
                std::vector<ItemPtr> *saved = _items;
                _items = &item->else_items;
                parseGenIf();
                _items = saved;
            } else {
                item->else_label = parseGenBlock(item->else_items);
            }
        }
        _items->emplace_back(item);
    }

    // -- functions ----------------------------------------------------

    /** Range or `integer` marker of a function input/local/return. */
    void
    parseFunctionVarType(ExprPtr &msb, ExprPtr &lsb, bool &is_integer)
    {
        msb.reset();
        lsb.reset();
        is_integer = false;
        if (accept(TokenKind::KwInteger)) {
            is_integer = true;
            return;
        }
        accept(TokenKind::KwSigned);  // accepted, treated as unsigned
        if (at(TokenKind::LBracket))
            parseRange(msb, lsb);
    }

    void
    parseFunction()
    {
        SourceLoc loc = peek().loc;
        expect(TokenKind::KwFunction);
        auto *item = tag(new FunctionDecl(), loc);
        bool ret_integer = false;
        parseFunctionVarType(item->ret_msb, item->ret_lsb, ret_integer);
        if (ret_integer) {
            item->ret_msb = makeInt(31, loc);
            item->ret_lsb = makeInt(0, loc);
        }
        item->name = expect(TokenKind::Identifier).text;

        if (accept(TokenKind::LParen)) {
            // ANSI header: (input [r] a, input b, ...)
            do {
                expect(TokenKind::KwInput);
                FunctionVar var;
                parseFunctionVarType(var.msb, var.lsb, var.is_integer);
                var.name = expect(TokenKind::Identifier).text;
                item->inputs.push_back(std::move(var));
            } while (accept(TokenKind::Comma));
            expect(TokenKind::RParen);
        }
        expect(TokenKind::Semicolon);

        // Classic declarations before the body statement.
        while (true) {
            if (accept(TokenKind::KwInput)) {
                FunctionVar var;
                parseFunctionVarType(var.msb, var.lsb, var.is_integer);
                var.name = expect(TokenKind::Identifier).text;
                item->inputs.push_back(std::move(var));
                while (accept(TokenKind::Comma)) {
                    FunctionVar more;
                    more.msb = var.msb ? var.msb->clone() : nullptr;
                    more.lsb = var.lsb ? var.lsb->clone() : nullptr;
                    more.is_integer = var.is_integer;
                    more.name = expect(TokenKind::Identifier).text;
                    item->inputs.push_back(std::move(more));
                }
                expect(TokenKind::Semicolon);
            } else if (at(TokenKind::KwReg) || at(TokenKind::KwInteger)) {
                bool is_integer = at(TokenKind::KwInteger);
                advance();
                FunctionVar var;
                var.is_integer = is_integer;
                if (!is_integer) {
                    accept(TokenKind::KwSigned);
                    if (at(TokenKind::LBracket))
                        parseRange(var.msb, var.lsb);
                }
                var.name = expect(TokenKind::Identifier).text;
                item->locals.push_back(std::move(var));
                while (accept(TokenKind::Comma)) {
                    FunctionVar more;
                    more.msb = var.msb ? var.msb->clone() : nullptr;
                    more.lsb = var.lsb ? var.lsb->clone() : nullptr;
                    more.is_integer = var.is_integer;
                    more.name = expect(TokenKind::Identifier).text;
                    item->locals.push_back(std::move(more));
                }
                expect(TokenKind::Semicolon);
            } else {
                break;
            }
        }

        item->body = parseStmt();
        expect(TokenKind::KwEndfunction);
        _items->emplace_back(item);
    }

    ExprPtr
    makeInt(uint64_t v, SourceLoc loc)
    {
        return ExprPtr(tag(
            new LiteralExpr(bv::Value::fromUint(32, v), false), loc));
    }

    void
    parsePortDeclItem()
    {
        PortDir dir = at(TokenKind::KwInput) ? PortDir::Input
                    : at(TokenKind::KwOutput) ? PortDir::Output
                                              : PortDir::Inout;
        advance();
        NetKind net = NetKind::Wire;
        if (accept(TokenKind::KwReg))
            net = NetKind::Reg;
        else
            accept(TokenKind::KwWire);
        bool is_signed = accept(TokenKind::KwSigned);
        ExprPtr msb, lsb;
        if (at(TokenKind::LBracket))
            parseRange(msb, lsb);
        do {
            const Token &name_tok = expect(TokenKind::Identifier);
            // Merge with a pre-existing implicit decl (non-ANSI style
            // `output q; reg q;` handled by the reg decl updating kind).
            NetDecl *existing = _module->findNet(name_tok.text);
            if (existing) {
                existing->dir = dir;
                if (net == NetKind::Reg)
                    existing->net = net;
                if (msb) {
                    existing->msb = msb->clone();
                    existing->lsb = lsb->clone();
                }
            } else {
                auto *decl = tag(new NetDecl(), name_tok.loc);
                decl->name = name_tok.text;
                decl->net = net;
                decl->is_signed = is_signed;
                decl->dir = dir;
                decl->msb = msb ? msb->clone() : nullptr;
                decl->lsb = lsb ? lsb->clone() : nullptr;
                _items->emplace_back(decl);
            }
            // Record direction on the port list for non-ANSI headers.
            for (auto &port : _module->ports) {
                if (port.name == name_tok.text &&
                    port.dir == PortDir::Unknown) {
                    port.dir = dir;
                }
            }
        } while (accept(TokenKind::Comma));
        expect(TokenKind::Semicolon);
    }

    void
    parseNetDeclItem()
    {
        NetKind net = at(TokenKind::KwReg) ? NetKind::Reg : NetKind::Wire;
        advance();
        bool is_signed = accept(TokenKind::KwSigned);
        ExprPtr msb, lsb;
        if (at(TokenKind::LBracket))
            parseRange(msb, lsb);
        do {
            const Token &name_tok = expect(TokenKind::Identifier);
            // Memory (2-D reg) dimension after the name.
            ExprPtr arr_msb, arr_lsb;
            if (at(TokenKind::LBracket)) {
                if (net != NetKind::Reg) {
                    fail("wire arrays are outside the synthesizable "
                         "subset (only reg memories)");
                }
                parseRange(arr_msb, arr_lsb);
                if (at(TokenKind::LBracket))
                    fail("memories with more than one address "
                         "dimension are outside the subset");
            }
            // Merge only with module-scope decls; names declared in a
            // generate body are a fresh scope.
            NetDecl *existing = _items == &_module->items
                                    ? _module->findNet(name_tok.text)
                                    : nullptr;
            if (existing && !arr_msb && !existing->isMemory()) {
                // `reg q;` after `output q;`
                existing->net = net;
                existing->is_signed = existing->is_signed || is_signed;
                if (msb) {
                    existing->msb = msb->clone();
                    existing->lsb = lsb->clone();
                }
            } else {
                auto *decl = tag(new NetDecl(), name_tok.loc);
                decl->name = name_tok.text;
                decl->net = net;
                decl->is_signed = is_signed;
                decl->msb = msb ? msb->clone() : nullptr;
                decl->lsb = lsb ? lsb->clone() : nullptr;
                decl->arr_msb = std::move(arr_msb);
                decl->arr_lsb = std::move(arr_lsb);
                _items->emplace_back(decl);
            }
            if (accept(TokenKind::Equals)) {
                // Wire initializer is sugar for a continuous assign.
                auto *assign = tag(new ContAssign(), name_tok.loc);
                assign->lhs = makeIdent(name_tok.text, name_tok.loc);
                assign->rhs = parseExpr();
                _items->emplace_back(assign);
            }
        } while (accept(TokenKind::Comma));
        expect(TokenKind::Semicolon);
    }

    void
    parseIntegerDeclItem()
    {
        SourceLoc loc = peek().loc;
        advance();
        do {
            const Token &name_tok = expect(TokenKind::Identifier);
            auto *decl = tag(new NetDecl(), loc);
            decl->name = name_tok.text;
            decl->net = NetKind::Integer;
            _items->emplace_back(decl);
        } while (accept(TokenKind::Comma));
        expect(TokenKind::Semicolon);
    }

    void
    parseParamAssignments(bool is_local, bool stop_at_paren)
    {
        // Optional range on the parameter: parsed and ignored for value
        // semantics (our parameters are plain integers).
        ExprPtr msb, lsb;
        if (at(TokenKind::LBracket))
            parseRange(msb, lsb);
        while (true) {
            const Token &name_tok = expect(TokenKind::Identifier);
            expect(TokenKind::Equals);
            auto *decl = tag(new ParamDecl(), name_tok.loc);
            decl->name = name_tok.text;
            decl->is_local = is_local;
            decl->value = parseExpr();
            _items->emplace_back(decl);
            if (stop_at_paren)
                return; // caller handles the comma between `parameter`s
            if (!accept(TokenKind::Comma))
                return;
        }
    }

    void
    parseContAssign()
    {
        expect(TokenKind::KwAssign);
        if (accept(TokenKind::Hash))
            expect(TokenKind::Number); // delay, ignored
        do {
            SourceLoc loc = peek().loc;
            ExprPtr lhs = parseLValue();
            expect(TokenKind::Equals);
            auto *item = tag(new ContAssign(), loc);
            item->lhs = std::move(lhs);
            item->rhs = parseExpr();
            _items->emplace_back(item);
        } while (accept(TokenKind::Comma));
        expect(TokenKind::Semicolon);
    }

    void
    parseAlways()
    {
        SourceLoc loc = peek().loc;
        expect(TokenKind::KwAlways);
        auto *item = tag(new AlwaysBlock(), loc);
        expect(TokenKind::At);
        if (accept(TokenKind::Star)) {
            item->sensitivity.push_back(
                SensItem{SensItem::Edge::Star, ""});
        } else {
            expect(TokenKind::LParen);
            if (accept(TokenKind::Star)) {
                item->sensitivity.push_back(
                    SensItem{SensItem::Edge::Star, ""});
            } else {
                do {
                    SensItem sens;
                    if (accept(TokenKind::KwPosedge))
                        sens.edge = SensItem::Edge::Posedge;
                    else if (accept(TokenKind::KwNegedge))
                        sens.edge = SensItem::Edge::Negedge;
                    else
                        sens.edge = SensItem::Edge::Level;
                    sens.signal = expect(TokenKind::Identifier).text;
                    item->sensitivity.push_back(sens);
                } while (accept(TokenKind::KwOr) ||
                         accept(TokenKind::Comma));
            }
            expect(TokenKind::RParen);
        }
        item->body = parseStmt();
        _items->emplace_back(item);
    }

    void
    parseInstance()
    {
        SourceLoc loc = peek().loc;
        auto *item = tag(new Instance(), loc);
        item->module_name = expect(TokenKind::Identifier).text;
        if (accept(TokenKind::Hash)) {
            expect(TokenKind::LParen);
            item->params = parseConnections();
            expect(TokenKind::RParen);
        }
        item->instance_name = expect(TokenKind::Identifier).text;
        expect(TokenKind::LParen);
        if (!at(TokenKind::RParen))
            item->ports = parseConnections();
        expect(TokenKind::RParen);
        expect(TokenKind::Semicolon);
        _items->emplace_back(item);
    }

    std::vector<Connection>
    parseConnections()
    {
        std::vector<Connection> conns;
        do {
            Connection conn;
            if (accept(TokenKind::Dot)) {
                conn.port = expect(TokenKind::Identifier).text;
                expect(TokenKind::LParen);
                if (!at(TokenKind::RParen))
                    conn.expr = parseExpr();
                expect(TokenKind::RParen);
            } else {
                conn.expr = parseExpr();
            }
            conns.push_back(std::move(conn));
        } while (accept(TokenKind::Comma));
        return conns;
    }

    // -- statements ---------------------------------------------------

    StmtPtr
    parseStmt()
    {
        SourceLoc loc = peek().loc;
        switch (peek().kind) {
          case TokenKind::KwBegin: {
            advance();
            auto *block = tag(new BlockStmt({}), loc);
            if (accept(TokenKind::Colon))
                block->label = expect(TokenKind::Identifier).text;
            while (!at(TokenKind::KwEnd))
                block->stmts.push_back(parseStmt());
            expect(TokenKind::KwEnd);
            return StmtPtr(block);
          }
          case TokenKind::KwIf: {
            advance();
            expect(TokenKind::LParen);
            ExprPtr cond = parseExpr();
            expect(TokenKind::RParen);
            StmtPtr then_stmt = parseStmt();
            StmtPtr else_stmt;
            if (accept(TokenKind::KwElse))
                else_stmt = parseStmt();
            return StmtPtr(tag(
                new IfStmt(std::move(cond), std::move(then_stmt),
                           std::move(else_stmt)),
                loc));
          }
          case TokenKind::KwCase:
          case TokenKind::KwCasez:
          case TokenKind::KwCasex:
            return parseCase();
          case TokenKind::KwFor:
            return parseFor();
          case TokenKind::Semicolon:
            advance();
            return StmtPtr(tag(new EmptyStmt(), loc));
          case TokenKind::SystemName: {
            // $display and friends: simulation-only, synthesizes to
            // nothing; treated as an empty statement.
            advance();
            if (accept(TokenKind::LParen)) {
                int depth = 1;
                while (depth > 0 && !at(TokenKind::Eof)) {
                    if (at(TokenKind::LParen))
                        ++depth;
                    if (at(TokenKind::RParen))
                        --depth;
                    advance();
                }
            }
            expect(TokenKind::Semicolon);
            return StmtPtr(tag(new EmptyStmt(), loc));
          }
          case TokenKind::Hash: {
            // `#n stmt` — plain delay prefix, ignored.
            advance();
            expect(TokenKind::Number);
            return parseStmt();
          }
          case TokenKind::KwFunction:
          case TokenKind::KwGenerate:
          case TokenKind::KwGenvar:
          case TokenKind::KwInitial:
          case TokenKind::KwAlways:
          case TokenKind::KwAssign:
            // Report the offending keyword's own position; without
            // this the misparse surfaces at a later token.
            fail(format("unsupported construct %s inside a procedural "
                        "block: outside the synthesizable subset",
                        tokenKindName(peek().kind)));
          case TokenKind::Identifier:
            if (isUnsupportedKeyword(peek().text)) {
                fail(format("unsupported keyword '%s' in statement: "
                            "outside the synthesizable subset",
                            peek().text.c_str()));
            }
            return parseAssignStmt();
          default:
            return parseAssignStmt();
        }
    }

    StmtPtr
    parseCase()
    {
        SourceLoc loc = peek().loc;
        CaseStmt::Mode mode = CaseStmt::Mode::Plain;
        if (at(TokenKind::KwCasez))
            mode = CaseStmt::Mode::CaseZ;
        else if (at(TokenKind::KwCasex))
            mode = CaseStmt::Mode::CaseX;
        advance();
        expect(TokenKind::LParen);
        ExprPtr subject = parseExpr();
        expect(TokenKind::RParen);

        std::vector<CaseItem> items;
        StmtPtr default_body;
        while (!at(TokenKind::KwEndcase)) {
            if (accept(TokenKind::KwDefault)) {
                accept(TokenKind::Colon);
                if (default_body)
                    fail("duplicate default case");
                default_body = parseStmt();
                continue;
            }
            CaseItem item;
            do {
                item.labels.push_back(parseExpr());
            } while (accept(TokenKind::Comma));
            expect(TokenKind::Colon);
            item.body = parseStmt();
            items.push_back(std::move(item));
        }
        expect(TokenKind::KwEndcase);
        return StmtPtr(tag(
            new CaseStmt(std::move(subject), std::move(items),
                         std::move(default_body), mode),
            loc));
    }

    StmtPtr
    parseFor()
    {
        SourceLoc loc = peek().loc;
        expect(TokenKind::KwFor);
        expect(TokenKind::LParen);
        StmtPtr init = parseForAssign();
        expect(TokenKind::Semicolon);
        ExprPtr cond = parseExpr();
        expect(TokenKind::Semicolon);
        StmtPtr step = parseForAssign();
        expect(TokenKind::RParen);
        StmtPtr body = parseStmt();
        return StmtPtr(tag(
            new ForStmt(std::move(init), std::move(cond), std::move(step),
                        std::move(body)),
            loc));
    }

    /** `i = expr` without trailing semicolon (for-loop header). */
    StmtPtr
    parseForAssign()
    {
        SourceLoc loc = peek().loc;
        ExprPtr lhs = parseLValue();
        expect(TokenKind::Equals);
        ExprPtr rhs = parseExpr();
        return StmtPtr(tag(
            new AssignStmt(std::move(lhs), std::move(rhs), true), loc));
    }

    StmtPtr
    parseAssignStmt()
    {
        SourceLoc loc = peek().loc;
        ExprPtr lhs = parseLValue();
        bool blocking;
        if (accept(TokenKind::Equals)) {
            blocking = true;
        } else if (accept(TokenKind::LtEq)) {
            blocking = false;
        } else {
            fail("expected '=' or '<=' in assignment");
        }
        bool has_delay = false;
        if (accept(TokenKind::Hash)) {
            expect(TokenKind::Number);
            has_delay = true;
        }
        ExprPtr rhs = parseExpr();
        expect(TokenKind::Semicolon);
        auto *stmt =
            tag(new AssignStmt(std::move(lhs), std::move(rhs), blocking),
                loc);
        stmt->has_delay = has_delay;
        return StmtPtr(stmt);
    }

    /** Identifier with optional select, or a concatenation of those. */
    ExprPtr
    parseLValue()
    {
        SourceLoc loc = peek().loc;
        if (accept(TokenKind::LBrace)) {
            std::vector<ExprPtr> parts;
            do {
                parts.push_back(parseLValue());
            } while (accept(TokenKind::Comma));
            expect(TokenKind::RBrace);
            return ExprPtr(tag(new ConcatExpr(std::move(parts)), loc));
        }
        const Token &name_tok = expect(TokenKind::Identifier);
        ExprPtr base = makeIdent(name_tok.text, name_tok.loc);
        return parsePostfixSelect(std::move(base));
    }

    // -- expressions ---------------------------------------------------

    ExprPtr
    parseExpr()
    {
        return parseTernary();
    }

    ExprPtr
    parseTernary()
    {
        ExprPtr cond = parseBinary(0);
        if (!at(TokenKind::Question))
            return cond;
        SourceLoc loc = peek().loc;
        advance();
        ExprPtr then_expr = parseExpr();
        expect(TokenKind::Colon);
        ExprPtr else_expr = parseTernary();
        return ExprPtr(tag(
            new TernaryExpr(std::move(cond), std::move(then_expr),
                            std::move(else_expr)),
            loc));
    }

    /** Binary operator precedence, loosest first. */
    static int
    binaryLevel(TokenKind kind)
    {
        switch (kind) {
          case TokenKind::PipePipe: return 1;
          case TokenKind::AmpAmp: return 2;
          case TokenKind::Pipe: return 3;
          case TokenKind::Caret:
          case TokenKind::TildeCaret: return 4;
          case TokenKind::Amp: return 5;
          case TokenKind::EqEq:
          case TokenKind::BangEq:
          case TokenKind::EqEqEq:
          case TokenKind::BangEqEq: return 6;
          case TokenKind::Lt:
          case TokenKind::LtEq:
          case TokenKind::Gt:
          case TokenKind::GtEq: return 7;
          case TokenKind::Shl:
          case TokenKind::Shr:
          case TokenKind::AShl:
          case TokenKind::AShr: return 8;
          case TokenKind::Plus:
          case TokenKind::Minus: return 9;
          case TokenKind::Star:
          case TokenKind::Slash:
          case TokenKind::Percent: return 10;
          default: return -1;
        }
    }

    static BinaryOp
    binaryOpFor(TokenKind kind)
    {
        switch (kind) {
          case TokenKind::PipePipe: return BinaryOp::LogicOr;
          case TokenKind::AmpAmp: return BinaryOp::LogicAnd;
          case TokenKind::Pipe: return BinaryOp::BitOr;
          case TokenKind::Caret: return BinaryOp::BitXor;
          case TokenKind::TildeCaret: return BinaryOp::BitXnor;
          case TokenKind::Amp: return BinaryOp::BitAnd;
          case TokenKind::EqEq: return BinaryOp::Eq;
          case TokenKind::BangEq: return BinaryOp::Ne;
          case TokenKind::EqEqEq: return BinaryOp::CaseEq;
          case TokenKind::BangEqEq: return BinaryOp::CaseNe;
          case TokenKind::Lt: return BinaryOp::Lt;
          case TokenKind::LtEq: return BinaryOp::Le;
          case TokenKind::Gt: return BinaryOp::Gt;
          case TokenKind::GtEq: return BinaryOp::Ge;
          case TokenKind::Shl:
          case TokenKind::AShl: return BinaryOp::Shl;
          case TokenKind::Shr: return BinaryOp::Shr;
          case TokenKind::AShr: return BinaryOp::AShr;
          case TokenKind::Plus: return BinaryOp::Add;
          case TokenKind::Minus: return BinaryOp::Sub;
          case TokenKind::Star: return BinaryOp::Mul;
          case TokenKind::Slash: return BinaryOp::Div;
          case TokenKind::Percent: return BinaryOp::Mod;
          default: panic("not a binary operator token");
        }
    }

    ExprPtr
    parseBinary(int min_level)
    {
        ExprPtr lhs = parseUnary();
        while (true) {
            int level = binaryLevel(peek().kind);
            if (level < 0 || level < min_level)
                return lhs;
            TokenKind op_tok = peek().kind;
            SourceLoc loc = peek().loc;
            advance();
            ExprPtr rhs = parseBinary(level + 1);
            lhs = ExprPtr(tag(
                new BinaryExpr(binaryOpFor(op_tok), std::move(lhs),
                               std::move(rhs)),
                loc));
        }
    }

    ExprPtr
    parseUnary()
    {
        SourceLoc loc = peek().loc;
        UnaryOp op;
        switch (peek().kind) {
          case TokenKind::Tilde: op = UnaryOp::BitNot; break;
          case TokenKind::Bang: op = UnaryOp::LogicNot; break;
          case TokenKind::Minus: op = UnaryOp::Minus; break;
          case TokenKind::Plus: op = UnaryOp::Plus; break;
          case TokenKind::Amp: op = UnaryOp::RedAnd; break;
          case TokenKind::Pipe: op = UnaryOp::RedOr; break;
          case TokenKind::Caret: op = UnaryOp::RedXor; break;
          case TokenKind::TildeAmp: op = UnaryOp::RedNand; break;
          case TokenKind::TildePipe: op = UnaryOp::RedNor; break;
          case TokenKind::TildeCaret: op = UnaryOp::RedXnor; break;
          default:
            return parsePrimary();
        }
        advance();
        return ExprPtr(tag(new UnaryExpr(op, parseUnary()), loc));
    }

    ExprPtr
    parsePrimary()
    {
        SourceLoc loc = peek().loc;
        switch (peek().kind) {
          case TokenKind::Number: {
            const Token &tok = advance();
            bool sized = tok.text.find('\'') != std::string::npos;
            return ExprPtr(tag(
                new LiteralExpr(bv::Value::parseVerilog(tok.text), sized),
                loc));
          }
          case TokenKind::Identifier: {
            const Token &tok = advance();
            if (at(TokenKind::LParen)) {
                // User-defined function call: f(a, b).
                advance();
                std::vector<ExprPtr> args;
                if (!at(TokenKind::RParen)) {
                    do {
                        args.push_back(parseExpr());
                    } while (accept(TokenKind::Comma));
                }
                expect(TokenKind::RParen);
                return ExprPtr(tag(
                    new CallExpr(tok.text, std::move(args)), loc));
            }
            ExprPtr base = makeIdent(tok.text, loc);
            return parsePostfixSelect(std::move(base));
          }
          case TokenKind::LParen: {
            advance();
            ExprPtr inner = parseExpr();
            expect(TokenKind::RParen);
            return inner;
          }
          case TokenKind::LBrace: {
            advance();
            ExprPtr first = parseExpr();
            if (at(TokenKind::LBrace)) {
                // {count{inner}}
                advance();
                ExprPtr inner = parseExpr();
                // Replication body may itself be a concatenation list.
                if (at(TokenKind::Comma)) {
                    std::vector<ExprPtr> parts;
                    parts.push_back(std::move(inner));
                    while (accept(TokenKind::Comma))
                        parts.push_back(parseExpr());
                    inner = ExprPtr(
                        tag(new ConcatExpr(std::move(parts)), loc));
                }
                expect(TokenKind::RBrace);
                expect(TokenKind::RBrace);
                return ExprPtr(tag(
                    new ReplExpr(std::move(first), std::move(inner)),
                    loc));
            }
            std::vector<ExprPtr> parts;
            parts.push_back(std::move(first));
            while (accept(TokenKind::Comma))
                parts.push_back(parseExpr());
            expect(TokenKind::RBrace);
            return ExprPtr(tag(new ConcatExpr(std::move(parts)), loc));
          }
          case TokenKind::SystemName:
            fail("system functions are outside the subset");
          default:
            fail("expected expression");
        }
    }

    /** base[...] selects after an identifier. */
    ExprPtr
    parsePostfixSelect(ExprPtr base)
    {
        while (at(TokenKind::LBracket)) {
            SourceLoc loc = peek().loc;
            advance();
            ExprPtr first = parseExpr();
            if (accept(TokenKind::Colon)) {
                ExprPtr lsb = parseExpr();
                expect(TokenKind::RBracket);
                base = ExprPtr(tag(
                    new RangeSelectExpr(std::move(base), std::move(first),
                                        std::move(lsb)),
                    loc));
            } else {
                expect(TokenKind::RBracket);
                base = ExprPtr(tag(
                    new IndexExpr(std::move(base), std::move(first)),
                    loc));
            }
        }
        if (at(TokenKind::Dot)) {
            fail("hierarchical names are outside the synthesizable "
                 "subset");
        }
        return base;
    }

    std::vector<Token> _tokens;
    size_t _pos = 0;
    std::unique_ptr<Module> _module;
    /** Target list for parsed items (a generate body, or the module). */
    std::vector<ItemPtr> *_items = nullptr;
};

} // namespace

SourceFile
parse(std::string_view source)
{
    Parser parser(lex(source));
    return parser.parseSourceFile();
}

SourceFile
parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open Verilog file: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str());
}

ExprPtr
parseExpression(std::string_view source)
{
    Parser parser(lex(source));
    return parser.parseSingleExpression();
}

} // namespace rtlrepair::verilog
