/**
 * @file
 * Token definitions for the Verilog lexer.
 */
#ifndef RTLREPAIR_VERILOG_TOKEN_HPP
#define RTLREPAIR_VERILOG_TOKEN_HPP

#include <cstdint>
#include <string>

namespace rtlrepair::verilog {

/** Source position (1-based line/column). */
struct SourceLoc
{
    uint32_t line = 0;
    uint32_t col = 0;
};

/** Token kinds for the synthesizable Verilog subset we accept. */
enum class TokenKind
{
    Eof,
    Identifier,     ///< plain or escaped identifier
    SystemName,     ///< $display and friends (parsed, then rejected)
    Number,         ///< literal incl. based forms such as 4'b10x1
    String,         ///< quoted string (only in ignored constructs)

    // Keywords
    KwModule, KwEndmodule, KwInput, KwOutput, KwInout,
    KwWire, KwReg, KwInteger, KwGenvar,
    KwParameter, KwLocalparam, KwAssign,
    KwAlways, KwInitial, KwBegin, KwEnd,
    KwIf, KwElse, KwCase, KwCasez, KwCasex, KwEndcase, KwDefault,
    KwPosedge, KwNegedge, KwOr, KwFor, KwSigned,
    KwFunction, KwEndfunction, KwGenerate, KwEndgenerate,

    // Punctuation / operators
    LParen, RParen, LBracket, RBracket, LBrace, RBrace,
    Semicolon, Comma, Dot, Colon, Question,
    At, Hash, Equals,
    Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Tilde, Bang,
    AmpAmp, PipePipe,
    EqEq, BangEq, EqEqEq, BangEqEq,
    Lt, LtEq, Gt, GtEq,
    Shl, Shr, AShl, AShr,
    TildeAmp, TildePipe, TildeCaret,
};

/** A single lexed token. */
struct Token
{
    TokenKind kind = TokenKind::Eof;
    std::string text;   ///< identifier name / literal text
    SourceLoc loc;
};

/** Human-readable name of a token kind (for diagnostics). */
const char *tokenKindName(TokenKind kind);

} // namespace rtlrepair::verilog

#endif // RTLREPAIR_VERILOG_TOKEN_HPP
