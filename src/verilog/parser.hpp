/**
 * @file
 * Recursive-descent parser for the synthesizable Verilog subset.
 *
 * Accepts both ANSI (Verilog-2001) and non-ANSI port declaration
 * styles, `#(...)` parameter overrides, module instances, for-loops,
 * and `#n` intra-assignment delays (which are recorded but have no
 * synthesis semantics).  Constructs outside the subset (functions,
 * generate blocks, tasks) raise FatalError with a source location.
 */
#ifndef RTLREPAIR_VERILOG_PARSER_HPP
#define RTLREPAIR_VERILOG_PARSER_HPP

#include <string_view>

#include "verilog/ast.hpp"

namespace rtlrepair::verilog {

/** Parse a full source file (one or more modules). */
SourceFile parse(std::string_view source);

/** Parse a file from disk. */
SourceFile parseFile(const std::string &path);

/** Parse a single expression (used by tests and tools). */
ExprPtr parseExpression(std::string_view source);

} // namespace rtlrepair::verilog

#endif // RTLREPAIR_VERILOG_PARSER_HPP
