/**
 * @file
 * Abstract syntax tree for the synthesizable Verilog subset.
 *
 * Every node carries a NodeId that is unique within its module and is
 * preserved by clone().  Repair templates key their bookkeeping (which
 * φ/α synthesis variable belongs to which change site) off these ids,
 * and the patcher uses them to map solver results back to source.
 */
#ifndef RTLREPAIR_VERILOG_AST_HPP
#define RTLREPAIR_VERILOG_AST_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bv/value.hpp"
#include "verilog/token.hpp"

namespace rtlrepair::verilog {

using NodeId = uint32_t;
constexpr NodeId kInvalidNode = 0;

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

enum class UnaryOp
{
    BitNot,     ///< ~a
    LogicNot,   ///< !a
    Minus,      ///< -a
    Plus,       ///< +a
    RedAnd,     ///< &a
    RedOr,      ///< |a
    RedXor,     ///< ^a
    RedNand,    ///< ~&a
    RedNor,     ///< ~|a
    RedXnor,    ///< ~^a
};

enum class BinaryOp
{
    Add, Sub, Mul, Div, Mod,
    BitAnd, BitOr, BitXor, BitXnor,
    LogicAnd, LogicOr,
    Shl, Shr, AShr,
    Lt, Le, Gt, Ge,
    Eq, Ne, CaseEq, CaseNe,
};

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** Base class for all expressions. */
class Expr
{
  public:
    enum class Kind
    {
        Ident, Literal, Unary, Binary, Ternary,
        Concat, Repl, Index, RangeSelect, Call,
    };

    virtual ~Expr() = default;
    virtual ExprPtr clone() const = 0;

    Kind kind;
    NodeId id = kInvalidNode;
    SourceLoc loc;

  protected:
    explicit Expr(Kind k) : kind(k) {}
};

/** Signal, parameter, or genvar reference. */
class IdentExpr : public Expr
{
  public:
    explicit IdentExpr(std::string n)
        : Expr(Kind::Ident), name(std::move(n)) {}
    ExprPtr clone() const override;

    std::string name;
};

/** Integer literal; @c value holds the parsed 4-state bits. */
class LiteralExpr : public Expr
{
  public:
    LiteralExpr(bv::Value v, bool sized)
        : Expr(Kind::Literal), value(std::move(v)), is_sized(sized) {}
    ExprPtr clone() const override;

    bv::Value value;
    bool is_sized;  ///< carried an explicit width prefix
};

class UnaryExpr : public Expr
{
  public:
    UnaryExpr(UnaryOp o, ExprPtr e)
        : Expr(Kind::Unary), op(o), operand(std::move(e)) {}
    ExprPtr clone() const override;

    UnaryOp op;
    ExprPtr operand;
};

class BinaryExpr : public Expr
{
  public:
    BinaryExpr(BinaryOp o, ExprPtr l, ExprPtr r)
        : Expr(Kind::Binary), op(o), lhs(std::move(l)), rhs(std::move(r)) {}
    ExprPtr clone() const override;

    BinaryOp op;
    ExprPtr lhs;
    ExprPtr rhs;
};

class TernaryExpr : public Expr
{
  public:
    TernaryExpr(ExprPtr c, ExprPtr t, ExprPtr e)
        : Expr(Kind::Ternary), cond(std::move(c)), then_expr(std::move(t)),
          else_expr(std::move(e)) {}
    ExprPtr clone() const override;

    ExprPtr cond;
    ExprPtr then_expr;
    ExprPtr else_expr;
};

/** {a, b, c} — parts[0] is the most significant. */
class ConcatExpr : public Expr
{
  public:
    explicit ConcatExpr(std::vector<ExprPtr> p)
        : Expr(Kind::Concat), parts(std::move(p)) {}
    ExprPtr clone() const override;

    std::vector<ExprPtr> parts;
};

/** {n{inner}} — @c count must be constant. */
class ReplExpr : public Expr
{
  public:
    ReplExpr(ExprPtr c, ExprPtr i)
        : Expr(Kind::Repl), count(std::move(c)), inner(std::move(i)) {}
    ExprPtr clone() const override;

    ExprPtr count;
    ExprPtr inner;
};

/** base[index] — single-bit (or memory word) select. */
class IndexExpr : public Expr
{
  public:
    IndexExpr(ExprPtr b, ExprPtr i)
        : Expr(Kind::Index), base(std::move(b)), index(std::move(i)) {}
    ExprPtr clone() const override;

    ExprPtr base;
    ExprPtr index;
};

/** base[msb:lsb] — constant part select. */
class RangeSelectExpr : public Expr
{
  public:
    RangeSelectExpr(ExprPtr b, ExprPtr m, ExprPtr l)
        : Expr(Kind::RangeSelect), base(std::move(b)), msb(std::move(m)),
          lsb(std::move(l)) {}
    ExprPtr clone() const override;

    ExprPtr base;
    ExprPtr msb;
    ExprPtr lsb;
};

/** f(a, b) — call of a user-defined function (inlined at elaboration). */
class CallExpr : public Expr
{
  public:
    CallExpr(std::string c, std::vector<ExprPtr> a)
        : Expr(Kind::Call), callee(std::move(c)), args(std::move(a)) {}
    ExprPtr clone() const override;

    std::string callee;
    std::vector<ExprPtr> args;
};

// ---------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

class Stmt
{
  public:
    enum class Kind { Block, If, Case, Assign, For, Empty };

    virtual ~Stmt() = default;
    virtual StmtPtr clone() const = 0;

    Kind kind;
    NodeId id = kInvalidNode;
    SourceLoc loc;

  protected:
    explicit Stmt(Kind k) : kind(k) {}
};

class BlockStmt : public Stmt
{
  public:
    explicit BlockStmt(std::vector<StmtPtr> s)
        : Stmt(Kind::Block), stmts(std::move(s)) {}
    StmtPtr clone() const override;

    std::vector<StmtPtr> stmts;
    std::string label;  ///< optional `begin : label`
};

class IfStmt : public Stmt
{
  public:
    IfStmt(ExprPtr c, StmtPtr t, StmtPtr e)
        : Stmt(Kind::If), cond(std::move(c)), then_stmt(std::move(t)),
          else_stmt(std::move(e)) {}
    StmtPtr clone() const override;

    ExprPtr cond;
    StmtPtr then_stmt;
    StmtPtr else_stmt;  ///< may be null
};

/** One `label[, label]: stmt` arm of a case statement. */
struct CaseItem
{
    std::vector<ExprPtr> labels;
    StmtPtr body;
};

class CaseStmt : public Stmt
{
  public:
    enum class Mode { Plain, CaseZ, CaseX };

    CaseStmt(ExprPtr s, std::vector<CaseItem> i, StmtPtr d, Mode m)
        : Stmt(Kind::Case), subject(std::move(s)), items(std::move(i)),
          default_body(std::move(d)), mode(m) {}
    StmtPtr clone() const override;

    ExprPtr subject;
    std::vector<CaseItem> items;
    StmtPtr default_body;  ///< may be null
    Mode mode;
};

/** Procedural assignment; @c blocking selects `=` vs `<=`. */
class AssignStmt : public Stmt
{
  public:
    AssignStmt(ExprPtr l, ExprPtr r, bool b)
        : Stmt(Kind::Assign), lhs(std::move(l)), rhs(std::move(r)),
          blocking(b) {}
    StmtPtr clone() const override;

    ExprPtr lhs;    ///< Ident, Index, RangeSelect, or Concat of those
    ExprPtr rhs;
    bool blocking;
    bool has_delay = false;  ///< `#n` prefix present (ignored semantically)
};

/** for (init; cond; step) body — unrolled during elaboration. */
class ForStmt : public Stmt
{
  public:
    ForStmt(StmtPtr i, ExprPtr c, StmtPtr s, StmtPtr b)
        : Stmt(Kind::For), init(std::move(i)), cond(std::move(c)),
          step(std::move(s)), body(std::move(b)) {}
    StmtPtr clone() const override;

    StmtPtr init;  ///< AssignStmt
    ExprPtr cond;
    StmtPtr step;  ///< AssignStmt
    StmtPtr body;
};

class EmptyStmt : public Stmt
{
  public:
    EmptyStmt() : Stmt(Kind::Empty) {}
    StmtPtr clone() const override;
};

// ---------------------------------------------------------------------
// Module items
// ---------------------------------------------------------------------

enum class PortDir { Input, Output, Inout, Unknown };

/** An entry of the module port list. */
struct Port
{
    std::string name;
    PortDir dir = PortDir::Unknown;
};

class Item;
using ItemPtr = std::unique_ptr<Item>;

class Item
{
  public:
    enum class Kind
    {
        Net, Param, ContAssign, Always, Initial, Instance,
        Function, Genvar, GenFor, GenIf,
    };

    virtual ~Item() = default;
    virtual ItemPtr clone() const = 0;

    Kind kind;
    NodeId id = kInvalidNode;
    SourceLoc loc;

  protected:
    explicit Item(Kind k) : kind(k) {}
};

enum class NetKind { Wire, Reg, Integer };

/** Declaration of a single net/variable (comma lists are split). */
class NetDecl : public Item
{
  public:
    NetDecl() : Item(Kind::Net) {}
    ItemPtr clone() const override;

    std::string name;
    NetKind net = NetKind::Wire;
    bool is_signed = false;
    PortDir dir = PortDir::Unknown;  ///< set for port declarations
    ExprPtr msb;  ///< null for scalar
    ExprPtr lsb;  ///< null for scalar
    /**
     * Memory (2-D reg) address range: `reg [7:0] mem [0:15];` stores
     * the `[0:15]` here.  Null for plain nets.  Elaboration lowers
     * memories into one register per word, so only the frontend and
     * the lowering pass ever see these set.
     */
    ExprPtr arr_msb;
    ExprPtr arr_lsb;

    bool isMemory() const { return arr_msb != nullptr; }
};

/** parameter / localparam. */
class ParamDecl : public Item
{
  public:
    ParamDecl() : Item(Kind::Param) {}
    ItemPtr clone() const override;

    std::string name;
    ExprPtr value;
    bool is_local = false;
};

/** assign lhs = rhs; */
class ContAssign : public Item
{
  public:
    ContAssign() : Item(Kind::ContAssign) {}
    ItemPtr clone() const override;

    ExprPtr lhs;
    ExprPtr rhs;
};

/** One entry of an always sensitivity list. */
struct SensItem
{
    enum class Edge { Posedge, Negedge, Level, Star };
    Edge edge = Edge::Star;
    std::string signal;  ///< empty for Star
};

class AlwaysBlock : public Item
{
  public:
    AlwaysBlock() : Item(Kind::Always) {}
    ItemPtr clone() const override;

    std::vector<SensItem> sensitivity;
    StmtPtr body;
};

/** initial block: parsed so designs load, rejected by elaboration. */
class InitialBlock : public Item
{
  public:
    InitialBlock() : Item(Kind::Initial) {}
    ItemPtr clone() const override;

    StmtPtr body;
};

/** Port or parameter connection of an instance. */
struct Connection
{
    std::string port;  ///< empty for ordered connections
    ExprPtr expr;      ///< may be null for unconnected `.p()`
};

class Instance : public Item
{
  public:
    Instance() : Item(Kind::Instance) {}
    ItemPtr clone() const override;

    std::string module_name;
    std::string instance_name;
    std::vector<Connection> params;
    std::vector<Connection> ports;
};

/** One formal input or local variable of a function. */
struct FunctionVar
{
    std::string name;
    ExprPtr msb;  ///< null for scalar
    ExprPtr lsb;
    bool is_integer = false;
};

/**
 * Side-effect-free `function` definition.  Calls are inlined into a
 * pure expression during lowering; the body may only contain blocking
 * assignments to locals/the return value, if/case, and for-loops.
 */
class FunctionDecl : public Item
{
  public:
    FunctionDecl() : Item(Kind::Function) {}
    ItemPtr clone() const override;

    std::string name;
    ExprPtr ret_msb;  ///< null for a 1-bit return value
    ExprPtr ret_lsb;
    std::vector<FunctionVar> inputs;  ///< formals, in call order
    std::vector<FunctionVar> locals;
    StmtPtr body;
};

/** `genvar i;` — loop variable for generate-for blocks. */
class GenvarDecl : public Item
{
  public:
    GenvarDecl() : Item(Kind::Genvar) {}
    ItemPtr clone() const override;

    std::string name;
};

/**
 * `for (i = 0; i < N; i = i + 1) begin : label ... end` inside a
 * generate region.  Unrolled by the lowering pass; names declared in
 * the body are uniquified as `<label>__<i>__<name>`.
 */
class GenFor : public Item
{
  public:
    GenFor() : Item(Kind::GenFor) {}
    ItemPtr clone() const override;

    std::string genvar;
    ExprPtr init;
    ExprPtr cond;
    ExprPtr step;   ///< next value of the genvar
    std::string label;
    std::vector<ItemPtr> body;
};

/** `if (COND) begin : a ... end else begin : b ... end` generate. */
class GenIf : public Item
{
  public:
    GenIf() : Item(Kind::GenIf) {}
    ItemPtr clone() const override;

    ExprPtr cond;
    std::string then_label;
    std::string else_label;
    std::vector<ItemPtr> then_items;
    std::vector<ItemPtr> else_items;
};

// ---------------------------------------------------------------------
// Module and source file
// ---------------------------------------------------------------------

/** A single Verilog module. */
class Module
{
  public:
    std::string name;
    std::vector<Port> ports;
    std::vector<ItemPtr> items;

    /** Next unused NodeId; the parser leaves this primed. */
    NodeId next_node_id = 1;

    /** Allocate a fresh NodeId (for template-inserted nodes). */
    NodeId newNodeId() { return next_node_id++; }

    /** Deep copy preserving all NodeIds. */
    std::unique_ptr<Module> clone() const;

    /** Find the NetDecl for @p name, or null. */
    const NetDecl *findNet(const std::string &name) const;
    NetDecl *findNet(const std::string &name);

    /** Find the ParamDecl for @p name, or null. */
    const ParamDecl *findParam(const std::string &name) const;

    /** Direction of port @p name (Unknown if not a port). */
    PortDir portDir(const std::string &name) const;
};

/** A parsed source file: one or more modules. */
struct SourceFile
{
    std::vector<std::unique_ptr<Module>> modules;

    /** The first module, or by name.  Throws if absent. */
    Module &top() const;
    Module *find(const std::string &name) const;
};

} // namespace rtlrepair::verilog

#endif // RTLREPAIR_VERILOG_AST_HPP
