/**
 * @file
 * Serializes an AST back into Verilog source text.
 *
 * The printer produces a canonical formatting, so diffing the printed
 * buggy design against the printed repaired design yields exactly the
 * semantic changes (used for the qualitative figures and the Table 6
 * ground-truth grading).
 */
#ifndef RTLREPAIR_VERILOG_PRINTER_HPP
#define RTLREPAIR_VERILOG_PRINTER_HPP

#include <string>

#include "verilog/ast.hpp"

namespace rtlrepair::verilog {

/** Render @p module as Verilog source. */
std::string print(const Module &module);

/** Render a single expression. */
std::string print(const Expr &expr);

/** Render a single statement (at the given indent level). */
std::string print(const Stmt &stmt, int indent = 0);

} // namespace rtlrepair::verilog

#endif // RTLREPAIR_VERILOG_PRINTER_HPP
