/**
 * @file
 * Arbitrary-width 4-state bit-vector values.
 *
 * A Value models a Verilog value of a fixed bit width where every bit is
 * 0, 1, or X (unknown).  Z is folded into X, matching how the paper's
 * flow treats tri-state constructs (they are removed before repair).
 * All operators implement Verilog 4-state semantics:
 *
 *  - bitwise ops use the dominance rules (0 & X = 0, 1 | X = 1, ...)
 *  - arithmetic, shifts by unknown amounts, and relational operators
 *    with any unknown operand bit produce an all-X result
 *  - case-equality (===) compares X bits literally
 *
 * Values are canonical: data bits above the width and under the X mask
 * are always zero, so structural equality is word-wise comparison.
 */
#ifndef RTLREPAIR_BV_VALUE_HPP
#define RTLREPAIR_BV_VALUE_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace rtlrepair::bv {

/** Fixed-width 4-state bit-vector value. */
class Value
{
  public:
    /** Default: 1-bit known zero. */
    Value() : Value(zeros(1)) {}

    /** @name Constructors @{ */
    static Value zeros(uint32_t width);
    static Value ones(uint32_t width);
    static Value allX(uint32_t width);
    static Value fromUint(uint32_t width, uint64_t value);
    /** Build from raw little-endian words (excess bits are masked). */
    static Value fromWords(uint32_t width, std::vector<uint64_t> words);
    /** Uniformly random fully-known value. */
    static Value random(uint32_t width, Rng &rng);
    /**
     * Parse a Verilog literal such as @c 4'b10x1, @c 8'hff, @c 'd5 or a
     * bare decimal (32-bit).  Underscores are permitted.  Throws
     * FatalError on malformed input.
     */
    static Value parseVerilog(std::string_view literal);
    /** @} */

    uint32_t width() const { return _width; }

    /** True if any bit is X. */
    bool hasX() const;
    /** True if fully known and equal to zero. */
    bool isZero() const;
    /** True if fully known and non-zero. */
    bool isNonZero() const;

    /**
     * Low 64 bits as an unsigned integer.  Panics if any of the low
     * 64 bits (or any bit at all, for widths <= 64) is X.
     */
    uint64_t toUint64() const;

    /** Bit @p i as 0, 1, or -1 for X. */
    int
    bit(uint32_t i) const
    {
        check(i < _width, "bit index out of range");
        size_t word = i / 64u;
        uint64_t mask = 1ull << (i % 64u);
        if (_xmask[word] & mask)
            return -1;
        return (_bits[word] & mask) ? 1 : 0;
    }

    /** Set bit @p i to 0, 1, or -1 (X). */
    void
    setBit(uint32_t i, int v)
    {
        check(i < _width, "bit index out of range");
        size_t word = i / 64u;
        uint64_t mask = 1ull << (i % 64u);
        _bits[word] &= ~mask;
        _xmask[word] &= ~mask;
        if (v < 0)
            _xmask[word] |= mask;
        else if (v == 1)
            _bits[word] |= mask;
    }

    /** @name Raw plane access (for bit-parallel transposes) @{ */
    /** Word @p i of the data plane (little-endian 64-bit words). */
    uint64_t bitsWord(size_t i) const { return _bits[i]; }
    /** Word @p i of the X plane; set bits are unknown. */
    uint64_t xmaskWord(size_t i) const { return _xmask[i]; }
    /**
     * Build from raw planes: @p bits / @p xmask are little-endian
     * words, excess bits are masked and data bits under X cleared.
     */
    static Value fromPlanes(uint32_t width, std::vector<uint64_t> bits,
                            std::vector<uint64_t> xmask);
    /** @} */

    /** Binary digits, MSB first, with @c x for unknown bits. */
    std::string toBinaryString() const;
    /** Verilog literal form, e.g. @c 4'b10x1 (hex when fully known). */
    std::string toVerilogLiteral() const;
    /** Decimal if fully known and width <= 64, else binary form. */
    std::string toDisplayString() const;

    bool operator==(const Value &other) const;
    bool operator!=(const Value &other) const { return !(*this == other); }

    /**
     * Compatibility with a trace cell: every *known* bit of @p expected
     * must match this value; X bits in @p expected are don't-cares.
     * An X bit in @c this against a known expected bit is a mismatch.
     */
    bool matches(const Value &expected) const;

    /** @name Width changes and structure @{ */
    Value zext(uint32_t new_width) const;
    Value sext(uint32_t new_width) const;
    /** Bits [hi:lo], inclusive; hi < width(). */
    Value slice(uint32_t hi, uint32_t lo) const;
    /** {this, low}: this becomes the upper bits. */
    Value concat(const Value &low) const;
    /** @p n copies of this value concatenated. */
    Value replicate(uint32_t n) const;
    /** @} */

    /** @name Bitwise (4-state dominance rules) @{ */
    Value operator~() const;
    Value operator&(const Value &rhs) const;
    Value operator|(const Value &rhs) const;
    Value operator^(const Value &rhs) const;
    /** @} */

    /** @name Arithmetic (all-X on unknown operands) @{ */
    Value operator+(const Value &rhs) const;
    Value operator-(const Value &rhs) const;
    Value operator*(const Value &rhs) const;
    /** Division by zero yields all-X, as in Verilog. */
    Value udiv(const Value &rhs) const;
    Value urem(const Value &rhs) const;
    Value negate() const;
    /** @} */

    /** @name Shifts; unknown amount gives all-X @{ */
    Value shl(const Value &amount) const;
    Value lshr(const Value &amount) const;
    Value ashr(const Value &amount) const;
    /** @} */

    /** @name Relational; 1-bit result, X if any operand bit is X @{ */
    Value eq(const Value &rhs) const;
    Value ne(const Value &rhs) const;
    Value ult(const Value &rhs) const;
    Value ule(const Value &rhs) const;
    Value slt(const Value &rhs) const;
    Value sle(const Value &rhs) const;
    /** @} */

    /** Case equality (===): X compares literally; always known. */
    Value caseEq(const Value &rhs) const;

    /** @name Reductions; 1-bit result @{ */
    Value redAnd() const;
    Value redOr() const;
    Value redXor() const;
    /** @} */

    /**
     * 2-to-1 multiplexer.  @p cond must be 1 bit.  An X condition
     * merges: result bits where both arms agree and are known keep
     * that value, all other bits become X (Verilog ?: semantics).
     */
    static Value ite(const Value &cond, const Value &then_v,
                     const Value &else_v);

    /** Replace every X bit with 0. */
    Value xToZero() const;
    /** Replace every X bit with a random known bit. */
    Value xToRandom(Rng &rng) const;

    /** Hash over width, bits, and X mask. */
    size_t hash() const;

  private:
    Value(uint32_t width, size_t nwords)
        : _width(width), _bits(nwords, 0), _xmask(nwords, 0)
    {}

    static size_t nwords(uint32_t width) { return (width + 63u) / 64u; }
    /** Mask the top word and clear data bits under the X mask. */
    void normalize();
    /** Unsigned comparison of known values: -1, 0, +1. */
    static int compareKnown(const Value &a, const Value &b);
    /** MSB as 0/1; requires fully known. */
    int signBit() const { return bit(_width - 1) == 1 ? 1 : 0; }

    uint32_t _width;
    std::vector<uint64_t> _bits;
    std::vector<uint64_t> _xmask;
};

} // namespace rtlrepair::bv

#endif // RTLREPAIR_BV_VALUE_HPP
