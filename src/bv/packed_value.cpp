#include "bv/packed_value.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace rtlrepair::bv {

PackedValue::PackedValue(uint32_t width)
    : _width(width), _val(width, 0), _unk(width, 0)
{
    check(width > 0, "zero-width PackedValue");
    if (width > (1u << 22))
        fatal("bit-vector width too large");
}

void
PackedValue::normalize()
{
    for (uint32_t p = 0; p < _width; ++p)
        _val[p] &= ~_unk[p];
}

PackedValue
PackedValue::zeros(uint32_t width)
{
    return PackedValue(width);
}

PackedValue
PackedValue::allX(uint32_t width)
{
    PackedValue r(width);
    for (auto &w : r._unk)
        w = ~0ull;
    return r;
}

PackedValue
PackedValue::broadcast(const Value &v)
{
    PackedValue r(v.width());
    for (uint32_t p = 0; p < r._width; ++p) {
        uint64_t wd = v.bitsWord(p >> 6), xm = v.xmaskWord(p >> 6);
        uint64_t m = 1ull << (p & 63u);
        if (xm & m)
            r._unk[p] = ~0ull;
        else if (wd & m)
            r._val[p] = ~0ull;
    }
    return r;
}

PackedValue
PackedValue::pack(const std::vector<Value> &vals, uint32_t width)
{
    std::vector<const Value *> ptrs(vals.size());
    for (size_t l = 0; l < vals.size(); ++l)
        ptrs[l] = &vals[l];
    return pack(ptrs.data(), ptrs.size(), width);
}

PackedValue
PackedValue::pack(const Value *const *vals, size_t n, uint32_t width)
{
    check(n <= kLanes, "pack: too many lanes");
    PackedValue r = allX(width);
    for (size_t l = 0; l < n; ++l) {
        if (!vals[l])
            continue;
        const Value &v = *vals[l];
        uint64_t m = 1ull << l;
        // Reading the source planes in place implements the zext /
        // truncate adjustment without materializing a copy: bits
        // past the source width are known zero.  The inner loop is
        // register-only — one plane-word load per 64 source bits.
        uint32_t low = std::min(v.width(), width);
        for (uint32_t p = 0; p < low;) {
            uint64_t bits = v.bitsWord(p >> 6);
            uint64_t xm = v.xmaskWord(p >> 6);
            uint32_t hi = std::min(low, (p & ~63u) + 64u);
            for (; p < hi; ++p) {
                uint64_t pm = 1ull << (p & 63u);
                r._val[p] = (bits & pm) ? (r._val[p] | m)
                                        : (r._val[p] & ~m);
                r._unk[p] = (xm & pm) ? (r._unk[p] | m)
                                      : (r._unk[p] & ~m);
            }
        }
        for (uint32_t p = low; p < width; ++p) {
            r._val[p] &= ~m;
            r._unk[p] &= ~m;
        }
    }
    return r;
}

Value
PackedValue::lane(uint32_t l) const
{
    check(l < kLanes, "lane index out of range");
    std::vector<uint64_t> bits((_width + 63u) / 64u, 0);
    std::vector<uint64_t> xmask(bits.size(), 0);
    for (uint32_t p = 0; p < _width; ++p) {
        uint64_t pm = 1ull << (p & 63u);
        if ((_unk[p] >> l) & 1)
            xmask[p >> 6] |= pm;
        else if ((_val[p] >> l) & 1)
            bits[p >> 6] |= pm;
    }
    return Value::fromPlanes(_width, std::move(bits),
                             std::move(xmask));
}

void
PackedValue::setLane(uint32_t l, const Value &v)
{
    check(l < kLanes, "lane index out of range");
    check(v.width() == _width, "setLane: width mismatch");
    uint64_t m = 1ull << l;
    for (uint32_t p = 0; p < _width; ++p) {
        int b = v.bit(p);
        _val[p] = (b == 1) ? (_val[p] | m) : (_val[p] & ~m);
        _unk[p] = (b < 0) ? (_unk[p] | m) : (_unk[p] & ~m);
    }
}

void
PackedValue::setBitLanes(uint32_t pos, uint64_t val, uint64_t unk,
                         uint64_t mask)
{
    check(pos < _width, "setBitLanes: position out of range");
    _val[pos] = (_val[pos] & ~mask) | (val & mask);
    _unk[pos] = (_unk[pos] & ~mask) | (unk & mask);
    _val[pos] &= ~_unk[pos];
}

uint64_t
PackedValue::anyX() const
{
    uint64_t m = 0;
    for (uint32_t p = 0; p < _width; ++p)
        m |= _unk[p];
    return m;
}

uint64_t
PackedValue::anyOne() const
{
    uint64_t m = 0;
    for (uint32_t p = 0; p < _width; ++p)
        m |= _val[p];
    return m;
}

uint64_t
PackedValue::laneEq(const PackedValue &rhs) const
{
    if (_width != rhs._width)
        return 0;
    uint64_t diff = 0;
    for (uint32_t p = 0; p < _width; ++p)
        diff |= (_val[p] ^ rhs._val[p]) | (_unk[p] ^ rhs._unk[p]);
    return ~diff;
}

uint64_t
PackedValue::laneMatches(const PackedValue &expected) const
{
    if (_width != expected._width) {
        uint32_t w = std::max(_width, expected._width);
        return zext(w).laneMatches(expected.zext(w));
    }
    uint64_t bad = 0;
    for (uint32_t p = 0; p < _width; ++p) {
        uint64_t care = ~expected._unk[p];
        bad |= care & (_unk[p] | (_val[p] ^ expected._val[p]));
    }
    return ~bad;
}

uint64_t
PackedValue::laneEqUint(uint64_t target) const
{
    uint32_t n = std::min<uint32_t>(_width, 64);
    if (n < 64 && (target >> n) != 0)
        return 0;
    uint64_t m = ~anyX();
    for (uint32_t p = 0; p < n; ++p)
        m &= ((target >> p) & 1) ? _val[p] : ~_val[p];
    return m;
}

PackedValue
PackedValue::blend(const PackedValue &a, const PackedValue &b,
                   uint64_t mask)
{
    check(a._width == b._width, "blend: width mismatch");
    PackedValue r(a._width);
    for (uint32_t p = 0; p < r._width; ++p) {
        r._val[p] = (a._val[p] & mask) | (b._val[p] & ~mask);
        r._unk[p] = (a._unk[p] & mask) | (b._unk[p] & ~mask);
    }
    return r;
}

PackedValue
PackedValue::zext(uint32_t new_width) const
{
    check(new_width >= _width, "zext must not shrink");
    PackedValue r(new_width);
    std::copy(_val.begin(), _val.end(), r._val.begin());
    std::copy(_unk.begin(), _unk.end(), r._unk.begin());
    return r;
}

PackedValue
PackedValue::sext(uint32_t new_width) const
{
    check(new_width >= _width, "sext must not shrink");
    PackedValue r = zext(new_width);
    for (uint32_t p = _width; p < new_width; ++p) {
        r._val[p] = _val[_width - 1];
        r._unk[p] = _unk[_width - 1];
    }
    return r;
}

PackedValue
PackedValue::slice(uint32_t hi, uint32_t lo) const
{
    check(hi < _width && lo <= hi, "slice out of range");
    PackedValue r(hi - lo + 1);
    for (uint32_t p = 0; p < r._width; ++p) {
        r._val[p] = _val[lo + p];
        r._unk[p] = _unk[lo + p];
    }
    return r;
}

PackedValue
PackedValue::concat(const PackedValue &low) const
{
    PackedValue r(_width + low._width);
    std::copy(low._val.begin(), low._val.end(), r._val.begin());
    std::copy(low._unk.begin(), low._unk.end(), r._unk.begin());
    std::copy(_val.begin(), _val.end(), r._val.begin() + low._width);
    std::copy(_unk.begin(), _unk.end(), r._unk.begin() + low._width);
    return r;
}

PackedValue
PackedValue::replicate(uint32_t n) const
{
    check(n > 0, "replicate zero times");
    PackedValue r(_width * n);
    for (uint32_t i = 0; i < n; ++i) {
        std::copy(_val.begin(), _val.end(),
                  r._val.begin() + size_t(i) * _width);
        std::copy(_unk.begin(), _unk.end(),
                  r._unk.begin() + size_t(i) * _width);
    }
    return r;
}

PackedValue
PackedValue::operator~() const
{
    PackedValue r(_width);
    for (uint32_t p = 0; p < _width; ++p) {
        r._val[p] = ~_val[p] & ~_unk[p];
        r._unk[p] = _unk[p];
    }
    return r;
}

PackedValue
PackedValue::operator&(const PackedValue &rhs) const
{
    check(_width == rhs._width, "and: width mismatch");
    PackedValue r(_width);
    for (uint32_t p = 0; p < _width; ++p) {
        // Known zero on either side dominates any X on the other.
        uint64_t one = _val[p] & rhs._val[p];
        uint64_t zero = (~_val[p] & ~_unk[p]) | (~rhs._val[p] & ~rhs._unk[p]);
        r._val[p] = one;
        r._unk[p] = ~(one | zero);
    }
    return r;
}

PackedValue
PackedValue::operator|(const PackedValue &rhs) const
{
    check(_width == rhs._width, "or: width mismatch");
    PackedValue r(_width);
    for (uint32_t p = 0; p < _width; ++p) {
        uint64_t one = _val[p] | rhs._val[p];
        uint64_t zero = (~_val[p] & ~_unk[p]) & (~rhs._val[p] & ~rhs._unk[p]);
        r._val[p] = one;
        r._unk[p] = ~(one | zero);
    }
    return r;
}

PackedValue
PackedValue::operator^(const PackedValue &rhs) const
{
    check(_width == rhs._width, "xor: width mismatch");
    PackedValue r(_width);
    for (uint32_t p = 0; p < _width; ++p) {
        r._unk[p] = _unk[p] | rhs._unk[p];
        r._val[p] = (_val[p] ^ rhs._val[p]) & ~r._unk[p];
    }
    return r;
}

PackedValue
PackedValue::operator+(const PackedValue &rhs) const
{
    check(_width == rhs._width, "add: width mismatch");
    PackedValue r(_width);
    uint64_t xl = anyX() | rhs.anyX();
    uint64_t carry = 0;
    for (uint32_t p = 0; p < _width; ++p) {
        uint64_t a = _val[p], b = rhs._val[p];
        r._val[p] = (a ^ b ^ carry) & ~xl;
        r._unk[p] = xl;
        carry = (a & b) | (carry & (a ^ b));
    }
    return r;
}

PackedValue
PackedValue::operator-(const PackedValue &rhs) const
{
    check(_width == rhs._width, "sub: width mismatch");
    PackedValue r(_width);
    uint64_t xl = anyX() | rhs.anyX();
    uint64_t carry = ~0ull;  // a + ~b + 1
    for (uint32_t p = 0; p < _width; ++p) {
        uint64_t a = _val[p], b = ~rhs._val[p];
        r._val[p] = (a ^ b ^ carry) & ~xl;
        r._unk[p] = xl;
        carry = (a & b) | (carry & (a ^ b));
    }
    return r;
}

PackedValue
PackedValue::negate() const
{
    PackedValue r(_width);
    uint64_t xl = anyX();
    uint64_t carry = ~0ull;  // ~a + 1
    for (uint32_t p = 0; p < _width; ++p) {
        uint64_t a = ~_val[p];
        r._val[p] = (a ^ carry) & ~xl;
        r._unk[p] = xl;
        carry = a & carry;
    }
    return r;
}

PackedValue
PackedValue::scalarFallback(const PackedValue &rhs, uint64_t ok_lanes,
                            Value (Value::*op)(const Value &) const) const
{
    PackedValue r = allX(_width);
    for (uint32_t l = 0; l < kLanes; ++l) {
        if (!((ok_lanes >> l) & 1))
            continue;
        r.setLane(l, (lane(l).*op)(rhs.lane(l)));
    }
    return r;
}

PackedValue
PackedValue::operator*(const PackedValue &rhs) const
{
    check(_width == rhs._width, "mul: width mismatch");
    return scalarFallback(rhs, ~(anyX() | rhs.anyX()),
                          &Value::operator*);
}

PackedValue
PackedValue::udiv(const PackedValue &rhs) const
{
    check(_width == rhs._width, "udiv: width mismatch");
    return scalarFallback(
        rhs, ~(anyX() | rhs.anyX()) & ~rhs.laneZero(), &Value::udiv);
}

PackedValue
PackedValue::urem(const PackedValue &rhs) const
{
    check(_width == rhs._width, "urem: width mismatch");
    return scalarFallback(
        rhs, ~(anyX() | rhs.anyX()) & ~rhs.laneZero(), &Value::urem);
}

namespace {

/**
 * Per-lane saturation mask for a shift: lanes whose known amount bits
 * select a shift >= width.  Bit positions >= 64 of the amount are
 * ignored, exactly like the scalar path that reads _bits[0]; the
 * scalar path instead saturates when any upper *word* is non-zero,
 * which for amount widths > 64 we mirror below.
 */
uint64_t
shiftSaturation(const PackedValue &amount, uint32_t width)
{
    uint64_t sat = 0;
    for (uint32_t p = 0; p < amount.width(); ++p) {
        bool overflows = p >= 64 || (1ull << std::min<uint32_t>(p, 63)) >=
                                        static_cast<uint64_t>(width);
        if (overflows)
            sat |= amount.valAt(p);
    }
    return sat;
}

} // namespace

PackedValue
PackedValue::shl(const PackedValue &amount) const
{
    PackedValue r(_width);
    uint64_t xl = anyX() | amount.anyX();
    uint64_t sat = shiftSaturation(amount, _width);
    std::vector<uint64_t> cur(_val);
    for (uint32_t p = 0; p < amount._width && p < 64; ++p) {
        uint64_t s = 1ull << p;
        if (s >= _width)
            break;
        uint64_t m = amount._val[p];
        if (!m)
            continue;
        for (uint32_t pos = _width; pos-- > 0;) {
            uint64_t in = pos >= s ? cur[pos - s] : 0;
            cur[pos] = (cur[pos] & ~m) | (in & m);
        }
    }
    uint64_t keep = ~xl & ~sat;
    for (uint32_t p = 0; p < _width; ++p) {
        r._val[p] = cur[p] & keep;
        r._unk[p] = xl;
    }
    return r;
}

PackedValue
PackedValue::lshr(const PackedValue &amount) const
{
    PackedValue r(_width);
    uint64_t xl = anyX() | amount.anyX();
    uint64_t sat = shiftSaturation(amount, _width);
    std::vector<uint64_t> cur(_val);
    for (uint32_t p = 0; p < amount._width && p < 64; ++p) {
        uint64_t s = 1ull << p;
        if (s >= _width)
            break;
        uint64_t m = amount._val[p];
        if (!m)
            continue;
        for (uint32_t pos = 0; pos < _width; ++pos) {
            uint64_t in = pos + s < _width ? cur[pos + s] : 0;
            cur[pos] = (cur[pos] & ~m) | (in & m);
        }
    }
    uint64_t keep = ~xl & ~sat;
    for (uint32_t p = 0; p < _width; ++p) {
        r._val[p] = cur[p] & keep;
        r._unk[p] = xl;
    }
    return r;
}

PackedValue
PackedValue::ashr(const PackedValue &amount) const
{
    PackedValue r(_width);
    uint64_t xl = anyX() | amount.anyX();
    uint64_t sat = shiftSaturation(amount, _width);
    uint64_t sign = _val[_width - 1];
    std::vector<uint64_t> cur(_val);
    for (uint32_t p = 0; p < amount._width && p < 64; ++p) {
        uint64_t s = 1ull << p;
        if (s >= _width)
            break;
        uint64_t m = amount._val[p];
        if (!m)
            continue;
        for (uint32_t pos = 0; pos < _width; ++pos) {
            uint64_t in = pos + s < _width ? cur[pos + s] : sign;
            cur[pos] = (cur[pos] & ~m) | (in & m);
        }
    }
    for (uint32_t p = 0; p < _width; ++p) {
        r._val[p] = ((cur[p] & ~sat) | (sign & sat)) & ~xl;
        r._unk[p] = xl;
    }
    return r;
}

PackedValue
PackedValue::eq(const PackedValue &rhs) const
{
    check(_width == rhs._width, "eq: width mismatch");
    PackedValue r(1);
    uint64_t xl = anyX() | rhs.anyX();
    uint64_t ne_mask = 0;
    for (uint32_t p = 0; p < _width; ++p)
        ne_mask |= _val[p] ^ rhs._val[p];
    r._val[0] = ~ne_mask & ~xl;
    r._unk[0] = xl;
    return r;
}

PackedValue
PackedValue::ne(const PackedValue &rhs) const
{
    return ~eq(rhs);
}

PackedValue
PackedValue::ult(const PackedValue &rhs) const
{
    check(_width == rhs._width, "ult: width mismatch");
    PackedValue r(1);
    uint64_t xl = anyX() | rhs.anyX();
    uint64_t lt = 0;
    for (uint32_t p = 0; p < _width; ++p) {
        uint64_t a = _val[p], b = rhs._val[p];
        lt = (~a & b) | (~(a ^ b) & lt);
    }
    r._val[0] = lt & ~xl;
    r._unk[0] = xl;
    return r;
}

PackedValue
PackedValue::ule(const PackedValue &rhs) const
{
    check(_width == rhs._width, "ule: width mismatch");
    PackedValue lt = ult(rhs);
    PackedValue e = eq(rhs);
    PackedValue r(1);
    uint64_t xl = lt._unk[0];
    r._val[0] = (lt._val[0] | e._val[0]) & ~xl;
    r._unk[0] = xl;
    return r;
}

PackedValue
PackedValue::slt(const PackedValue &rhs) const
{
    check(_width == rhs._width, "slt: width mismatch");
    PackedValue r(1);
    uint64_t xl = anyX() | rhs.anyX();
    uint64_t sa = _val[_width - 1], sb = rhs._val[_width - 1];
    uint64_t lt = 0;
    for (uint32_t p = 0; p < _width; ++p) {
        uint64_t a = _val[p], b = rhs._val[p];
        lt = (~a & b) | (~(a ^ b) & lt);
    }
    // Different signs: the negative side (sign bit set) is smaller.
    r._val[0] = ((sa & ~sb) | (~(sa ^ sb) & lt)) & ~xl;
    r._unk[0] = xl;
    return r;
}

PackedValue
PackedValue::sle(const PackedValue &rhs) const
{
    PackedValue lt = slt(rhs);
    PackedValue e = eq(rhs);
    PackedValue r(1);
    uint64_t xl = lt._unk[0];
    r._val[0] = (lt._val[0] | e._val[0]) & ~xl;
    r._unk[0] = xl;
    return r;
}

PackedValue
PackedValue::caseEq(const PackedValue &rhs) const
{
    check(_width == rhs._width, "caseEq: width mismatch");
    PackedValue r(1);
    uint64_t diff = 0;
    for (uint32_t p = 0; p < _width; ++p)
        diff |= (_val[p] ^ rhs._val[p]) | (_unk[p] ^ rhs._unk[p]);
    r._val[0] = ~diff;
    return r;
}

PackedValue
PackedValue::redAnd() const
{
    PackedValue r(1);
    uint64_t known0 = 0;
    for (uint32_t p = 0; p < _width; ++p)
        known0 |= ~_val[p] & ~_unk[p];
    uint64_t xl = anyX();
    r._val[0] = ~known0 & ~xl;
    r._unk[0] = xl & ~known0;
    return r;
}

PackedValue
PackedValue::redOr() const
{
    PackedValue r(1);
    uint64_t one = anyOne();
    r._val[0] = one;
    r._unk[0] = anyX() & ~one;
    return r;
}

PackedValue
PackedValue::redXor() const
{
    PackedValue r(1);
    uint64_t xl = anyX();
    uint64_t parity = 0;
    for (uint32_t p = 0; p < _width; ++p)
        parity ^= _val[p];
    r._val[0] = parity & ~xl;
    r._unk[0] = xl;
    return r;
}

PackedValue
PackedValue::ite(const PackedValue &cond, const PackedValue &then_v,
                 const PackedValue &else_v)
{
    check(cond._width == 1, "ite: condition must be 1 bit");
    check(then_v._width == else_v._width, "ite: arm width mismatch");
    uint64_t c1 = cond._val[0];
    uint64_t cx = cond._unk[0];
    uint64_t c0 = ~c1 & ~cx;
    PackedValue r(then_v._width);
    for (uint32_t p = 0; p < r._width; ++p) {
        uint64_t agree = ~then_v._unk[p] & ~else_v._unk[p] &
                         ~(then_v._val[p] ^ else_v._val[p]);
        r._val[p] = (c1 & then_v._val[p]) | (c0 & else_v._val[p]) |
                    (cx & then_v._val[p] & agree);
        r._unk[p] = (c1 & then_v._unk[p]) | (c0 & else_v._unk[p]) |
                    (cx & ~agree);
    }
    return r;
}

} // namespace rtlrepair::bv
