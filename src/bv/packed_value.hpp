/**
 * @file
 * Bit-parallel packed 4-state values: 64 independent lanes per word.
 *
 * A PackedValue holds the same two-plane (value/unknown) encoding as
 * bv::Value, but *transposed*: the planes are stored bit-position
 * major, one 64-bit word per bit position, where bit L of that word
 * belongs to lane L.  One pass over the planes therefore evaluates 64
 * independent stimuli at once — the layout the vectorized simulator
 * (sim/vec_sim.*) executes a whole fuzz batch or candidate-repair
 * set on.
 *
 * Semantics are lane-for-lane identical to bv::Value:
 *  - bitwise ops use the 4-state dominance rules per lane,
 *  - arithmetic, shifts, and relational ops go all-X in any lane
 *    where *any* bit of either operand is X (whole-operand rule,
 *    matching Value),
 *  - udiv/urem by a known zero yields all-X in that lane,
 *  - caseEq compares X bits literally and is always known.
 *
 * The canonical-form invariant also carries over per lane: a value
 * plane bit is always zero where the unknown plane bit is set, so
 * per-lane equality is plain word comparison.
 *
 * Mul/udiv/urem take a per-lane scalar fallback through bv::Value
 * (exact by construction); everything else is O(width) word ops for
 * all 64 lanes together.
 */
#ifndef RTLREPAIR_BV_PACKED_VALUE_HPP
#define RTLREPAIR_BV_PACKED_VALUE_HPP

#include <cstdint>
#include <vector>

#include "bv/value.hpp"

namespace rtlrepair::bv {

/** Fixed-width 4-state bit-vector, 64 lanes wide. */
class PackedValue
{
  public:
    static constexpr uint32_t kLanes = 64;

    /** Default: 1-bit known zero in every lane. */
    PackedValue() : PackedValue(1) {}

    /** @name Constructors @{ */
    static PackedValue zeros(uint32_t width);
    static PackedValue allX(uint32_t width);
    /** Same scalar value in all 64 lanes. */
    static PackedValue broadcast(const Value &v);
    /**
     * Pack per-lane values.  Each value is zero-extended or truncated
     * to @p width (the way a port connection adjusts); lanes beyond
     * @p vals.size() are all-X.
     */
    static PackedValue pack(const std::vector<Value> &vals,
                            uint32_t width);
    /**
     * Pointer-based pack for hot batch loops: no per-lane Value
     * copies.  A null pointer leaves that lane all-X; lanes beyond
     * @p n are all-X too.
     */
    static PackedValue pack(const Value *const *vals, size_t n,
                            uint32_t width);
    /** @} */

    uint32_t width() const { return _width; }

    /** Extract one lane as a scalar value. */
    Value lane(uint32_t l) const;
    /** Overwrite one lane; @p v must have this width. */
    void setLane(uint32_t l, const Value &v);

    /** @name Raw plane access (for the simulator internals) @{ */
    uint64_t valAt(uint32_t pos) const { return _val[pos]; }
    uint64_t unkAt(uint32_t pos) const { return _unk[pos]; }
    /** Set bit @p pos to (val, unk) in the lanes of @p mask. */
    void setBitLanes(uint32_t pos, uint64_t val, uint64_t unk,
                     uint64_t mask);
    /** @} */

    /** @name Per-lane predicates (one result bit per lane) @{ */
    /** Lanes with any X bit. */
    uint64_t anyX() const;
    /** Lanes with any known-one bit. */
    uint64_t anyOne() const;
    /** Lanes that are fully known and non-zero (isNonZero). */
    uint64_t laneTrue() const { return anyOne() & ~anyX(); }
    /** Lanes that are fully known and zero (isZero). */
    uint64_t laneZero() const { return ~anyOne() & ~anyX(); }
    /** Lanes where both planes are identical (operator==). */
    uint64_t laneEq(const PackedValue &rhs) const;
    /** Value::matches per lane (X in @p expected = don't care). */
    uint64_t laneMatches(const PackedValue &expected) const;
    /**
     * Lanes that are X-free and whose low 64 bits equal @p target
     * (bits at positions >= 64 are ignored, the way toUint64 /
     * slice(63,0) reads an index).
     */
    uint64_t laneEqUint(uint64_t target) const;
    /** @} */

    /** Per-lane select: lanes of @p mask from @p a, rest from @p b. */
    static PackedValue blend(const PackedValue &a, const PackedValue &b,
                             uint64_t mask);

    /** @name Width changes and structure @{ */
    PackedValue zext(uint32_t new_width) const;
    PackedValue sext(uint32_t new_width) const;
    PackedValue slice(uint32_t hi, uint32_t lo) const;
    /** {this, low}: this becomes the upper bits. */
    PackedValue concat(const PackedValue &low) const;
    PackedValue replicate(uint32_t n) const;
    /** @} */

    /** @name Bitwise (4-state dominance rules per lane) @{ */
    PackedValue operator~() const;
    PackedValue operator&(const PackedValue &rhs) const;
    PackedValue operator|(const PackedValue &rhs) const;
    PackedValue operator^(const PackedValue &rhs) const;
    /** @} */

    /** @name Arithmetic (lane all-X on any unknown operand bit) @{ */
    PackedValue operator+(const PackedValue &rhs) const;
    PackedValue operator-(const PackedValue &rhs) const;
    PackedValue operator*(const PackedValue &rhs) const;
    PackedValue udiv(const PackedValue &rhs) const;
    PackedValue urem(const PackedValue &rhs) const;
    PackedValue negate() const;
    /** @} */

    /** @name Shifts; same-width amount, per-lane saturation @{ */
    PackedValue shl(const PackedValue &amount) const;
    PackedValue lshr(const PackedValue &amount) const;
    PackedValue ashr(const PackedValue &amount) const;
    /** @} */

    /** @name Relational; 1-bit result per lane @{ */
    PackedValue eq(const PackedValue &rhs) const;
    PackedValue ne(const PackedValue &rhs) const;
    PackedValue ult(const PackedValue &rhs) const;
    PackedValue ule(const PackedValue &rhs) const;
    PackedValue slt(const PackedValue &rhs) const;
    PackedValue sle(const PackedValue &rhs) const;
    /** @} */

    /** Case equality (===) per lane; always known. */
    PackedValue caseEq(const PackedValue &rhs) const;

    /** @name Reductions; 1-bit result per lane @{ */
    PackedValue redAnd() const;
    PackedValue redOr() const;
    PackedValue redXor() const;
    /** @} */

    /**
     * Per-lane 2-to-1 multiplexer.  @p cond must be 1 bit wide; an X
     * condition lane merges the arms bitwise (agreeing known bits
     * survive, everything else goes X), exactly like Value::ite.
     */
    static PackedValue ite(const PackedValue &cond,
                           const PackedValue &then_v,
                           const PackedValue &else_v);

  private:
    explicit PackedValue(uint32_t width);

    /** Clear value-plane bits under the unknown plane (canonical). */
    void normalize();
    /** Per-lane scalar fallback for mul/div/rem. */
    PackedValue scalarFallback(const PackedValue &rhs,
                               uint64_t ok_lanes,
                               Value (Value::*op)(const Value &)
                                   const) const;

    uint32_t _width;
    std::vector<uint64_t> _val;  ///< one word per bit position
    std::vector<uint64_t> _unk;
};

} // namespace rtlrepair::bv

#endif // RTLREPAIR_BV_PACKED_VALUE_HPP
