#include "bv/value.hpp"

#include <algorithm>
#include <cctype>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace rtlrepair::bv {

namespace {

/** Bit mask covering the valid bits of the top word. */
uint64_t
topMask(uint32_t width)
{
    uint32_t rem = width % 64u;
    return rem == 0 ? ~0ull : ((1ull << rem) - 1ull);
}

} // namespace

void
Value::normalize()
{
    check(_width > 0, "zero-width Value");
    // A defensive cap: widths beyond this are always the result of a
    // corrupted constant (e.g. a mutated part-select bound), and the
    // bit-level algorithms would effectively hang on them.
    if (_width > (1u << 22))
        fatal("bit-vector width too large");
    uint64_t mask = topMask(_width);
    _bits.back() &= mask;
    _xmask.back() &= mask;
    for (size_t i = 0; i < _bits.size(); ++i)
        _bits[i] &= ~_xmask[i];
}

Value
Value::zeros(uint32_t width)
{
    check(width > 0, "zero-width Value");
    return Value(width, nwords(width));
}

Value
Value::ones(uint32_t width)
{
    Value v = zeros(width);
    for (auto &w : v._bits)
        w = ~0ull;
    v.normalize();
    return v;
}

Value
Value::allX(uint32_t width)
{
    Value v = zeros(width);
    for (auto &w : v._xmask)
        w = ~0ull;
    v.normalize();
    return v;
}

Value
Value::fromUint(uint32_t width, uint64_t value)
{
    Value v = zeros(width);
    v._bits[0] = value;
    v.normalize();
    return v;
}

Value
Value::fromWords(uint32_t width, std::vector<uint64_t> words)
{
    Value v = zeros(width);
    for (size_t i = 0; i < v._bits.size() && i < words.size(); ++i)
        v._bits[i] = words[i];
    v.normalize();
    return v;
}

Value
Value::random(uint32_t width, Rng &rng)
{
    Value v = zeros(width);
    for (auto &w : v._bits)
        w = rng.next();
    v.normalize();
    return v;
}

Value
Value::parseVerilog(std::string_view literal)
{
    std::string text;
    for (char c : literal) {
        if (c != '_' && !std::isspace(static_cast<unsigned char>(c)))
            text += c;
    }
    size_t tick = text.find('\'');
    if (tick == std::string::npos) {
        // Bare decimal: 32 bits per the Verilog standard.
        uint64_t value = 0;
        if (text.empty())
            fatal("empty integer literal");
        for (char c : text) {
            if (!std::isdigit(static_cast<unsigned char>(c)))
                fatal("malformed integer literal: " + std::string(literal));
            value = value * 10u + static_cast<uint64_t>(c - '0');
        }
        return fromUint(32, value);
    }

    uint32_t width = 32;
    if (tick > 0) {
        width = 0;
        for (size_t i = 0; i < tick; ++i) {
            char c = text[i];
            if (!std::isdigit(static_cast<unsigned char>(c)))
                fatal("malformed literal width: " + std::string(literal));
            width = width * 10u + static_cast<uint32_t>(c - '0');
        }
        if (width == 0 || width > 1u << 20)
            fatal("unsupported literal width: " + std::string(literal));
    }

    size_t pos = tick + 1;
    if (pos < text.size() &&
        (text[pos] == 's' || text[pos] == 'S')) {
        ++pos; // signedness marker; value bits are the same
    }
    if (pos >= text.size())
        fatal("malformed literal: " + std::string(literal));

    char base = static_cast<char>(
        std::tolower(static_cast<unsigned char>(text[pos])));
    ++pos;
    std::string digits = text.substr(pos);
    if (digits.empty())
        fatal("literal has no digits: " + std::string(literal));

    uint32_t bits_per_digit = 0;
    switch (base) {
      case 'b': bits_per_digit = 1; break;
      case 'o': bits_per_digit = 3; break;
      case 'h': bits_per_digit = 4; break;
      case 'd': bits_per_digit = 0; break;
      default:
        fatal("unknown literal base: " + std::string(literal));
    }

    Value v = zeros(width);
    if (bits_per_digit == 0) {
        uint64_t value = 0;
        for (char c : digits) {
            if (c == 'x' || c == 'X')
                return allX(width);
            if (!std::isdigit(static_cast<unsigned char>(c)))
                fatal("malformed decimal literal: " + std::string(literal));
            value = value * 10u + static_cast<uint64_t>(c - '0');
        }
        return fromUint(width, value);
    }

    uint32_t bit_pos = 0;
    for (size_t i = digits.size(); i-- > 0;) {
        char c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(digits[i])));
        uint32_t digit = 0;
        bool is_x = false;
        if (c == 'x' || c == 'z' || c == '?') {
            is_x = true; // Z folds into X (tri-states are pre-removed)
        } else if (c >= '0' && c <= '9') {
            digit = static_cast<uint32_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
            digit = static_cast<uint32_t>(c - 'a') + 10u;
        } else {
            fatal("malformed literal digit: " + std::string(literal));
        }
        if (digit >= (1u << bits_per_digit) && !is_x)
            fatal("digit out of range for base: " + std::string(literal));
        for (uint32_t b = 0; b < bits_per_digit; ++b) {
            if (bit_pos >= width)
                break;
            if (is_x) {
                v.setBit(bit_pos, -1);
            } else if ((digit >> b) & 1u) {
                v.setBit(bit_pos, 1);
            }
            ++bit_pos;
        }
    }
    // Verilog extends a leading x digit through the remaining bits.
    if (bit_pos < width && !digits.empty()) {
        char lead = static_cast<char>(
            std::tolower(static_cast<unsigned char>(digits.front())));
        if (lead == 'x' || lead == 'z' || lead == '?') {
            for (uint32_t b = bit_pos; b < width; ++b)
                v.setBit(b, -1);
        }
    }
    return v;
}

bool
Value::hasX() const
{
    for (uint64_t w : _xmask) {
        if (w != 0)
            return true;
    }
    return false;
}

bool
Value::isZero() const
{
    if (hasX())
        return false;
    for (uint64_t w : _bits) {
        if (w != 0)
            return false;
    }
    return true;
}

bool
Value::isNonZero() const
{
    if (hasX())
        return false;
    for (uint64_t w : _bits) {
        if (w != 0)
            return true;
    }
    return false;
}

uint64_t
Value::toUint64() const
{
    check(_xmask[0] == 0, "toUint64 on X value");
    return _bits[0];
}

Value
Value::fromPlanes(uint32_t width, std::vector<uint64_t> bits,
                  std::vector<uint64_t> xmask)
{
    size_t n = nwords(width);
    bits.resize(n, 0);
    xmask.resize(n, 0);
    Value v(width, n);
    v._bits = std::move(bits);
    v._xmask = std::move(xmask);
    v.normalize();
    return v;
}

std::string
Value::toBinaryString() const
{
    std::string out;
    out.reserve(_width);
    for (uint32_t i = _width; i-- > 0;) {
        int b = bit(i);
        out += b < 0 ? 'x' : static_cast<char>('0' + b);
    }
    return out;
}

std::string
Value::toVerilogLiteral() const
{
    if (!hasX() && _width % 4u == 0 && _width >= 8) {
        std::string digits;
        for (uint32_t i = _width; i >= 4; i -= 4) {
            uint32_t nibble = 0;
            for (uint32_t b = 0; b < 4; ++b)
                nibble |= static_cast<uint32_t>(bit(i - 4 + b)) << b;
            digits += "0123456789abcdef"[nibble];
        }
        return format("%u'h%s", _width, digits.c_str());
    }
    return format("%u'b%s", _width, toBinaryString().c_str());
}

std::string
Value::toDisplayString() const
{
    if (!hasX() && _width <= 64)
        return format("%llu", static_cast<unsigned long long>(_bits[0]));
    return toBinaryString();
}

bool
Value::operator==(const Value &other) const
{
    return _width == other._width && _bits == other._bits &&
           _xmask == other._xmask;
}

bool
Value::matches(const Value &expected) const
{
    if (_width != expected._width) {
        // Width mismatches happen when a bug changes a port width
        // (e.g. the mux_k1 benchmark).  Compare zero-extended, the
        // way a testbench comparison against a wider vector would.
        uint32_t w = std::max(_width, expected._width);
        return zext(w).matches(expected.zext(w));
    }
    for (size_t i = 0; i < _bits.size(); ++i) {
        uint64_t care = ~expected._xmask[i];
        if (i + 1 == _bits.size())
            care &= topMask(_width);
        if ((_xmask[i] & care) != 0)
            return false; // our bit unknown where the trace checks
        if (((_bits[i] ^ expected._bits[i]) & care) != 0)
            return false;
    }
    return true;
}

Value
Value::zext(uint32_t new_width) const
{
    check(new_width >= _width, "zext must not shrink");
    Value v = zeros(new_width);
    std::copy(_bits.begin(), _bits.end(), v._bits.begin());
    std::copy(_xmask.begin(), _xmask.end(), v._xmask.begin());
    v.normalize();
    return v;
}

Value
Value::sext(uint32_t new_width) const
{
    check(new_width >= _width, "sext must not shrink");
    Value v = zext(new_width);
    int msb = bit(_width - 1);
    for (uint32_t i = _width; i < new_width; ++i)
        v.setBit(i, msb);
    return v;
}

Value
Value::slice(uint32_t hi, uint32_t lo) const
{
    check(hi < _width && lo <= hi, "slice out of range");
    Value v = zeros(hi - lo + 1);
    for (uint32_t i = lo; i <= hi; ++i)
        v.setBit(i - lo, bit(i));
    return v;
}

Value
Value::concat(const Value &low) const
{
    Value v = zeros(_width + low._width);
    for (uint32_t i = 0; i < low._width; ++i)
        v.setBit(i, low.bit(i));
    for (uint32_t i = 0; i < _width; ++i)
        v.setBit(low._width + i, bit(i));
    return v;
}

Value
Value::replicate(uint32_t n) const
{
    check(n > 0, "replicate zero times");
    Value v = *this;
    for (uint32_t i = 1; i < n; ++i)
        v = v.concat(*this);
    return v;
}

Value
Value::operator~() const
{
    Value v = *this;
    for (size_t i = 0; i < v._bits.size(); ++i)
        v._bits[i] = ~v._bits[i];
    v.normalize();
    return v;
}

Value
Value::operator&(const Value &rhs) const
{
    check(_width == rhs._width, "and: width mismatch");
    Value v = zeros(_width);
    for (size_t i = 0; i < _bits.size(); ++i) {
        // Known one bits: both known one.  Unknown unless either is a
        // known zero.
        uint64_t known_a = ~_xmask[i];
        uint64_t known_b = ~rhs._xmask[i];
        uint64_t one = (_bits[i] & known_a) & (rhs._bits[i] & known_b);
        uint64_t zero = (known_a & ~_bits[i]) | (known_b & ~rhs._bits[i]);
        v._bits[i] = one;
        v._xmask[i] = ~(one | zero);
    }
    v.normalize();
    return v;
}

Value
Value::operator|(const Value &rhs) const
{
    check(_width == rhs._width, "or: width mismatch");
    Value v = zeros(_width);
    for (size_t i = 0; i < _bits.size(); ++i) {
        uint64_t known_a = ~_xmask[i];
        uint64_t known_b = ~rhs._xmask[i];
        uint64_t one = (_bits[i] & known_a) | (rhs._bits[i] & known_b);
        uint64_t zero = (known_a & ~_bits[i]) & (known_b & ~rhs._bits[i]);
        v._bits[i] = one;
        v._xmask[i] = ~(one | zero);
    }
    v.normalize();
    return v;
}

Value
Value::operator^(const Value &rhs) const
{
    check(_width == rhs._width, "xor: width mismatch");
    Value v = zeros(_width);
    for (size_t i = 0; i < _bits.size(); ++i) {
        v._xmask[i] = _xmask[i] | rhs._xmask[i];
        v._bits[i] = _bits[i] ^ rhs._bits[i];
    }
    v.normalize();
    return v;
}

Value
Value::operator+(const Value &rhs) const
{
    check(_width == rhs._width, "add: width mismatch");
    if (hasX() || rhs.hasX())
        return allX(_width);
    Value v = zeros(_width);
    uint64_t carry = 0;
    for (size_t i = 0; i < _bits.size(); ++i) {
        uint64_t sum = _bits[i] + carry;
        uint64_t carry1 = sum < _bits[i] ? 1u : 0u;
        uint64_t total = sum + rhs._bits[i];
        uint64_t carry2 = total < sum ? 1u : 0u;
        v._bits[i] = total;
        carry = carry1 | carry2;
    }
    v.normalize();
    return v;
}

Value
Value::negate() const
{
    if (hasX())
        return allX(_width);
    Value v = ~*this;
    return v + fromUint(_width, 1);
}

Value
Value::operator-(const Value &rhs) const
{
    check(_width == rhs._width, "sub: width mismatch");
    if (hasX() || rhs.hasX())
        return allX(_width);
    return *this + rhs.negate();
}

Value
Value::operator*(const Value &rhs) const
{
    check(_width == rhs._width, "mul: width mismatch");
    if (hasX() || rhs.hasX())
        return allX(_width);
    size_t n = _bits.size();
    std::vector<uint64_t> acc(n, 0);
    for (size_t i = 0; i < n; ++i) {
        uint64_t carry = 0;
        for (size_t j = 0; i + j < n; ++j) {
            unsigned __int128 cur =
                static_cast<unsigned __int128>(_bits[i]) * rhs._bits[j] +
                acc[i + j] + carry;
            acc[i + j] = static_cast<uint64_t>(cur);
            carry = static_cast<uint64_t>(cur >> 64);
        }
    }
    return fromWords(_width, std::move(acc));
}

Value
Value::udiv(const Value &rhs) const
{
    check(_width == rhs._width, "udiv: width mismatch");
    if (hasX() || rhs.hasX() || rhs.isZero())
        return allX(_width);
    // Simple restoring long division, MSB first.
    Value quotient = zeros(_width);
    Value remainder = zeros(_width);
    for (uint32_t i = _width; i-- > 0;) {
        remainder = remainder.shl(fromUint(_width, 1));
        remainder.setBit(0, bit(i));
        if (rhs.ule(remainder).isNonZero()) {
            remainder = remainder - rhs;
            quotient.setBit(i, 1);
        }
    }
    return quotient;
}

Value
Value::urem(const Value &rhs) const
{
    check(_width == rhs._width, "urem: width mismatch");
    if (hasX() || rhs.hasX() || rhs.isZero())
        return allX(_width);
    Value quotient = udiv(rhs);
    return *this - quotient * rhs;
}

Value
Value::shl(const Value &amount) const
{
    if (hasX() || amount.hasX())
        return allX(_width);
    uint64_t by = amount._bits[0];
    for (size_t i = 1; i < amount._bits.size(); ++i) {
        if (amount._bits[i] != 0)
            by = _width; // saturate
    }
    if (by >= _width)
        return zeros(_width);
    Value v = zeros(_width);
    for (uint32_t i = static_cast<uint32_t>(by); i < _width; ++i)
        v.setBit(i, bit(i - static_cast<uint32_t>(by)));
    return v;
}

Value
Value::lshr(const Value &amount) const
{
    if (hasX() || amount.hasX())
        return allX(_width);
    uint64_t by = amount._bits[0];
    for (size_t i = 1; i < amount._bits.size(); ++i) {
        if (amount._bits[i] != 0)
            by = _width;
    }
    if (by >= _width)
        return zeros(_width);
    Value v = zeros(_width);
    for (uint32_t i = 0; i + by < _width; ++i)
        v.setBit(i, bit(i + static_cast<uint32_t>(by)));
    return v;
}

Value
Value::ashr(const Value &amount) const
{
    if (hasX() || amount.hasX())
        return allX(_width);
    uint64_t by = amount._bits[0];
    for (size_t i = 1; i < amount._bits.size(); ++i) {
        if (amount._bits[i] != 0)
            by = _width;
    }
    int sign = bit(_width - 1);
    if (by >= _width)
        return sign == 1 ? ones(_width) : zeros(_width);
    Value v = zeros(_width);
    for (uint32_t i = 0; i < _width; ++i) {
        uint64_t src = i + by;
        v.setBit(i, src < _width ? bit(static_cast<uint32_t>(src)) : sign);
    }
    return v;
}

int
Value::compareKnown(const Value &a, const Value &b)
{
    for (size_t i = a._bits.size(); i-- > 0;) {
        if (a._bits[i] < b._bits[i])
            return -1;
        if (a._bits[i] > b._bits[i])
            return 1;
    }
    return 0;
}

Value
Value::eq(const Value &rhs) const
{
    check(_width == rhs._width, "eq: width mismatch");
    if (hasX() || rhs.hasX())
        return allX(1);
    return fromUint(1, compareKnown(*this, rhs) == 0 ? 1u : 0u);
}

Value
Value::ne(const Value &rhs) const
{
    Value e = eq(rhs);
    return e.hasX() ? e : ~e;
}

Value
Value::ult(const Value &rhs) const
{
    check(_width == rhs._width, "ult: width mismatch");
    if (hasX() || rhs.hasX())
        return allX(1);
    return fromUint(1, compareKnown(*this, rhs) < 0 ? 1u : 0u);
}

Value
Value::ule(const Value &rhs) const
{
    check(_width == rhs._width, "ule: width mismatch");
    if (hasX() || rhs.hasX())
        return allX(1);
    return fromUint(1, compareKnown(*this, rhs) <= 0 ? 1u : 0u);
}

Value
Value::slt(const Value &rhs) const
{
    check(_width == rhs._width, "slt: width mismatch");
    if (hasX() || rhs.hasX())
        return allX(1);
    int sa = signBit(), sb = rhs.signBit();
    if (sa != sb)
        return fromUint(1, sa == 1 ? 1u : 0u);
    return fromUint(1, compareKnown(*this, rhs) < 0 ? 1u : 0u);
}

Value
Value::sle(const Value &rhs) const
{
    Value lt = slt(rhs);
    if (lt.hasX())
        return lt;
    if (lt.isNonZero())
        return lt;
    return eq(rhs);
}

Value
Value::caseEq(const Value &rhs) const
{
    check(_width == rhs._width, "caseEq: width mismatch");
    bool equal = _bits == rhs._bits && _xmask == rhs._xmask;
    return fromUint(1, equal ? 1u : 0u);
}

Value
Value::redAnd() const
{
    bool any_x = false;
    for (uint32_t i = 0; i < _width; ++i) {
        int b = bit(i);
        if (b == 0)
            return fromUint(1, 0);
        if (b < 0)
            any_x = true;
    }
    return any_x ? allX(1) : fromUint(1, 1);
}

Value
Value::redOr() const
{
    bool any_x = false;
    for (uint32_t i = 0; i < _width; ++i) {
        int b = bit(i);
        if (b == 1)
            return fromUint(1, 1);
        if (b < 0)
            any_x = true;
    }
    return any_x ? allX(1) : fromUint(1, 0);
}

Value
Value::redXor() const
{
    if (hasX())
        return allX(1);
    uint64_t parity = 0;
    for (uint64_t w : _bits)
        parity ^= w;
    parity ^= parity >> 32;
    parity ^= parity >> 16;
    parity ^= parity >> 8;
    parity ^= parity >> 4;
    parity ^= parity >> 2;
    parity ^= parity >> 1;
    return fromUint(1, parity & 1u);
}

Value
Value::ite(const Value &cond, const Value &then_v, const Value &else_v)
{
    check(cond._width == 1, "ite: condition must be 1 bit");
    check(then_v._width == else_v._width, "ite: arm width mismatch");
    int c = cond.bit(0);
    if (c == 1)
        return then_v;
    if (c == 0)
        return else_v;
    // X condition: merge arms bitwise.
    Value v = zeros(then_v._width);
    for (uint32_t i = 0; i < v._width; ++i) {
        int a = then_v.bit(i);
        int b = else_v.bit(i);
        v.setBit(i, (a == b && a >= 0) ? a : -1);
    }
    return v;
}

Value
Value::xToZero() const
{
    Value v = *this;
    for (auto &w : v._xmask)
        w = 0;
    return v;
}

Value
Value::xToRandom(Rng &rng) const
{
    Value v = *this;
    for (size_t i = 0; i < v._bits.size(); ++i) {
        v._bits[i] |= rng.next() & v._xmask[i];
        v._xmask[i] = 0;
    }
    v.normalize();
    return v;
}

size_t
Value::hash() const
{
    size_t h = _width * 0x9e3779b97f4a7c15ull;
    auto mix = [&h](uint64_t w) {
        h ^= w + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    for (uint64_t w : _bits)
        mix(w);
    for (uint64_t w : _xmask)
        mix(w ^ 0x5555555555555555ull);
    return h;
}

} // namespace rtlrepair::bv
