#include "checks/correctness.hpp"

#include "elaborate/elaborate.hpp"
#include "gates/gate_sim.hpp"
#include "sim/event_sim.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace rtlrepair::checks {

namespace {

/** Synthesis-semantics replay (IR interpreter, zero-X policy). */
bool
synthesisReplay(const verilog::Module &mod,
                const std::vector<const verilog::Module *> &library,
                const trace::IoTrace &io, std::string *error)
{
    try {
        elaborate::ElaborateOptions opts;
        opts.library = library;
        ir::TransitionSystem sys = elaborate::elaborate(mod, opts);
        sim::Interpreter interp(
            sys, sim::SimOptions{sim::XPolicy::Zero,
                                 sim::XPolicy::Zero, 1});
        return sim::replay(interp, io).passed;
    } catch (const FatalError &e) {
        if (error)
            *error = e.what();
        return false;
    }
}

bool
gateLevelReplay(const verilog::Module &mod,
                const std::vector<const verilog::Module *> &library,
                const trace::IoTrace &io, std::string *error)
{
    try {
        elaborate::ElaborateOptions opts;
        opts.library = library;
        ir::TransitionSystem sys = elaborate::elaborate(mod, opts);
        gates::GateNetlist net = gates::lower(sys);
        return gates::gateReplay(net, io).passed;
    } catch (const FatalError &e) {
        if (error)
            *error = e.what();
        return false;
    }
}

bool
eventReplayPassed(const verilog::Module &mod,
                  const std::vector<const verilog::Module *> &library,
                  const std::string &clock, const trace::IoTrace &io,
                  bool reverse)
{
    try {
        sim::ReplayResult result;
        sim::EventSimulator sim(mod, library, clock, reverse);
        for (size_t cycle = 0; cycle < io.length(); ++cycle) {
            for (size_t i = 0; i < io.inputs.size(); ++i) {
                if (io.inputs[i].name == clock)
                    continue;
                sim.setInput(io.inputs[i].name,
                             io.input_rows[cycle][i]);
            }
            if (clock.empty())
                sim.settleOnly();
            else
                sim.step();
            if (sim.unstable())
                return false;
            for (size_t i = 0; i < io.outputs.size(); ++i) {
                if (!sim.sampledOutput(io.outputs[i].name)
                         .matches(io.output_rows[cycle][i])) {
                    return false;
                }
            }
        }
        return true;
    } catch (const FatalError &) {
        return false;
    }
}

} // namespace

std::string
CheckReport::cells() const
{
    auto cell = [](const std::optional<bool> &v) {
        if (!v)
            return "  ";
        return *v ? "ok" : "XX";
    };
    return format("tb:%s gate:%s sim2:%s ext:%s => %s",
                  cell(testbench), cell(gate_level),
                  cell(second_simulator), cell(extended),
                  overall ? "PASS" : "FAIL");
}

CheckReport
checkRepair(const CheckInputs &inputs)
{
    check(inputs.golden && inputs.repaired && inputs.tb,
          "checkRepair: missing inputs");
    CheckReport report;

    // 1. Original testbench under event-driven simulation.
    report.testbench = eventReplayPassed(
        *inputs.repaired, inputs.library, inputs.clock, *inputs.tb,
        /*reverse=*/false);

    // 2. Gate-level: applicable only if the ground truth passes it.
    std::string golden_err;
    bool golden_gate = gateLevelReplay(*inputs.golden, inputs.library,
                                       *inputs.tb, &golden_err);
    if (golden_gate) {
        std::string err;
        report.gate_level = gateLevelReplay(
            *inputs.repaired, inputs.library, *inputs.tb, &err);
        if (!*report.gate_level && !err.empty())
            report.detail += "gate-level: " + err + "\n";
    } else {
        report.detail +=
            "gate-level check skipped (ground truth fails it";
        if (!golden_err.empty())
            report.detail += ": " + golden_err;
        report.detail += ")\n";
    }

    // 3. Second simulator: reversed scheduling + synthesis replay,
    //    applicable only if the ground truth agrees under both.
    bool golden_second =
        eventReplayPassed(*inputs.golden, inputs.library, inputs.clock,
                          *inputs.tb, /*reverse=*/true) &&
        synthesisReplay(*inputs.golden, inputs.library, *inputs.tb,
                        nullptr);
    if (golden_second) {
        bool rev = eventReplayPassed(*inputs.repaired, inputs.library,
                                     inputs.clock, *inputs.tb,
                                     /*reverse=*/true);
        std::string err;
        bool synth = synthesisReplay(*inputs.repaired, inputs.library,
                                     *inputs.tb, &err);
        report.second_simulator = rev && synth;
        if (!synth && !err.empty())
            report.detail += "second-simulator: " + err + "\n";
    } else {
        report.detail += "second-simulator check skipped (ground "
                         "truth disagrees under it)\n";
    }

    // 4. Extended testbench.
    if (inputs.extended_tb) {
        report.extended = eventReplayPassed(
            *inputs.repaired, inputs.library, inputs.clock,
            *inputs.extended_tb, /*reverse=*/false);
    }

    report.overall = report.testbench.value_or(false);
    if (report.gate_level)
        report.overall = report.overall && *report.gate_level;
    if (report.second_simulator)
        report.overall = report.overall && *report.second_simulator;
    if (report.extended)
        report.overall = report.overall && *report.extended;
    return report;
}

} // namespace rtlrepair::checks
