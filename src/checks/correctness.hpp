/**
 * @file
 * The automated repair-correctness battery of paper Table 4:
 *
 *  - Testbench: event-driven replay of the original I/O trace.
 *  - Gate-Level: replay against the synthesized (AIG + DFF) netlist;
 *    only applicable when the *ground truth* passes it too (the
 *    paper's guard against benign X-propagation failures).
 *  - Second simulator (iverilog in the paper): event-driven replay
 *    with reversed process scheduling plus a synthesis-semantics
 *    replay — catches repairs that rely on racy or ill-defined
 *    behaviour.
 *  - Extended testbench: a longer trace covering behaviour the
 *    original testbench misses (where the benchmark provides one).
 *
 * Overall verdict: all applicable checks pass.
 */
#ifndef RTLREPAIR_CHECKS_CORRECTNESS_HPP
#define RTLREPAIR_CHECKS_CORRECTNESS_HPP

#include <optional>
#include <string>

#include "trace/io_trace.hpp"
#include "verilog/ast.hpp"

namespace rtlrepair::checks {

/** Verdicts of the individual checks; nullopt = not applicable. */
struct CheckReport
{
    std::optional<bool> testbench;
    std::optional<bool> gate_level;
    std::optional<bool> second_simulator;
    std::optional<bool> extended;
    bool overall = false;
    std::string detail;

    /** Render like the paper's Table 4 cells (pass/fail/blank). */
    std::string cells() const;
};

/** Inputs to the battery. */
struct CheckInputs
{
    const verilog::Module *golden = nullptr;
    const verilog::Module *repaired = nullptr;
    std::vector<const verilog::Module *> library;
    std::string clock;
    const trace::IoTrace *tb = nullptr;
    const trace::IoTrace *extended_tb = nullptr;  ///< optional
};

/** Run all applicable checks. */
CheckReport checkRepair(const CheckInputs &inputs);

} // namespace rtlrepair::checks

#endif // RTLREPAIR_CHECKS_CORRECTNESS_HPP
