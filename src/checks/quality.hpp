/**
 * @file
 * Ground-truth quality grading on the Table 6 scale:
 *  (A) repair matches the ground truth exactly,
 *  (B) repair performs some of the ground-truth changes,
 *  (C) repair changes the same expression differently,
 *  (D) repair is very different from the ground truth.
 *
 * The paper grades by hand; we automate it with printed-source line
 * diffs, which is deterministic and close to how a human eyeballs
 * the patches.
 */
#ifndef RTLREPAIR_CHECKS_QUALITY_HPP
#define RTLREPAIR_CHECKS_QUALITY_HPP

#include <string>

#include "verilog/ast.hpp"

namespace rtlrepair::checks {

enum class Quality { A, B, C, D };

const char *qualityName(Quality quality);

/** Grade @p repaired against @p golden, both derived from @p buggy. */
Quality gradeRepair(const verilog::Module &buggy,
                    const verilog::Module &repaired,
                    const verilog::Module &golden);

/** Lines added/removed going from @p golden to @p buggy ("Bug Diff"). */
std::pair<int, int> bugDiff(const verilog::Module &golden,
                            const verilog::Module &buggy);

/** Unified-style diff of the repair (buggy -> repaired). */
std::string repairDiff(const verilog::Module &buggy,
                       const verilog::Module &repaired);

} // namespace rtlrepair::checks

#endif // RTLREPAIR_CHECKS_QUALITY_HPP
