#include "checks/quality.hpp"

#include <set>

#include "util/strings.hpp"
#include "verilog/ast_util.hpp"
#include "verilog/printer.hpp"

namespace rtlrepair::checks {

using namespace verilog;

const char *
qualityName(Quality quality)
{
    switch (quality) {
      case Quality::A: return "A";
      case Quality::B: return "B";
      case Quality::C: return "C";
      case Quality::D: return "D";
    }
    return "?";
}

namespace {

struct ChangeSet
{
    std::set<std::string> removed;  ///< lines of the buggy version
    std::set<std::string> added;
};

ChangeSet
changes(const std::string &before, const std::string &after)
{
    ChangeSet set;
    for (const auto &line : diffLines(before, after)) {
        std::string text{trim(line.text)};
        if (text.empty())
            continue;
        if (line.tag == '-')
            set.removed.insert(text);
        else if (line.tag == '+')
            set.added.insert(text);
    }
    return set;
}

bool
isSubset(const std::set<std::string> &small,
         const std::set<std::string> &big)
{
    for (const auto &x : small) {
        if (!big.count(x))
            return false;
    }
    return true;
}

bool
intersects(const std::set<std::string> &a,
           const std::set<std::string> &b)
{
    for (const auto &x : a) {
        if (b.count(x))
            return true;
    }
    return false;
}

} // namespace

Quality
gradeRepair(const Module &buggy, const Module &repaired,
            const Module &golden)
{
    // A: structurally identical to the ground truth.
    if (equal(repaired, golden))
        return Quality::A;

    std::string buggy_src = print(buggy);
    std::string repaired_src = print(repaired);
    std::string golden_src = print(golden);
    if (repaired_src == golden_src)
        return Quality::A;

    ChangeSet repair_set = changes(buggy_src, repaired_src);
    ChangeSet truth_set = changes(buggy_src, golden_src);

    // B: the repair performs a subset of the ground-truth changes.
    if (!repair_set.removed.empty() || !repair_set.added.empty()) {
        if (isSubset(repair_set.removed, truth_set.removed) &&
            isSubset(repair_set.added, truth_set.added)) {
            return Quality::B;
        }
    }

    // C: the repair touches the same lines/expressions the ground
    // truth touches, but rewrites them differently.
    if (intersects(repair_set.removed, truth_set.removed))
        return Quality::C;

    return Quality::D;
}

std::pair<int, int>
bugDiff(const Module &golden, const Module &buggy)
{
    return countDiff(print(buggy), print(golden));
}

std::string
repairDiff(const Module &buggy, const Module &repaired)
{
    return formatDiff(diffLines(print(buggy), print(repaired)));
}

} // namespace rtlrepair::checks
