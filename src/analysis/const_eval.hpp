/**
 * @file
 * Compile-time constant evaluation of AST expressions.
 *
 * Used to resolve parameter values, declaration ranges, replication
 * counts, and for-loop bounds during elaboration.
 */
#ifndef RTLREPAIR_ANALYSIS_CONST_EVAL_HPP
#define RTLREPAIR_ANALYSIS_CONST_EVAL_HPP

#include <map>
#include <optional>
#include <string>

#include "bv/value.hpp"
#include "verilog/ast.hpp"

namespace rtlrepair::analysis {

/** Environment of named compile-time constants (parameters, genvars). */
using ConstEnv = std::map<std::string, bv::Value>;

/**
 * Evaluate @p expr as a constant under @p env.
 * @return the value, or std::nullopt if the expression references
 *         non-constant state.
 * @throws FatalError on malformed constant arithmetic (e.g. a
 *         replication with unknown count).
 */
std::optional<bv::Value> tryConstEval(const verilog::Expr &expr,
                                      const ConstEnv &env);

/** Like tryConstEval but throws FatalError if non-constant. */
bv::Value constEval(const verilog::Expr &expr, const ConstEnv &env);

/** Evaluate to a plain int64 (for ranges and loop bounds). */
int64_t constEvalInt(const verilog::Expr &expr, const ConstEnv &env);

} // namespace rtlrepair::analysis

#endif // RTLREPAIR_ANALYSIS_CONST_EVAL_HPP
