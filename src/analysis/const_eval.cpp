#include "analysis/const_eval.hpp"

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace rtlrepair::analysis {

using namespace verilog;
using bv::Value;

namespace {

/** Extend both values to a common width. */
void
harmonize(Value &a, Value &b)
{
    uint32_t w = std::max(a.width(), b.width());
    if (a.width() < w)
        a = a.zext(w);
    if (b.width() < w)
        b = b.zext(w);
}

std::optional<Value>
evalBinary(BinaryOp op, Value lhs, Value rhs)
{
    switch (op) {
      case BinaryOp::Shl:
        return lhs.shl(rhs.zext(std::max(rhs.width(), lhs.width()))
                           .slice(lhs.width() - 1, 0));
      case BinaryOp::Shr:
        return lhs.lshr(rhs.zext(std::max(rhs.width(), lhs.width()))
                            .slice(lhs.width() - 1, 0));
      case BinaryOp::AShr:
        return lhs.ashr(rhs.zext(std::max(rhs.width(), lhs.width()))
                            .slice(lhs.width() - 1, 0));
      default:
        break;
    }
    harmonize(lhs, rhs);
    switch (op) {
      case BinaryOp::Add: return lhs + rhs;
      case BinaryOp::Sub: return lhs - rhs;
      case BinaryOp::Mul: return lhs * rhs;
      case BinaryOp::Div: return lhs.udiv(rhs);
      case BinaryOp::Mod: return lhs.urem(rhs);
      case BinaryOp::BitAnd: return lhs & rhs;
      case BinaryOp::BitOr: return lhs | rhs;
      case BinaryOp::BitXor: return lhs ^ rhs;
      case BinaryOp::BitXnor: return ~(lhs ^ rhs);
      case BinaryOp::LogicAnd: return lhs.redOr() & rhs.redOr();
      case BinaryOp::LogicOr: return lhs.redOr() | rhs.redOr();
      case BinaryOp::Lt: return lhs.ult(rhs);
      case BinaryOp::Le: return lhs.ule(rhs);
      case BinaryOp::Gt: return rhs.ult(lhs);
      case BinaryOp::Ge: return rhs.ule(lhs);
      case BinaryOp::Eq: return lhs.eq(rhs);
      case BinaryOp::Ne: return lhs.ne(rhs);
      case BinaryOp::CaseEq: return lhs.caseEq(rhs);
      case BinaryOp::CaseNe: {
        Value eq = lhs.caseEq(rhs);
        return ~eq;
      }
      default:
        return std::nullopt;
    }
}

} // namespace

std::optional<Value>
tryConstEval(const Expr &expr, const ConstEnv &env)
{
    switch (expr.kind) {
      case Expr::Kind::Literal:
        return static_cast<const LiteralExpr &>(expr).value;
      case Expr::Kind::Ident: {
        auto it = env.find(static_cast<const IdentExpr &>(expr).name);
        if (it == env.end())
            return std::nullopt;
        return it->second;
      }
      case Expr::Kind::Unary: {
        const auto &u = static_cast<const UnaryExpr &>(expr);
        auto v = tryConstEval(*u.operand, env);
        if (!v)
            return std::nullopt;
        switch (u.op) {
          case UnaryOp::BitNot: return ~*v;
          case UnaryOp::LogicNot: return ~v->redOr();
          case UnaryOp::Minus: return v->negate();
          case UnaryOp::Plus: return v;
          case UnaryOp::RedAnd: return v->redAnd();
          case UnaryOp::RedOr: return v->redOr();
          case UnaryOp::RedXor: return v->redXor();
          case UnaryOp::RedNand: return ~v->redAnd();
          case UnaryOp::RedNor: return ~v->redOr();
          case UnaryOp::RedXnor: return ~v->redXor();
        }
        return std::nullopt;
      }
      case Expr::Kind::Binary: {
        const auto &b = static_cast<const BinaryExpr &>(expr);
        auto lhs = tryConstEval(*b.lhs, env);
        auto rhs = tryConstEval(*b.rhs, env);
        if (!lhs || !rhs)
            return std::nullopt;
        return evalBinary(b.op, std::move(*lhs), std::move(*rhs));
      }
      case Expr::Kind::Ternary: {
        const auto &t = static_cast<const TernaryExpr &>(expr);
        auto cond = tryConstEval(*t.cond, env);
        if (!cond)
            return std::nullopt;
        Value truth = cond->redOr();
        if (truth.hasX())
            return std::nullopt;
        return truth.isNonZero() ? tryConstEval(*t.then_expr, env)
                                 : tryConstEval(*t.else_expr, env);
      }
      case Expr::Kind::Concat: {
        const auto &c = static_cast<const ConcatExpr &>(expr);
        std::optional<Value> acc;
        for (const auto &part : c.parts) {
            auto v = tryConstEval(*part, env);
            if (!v)
                return std::nullopt;
            acc = acc ? acc->concat(*v) : *v;
        }
        return acc;
      }
      case Expr::Kind::Repl: {
        const auto &r = static_cast<const ReplExpr &>(expr);
        auto count = tryConstEval(*r.count, env);
        auto inner = tryConstEval(*r.inner, env);
        if (!count || !inner)
            return std::nullopt;
        if (count->hasX())
            fatal("replication count is unknown");
        return inner->replicate(
            static_cast<uint32_t>(count->toUint64()));
      }
      case Expr::Kind::Index: {
        const auto &i = static_cast<const IndexExpr &>(expr);
        auto base = tryConstEval(*i.base, env);
        auto index = tryConstEval(*i.index, env);
        if (!base || !index || index->hasX())
            return std::nullopt;
        uint64_t bit = index->toUint64();
        if (bit >= base->width())
            return Value::allX(1);
        return base->slice(static_cast<uint32_t>(bit),
                           static_cast<uint32_t>(bit));
      }
      case Expr::Kind::RangeSelect: {
        const auto &r = static_cast<const RangeSelectExpr &>(expr);
        auto base = tryConstEval(*r.base, env);
        auto msb = tryConstEval(*r.msb, env);
        auto lsb = tryConstEval(*r.lsb, env);
        if (!base || !msb || !lsb || msb->hasX() || lsb->hasX())
            return std::nullopt;
        uint64_t hi = msb->toUint64(), lo = lsb->toUint64();
        if (hi < lo || hi >= base->width())
            return std::nullopt;
        return base->slice(static_cast<uint32_t>(hi),
                           static_cast<uint32_t>(lo));
      }
      case Expr::Kind::Call:
        // Function calls are inlined during lowering; before that
        // they are never compile-time constants.
        return std::nullopt;
    }
    return std::nullopt;
}

Value
constEval(const Expr &expr, const ConstEnv &env)
{
    auto v = tryConstEval(expr, env);
    if (!v)
        fatal("expression is not a compile-time constant");
    return *v;
}

int64_t
constEvalInt(const Expr &expr, const ConstEnv &env)
{
    Value v = constEval(expr, env);
    if (v.hasX())
        fatal("constant contains X bits where an integer is required");
    uint64_t raw = v.width() <= 64
                       ? v.toUint64()
                       : v.slice(63, 0).toUint64();
    return static_cast<int64_t>(raw);
}

} // namespace rtlrepair::analysis
