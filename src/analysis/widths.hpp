/**
 * @file
 * Symbol table and expression width inference.
 *
 * Implements a pragmatic subset of the Verilog self-determined width
 * rules: arithmetic/bitwise operators take the maximum operand width,
 * shifts take the left operand's width, comparisons and reductions are
 * one bit, concatenations sum their parts.  Context extension (e.g.
 * widening the RHS of an assignment) is applied by the elaborator.
 */
#ifndef RTLREPAIR_ANALYSIS_WIDTHS_HPP
#define RTLREPAIR_ANALYSIS_WIDTHS_HPP

#include <cstdint>
#include <map>
#include <string>

#include "analysis/const_eval.hpp"
#include "verilog/ast.hpp"

namespace rtlrepair::analysis {

/** Declared range of a net: width plus the LSB offset for indexing. */
struct NetRange
{
    uint32_t width = 1;
    int64_t lsb = 0;
};

/** Resolved parameters and net widths of one module. */
class SymbolTable
{
  public:
    /**
     * Build the table for @p module, resolving parameters in
     * declaration order.  @p overrides supplies instance parameter
     * overrides by name.
     */
    static SymbolTable build(const verilog::Module &module,
                             const ConstEnv &overrides = {});

    /** Width of net @p name; throws FatalError if undeclared. */
    uint32_t widthOf(const std::string &name) const;

    /** Full range info for net @p name. */
    const NetRange &rangeOf(const std::string &name) const;

    /** True if @p name is a declared net (not a parameter). */
    bool isNet(const std::string &name) const;

    /** Resolved compile-time constants (parameters). */
    const ConstEnv &params() const { return _params; }

    /** All declared nets. */
    const std::map<std::string, NetRange> &nets() const { return _nets; }

    /** Register an extra net (used for synthesis variables). */
    void
    addNet(const std::string &name, NetRange range)
    {
        _nets[name] = range;
    }

  private:
    ConstEnv _params;
    std::map<std::string, NetRange> _nets;
};

/** Self-determined width of @p expr. */
uint32_t exprWidth(const verilog::Expr &expr, const SymbolTable &table);

} // namespace rtlrepair::analysis

#endif // RTLREPAIR_ANALYSIS_WIDTHS_HPP
