/**
 * @file
 * Combinational dependency graph over module signals.
 *
 * The Add Guard repair template must not create combinational cycles
 * (paper Fig. 5): a candidate guard signal is only legal for a
 * combinationally-driven target if it does not close a cycle.
 * Synchronous (register) dependencies are ignored, as in the paper.
 */
#ifndef RTLREPAIR_ANALYSIS_DEPENDENCIES_HPP
#define RTLREPAIR_ANALYSIS_DEPENDENCIES_HPP

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "verilog/ast.hpp"

namespace rtlrepair::analysis {

/** Directed graph: signal -> signals it combinationally depends on. */
class DependencyGraph
{
  public:
    /** Build from continuous assigns and combinational processes. */
    static DependencyGraph build(const verilog::Module &module);

    /** Direct combinational dependencies of @p name (empty if none). */
    const std::set<std::string> &directDeps(const std::string &name) const;

    /** Transitive combinational dependencies of @p name. */
    std::set<std::string> transitiveDeps(const std::string &name) const;

    /** True if @p name is driven combinationally. */
    bool isCombDriven(const std::string &name) const;

    /**
     * Would adding the edge @p target -> @p candidate close a
     * combinational cycle?
     */
    bool wouldCreateCycle(const std::string &target,
                          const std::string &candidate) const;

    /**
     * The paper's more conservative legality rule: the candidate's
     * transitive dependencies must be a subset of the target's
     * existing transitive dependencies.
     */
    bool subsetRuleAllows(const std::string &target,
                          const std::string &candidate) const;

    /** Any existing combinational cycle, as a signal list. */
    std::optional<std::vector<std::string>> findCycle() const;

    /**
     * Record that @p target now combinationally reads @p dep (used by
     * the Add Guard template, whose selector chains add real reads of
     * every candidate — later legality checks must see those edges).
     */
    void addDependency(const std::string &target,
                       const std::string &dep);

  private:
    std::map<std::string, std::set<std::string>> _deps;
    static const std::set<std::string> _empty;
};

} // namespace rtlrepair::analysis

#endif // RTLREPAIR_ANALYSIS_DEPENDENCIES_HPP
