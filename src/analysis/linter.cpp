#include "analysis/linter.hpp"

#include <map>

#include "analysis/process_info.hpp"
#include "analysis/widths.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace rtlrepair::analysis {

using namespace verilog;

namespace {

/** All signals assigned anywhere (after unrolling). */
void
collectMayAssign(const Stmt &stmt, std::set<std::string> &out)
{
    switch (stmt.kind) {
      case Stmt::Kind::Block:
        for (const auto &s : static_cast<const BlockStmt &>(stmt).stmts)
            collectMayAssign(*s, out);
        return;
      case Stmt::Kind::If: {
        const auto &i = static_cast<const IfStmt &>(stmt);
        collectMayAssign(*i.then_stmt, out);
        if (i.else_stmt)
            collectMayAssign(*i.else_stmt, out);
        return;
      }
      case Stmt::Kind::Case: {
        const auto &c = static_cast<const CaseStmt &>(stmt);
        for (const auto &item : c.items)
            collectMayAssign(*item.body, out);
        if (c.default_body)
            collectMayAssign(*c.default_body, out);
        return;
      }
      case Stmt::Kind::Assign: {
        const auto &a = static_cast<const AssignStmt &>(stmt);
        if (a.lhs->kind == Expr::Kind::Concat) {
            for (const auto &part :
                 static_cast<const ConcatExpr &>(*a.lhs).parts) {
                out.insert(lhsBaseName(*part));
            }
        } else {
            out.insert(lhsBaseName(*a.lhs));
        }
        return;
      }
      case Stmt::Kind::For:
        collectMayAssign(*static_cast<const ForStmt &>(stmt).body,
                         out);
        return;
      case Stmt::Kind::Empty:
        return;
    }
}

/** Signals assigned on *every* path through @p stmt. */
std::set<std::string>
mustAssign(const Stmt &stmt)
{
    switch (stmt.kind) {
      case Stmt::Kind::Block: {
        std::set<std::string> out;
        for (const auto &s : static_cast<const BlockStmt &>(stmt).stmts) {
            for (auto &name : mustAssign(*s))
                out.insert(name);
        }
        return out;
      }
      case Stmt::Kind::If: {
        const auto &i = static_cast<const IfStmt &>(stmt);
        if (!i.else_stmt)
            return {};
        std::set<std::string> then_set = mustAssign(*i.then_stmt);
        std::set<std::string> else_set = mustAssign(*i.else_stmt);
        std::set<std::string> out;
        for (const auto &name : then_set) {
            if (else_set.count(name))
                out.insert(name);
        }
        return out;
      }
      case Stmt::Kind::Case: {
        const auto &c = static_cast<const CaseStmt &>(stmt);
        if (!c.default_body || c.items.empty())
            return {};  // conservatively treat as incomplete
        std::set<std::string> out = mustAssign(*c.default_body);
        for (const auto &item : c.items) {
            std::set<std::string> arm = mustAssign(*item.body);
            std::set<std::string> merged;
            for (const auto &name : out) {
                if (arm.count(name))
                    merged.insert(name);
            }
            out = std::move(merged);
        }
        return out;
      }
      case Stmt::Kind::Assign: {
        const auto &a = static_cast<const AssignStmt &>(stmt);
        // Bit/part selects only cover part of the signal; treating
        // them as full assignments here matches lint-tool behaviour.
        return {lhsBaseName(*a.lhs)};
      }
      case Stmt::Kind::For:
        // For-loops are unrolled before lint when bounds are static;
        // a raw loop is treated conservatively.
        return {};
      case Stmt::Kind::Empty:
        return {};
    }
    return {};
}

} // namespace

std::vector<Lint>
lint(const Module &module)
{
    std::vector<Lint> out;
    std::map<std::string, int> driver_count;

    SymbolTable table;
    bool have_table = true;
    try {
        table = SymbolTable::build(module);
    } catch (const FatalError &) {
        have_table = false; // lint still works without widths
    }
    (void)have_table;

    for (const auto &item : module.items) {
        if (item->kind == Item::Kind::ContAssign) {
            const auto &a = static_cast<const ContAssign &>(*item);
            ++driver_count[lhsBaseName(*a.lhs)];
            continue;
        }
        if (item->kind != Item::Kind::Always)
            continue;
        const auto &blk = static_cast<const AlwaysBlock &>(*item);
        ProcessInfo info = analyzeProcess(blk);
        for (const auto &name : info.assigned)
            ++driver_count[name];

        if (info.kind == ProcessInfo::Kind::Clocked) {
            if (info.usesBlocking()) {
                out.push_back(Lint{
                    Lint::Kind::BlockingInClockedProcess, blk.id, "",
                    format("process clocked by '%s' uses blocking "
                           "assignments",
                           info.clock.c_str())});
            }
        } else {
            if (info.usesNonBlocking()) {
                out.push_back(Lint{
                    Lint::Kind::NonBlockingInCombProcess, blk.id, "",
                    "combinational process uses non-blocking "
                    "assignments"});
            }
            // Latch check: unroll loops on a clone, then compare
            // may-assign against must-assign.
            StmtPtr body = blk.body->clone();
            try {
                unrollFors(body, table.params());
            } catch (const FatalError &) {
                // leave as-is; mustAssign treats loops conservatively
            }
            std::set<std::string> must = mustAssign(*body);
            std::set<std::string> may;
            collectMayAssign(*body, may);
            for (const auto &name : may) {
                if (!must.count(name)) {
                    out.push_back(Lint{Lint::Kind::InferredLatch, blk.id,
                                       name,
                                       format("latch inferred for '%s'",
                                              name.c_str())});
                }
            }
            // Incomplete sensitivity: only flagged for explicit
            // level-sensitive lists (not @*).
            if (!info.listed.empty()) {
                for (const auto &name : info.read) {
                    if (!info.listed.count(name) &&
                        !info.assigned.count(name)) {
                        out.push_back(Lint{
                            Lint::Kind::IncompleteSensitivity, blk.id,
                            name,
                            format("signal '%s' read but not in "
                                   "sensitivity list",
                                   name.c_str())});
                    }
                }
            }
        }
    }

    for (const auto &[name, count] : driver_count) {
        if (count > 1) {
            out.push_back(Lint{Lint::Kind::MultipleDrivers,
                               kInvalidNode, name,
                               format("signal '%s' has %d drivers",
                                      name.c_str(), count)});
        }
    }
    return out;
}

std::string
describe(const Lint &item)
{
    const char *kind = "?";
    switch (item.kind) {
      case Lint::Kind::BlockingInClockedProcess:
        kind = "blocking-in-clocked";
        break;
      case Lint::Kind::NonBlockingInCombProcess:
        kind = "nonblocking-in-comb";
        break;
      case Lint::Kind::InferredLatch:
        kind = "latch";
        break;
      case Lint::Kind::IncompleteSensitivity:
        kind = "incomplete-sensitivity";
        break;
      case Lint::Kind::MultipleDrivers:
        kind = "multiple-drivers";
        break;
    }
    return format("[%s] %s", kind, item.message.c_str());
}

} // namespace rtlrepair::analysis
