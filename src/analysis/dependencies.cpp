#include "analysis/dependencies.hpp"

#include <functional>

#include "analysis/process_info.hpp"
#include "verilog/ast_util.hpp"

namespace rtlrepair::analysis {

using namespace verilog;

const std::set<std::string> DependencyGraph::_empty;

DependencyGraph
DependencyGraph::build(const Module &module)
{
    DependencyGraph graph;
    for (const auto &item : module.items) {
        if (item->kind == Item::Kind::ContAssign) {
            const auto &a = static_cast<const ContAssign &>(*item);
            std::string target = lhsBaseName(*a.lhs);
            collectIdents(*a.rhs, graph._deps[target]);
        } else if (item->kind == Item::Kind::Always) {
            const auto &blk = static_cast<const AlwaysBlock &>(*item);
            ProcessInfo info = analyzeProcess(blk);
            if (info.kind != ProcessInfo::Kind::Combinational)
                continue;
            // Conservative: every assigned signal depends on every
            // signal read anywhere in the process (control deps
            // included), which over-approximates true dataflow.
            for (const auto &target : info.assigned) {
                auto &deps = graph._deps[target];
                for (const auto &src : info.read) {
                    if (src != target)
                        deps.insert(src);
                }
            }
        }
    }
    return graph;
}

const std::set<std::string> &
DependencyGraph::directDeps(const std::string &name) const
{
    auto it = _deps.find(name);
    return it == _deps.end() ? _empty : it->second;
}

std::set<std::string>
DependencyGraph::transitiveDeps(const std::string &name) const
{
    std::set<std::string> seen;
    std::vector<std::string> todo(directDeps(name).begin(),
                                  directDeps(name).end());
    while (!todo.empty()) {
        std::string cur = todo.back();
        todo.pop_back();
        if (!seen.insert(cur).second)
            continue;
        for (const auto &next : directDeps(cur))
            todo.push_back(next);
    }
    return seen;
}

bool
DependencyGraph::isCombDriven(const std::string &name) const
{
    return _deps.count(name) > 0;
}

bool
DependencyGraph::wouldCreateCycle(const std::string &target,
                                  const std::string &candidate) const
{
    if (target == candidate)
        return true;
    if (!isCombDriven(target))
        return false; // registers break the cycle
    std::set<std::string> reach = transitiveDeps(candidate);
    return reach.count(target) > 0;
}

bool
DependencyGraph::subsetRuleAllows(const std::string &target,
                                  const std::string &candidate) const
{
    if (!isCombDriven(target))
        return true; // synchronous dependencies are ignored
    std::set<std::string> target_deps = transitiveDeps(target);
    if (candidate != target && !target_deps.count(candidate)) {
        // Adding a brand-new leaf dependency is fine as long as the
        // candidate itself has no further combinational fan-in that
        // leaves the target's cone.
        std::set<std::string> cand_deps = transitiveDeps(candidate);
        for (const auto &dep : cand_deps) {
            if (!target_deps.count(dep) && dep != candidate)
                return false;
        }
        return !cand_deps.count(target) && candidate != target;
    }
    std::set<std::string> cand_deps = transitiveDeps(candidate);
    for (const auto &dep : cand_deps) {
        if (!target_deps.count(dep))
            return false;
    }
    return !cand_deps.count(target);
}

void
DependencyGraph::addDependency(const std::string &target,
                               const std::string &dep)
{
    if (target != dep)
        _deps[target].insert(dep);
}

std::optional<std::vector<std::string>>
DependencyGraph::findCycle() const
{
    enum class Mark { White, Grey, Black };
    std::map<std::string, Mark> marks;
    std::vector<std::string> path;
    std::optional<std::vector<std::string>> result;

    std::function<bool(const std::string &)> visit =
        [&](const std::string &node) -> bool {
        Mark &mark = marks[node];
        if (mark == Mark::Grey) {
            // Extract the cycle from the current path.
            std::vector<std::string> cycle;
            bool in_cycle = false;
            for (const auto &p : path) {
                if (p == node)
                    in_cycle = true;
                if (in_cycle)
                    cycle.push_back(p);
            }
            cycle.push_back(node);
            result = cycle;
            return true;
        }
        if (mark == Mark::Black)
            return false;
        mark = Mark::Grey;
        path.push_back(node);
        for (const auto &next : directDeps(node)) {
            if (_deps.count(next) && visit(next))
                return true;
        }
        path.pop_back();
        marks[node] = Mark::Black;
        return false;
    };

    for (const auto &[node, deps] : _deps) {
        (void)deps;
        if (visit(node))
            return result;
    }
    return std::nullopt;
}

} // namespace rtlrepair::analysis
