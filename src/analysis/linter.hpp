/**
 * @file
 * Static-analysis linter standing in for the paper's use of Verilator
 * as a lint tool (§4.1).  Detects the two issue classes that the
 * preprocessing phase repairs — wrong assignment kinds and inferred
 * latches — plus incomplete sensitivity lists and mixed assignment
 * styles, which are reported for diagnostics.
 */
#ifndef RTLREPAIR_ANALYSIS_LINTER_HPP
#define RTLREPAIR_ANALYSIS_LINTER_HPP

#include <string>
#include <vector>

#include "verilog/ast.hpp"

namespace rtlrepair::analysis {

/** One lint finding. */
struct Lint
{
    enum class Kind
    {
        /** Blocking `=` inside a clocked process. */
        BlockingInClockedProcess,
        /** Non-blocking `<=` inside a combinational process. */
        NonBlockingInCombProcess,
        /** Signal not assigned on all paths of a comb process. */
        InferredLatch,
        /** Level sensitivity list missing signals that are read. */
        IncompleteSensitivity,
        /** Signal assigned from more than one process. */
        MultipleDrivers,
    };

    Kind kind;
    verilog::NodeId process = verilog::kInvalidNode;
    std::string signal;   ///< affected signal (if applicable)
    std::string message;
};

/** Run all lint checks over @p module. */
std::vector<Lint> lint(const verilog::Module &module);

/** Human-readable one-line rendering. */
std::string describe(const Lint &lint);

} // namespace rtlrepair::analysis

#endif // RTLREPAIR_ANALYSIS_LINTER_HPP
