#include "analysis/widths.hpp"

#include <cstdlib>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace rtlrepair::analysis {

using namespace verilog;

SymbolTable
SymbolTable::build(const Module &module, const ConstEnv &overrides)
{
    SymbolTable table;
    for (const auto &item : module.items) {
        if (item->kind == Item::Kind::Param) {
            const auto &p = static_cast<const ParamDecl &>(*item);
            auto ov = overrides.find(p.name);
            if (ov != overrides.end() && !p.is_local) {
                table._params[p.name] = ov->second;
            } else {
                table._params[p.name] = constEval(*p.value, table._params);
            }
        } else if (item->kind == Item::Kind::Net) {
            const auto &n = static_cast<const NetDecl &>(*item);
            NetRange range;
            if (n.net == NetKind::Integer) {
                range.width = 32;
            } else if (n.msb) {
                int64_t msb = constEvalInt(*n.msb, table._params);
                int64_t lsb = constEvalInt(*n.lsb, table._params);
                range.width =
                    static_cast<uint32_t>(std::llabs(msb - lsb)) + 1u;
                range.lsb = std::min(msb, lsb);
            }
            table._nets[n.name] = range;
        }
    }
    return table;
}

uint32_t
SymbolTable::widthOf(const std::string &name) const
{
    return rangeOf(name).width;
}

const NetRange &
SymbolTable::rangeOf(const std::string &name) const
{
    auto it = _nets.find(name);
    if (it == _nets.end())
        fatal("reference to undeclared net: " + name);
    return it->second;
}

bool
SymbolTable::isNet(const std::string &name) const
{
    return _nets.count(name) > 0;
}

uint32_t
exprWidth(const Expr &expr, const SymbolTable &table)
{
    switch (expr.kind) {
      case Expr::Kind::Ident: {
        const auto &name = static_cast<const IdentExpr &>(expr).name;
        auto param = table.params().find(name);
        if (param != table.params().end())
            return param->second.width();
        return table.widthOf(name);
      }
      case Expr::Kind::Literal:
        return static_cast<const LiteralExpr &>(expr).value.width();
      case Expr::Kind::Unary: {
        const auto &u = static_cast<const UnaryExpr &>(expr);
        switch (u.op) {
          case UnaryOp::BitNot:
          case UnaryOp::Minus:
          case UnaryOp::Plus:
            return exprWidth(*u.operand, table);
          default:
            return 1; // reductions and logical not
        }
      }
      case Expr::Kind::Binary: {
        const auto &b = static_cast<const BinaryExpr &>(expr);
        switch (b.op) {
          case BinaryOp::Add:
          case BinaryOp::Sub:
          case BinaryOp::Mul:
          case BinaryOp::Div:
          case BinaryOp::Mod:
          case BinaryOp::BitAnd:
          case BinaryOp::BitOr:
          case BinaryOp::BitXor:
          case BinaryOp::BitXnor:
            return std::max(exprWidth(*b.lhs, table),
                            exprWidth(*b.rhs, table));
          case BinaryOp::Shl:
          case BinaryOp::Shr:
          case BinaryOp::AShr:
            return exprWidth(*b.lhs, table);
          default:
            return 1; // comparisons, logic ops
        }
      }
      case Expr::Kind::Ternary: {
        const auto &t = static_cast<const TernaryExpr &>(expr);
        return std::max(exprWidth(*t.then_expr, table),
                        exprWidth(*t.else_expr, table));
      }
      case Expr::Kind::Concat: {
        const auto &c = static_cast<const ConcatExpr &>(expr);
        uint32_t total = 0;
        for (const auto &part : c.parts)
            total += exprWidth(*part, table);
        return total;
      }
      case Expr::Kind::Repl: {
        const auto &r = static_cast<const ReplExpr &>(expr);
        int64_t count = constEvalInt(*r.count, table.params());
        check(count > 0, "non-positive replication count");
        return static_cast<uint32_t>(count) *
               exprWidth(*r.inner, table);
      }
      case Expr::Kind::Index:
        return 1;
      case Expr::Kind::RangeSelect: {
        const auto &r = static_cast<const RangeSelectExpr &>(expr);
        int64_t msb = constEvalInt(*r.msb, table.params());
        int64_t lsb = constEvalInt(*r.lsb, table.params());
        return static_cast<uint32_t>(std::llabs(msb - lsb)) + 1u;
      }
      case Expr::Kind::Call:
        fatal("function call reached width analysis: calls must be "
              "inlined by the lowering pass first");
    }
    panic("unknown expression kind in exprWidth");
}

} // namespace rtlrepair::analysis
