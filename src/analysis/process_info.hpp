/**
 * @file
 * Classification and dataflow summaries of always processes.
 *
 * The repair templates, the linter, and the elaborator all need to
 * know: is a process clocked or combinational, which signals does it
 * assign, which does it read, and which assignment kinds does it use.
 * This header also provides for-loop unrolling, shared by the linter
 * and the elaborator.
 */
#ifndef RTLREPAIR_ANALYSIS_PROCESS_INFO_HPP
#define RTLREPAIR_ANALYSIS_PROCESS_INFO_HPP

#include <set>
#include <string>
#include <vector>

#include "analysis/const_eval.hpp"
#include "verilog/ast.hpp"

namespace rtlrepair::analysis {

/** Summary of a single always block. */
struct ProcessInfo
{
    enum class Kind { Clocked, Combinational };

    const verilog::AlwaysBlock *block = nullptr;
    Kind kind = Kind::Combinational;

    /** Clock signal for clocked processes. */
    std::string clock;
    bool clock_negedge = false;
    /** All edge-sensitive signals (clock plus async set/reset). */
    std::vector<std::string> edge_signals;

    /** Signals appearing on the LHS of assignments (base names). */
    std::set<std::string> assigned;
    /** Signals read anywhere in the process. */
    std::set<std::string> read;
    /** Level-sensitive signals listed in the sensitivity list. */
    std::set<std::string> listed;

    int blocking_count = 0;
    int nonblocking_count = 0;

    bool usesBlocking() const { return blocking_count > 0; }
    bool usesNonBlocking() const { return nonblocking_count > 0; }
};

/** Analyze one always block. */
ProcessInfo analyzeProcess(const verilog::AlwaysBlock &block);

/** Analyze every always block of @p module. */
std::vector<ProcessInfo> analyzeProcesses(const verilog::Module &module);

/** Base signal name of an assignment LHS (through selects). */
std::string lhsBaseName(const verilog::Expr &lhs);

/**
 * Replace every for-loop in @p stmt by its unrolled body.  Loop
 * variables must be integers with compile-time-constant bounds; their
 * uses are substituted with per-iteration constants.  Throws
 * FatalError if a loop does not terminate within @p max_iterations.
 */
void unrollFors(verilog::StmtPtr &stmt, const ConstEnv &params,
                size_t max_iterations = 4096);

} // namespace rtlrepair::analysis

#endif // RTLREPAIR_ANALYSIS_PROCESS_INFO_HPP
