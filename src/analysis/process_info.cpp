#include "analysis/process_info.hpp"

#include "util/logging.hpp"
#include "verilog/ast_util.hpp"

namespace rtlrepair::analysis {

using namespace verilog;

std::string
lhsBaseName(const Expr &lhs)
{
    switch (lhs.kind) {
      case Expr::Kind::Ident:
        return static_cast<const IdentExpr &>(lhs).name;
      case Expr::Kind::Index:
        return lhsBaseName(*static_cast<const IndexExpr &>(lhs).base);
      case Expr::Kind::RangeSelect:
        return lhsBaseName(
            *static_cast<const RangeSelectExpr &>(lhs).base);
      default:
        fatal("unsupported assignment target expression");
    }
}

namespace {

void
scanStmt(const Stmt &stmt, ProcessInfo &info)
{
    switch (stmt.kind) {
      case Stmt::Kind::Block:
        for (const auto &s : static_cast<const BlockStmt &>(stmt).stmts)
            scanStmt(*s, info);
        return;
      case Stmt::Kind::If: {
        const auto &i = static_cast<const IfStmt &>(stmt);
        collectIdents(*i.cond, info.read);
        scanStmt(*i.then_stmt, info);
        if (i.else_stmt)
            scanStmt(*i.else_stmt, info);
        return;
      }
      case Stmt::Kind::Case: {
        const auto &c = static_cast<const CaseStmt &>(stmt);
        collectIdents(*c.subject, info.read);
        for (const auto &item : c.items) {
            for (const auto &label : item.labels)
                collectIdents(*label, info.read);
            scanStmt(*item.body, info);
        }
        if (c.default_body)
            scanStmt(*c.default_body, info);
        return;
      }
      case Stmt::Kind::Assign: {
        const auto &a = static_cast<const AssignStmt &>(stmt);
        if (a.lhs->kind == Expr::Kind::Concat) {
            for (const auto &part :
                 static_cast<const ConcatExpr &>(*a.lhs).parts) {
                info.assigned.insert(lhsBaseName(*part));
            }
        } else {
            info.assigned.insert(lhsBaseName(*a.lhs));
        }
        collectIdents(*a.rhs, info.read);
        // Index expressions on the LHS also read their index.
        if (a.lhs->kind == Expr::Kind::Index) {
            collectIdents(
                *static_cast<const IndexExpr &>(*a.lhs).index,
                info.read);
        }
        if (a.blocking)
            ++info.blocking_count;
        else
            ++info.nonblocking_count;
        return;
      }
      case Stmt::Kind::For: {
        const auto &f = static_cast<const ForStmt &>(stmt);
        collectIdents(*f.cond, info.read);
        scanStmt(*f.init, info);
        scanStmt(*f.step, info);
        scanStmt(*f.body, info);
        return;
      }
      case Stmt::Kind::Empty:
        return;
    }
}

} // namespace

ProcessInfo
analyzeProcess(const AlwaysBlock &block)
{
    ProcessInfo info;
    info.block = &block;
    bool has_edge = false;
    for (const auto &sens : block.sensitivity) {
        switch (sens.edge) {
          case SensItem::Edge::Posedge:
            has_edge = true;
            info.edge_signals.push_back(sens.signal);
            if (info.clock.empty()) {
                info.clock = sens.signal;
                info.clock_negedge = false;
            }
            break;
          case SensItem::Edge::Negedge:
            has_edge = true;
            info.edge_signals.push_back(sens.signal);
            if (info.clock.empty()) {
                info.clock = sens.signal;
                info.clock_negedge = true;
            }
            break;
          case SensItem::Edge::Level:
            info.listed.insert(sens.signal);
            break;
          case SensItem::Edge::Star:
            break;
        }
    }
    info.kind = has_edge ? ProcessInfo::Kind::Clocked
                         : ProcessInfo::Kind::Combinational;
    scanStmt(*block.body, info);
    return info;
}

std::vector<ProcessInfo>
analyzeProcesses(const Module &module)
{
    std::vector<ProcessInfo> out;
    for (const auto &item : module.items) {
        if (item->kind == Item::Kind::Always) {
            out.push_back(
                analyzeProcess(static_cast<const AlwaysBlock &>(*item)));
        }
    }
    return out;
}

namespace {

/** Substitute loop-variable uses with a constant value. */
void
substituteVar(StmtPtr &stmt, const std::string &name,
              const bv::Value &value)
{
    rewriteStmtExprs(stmt, [&](ExprPtr &e) {
        if (e->kind != Expr::Kind::Ident)
            return;
        if (static_cast<IdentExpr &>(*e).name != name)
            return;
        auto *lit = new LiteralExpr(value, true);
        lit->id = e->id;
        lit->loc = e->loc;
        e.reset(lit);
    });
}

} // namespace

namespace {

/** Recursive worker with a *shared* iteration budget: nested or
 *  duplicated loops must not multiply the cap. */
void
unrollForsBudgeted(StmtPtr &stmt, const ConstEnv &params,
                   size_t &budget)
{
    switch (stmt->kind) {
      case Stmt::Kind::Block: {
        auto &b = static_cast<BlockStmt &>(*stmt);
        for (auto &s : b.stmts)
            unrollForsBudgeted(s, params, budget);
        return;
      }
      case Stmt::Kind::If: {
        auto &i = static_cast<IfStmt &>(*stmt);
        unrollForsBudgeted(i.then_stmt, params, budget);
        if (i.else_stmt)
            unrollForsBudgeted(i.else_stmt, params, budget);
        return;
      }
      case Stmt::Kind::Case: {
        auto &c = static_cast<CaseStmt &>(*stmt);
        for (auto &item : c.items)
            unrollForsBudgeted(item.body, params, budget);
        if (c.default_body)
            unrollForsBudgeted(c.default_body, params, budget);
        return;
      }
      case Stmt::Kind::For: {
        auto &f = static_cast<ForStmt &>(*stmt);
        const auto &init = static_cast<const AssignStmt &>(*f.init);
        const auto &step = static_cast<const AssignStmt &>(*f.step);
        std::string var = lhsBaseName(*init.lhs);
        check(lhsBaseName(*step.lhs) == var,
              "for-loop step must update the loop variable");

        ConstEnv env = params;
        env[var] = constEval(*init.rhs, params);

        auto *unrolled = new BlockStmt({});
        unrolled->id = stmt->id;
        unrolled->loc = stmt->loc;
        while (true) {
            bv::Value cond = constEval(*f.cond, env);
            if (cond.hasX())
                fatal("for-loop condition evaluates to X");
            if (cond.isZero())
                break;
            if (budget == 0)
                fatal("for-loop exceeds unroll limit");
            --budget;
            StmtPtr body = f.body->clone();
            substituteVar(body, var, env[var]);
            unrollForsBudgeted(body, env, budget);
            unrolled->stmts.push_back(std::move(body));
            env[var] = constEval(*step.rhs, env);
        }
        stmt.reset(unrolled);
        return;
      }
      case Stmt::Kind::Assign:
      case Stmt::Kind::Empty:
        return;
    }
}

} // namespace

void
unrollFors(StmtPtr &stmt, const ConstEnv &params, size_t max_iterations)
{
    size_t budget = max_iterations;
    unrollForsBudgeted(stmt, params, budget);
}

} // namespace rtlrepair::analysis
