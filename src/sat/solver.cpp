#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/telemetry.hpp"

namespace rtlrepair::sat {

Solver::Solver() = default;

namespace {

inline uint64_t
xorshift(uint64_t &state)
{
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
}

} // namespace

void
Solver::setPhaseSeed(uint64_t seed)
{
    _phase_seed = seed;
    if (seed == 0) {
        for (size_t i = 0; i < _polarity.size(); ++i)
            _polarity[i] = true;  // default phase: false (sign=true)
        return;
    }
    uint64_t state = seed;
    for (size_t i = 0; i < _polarity.size(); ++i)
        _polarity[i] = (xorshift(state) & 1) != 0;
    _phase_seed = state ? state : seed;
}

Var
Solver::newVar()
{
    Var v = static_cast<Var>(_assigns.size());
    _assigns.push_back(LBool::Undef);
    bool phase = true;  // default phase: false (sign=true)
    if (_phase_seed != 0)
        phase = (xorshift(_phase_seed) & 1) != 0;
    _polarity.push_back(phase);
    _activity.push_back(0.0);
    _level.push_back(0);
    _reason.push_back(kNoReason);
    _seen.push_back(false);
    _watches.emplace_back();
    _watches.emplace_back();
    _heap_index.push_back(-1);
    _model.push_back(false);
    insertVarOrder(v);
    return v;
}

LBool
Solver::value(Lit l) const
{
    LBool v = _assigns[var(l)];
    if (v == LBool::Undef)
        return LBool::Undef;
    bool b = v == LBool::True;
    return fromBool(sign(l) ? !b : b);
}

bool
Solver::addClause(std::vector<Lit> lits)
{
    if (!_ok)
        return false;
    check(_trail_lim.empty(), "addClause above decision level 0");

    // Normalize: sort, dedup, drop false lits, detect tautology.
    std::sort(lits.begin(), lits.end(),
              [](Lit a, Lit b) { return a.x < b.x; });
    std::vector<Lit> out;
    Lit prev = kUndefLit;
    for (Lit l : lits) {
        check(var(l) >= 0 && var(l) < numVars(),
              "literal references unknown variable");
        if (value(l) == LBool::True || l == ~prev)
            return true;  // satisfied or tautological
        if (value(l) == LBool::False || l == prev)
            continue;
        out.push_back(l);
        prev = l;
    }

    if (out.empty()) {
        _ok = false;
        return false;
    }
    if (out.size() == 1) {
        uncheckedEnqueue(out[0], kNoReason);
        _ok = propagate() == kNoReason;
        return _ok;
    }

    ClauseRef cref = static_cast<ClauseRef>(_clauses.size());
    Clause clause;
    clause.lits = std::move(out);
    _clauses.push_back(std::move(clause));
    attachClause(cref);
    return true;
}

void
Solver::attachClause(ClauseRef cref)
{
    const Clause &c = _clauses[cref];
    _watches[(~c.lits[0]).x].push_back(Watcher{cref, c.lits[1]});
    _watches[(~c.lits[1]).x].push_back(Watcher{cref, c.lits[0]});
}

void
Solver::uncheckedEnqueue(Lit l, ClauseRef reason)
{
    Var v = var(l);
    _assigns[v] = fromBool(!sign(l));
    _level[v] = static_cast<int>(_trail_lim.size());
    _reason[v] = reason;
    _trail.push_back(l);
}

Solver::ClauseRef
Solver::propagate()
{
    while (_qhead < _trail.size()) {
        Lit p = _trail[_qhead++];
        ++propagations;
        auto &watchers = _watches[p.x];
        size_t keep = 0;
        for (size_t wi = 0; wi < watchers.size(); ++wi) {
            Watcher w = watchers[wi];
            if (value(w.blocker) == LBool::True) {
                watchers[keep++] = w;
                continue;
            }
            Clause &c = _clauses[w.clause];
            if (c.removed)
                continue;  // lazily dropped
            // Ensure the false literal is lits[1].
            Lit false_lit = ~p;
            if (c.lits[0] == false_lit)
                std::swap(c.lits[0], c.lits[1]);
            // First watch true?
            if (value(c.lits[0]) == LBool::True) {
                watchers[keep++] = Watcher{w.clause, c.lits[0]};
                continue;
            }
            // Look for a new watch.
            bool found = false;
            for (size_t k = 2; k < c.lits.size(); ++k) {
                if (value(c.lits[k]) != LBool::False) {
                    std::swap(c.lits[1], c.lits[k]);
                    _watches[(~c.lits[1]).x].push_back(
                        Watcher{w.clause, c.lits[0]});
                    found = true;
                    break;
                }
            }
            if (found)
                continue;
            // Unit or conflicting.
            watchers[keep++] = Watcher{w.clause, c.lits[0]};
            if (value(c.lits[0]) == LBool::False) {
                // Conflict: keep remaining watchers, then report.
                for (size_t rest = wi + 1; rest < watchers.size();
                     ++rest) {
                    watchers[keep++] = watchers[rest];
                }
                watchers.resize(keep);
                _qhead = _trail.size();
                return w.clause;
            }
            uncheckedEnqueue(c.lits[0], w.clause);
        }
        watchers.resize(keep);
    }
    return kNoReason;
}

void
Solver::analyze(ClauseRef confl, std::vector<Lit> &out_learnt,
                int &out_btlevel)
{
    int path_count = 0;
    Lit p = kUndefLit;
    out_learnt.clear();
    out_learnt.push_back(kUndefLit);  // placeholder for the UIP
    size_t index = _trail.size();

    ClauseRef reason = confl;
    do {
        check(reason != kNoReason, "conflict analysis hit a decision");
        Clause &c = _clauses[reason];
        if (c.learnt)
            claBumpActivity(c);
        size_t start = (p == kUndefLit) ? 0 : 1;
        for (size_t i = start; i < c.lits.size(); ++i) {
            Lit q = c.lits[i];
            Var v = var(q);
            if (_seen[v] || _level[v] == 0)
                continue;
            _seen[v] = true;
            varBumpActivity(v);
            if (_level[v] >= static_cast<int>(_trail_lim.size())) {
                ++path_count;
            } else {
                out_learnt.push_back(q);
            }
        }
        // Pick the next literal to expand.
        while (!_seen[var(_trail[--index])]) {}
        p = _trail[index];
        _seen[var(p)] = false;
        reason = _reason[var(p)];
        --path_count;
    } while (path_count > 0);
    out_learnt[0] = ~p;

    // Clause minimization: drop literals implied by the rest.
    _analyze_toclear.assign(out_learnt.begin(), out_learnt.end());
    uint32_t abstract_levels = 0;
    for (size_t i = 1; i < out_learnt.size(); ++i) {
        abstract_levels |=
            1u << (_level[var(out_learnt[i])] & 31);
    }
    size_t keep = 1;
    for (size_t i = 1; i < out_learnt.size(); ++i) {
        Var v = var(out_learnt[i]);
        if (_reason[v] == kNoReason ||
            !litRedundant(out_learnt[i], abstract_levels)) {
            out_learnt[keep++] = out_learnt[i];
        }
    }
    out_learnt.resize(keep);
    for (Lit l : _analyze_toclear)
        _seen[var(l)] = false;

    // Compute the backtrack level (second-highest level).
    if (out_learnt.size() == 1) {
        out_btlevel = 0;
    } else {
        size_t max_i = 1;
        for (size_t i = 2; i < out_learnt.size(); ++i) {
            if (_level[var(out_learnt[i])] >
                _level[var(out_learnt[max_i])]) {
                max_i = i;
            }
        }
        std::swap(out_learnt[1], out_learnt[max_i]);
        out_btlevel = _level[var(out_learnt[1])];
    }
}

bool
Solver::litRedundant(Lit l, uint32_t abstract_levels)
{
    _analyze_stack.clear();
    _analyze_stack.push_back(l);
    size_t top = _analyze_toclear.size();
    while (!_analyze_stack.empty()) {
        Lit cur = _analyze_stack.back();
        _analyze_stack.pop_back();
        check(_reason[var(cur)] != kNoReason, "redundancy on decision");
        const Clause &c = _clauses[_reason[var(cur)]];
        for (size_t i = 1; i < c.lits.size(); ++i) {
            Lit q = c.lits[i];
            Var v = var(q);
            if (_seen[v] || _level[v] == 0)
                continue;
            if (_reason[v] != kNoReason &&
                ((1u << (_level[v] & 31)) & abstract_levels) != 0) {
                _seen[v] = true;
                _analyze_stack.push_back(q);
                _analyze_toclear.push_back(q);
            } else {
                // Not redundant; undo marks made in this call.
                for (size_t j = top; j < _analyze_toclear.size(); ++j)
                    _seen[var(_analyze_toclear[j])] = false;
                _analyze_toclear.resize(top);
                return false;
            }
        }
    }
    return true;
}

void
Solver::analyzeFinal(Lit failing)
{
    // Final-conflict analysis: @p failing is an assumption literal
    // found False during assumption enqueueing.  Walk the implication
    // graph from ~failing back to the decisions that caused it; every
    // decision above level 0 is an earlier assumption, so the
    // collected set is an UNSAT core of the assumptions.
    _conflict.clear();
    _conflict.push_back(failing);
    if (_trail_lim.empty())
        return;  // implied at level 0: {failing} alone is a core
    _seen[var(failing)] = true;
    for (size_t i = _trail.size();
         i-- > static_cast<size_t>(_trail_lim[0]);) {
        Var v = var(_trail[i]);
        if (!_seen[v])
            continue;
        if (_reason[v] == kNoReason) {
            _conflict.push_back(_trail[i]);
        } else {
            const Clause &c = _clauses[_reason[v]];
            for (Lit q : c.lits) {
                if (var(q) != v && _level[var(q)] > 0)
                    _seen[var(q)] = true;
            }
        }
        _seen[v] = false;
    }
    _seen[var(failing)] = false;
}

void
Solver::cancelUntil(int level)
{
    if (static_cast<int>(_trail_lim.size()) <= level)
        return;
    for (size_t i = _trail.size();
         i-- > static_cast<size_t>(_trail_lim[level]);) {
        Var v = var(_trail[i]);
        _assigns[v] = LBool::Undef;
        _polarity[v] = sign(_trail[i]);
        _reason[v] = kNoReason;
        if (_heap_index[v] < 0)
            insertVarOrder(v);
    }
    _trail.resize(_trail_lim[level]);
    _trail_lim.resize(level);
    _qhead = _trail.size();
}

void
Solver::insertVarOrder(Var v)
{
    if (_heap_index[v] >= 0)
        return;
    _heap_index[v] = static_cast<int>(_heap.size());
    _heap.push_back(v);
    heapPercolateUp(_heap_index[v]);
}

void
Solver::heapPercolateUp(int pos)
{
    Var v = _heap[pos];
    while (pos > 0) {
        int parent = (pos - 1) >> 1;
        if (_activity[_heap[parent]] >= _activity[v])
            break;
        _heap[pos] = _heap[parent];
        _heap_index[_heap[pos]] = pos;
        pos = parent;
    }
    _heap[pos] = v;
    _heap_index[v] = pos;
}

void
Solver::heapPercolateDown(int pos)
{
    Var v = _heap[pos];
    int size = static_cast<int>(_heap.size());
    while (true) {
        int child = 2 * pos + 1;
        if (child >= size)
            break;
        if (child + 1 < size &&
            _activity[_heap[child + 1]] > _activity[_heap[child]]) {
            ++child;
        }
        if (_activity[_heap[child]] <= _activity[v])
            break;
        _heap[pos] = _heap[child];
        _heap_index[_heap[pos]] = pos;
        pos = child;
    }
    _heap[pos] = v;
    _heap_index[v] = pos;
}

Var
Solver::heapPop()
{
    Var top = _heap[0];
    _heap_index[top] = -1;
    _heap[0] = _heap.back();
    _heap.pop_back();
    if (!_heap.empty()) {
        _heap_index[_heap[0]] = 0;
        heapPercolateDown(0);
    }
    return top;
}

Lit
Solver::pickBranchLit()
{
    while (!heapEmpty()) {
        Var v = heapPop();
        if (_assigns[v] == LBool::Undef)
            return mkLit(v, _polarity[v]);
    }
    return kUndefLit;
}

void
Solver::varBumpActivity(Var v)
{
    _activity[v] += _var_inc;
    if (_activity[v] > 1e100) {
        for (auto &a : _activity)
            a *= 1e-100;
        _var_inc *= 1e-100;
    }
    if (_heap_index[v] >= 0)
        heapPercolateUp(_heap_index[v]);
}

void
Solver::varDecayActivity()
{
    _var_inc /= _var_decay;
}

void
Solver::claBumpActivity(Clause &c)
{
    c.activity += _cla_inc;
    if (c.activity > 1e20f) {
        for (auto &cl : _clauses) {
            if (cl.learnt)
                cl.activity *= 1e-20f;
        }
        _cla_inc *= 1e-20f;
    }
}

void
Solver::claDecayActivity()
{
    _cla_inc /= _cla_decay;
}

void
Solver::reduceDB()
{
    // Remove the less active half of the learnt clauses (keeping
    // binary clauses and current reasons).
    std::vector<float> acts;
    for (const auto &c : _clauses) {
        if (c.learnt && !c.removed && c.lits.size() > 2)
            acts.push_back(c.activity);
    }
    if (acts.size() < 2)
        return;
    std::nth_element(acts.begin(), acts.begin() + acts.size() / 2,
                     acts.end());
    float median = acts[acts.size() / 2];

    std::vector<bool> is_reason(_clauses.size(), false);
    for (Lit l : _trail) {
        if (_reason[var(l)] != kNoReason)
            is_reason[_reason[var(l)]] = true;
    }
    for (size_t i = 0; i < _clauses.size(); ++i) {
        Clause &c = _clauses[i];
        if (c.learnt && !c.removed && c.lits.size() > 2 &&
            !is_reason[i] && c.activity < median) {
            c.removed = true;
        }
    }

    // Physically compact the clause arena: long-lived incremental
    // sessions would otherwise accumulate ghost clauses that every
    // rebuildWatches() and activity rescale still iterates.  Reason
    // clauses are never marked removed (see above), so remapping the
    // surviving references keeps the trail's implication graph valid.
    std::vector<ClauseRef> remap(_clauses.size(), kNoReason);
    size_t out = 0;
    for (size_t i = 0; i < _clauses.size(); ++i) {
        if (_clauses[i].removed)
            continue;
        remap[i] = static_cast<ClauseRef>(out);
        if (out != i)
            _clauses[out] = std::move(_clauses[i]);
        ++out;
    }
    _clauses.resize(out);
    for (auto &r : _reason) {
        if (r != kNoReason)
            r = remap[r];
    }

    _num_learnt = 0;
    for (const auto &c : _clauses) {
        if (c.learnt)
            ++_num_learnt;
    }
    rebuildWatches();
}

void
Solver::rebuildWatches()
{
    for (auto &w : _watches)
        w.clear();
    for (size_t i = 0; i < _clauses.size(); ++i) {
        if (!_clauses[i].removed)
            attachClause(static_cast<ClauseRef>(i));
    }
}

double
Solver::luby(double y, int i)
{
    int size = 1, seq = 0;
    while (size < i + 1) {
        ++seq;
        size = 2 * size + 1;
    }
    while (size - 1 != i) {
        size = (size - 1) >> 1;
        --seq;
        i = i % size;
    }
    return std::pow(y, seq);
}

LBool
Solver::solve(const std::vector<Lit> &assumptions,
              const Deadline *deadline)
{
    telemetry::Span span("sat.solve");
    ++solve_calls;
    _conflict.clear();
    if (!_ok)
        return LBool::False;  // empty core: UNSAT without assumptions
    check(_trail_lim.empty(), "solve() while not at level 0");

    int restart_count = 0;
    uint64_t conflict_budget =
        static_cast<uint64_t>(luby(2.0, restart_count) * 100.0);
    uint64_t conflicts_here = 0;
    std::vector<Lit> learnt;
    int btlevel = 0;

    while (true) {
        ClauseRef confl = propagate();
        if (confl != kNoReason) {
            ++conflicts;
            ++conflicts_here;
            if (_trail_lim.empty()) {
                _ok = false;
                return LBool::False;
            }
            analyze(confl, learnt, btlevel);
            cancelUntil(btlevel);
            if (learnt.size() == 1) {
                uncheckedEnqueue(learnt[0], kNoReason);
            } else {
                ClauseRef cref =
                    static_cast<ClauseRef>(_clauses.size());
                Clause clause;
                clause.learnt = true;
                clause.lits = learnt;
                _clauses.push_back(std::move(clause));
                claBumpActivity(_clauses.back());
                attachClause(cref);
                uncheckedEnqueue(learnt[0], cref);
                ++_num_learnt;
                if (_num_learnt > learnt_peak)
                    learnt_peak = _num_learnt;
            }
            varDecayActivity();
            claDecayActivity();
            // The conflict path continues without reaching the check
            // below; poll every 128 conflicts so a cancelled or timed
            // out solve stops even when propagation conflicts
            // continuously (first-success portfolio cancellation).
            if ((conflicts_here & 127u) == 0 && deadline &&
                deadline->expired()) {
                cancelUntil(0);
                return LBool::Undef;
            }
            continue;
        }

        if (deadline && deadline->expired()) {
            cancelUntil(0);
            return LBool::Undef;
        }
        if (conflicts_here >= conflict_budget) {
            // Restart.
            ++restarts;
            ++restart_count;
            conflicts_here = 0;
            conflict_budget = static_cast<uint64_t>(
                luby(2.0, restart_count) * 100.0);
            cancelUntil(0);
            continue;
        }
        if (_num_learnt > _learnt_limit) {
            reduceDB();
            _learnt_limit = _learnt_limit * 11 / 10;
        }

        // Assumptions, then a decision.
        Lit next = kUndefLit;
        while (_trail_lim.size() < assumptions.size()) {
            Lit a = assumptions[_trail_lim.size()];
            if (value(a) == LBool::True) {
                // Already satisfied; open an empty decision level.
                _trail_lim.push_back(static_cast<int>(_trail.size()));
            } else if (value(a) == LBool::False) {
                // UNSAT under assumptions: extract the failed
                // assumption core before unwinding the trail.
                analyzeFinal(a);
                cancelUntil(0);
                return LBool::False;
            } else {
                next = a;
                break;
            }
        }
        if (next == kUndefLit) {
            ++decisions;
            next = pickBranchLit();
            if (next == kUndefLit) {
                // Model found.
                for (Var v = 0; v < numVars(); ++v)
                    _model[v] = _assigns[v] == LBool::True;
                cancelUntil(0);
                return LBool::True;
            }
        }
        _trail_lim.push_back(static_cast<int>(_trail.size()));
        uncheckedEnqueue(next, kNoReason);
    }
}

bool
Solver::modelValue(Var v) const
{
    return _model[v];
}

} // namespace rtlrepair::sat
