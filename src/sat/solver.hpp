/**
 * @file
 * CDCL SAT solver with assumption-based incremental solving.
 *
 * This is the reproduction's solving core, standing in for bitwuzla's
 * internal SAT engine.  Features: two-watched-literal propagation,
 * first-UIP conflict analysis with clause minimization, VSIDS
 * activities, phase saving, Luby restarts, and learnt-clause database
 * reduction.  solve(assumptions) makes the minimality search of paper
 * §4.3 (successively tightening the Σφ bound) incremental: learnt
 * clauses persist across calls.
 */
#ifndef RTLREPAIR_SAT_SOLVER_HPP
#define RTLREPAIR_SAT_SOLVER_HPP

#include <cstdint>
#include <vector>

#include "util/stopwatch.hpp"

namespace rtlrepair::sat {

using Var = int32_t;

/** Literal: variable with sign, encoded as 2*var + sign. */
struct Lit
{
    int32_t x = -2;

    bool operator==(const Lit &o) const { return x == o.x; }
    bool operator!=(const Lit &o) const { return x != o.x; }
};

inline Lit
mkLit(Var v, bool negative = false)
{
    return Lit{2 * v + (negative ? 1 : 0)};
}

inline Lit operator~(Lit l) { return Lit{l.x ^ 1}; }
inline Var var(Lit l) { return l.x >> 1; }
inline bool sign(Lit l) { return l.x & 1; }
constexpr Lit kUndefLit{-2};

/** Three-valued result / assignment. */
enum class LBool : uint8_t { False = 0, True = 1, Undef = 2 };

inline LBool
fromBool(bool b)
{
    return b ? LBool::True : LBool::False;
}

/** CDCL solver. */
class Solver
{
  public:
    Solver();

    /** Allocate a fresh variable. */
    Var newVar();

    /**
     * Reseed the decision heuristic: scrambles the saved phases of
     * existing variables and the default phase of future ones with a
     * deterministic xorshift stream.  Used by the repair engine's
     * degradation ladder to retry a faulted window solve on a
     * different search trajectory; 0 restores the default phases.
     */
    void setPhaseSeed(uint64_t seed);

    int numVars() const { return static_cast<int>(_assigns.size()); }

    /**
     * Add a clause.  Returns false if the formula is already
     * unsatisfiable at level 0.
     */
    bool addClause(std::vector<Lit> lits);
    bool addClause(Lit a) { return addClause(std::vector<Lit>{a}); }
    bool addClause(Lit a, Lit b)
    {
        return addClause(std::vector<Lit>{a, b});
    }
    bool addClause(Lit a, Lit b, Lit c)
    {
        return addClause(std::vector<Lit>{a, b, c});
    }

    /**
     * Solve under @p assumptions.  Returns Undef if @p deadline
     * expires first.  After True, the model is available via
     * modelValue(); after False, conflictCore() holds an UNSAT core
     * of the assumptions.
     */
    LBool solve(const std::vector<Lit> &assumptions = {},
                const Deadline *deadline = nullptr);

    /**
     * After solve() returns False: a subset of the assumption
     * literals whose conjunction is inconsistent with the clause
     * database (final-conflict analysis a la MiniSat analyzeFinal).
     * Empty when the formula is unsatisfiable on its own — any
     * assumption set fails.  The incremental repair engine reads this
     * to decide whether an UNSAT window can ever be rescued by
     * growing the window (the anchor assumption is in the core) or is
     * dead for good (it is not).
     */
    const std::vector<Lit> &conflictCore() const { return _conflict; }

    /** Value of @p v in the last model. */
    bool modelValue(Var v) const;

    /** True when addClause derived level-0 unsatisfiability. */
    bool inConflict() const { return !_ok; }

    /** @name Statistics @{ */
    uint64_t conflicts = 0;
    uint64_t decisions = 0;
    uint64_t propagations = 0;
    uint64_t restarts = 0;
    /** High-water mark of the learnt-clause database. */
    uint64_t learnt_peak = 0;
    /** Number of solve() invocations. */
    uint64_t solve_calls = 0;
    /** @} */

    /** Live learnt clauses currently in the database. */
    size_t numLearnt() const { return _num_learnt; }

  private:
    struct Clause
    {
        float activity = 0.0f;
        bool learnt = false;
        bool removed = false;
        std::vector<Lit> lits;
    };
    using ClauseRef = uint32_t;
    static constexpr ClauseRef kNoReason = 0xffffffffu;

    struct Watcher
    {
        ClauseRef clause;
        Lit blocker;
    };

    LBool value(Lit l) const;
    LBool value(Var v) const { return _assigns[v]; }

    void analyzeFinal(Lit failing);

    void attachClause(ClauseRef cref);
    void uncheckedEnqueue(Lit l, ClauseRef reason);
    ClauseRef propagate();
    void analyze(ClauseRef confl, std::vector<Lit> &out_learnt,
                 int &out_btlevel);
    bool litRedundant(Lit l, uint32_t abstract_levels);
    void cancelUntil(int level);
    Lit pickBranchLit();
    void varBumpActivity(Var v);
    void varDecayActivity();
    void claBumpActivity(Clause &c);
    void claDecayActivity();
    void reduceDB();
    void rebuildWatches();
    void insertVarOrder(Var v);
    static double luby(double y, int i);

    // Heap helpers (binary max-heap on activity).
    void heapPercolateUp(int pos);
    void heapPercolateDown(int pos);
    bool heapEmpty() const { return _heap.empty(); }
    Var heapPop();

    bool _ok = true;
    std::vector<Clause> _clauses;
    std::vector<std::vector<Watcher>> _watches;  ///< indexed by lit.x
    std::vector<LBool> _assigns;
    std::vector<bool> _polarity;       ///< phase saving
    std::vector<double> _activity;
    std::vector<int> _level;
    std::vector<ClauseRef> _reason;
    std::vector<Lit> _trail;
    std::vector<int> _trail_lim;
    size_t _qhead = 0;

    std::vector<Var> _heap;
    std::vector<int> _heap_index;  ///< var -> heap pos or -1

    std::vector<bool> _seen;
    std::vector<Lit> _analyze_stack;
    std::vector<Lit> _analyze_toclear;

    std::vector<bool> _model;
    std::vector<Lit> _conflict;  ///< assumption core after UNSAT

    uint64_t _phase_seed = 0;  ///< xorshift state; 0 = default phases
    size_t _num_learnt = 0;
    double _var_inc = 1.0;
    double _var_decay = 0.95;
    float _cla_inc = 1.0f;
    float _cla_decay = 0.999f;
    uint64_t _learnt_limit = 4000;
};

} // namespace rtlrepair::sat

#endif // RTLREPAIR_SAT_SOLVER_HPP
