/**
 * @file
 * FNV-1a 64-bit hashing, the digest used throughout the tool to key
 * content-addressed state: the golden-trace regression table, the
 * service layer's cross-job elaboration cache, and idempotent default
 * job ids all hash with the same function so their keys agree.
 */
#ifndef RTLREPAIR_UTIL_DIGEST_HPP
#define RTLREPAIR_UTIL_DIGEST_HPP

#include <cstdint>
#include <string_view>

namespace rtlrepair {

constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

/** Fold @p text into a running FNV-1a 64 hash @p h. */
constexpr uint64_t
fnv1a64(std::string_view text, uint64_t h = kFnvOffsetBasis)
{
    for (char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
    return h;
}

} // namespace rtlrepair

#endif // RTLREPAIR_UTIL_DIGEST_HPP
