/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * All randomized components (X-value randomization per paper §4.3,
 * stimulus generation, the genetic baseline) draw from an explicitly
 * seeded Rng so that every experiment in this repository is exactly
 * reproducible.
 */
#ifndef RTLREPAIR_UTIL_RNG_HPP
#define RTLREPAIR_UTIL_RNG_HPP

#include <cstdint>

namespace rtlrepair {

/** xoshiro256** PRNG; small, fast, and good enough for simulation. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x243f6a8885a308d3ull) { reseed(seed); }

    /** Re-initialize the state from @p seed via splitmix64. */
    void reseed(uint64_t seed);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform value in [0, bound). @p bound must be non-zero. */
    uint64_t below(uint64_t bound);

    /** Uniform boolean with probability @p p of being true. */
    bool chance(double p);

  private:
    uint64_t _s[4];
};

} // namespace rtlrepair

#endif // RTLREPAIR_UTIL_RNG_HPP
