/**
 * @file
 * Lightweight logging and error-reporting helpers.
 *
 * Modeled on the gem5 split between @c panic (internal invariant
 * violations) and @c fatal (user-facing errors such as malformed input
 * Verilog); both throw typed exceptions so library users can recover.
 */
#ifndef RTLREPAIR_UTIL_LOGGING_HPP
#define RTLREPAIR_UTIL_LOGGING_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace rtlrepair {

/** Error caused by invalid user input (unparseable Verilog, bad trace…). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Error caused by an internal invariant violation (a tool bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Severity for diagnostic messages. */
enum class LogLevel { Debug, Info, Warn, Error };

/** Global minimum level below which log messages are dropped. */
LogLevel logLevel();

/** Set the global minimum log level. */
void setLogLevel(LogLevel level);

/** Emit a diagnostic line to stderr if @p level passes the filter. */
void logMessage(LogLevel level, const std::string &msg);

/** Throw a FatalError with the given message. */
[[noreturn]] void fatal(const std::string &msg);

/** Throw a PanicError with the given message. */
[[noreturn]] void panic(const std::string &msg);

/** Panic unless @p cond holds. */
inline void
check(bool cond, const std::string &msg)
{
    if (!cond)
        panic(msg);
}

/** Literal-message overload: the std::string is only materialized on
 *  the failure path, so hot loops can assert without allocating. */
inline void
check(bool cond, const char *msg)
{
    if (!cond)
        panic(msg);
}

} // namespace rtlrepair

#endif // RTLREPAIR_UTIL_LOGGING_HPP
