#include "util/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>

#include "util/strings.hpp"

namespace rtlrepair::telemetry {

namespace {

std::atomic<bool> g_enabled{false};

/** All registered metrics.  Static-init Counters/Gauges register raw
 *  pointers; dynamically named ones are owned by the registry.  The
 *  registry is a function-local static so registration works from any
 *  translation unit's static initializers. */
struct Registry
{
    /** Recursive: creating a registry-owned metric registers it while
     *  the lookup in counter()/gauge() still holds the lock. */
    std::recursive_mutex mutex;
    std::vector<Counter *> counters;
    std::vector<Gauge *> gauges;
    std::map<std::string, std::unique_ptr<Counter>> owned_counters;
    std::map<std::string, std::unique_ptr<Gauge>> owned_gauges;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

void
registerCounter(Counter *c)
{
    Registry &r = registry();
    std::lock_guard<std::recursive_mutex> lock(r.mutex);
    r.counters.push_back(c);
}

void
registerGauge(Gauge *g)
{
    Registry &r = registry();
    std::lock_guard<std::recursive_mutex> lock(r.mutex);
    r.gauges.push_back(g);
}

/** Fixed-capacity overwrite-oldest event ring. */
struct EventRing
{
    std::mutex mutex;
    std::vector<SpanEvent> slots;
    size_t capacity = 1 << 16;
    size_t head = 0;   ///< next write position
    size_t count = 0;  ///< live events
    uint64_t dropped = 0;
};

EventRing &
ring()
{
    static EventRing r;
    return r;
}

void
pushEvent(SpanEvent &&ev)
{
    EventRing &r = ring();
    std::lock_guard<std::mutex> lock(r.mutex);
    if (r.slots.size() < r.capacity)
        r.slots.resize(r.capacity);
    if (r.count == r.capacity)
        ++r.dropped;
    else
        ++r.count;
    r.slots[r.head] = std::move(ev);
    r.head = (r.head + 1) % r.capacity;
}

std::chrono::steady_clock::time_point
processStart()
{
    static const auto start = std::chrono::steady_clock::now();
    return start;
}

// Touch the start point during static init so nowUs() is relative to
// (approximately) process start even if telemetry wakes up late.
const auto g_start_anchor = processStart();

std::atomic<uint64_t> g_next_span_id{1};
std::atomic<uint32_t> g_next_thread_id{1};

thread_local uint64_t t_current_span = 0;

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

/** Per-span-name aggregate for the metrics summary. */
struct SpanAgg
{
    uint64_t count = 0;
    uint64_t total_us = 0;
};

std::map<std::string, SpanAgg>
aggregateSpans(const std::vector<SpanEvent> &evs)
{
    std::map<std::string, SpanAgg> agg;
    for (const auto &e : evs) {
        SpanAgg &a = agg[e.name];
        ++a.count;
        a.total_us += e.dur_us;
    }
    return agg;
}

void
writeMetricGroup(std::ostream &os, const char *label, MetricKind kind,
                 bool &first_group)
{
    auto cs = counterValues(kind);
    auto gs = gaugeValues(kind);
    if (!first_group)
        os << ",\n";
    first_group = false;
    os << "  \"" << label << "\": {";
    bool first = true;
    for (const auto &[name, value] : cs) {
        if (value == 0)
            continue;
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": " << value;
        first = false;
    }
    for (const auto &[name, value] : gs) {
        if (value == 0)
            continue;
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": " << value;
        first = false;
    }
    os << (first ? "}" : "\n  }");
}

} // namespace

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

void
reset()
{
    Registry &r = registry();
    {
        std::lock_guard<std::recursive_mutex> lock(r.mutex);
        for (Counter *c : r.counters)
            c->clear();
        for (Gauge *g : r.gauges)
            g->clear();
    }
    EventRing &er = ring();
    std::lock_guard<std::mutex> lock(er.mutex);
    er.head = 0;
    er.count = 0;
    er.dropped = 0;
}

uint64_t
nowUs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - processStart())
            .count());
}

uint32_t
threadId()
{
    thread_local uint32_t id =
        g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
    return id;
}

Counter::Counter(std::string name, MetricKind kind)
    : _name(std::move(name)), _kind(kind)
{
    registerCounter(this);
}

Gauge::Gauge(std::string name, MetricKind kind)
    : _name(std::move(name)), _kind(kind)
{
    registerGauge(this);
}

Counter &
counter(const std::string &name, MetricKind kind)
{
    Registry &r = registry();
    std::lock_guard<std::recursive_mutex> lock(r.mutex);
    auto it = r.owned_counters.find(name);
    if (it == r.owned_counters.end()) {
        auto owned = std::unique_ptr<Counter>(new Counter(name, kind));
        it = r.owned_counters.emplace(name, std::move(owned)).first;
    }
    return *it->second;
}

Gauge &
gauge(const std::string &name, MetricKind kind)
{
    Registry &r = registry();
    std::lock_guard<std::recursive_mutex> lock(r.mutex);
    auto it = r.owned_gauges.find(name);
    if (it == r.owned_gauges.end()) {
        auto owned = std::unique_ptr<Gauge>(new Gauge(name, kind));
        it = r.owned_gauges.emplace(name, std::move(owned)).first;
    }
    return *it->second;
}

std::vector<std::pair<std::string, uint64_t>>
counterValues(MetricKind kind)
{
    Registry &r = registry();
    std::vector<std::pair<std::string, uint64_t>> out;
    std::lock_guard<std::recursive_mutex> lock(r.mutex);
    for (const Counter *c : r.counters) {
        if (c->kind() == kind)
            out.emplace_back(c->name(), c->value());
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::pair<std::string, uint64_t>>
gaugeValues(MetricKind kind)
{
    Registry &r = registry();
    std::vector<std::pair<std::string, uint64_t>> out;
    std::lock_guard<std::recursive_mutex> lock(r.mutex);
    for (const Gauge *g : r.gauges) {
        if (g->kind() == kind)
            out.emplace_back(g->name(), g->value());
    }
    std::sort(out.begin(), out.end());
    return out;
}

uint64_t
Span::currentId()
{
    return t_current_span;
}

void
Span::arm(const char *name)
{
    _name = name;
    _parent = t_current_span;
    _id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
    t_current_span = _id;
    _start = nowUs();
}

void
Span::finish()
{
    t_current_span = _parent;
    SpanEvent ev;
    ev.name = std::move(_name);
    ev.id = _id;
    ev.parent = _parent;
    ev.tid = threadId();
    ev.start_us = _start;
    uint64_t end = nowUs();
    ev.dur_us = end > _start ? end - _start : 0;
    pushEvent(std::move(ev));
}

SpanParent::SpanParent(uint64_t parent_id)
{
    if (!enabled())
        return;
    _saved = t_current_span;
    t_current_span = parent_id;
    _armed = true;
}

SpanParent::~SpanParent()
{
    if (_armed)
        t_current_span = _saved;
}

std::vector<SpanEvent>
events()
{
    EventRing &r = ring();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<SpanEvent> out;
    out.reserve(r.count);
    size_t start = (r.head + r.capacity - r.count) % r.capacity;
    for (size_t i = 0; i < r.count; ++i)
        out.push_back(r.slots[(start + i) % r.capacity]);
    return out;
}

uint64_t
eventsDropped()
{
    EventRing &r = ring();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.dropped;
}

void
setEventCapacity(size_t capacity)
{
    EventRing &r = ring();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.capacity = capacity > 0 ? capacity : 1;
    r.slots.clear();
    r.head = 0;
    r.count = 0;
    r.dropped = 0;
}

void
debugEmit(const SpanEvent &event)
{
    pushEvent(SpanEvent(event));
}

void
writeNdjson(std::ostream &os)
{
    for (const auto &e : events()) {
        os << "{\"type\":\"span\",\"name\":\"" << jsonEscape(e.name)
           << "\",\"id\":" << e.id << ",\"parent\":" << e.parent
           << ",\"tid\":" << e.tid << ",\"ts_us\":" << e.start_us
           << ",\"dur_us\":" << e.dur_us << "}\n";
    }
    for (MetricKind kind :
         {MetricKind::Deterministic, MetricKind::Unstable}) {
        const char *det =
            kind == MetricKind::Deterministic ? "true" : "false";
        for (const auto &[name, value] : counterValues(kind)) {
            if (value == 0)
                continue;
            os << "{\"type\":\"counter\",\"name\":\""
               << jsonEscape(name) << "\",\"value\":" << value
               << ",\"deterministic\":" << det << "}\n";
        }
        for (const auto &[name, value] : gaugeValues(kind)) {
            if (value == 0)
                continue;
            os << "{\"type\":\"gauge\",\"name\":\"" << jsonEscape(name)
               << "\",\"value\":" << value
               << ",\"deterministic\":" << det << "}\n";
        }
    }
    uint64_t dropped = eventsDropped();
    if (dropped > 0) {
        os << "{\"type\":\"meta\",\"events_dropped\":" << dropped
           << "}\n";
    }
}

void
writePerfetto(std::ostream &os)
{
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const auto &e : events()) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "{\"name\":\"" << jsonEscape(e.name)
           << "\",\"cat\":\"rtlrepair\",\"ph\":\"X\",\"ts\":"
           << e.start_us << ",\"dur\":" << e.dur_us
           << ",\"pid\":1,\"tid\":" << e.tid << ",\"args\":{\"id\":"
           << e.id << ",\"parent\":" << e.parent << "}}";
    }
    os << (first ? "]}" : "\n]}") << "\n";
}

void
writeMetricsJson(std::ostream &os)
{
    os << "{\n  \"schema\": \"rtlrepair-metrics-v1\"";
    bool first_group = false;  // schema line came first
    writeMetricGroup(os, "counters", MetricKind::Deterministic,
                     first_group);
    writeMetricGroup(os, "counters_unstable", MetricKind::Unstable,
                     first_group);
    auto agg = aggregateSpans(events());
    os << ",\n  \"spans\": {";
    bool first = true;
    for (const auto &[name, a] : agg) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": {\"count\": " << a.count
           << ", \"total_us\": " << a.total_us << "}";
        first = false;
    }
    os << (first ? "}" : "\n  }");
    os << ",\n  \"events_dropped\": " << eventsDropped() << "\n}\n";
}

std::string
metricsSummary()
{
    std::string out;
    auto emit = [&](const char *label,
                    const std::vector<std::pair<std::string, uint64_t>>
                        &values) {
        bool any = false;
        for (const auto &[name, value] : values) {
            if (value == 0)
                continue;
            if (!any)
                out += format("%s:\n", label);
            any = true;
            out += format("  %-32s %llu\n", name.c_str(),
                          static_cast<unsigned long long>(value));
        }
    };
    emit("counters", counterValues(MetricKind::Deterministic));
    emit("counters (unstable)", counterValues(MetricKind::Unstable));
    emit("gauges", gaugeValues(MetricKind::Deterministic));
    emit("gauges (unstable)", gaugeValues(MetricKind::Unstable));
    auto agg = aggregateSpans(events());
    if (!agg.empty())
        out += "spans:\n";
    for (const auto &[name, a] : agg) {
        out += format("  %-32s n=%llu total=%.3fs\n", name.c_str(),
                      static_cast<unsigned long long>(a.count),
                      static_cast<double>(a.total_us) * 1e-6);
    }
    return out;
}

} // namespace rtlrepair::telemetry
