#include "util/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace rtlrepair {

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            return out;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string_view
trim(std::string_view text)
{
    size_t begin = 0;
    while (begin < text.size() && std::isspace(
               static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    size_t end = text.size();
    while (end > begin && std::isspace(
               static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out(static_cast<size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    va_end(args);
    return out;
}

} // namespace rtlrepair
