#include "util/rng.hpp"

namespace rtlrepair {

namespace {
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}
} // namespace

void
Rng::reseed(uint64_t seed)
{
    for (auto &word : _s)
        word = splitmix64(seed);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(_s[1] * 5, 7) * 9;
    const uint64_t t = _s[1] << 17;
    _s[2] ^= _s[0];
    _s[3] ^= _s[1];
    _s[1] ^= _s[2];
    _s[0] ^= _s[3];
    _s[2] ^= t;
    _s[3] = rotl(_s[3], 45);
    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    while (true) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return static_cast<double>(next() >> 11) *
               (1.0 / 9007199254740992.0) < p;
}

} // namespace rtlrepair
