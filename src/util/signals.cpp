#include "util/signals.hpp"

#include <atomic>
#include <csignal>

namespace rtlrepair {

namespace {

std::atomic<CancelToken *> g_token{nullptr};
std::atomic<int> g_signal{0};

extern "C" void
cancelHandler(int sig)
{
    g_signal.store(sig, std::memory_order_relaxed);
    if (CancelToken *token = g_token.load(std::memory_order_relaxed))
        token->cancel();
    // A second signal means the cooperative path is stuck (or the
    // user is impatient): fall back to the default disposition so the
    // next delivery terminates the process.
    struct sigaction dfl = {};
    dfl.sa_handler = SIG_DFL;
    sigaction(sig, &dfl, nullptr);
}

} // namespace

void
installSignalCancel(CancelToken &token)
{
    g_token.store(&token, std::memory_order_relaxed);
    g_signal.store(0, std::memory_order_relaxed);
    struct sigaction sa = {};
    sa.sa_handler = cancelHandler;
    sigemptyset(&sa.sa_mask);
    // No SA_RESTART: blocking accept()/read() calls in the daemon
    // must return with EINTR so their loops observe the token.
    sa.sa_flags = 0;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

int
cancelSignal()
{
    return g_signal.load(std::memory_order_relaxed);
}

void
resetSignalCancel()
{
    struct sigaction dfl = {};
    dfl.sa_handler = SIG_DFL;
    sigaction(SIGINT, &dfl, nullptr);
    sigaction(SIGTERM, &dfl, nullptr);
    g_token.store(nullptr, std::memory_order_relaxed);
    g_signal.store(0, std::memory_order_relaxed);
}

} // namespace rtlrepair
