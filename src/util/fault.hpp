/**
 * @file
 * Deterministic fault injection for the repair pipeline.
 *
 * Every guarded stage of the repair pipeline calls faultPoint() on
 * entry.  When the injector is armed (via RTLREPAIR_FAULT or
 * `repair_cli --inject-fault`) and the site matches the configured
 * `stage:kind:nth` triple, the call raises the configured fault —
 * a FatalError, a PanicError, a std::bad_alloc, or a simulated stage
 * timeout — exactly on the nth visit to that stage and never again.
 *
 * Sites are counted per stage name under a mutex, so the nth visit is
 * the same no matter how many worker threads the portfolio uses: all
 * instrumented sites either run exactly once per repair (preprocess,
 * elaborate, per-template stages) or are placed on the deterministic
 * ladder-consume path of the engine (window solves), which steps in
 * identical order at jobs=1 and jobs=N.
 */
#ifndef RTLREPAIR_UTIL_FAULT_HPP
#define RTLREPAIR_UTIL_FAULT_HPP

#include <atomic>
#include <cstddef>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/logging.hpp"

namespace rtlrepair {

/**
 * Thrown when a stage exceeds its time slice (or when the injector
 * simulates that).  Derives from neither FatalError nor PanicError:
 * a stage timeout is not an error in the input or the tool, it is a
 * budget decision, and the guards map it to StageStatus::TimedOut.
 */
class StageTimeoutError : public std::runtime_error
{
  public:
    explicit StageTimeoutError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** The fault classes the injector can raise at a site. */
enum class FaultKind {
    Throw,    ///< FatalError (malformed-input shaped)
    Panic,    ///< PanicError (internal-invariant shaped)
    BadAlloc, ///< std::bad_alloc (memory exhaustion shaped)
    Timeout,  ///< StageTimeoutError (budget-overrun shaped)
};

/** Parse "throw" / "panic" / "alloc" / "timeout"; fatal otherwise. */
FaultKind parseFaultKind(const std::string &text);
const char *faultKindName(FaultKind kind);

/**
 * Process-global, seeded-by-configuration fault injector.
 *
 * Disarmed (the default) it costs one relaxed atomic load per site.
 * Armed, it counts visits per stage name and raises the configured
 * fault on the matching visit.
 */
class FaultInjector
{
  public:
    /** The process-wide injector; reads RTLREPAIR_FAULT on first use. */
    static FaultInjector &instance();

    /**
     * Arm with a "stage:kind:nth" spec (nth is 1-based and optional,
     * default 1), e.g. "solve:replace-literals:alloc:2".  The stage
     * name itself may contain ':'; kind and nth are parsed from the
     * end.  An empty spec disarms.  Resets all site counters.
     */
    void configure(const std::string &spec);

    /** Disarm and reset all site counters. */
    void reset();

    bool armed() const;

    /** Visit the instrumented site @p stage; raises when it matches. */
    void hit(const std::string &stage);

    /** Stage/kind the injector is armed with (for diagnostics). */
    std::string description() const;

  private:
    FaultInjector() = default;

    mutable std::mutex _mutex;
    std::atomic<bool> _armed{false};
    std::string _stage;
    FaultKind _kind = FaultKind::Throw;
    size_t _nth = 1;
    bool _fired = false;
    std::unordered_map<std::string, size_t> _counts;
};

/** Instrumented-site marker; no-op unless the injector is armed. */
inline void
faultPoint(const std::string &stage)
{
    FaultInjector &inj = FaultInjector::instance();
    if (inj.armed())
        inj.hit(stage);
}

/**
 * Peak resident set size of this process in KiB, or std::nullopt
 * when it cannot be determined (no /proc/self/status, unparsable
 * contents, and a failing getrusage fallback).  Callers must treat
 * "unknown" as unknown: a budget check that reads a missing RSS as 0
 * silently reports every run as under budget.
 */
std::optional<size_t> peakRssKb();

/**
 * Parse the VmHWM line out of /proc/self/status-shaped @p text.
 * Exposed for tests; returns std::nullopt when the field is missing
 * or malformed.
 */
std::optional<size_t> parseVmHwmKb(const std::string &text);

/** Peak RSS as a number for contexts that must print something:
 *  the value, or 0 when unknown.  Pair with peakRssKnown(). */
inline size_t
peakRssKbOrZero()
{
    return peakRssKb().value_or(0);
}

} // namespace rtlrepair

#endif // RTLREPAIR_UTIL_FAULT_HPP
