/**
 * @file
 * Signal-chained cancellation: route SIGINT/SIGTERM into a
 * CancelToken instead of letting the default disposition kill the
 * process mid-solve.
 *
 * The token is the same object the repair pipeline already polls at
 * the SAT conflict-loop boundary (via Deadline), so an interrupted
 * run unwinds cooperatively: in-flight solves observe the cancelled
 * deadline, partial results flush, and the process exits through the
 * normal status/exit-code mapping rather than through abort() or an
 * escaping exception.
 *
 * CancelToken::cancel() is a relaxed store on a lock-free
 * std::atomic<bool>, which is async-signal-safe; the handler does
 * nothing else beyond recording which signal fired.
 */
#ifndef RTLREPAIR_UTIL_SIGNALS_HPP
#define RTLREPAIR_UTIL_SIGNALS_HPP

#include "util/stopwatch.hpp"

namespace rtlrepair {

/**
 * Install SIGINT and SIGTERM handlers that cancel @p token.  The
 * token must outlive the handlers (in practice: main()-scope).  A
 * second signal while cancellation is already pending restores the
 * default disposition, so a hung run can still be killed by a second
 * Ctrl-C.
 */
void installSignalCancel(CancelToken &token);

/** Last cancellation signal received (0 = none yet). */
int cancelSignal();

/** Uninstall the handlers and forget the token (tests). */
void resetSignalCancel();

} // namespace rtlrepair

#endif // RTLREPAIR_UTIL_SIGNALS_HPP
