/**
 * @file
 * Zero-overhead-when-off telemetry: a span-based tracer plus typed
 * counters/gauges, threaded through every pipeline layer.
 *
 * Design rules:
 *  - Disabled (the default), every instrumentation point costs one
 *    relaxed atomic load and a predictable branch — Counter::add,
 *    Gauge::record and the Span constructor all check enabled()
 *    before touching anything else.  A microbench
 *    (bench/telemetry_overhead) keeps this honest.
 *  - Spans are RAII objects backed by a thread-safe ring buffer;
 *    nesting is tracked per thread, and a parent span id can be
 *    carried across the thread pool's task boundary with SpanParent,
 *    so a window solve running on a pool worker still hangs under its
 *    template task in the flame graph.
 *  - Counters declare whether they are Deterministic (identical for
 *    jobs=1 and jobs=N, because they are only bumped on the
 *    portfolio's deterministic consume/fold paths) or Unstable
 *    (wall-clock durations, speculative work, steal counts).  The
 *    exporters keep the two groups apart so CI can gate on the
 *    deterministic ones.
 *
 * Exporters: NDJSON event stream (--trace-out), Chrome/Perfetto
 * trace_event JSON (--perfetto-out, loads in ui.perfetto.dev), and a
 * compact metrics.json summary (--metrics-out) that the CLI --report
 * and bench/table5_speed both embed.
 */
#ifndef RTLREPAIR_UTIL_TELEMETRY_HPP
#define RTLREPAIR_UTIL_TELEMETRY_HPP

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace rtlrepair::telemetry {

/** Master switch; one relaxed atomic load on every hot-path check. */
bool enabled();
void setEnabled(bool on);

/** Zero all counters/gauges and drop all recorded events.  The
 *  enabled flag and the event capacity are left untouched. */
void reset();

/** Microseconds since process start (steady clock). */
uint64_t nowUs();

/** Small dense id of the calling thread (assigned on first use). */
uint32_t threadId();

/**
 * Stability class of a metric: Deterministic values are identical for
 * jobs=1 and jobs=N on the same input (bumped only on the portfolio's
 * deterministic consume/fold paths); Unstable values depend on
 * wall-clock time or scheduling (durations, speculative solves, work
 * stealing).
 */
enum class MetricKind { Deterministic, Unstable };

/**
 * Monotonic counter.  Declare at namespace scope in the instrumented
 * translation unit (registration happens at static init) or fetch a
 * dynamically named one with telemetry::counter().
 */
class Counter
{
  public:
    explicit Counter(std::string name,
                     MetricKind kind = MetricKind::Deterministic);

    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    void
    add(uint64_t n = 1)
    {
        if (enabled())
            _value.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

    void clear() { _value.store(0, std::memory_order_relaxed); }

    const std::string &name() const { return _name; }
    MetricKind kind() const { return _kind; }

  private:
    std::string _name;
    MetricKind _kind;
    std::atomic<uint64_t> _value{0};
};

/** High-water-mark gauge (record() keeps the maximum seen). */
class Gauge
{
  public:
    explicit Gauge(std::string name,
                   MetricKind kind = MetricKind::Unstable);

    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    void
    record(uint64_t v)
    {
        if (!enabled())
            return;
        uint64_t cur = _value.load(std::memory_order_relaxed);
        while (v > cur &&
               !_value.compare_exchange_weak(
                   cur, v, std::memory_order_relaxed)) {
        }
    }

    uint64_t
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

    void clear() { _value.store(0, std::memory_order_relaxed); }

    const std::string &name() const { return _name; }
    MetricKind kind() const { return _kind; }

  private:
    std::string _name;
    MetricKind _kind;
    std::atomic<uint64_t> _value{0};
};

/** Registry-owned counter/gauge for dynamically built names (e.g. the
 *  per-stage "stage.<name>.us" family).  Creates on first use. */
Counter &counter(const std::string &name,
                 MetricKind kind = MetricKind::Deterministic);
Gauge &gauge(const std::string &name,
             MetricKind kind = MetricKind::Unstable);

/** Final value snapshot of all registered counters/gauges of @p kind,
 *  sorted by name (zero-valued metrics included). */
std::vector<std::pair<std::string, uint64_t>>
counterValues(MetricKind kind);
std::vector<std::pair<std::string, uint64_t>>
gaugeValues(MetricKind kind);

/** One completed span, as stored in the ring buffer. */
struct SpanEvent
{
    std::string name;
    uint64_t id = 0;      ///< unique, nonzero
    uint64_t parent = 0;  ///< 0 = root
    uint32_t tid = 0;
    uint64_t start_us = 0;
    uint64_t dur_us = 0;
};

/**
 * RAII span.  Inert (one atomic load, nothing else) when telemetry is
 * disabled at construction; otherwise records start/end into the ring
 * buffer on destruction and maintains the per-thread nesting stack.
 */
class Span
{
  public:
    explicit Span(const char *name)
    {
        if (enabled())
            arm(name);
    }

    explicit Span(const std::string &name)
    {
        if (enabled())
            arm(name.c_str());
    }

    ~Span()
    {
        if (_id)
            finish();
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Id of the innermost live span on this thread (0 = none).
     *  Capture it before submitting a pool task and adopt it in the
     *  task with SpanParent to keep cross-thread nesting. */
    static uint64_t currentId();

  private:
    void arm(const char *name);
    void finish();

    std::string _name;
    uint64_t _id = 0;
    uint64_t _parent = 0;
    uint64_t _start = 0;
};

/** Adopt @p parent_id as the current span parent on this thread (for
 *  pool tasks); restores the previous parent on destruction. */
class SpanParent
{
  public:
    explicit SpanParent(uint64_t parent_id);
    ~SpanParent();

    SpanParent(const SpanParent &) = delete;
    SpanParent &operator=(const SpanParent &) = delete;

  private:
    uint64_t _saved = 0;
    bool _armed = false;
};

/** @name Ring buffer access @{ */
/** Snapshot of the recorded events, oldest first. */
std::vector<SpanEvent> events();
/** Events overwritten because the ring was full. */
uint64_t eventsDropped();
/** Resize the ring (drops current contents).  Test/tuning hook. */
void setEventCapacity(size_t capacity);
/** Append a pre-built event verbatim (exporter golden tests). */
void debugEmit(const SpanEvent &event);
/** @} */

/** @name Exporters @{ */
/** One JSON object per line: spans, then nonzero counters/gauges. */
void writeNdjson(std::ostream &os);
/** Chrome trace_event JSON; open at ui.perfetto.dev or
 *  chrome://tracing. */
void writePerfetto(std::ostream &os);
/** Compact machine-readable summary: counters and gauges grouped by
 *  stability class plus per-span-name aggregates.  This is the
 *  artifact the CI perf gate consumes. */
void writeMetricsJson(std::ostream &os);
/** Human-readable digest of the same summary (CLI --report). */
std::string metricsSummary();
/** @} */

} // namespace rtlrepair::telemetry

#endif // RTLREPAIR_UTIL_TELEMETRY_HPP
