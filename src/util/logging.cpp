#include "util/logging.hpp"

#include <cstdio>

namespace rtlrepair {

namespace {
LogLevel g_level = LogLevel::Warn;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}
} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(g_level))
        return;
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    throw PanicError(msg);
}

} // namespace rtlrepair
