/**
 * @file
 * Small string helpers shared across the tool.
 */
#ifndef RTLREPAIR_UTIL_STRINGS_HPP
#define RTLREPAIR_UTIL_STRINGS_HPP

#include <string>
#include <string_view>
#include <vector>

namespace rtlrepair {

/** Split @p text on @p sep, keeping empty fields. */
std::vector<std::string> split(std::string_view text, char sep);

/** Strip leading and trailing ASCII whitespace. */
std::string_view trim(std::string_view text);

/** True if @p text starts with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** Join @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace rtlrepair

#endif // RTLREPAIR_UTIL_STRINGS_HPP
