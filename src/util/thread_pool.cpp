#include "util/thread_pool.hpp"

#include "util/telemetry.hpp"

namespace rtlrepair {

namespace {

// Scheduling-dependent: which thread ends up executing a job depends
// on timing, so both land in the unstable group.  `jobs_help` is the
// steal count — jobs a blocked waiter pulled off the queue itself.
telemetry::Counter s_jobs_worker("pool.jobs_worker",
                                 telemetry::MetricKind::Unstable);
telemetry::Counter s_jobs_help("pool.jobs_help",
                               telemetry::MetricKind::Unstable);

} // namespace

ThreadPool::ThreadPool(size_t workers)
{
    _threads.reserve(workers);
    for (size_t i = 0; i < workers; ++i)
        _threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    // Drain the queue ourselves so every future becomes ready even
    // when no worker threads were spawned.
    while (help()) {
    }
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stop = true;
    }
    _cv.notify_all();
    for (auto &t : _threads)
        t.join();
}

bool
ThreadPool::help()
{
    std::function<void()> job;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (_queue.empty())
            return false;
        job = std::move(_queue.front());
        _queue.pop_front();
    }
    s_jobs_help.add(1);
    job();
    return true;
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _cv.wait(lock,
                     [this] { return _stop || !_queue.empty(); });
            if (_queue.empty())
                return;  // _stop set and nothing left to do
            job = std::move(_queue.front());
            _queue.pop_front();
        }
        s_jobs_worker.add(1);
        job();
    }
}

} // namespace rtlrepair
