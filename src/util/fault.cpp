#include "util/fault.hpp"

#include <cstdlib>
#include <new>

#include <sys/resource.h>

#include "util/strings.hpp"

namespace rtlrepair {

FaultKind
parseFaultKind(const std::string &text)
{
    if (text == "throw" || text == "fatal")
        return FaultKind::Throw;
    if (text == "panic")
        return FaultKind::Panic;
    if (text == "alloc" || text == "bad_alloc")
        return FaultKind::BadAlloc;
    if (text == "timeout")
        return FaultKind::Timeout;
    fatal("unknown fault kind '" + text +
          "' (expected throw|panic|alloc|timeout)");
}

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Throw: return "throw";
      case FaultKind::Panic: return "panic";
      case FaultKind::BadAlloc: return "alloc";
      case FaultKind::Timeout: return "timeout";
    }
    return "?";
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector inj;
    static std::once_flag env_once;
    std::call_once(env_once, [] {
        if (const char *env = std::getenv("RTLREPAIR_FAULT")) {
            if (*env)
                inj.configure(env);
        }
    });
    return inj;
}

void
FaultInjector::configure(const std::string &spec)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _counts.clear();
    _fired = false;
    if (spec.empty()) {
        _armed.store(false, std::memory_order_relaxed);
        return;
    }
    // Split from the end: stage names may themselves contain ':'.
    std::string stage = spec;
    std::string kind_text;
    size_t nth = 1;
    size_t last = stage.rfind(':');
    if (last != std::string::npos) {
        std::string tail = stage.substr(last + 1);
        bool numeric = !tail.empty();
        for (char c : tail)
            numeric = numeric && c >= '0' && c <= '9';
        if (numeric) {
            nth = static_cast<size_t>(
                std::strtoull(tail.c_str(), nullptr, 10));
            stage.resize(last);
            last = stage.rfind(':');
        }
    }
    if (last == std::string::npos)
        fatal("fault spec must be stage:kind[:nth]: " + spec);
    kind_text = stage.substr(last + 1);
    stage.resize(last);
    if (stage.empty() || nth == 0)
        fatal("malformed fault spec: " + spec);
    _stage = stage;
    _kind = parseFaultKind(kind_text);
    _nth = nth;
    _armed.store(true, std::memory_order_relaxed);
}

void
FaultInjector::reset()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _armed.store(false, std::memory_order_relaxed);
    _counts.clear();
    _fired = false;
}

bool
FaultInjector::armed() const
{
    return _armed.load(std::memory_order_relaxed);
}

std::string
FaultInjector::description() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (!_armed.load(std::memory_order_relaxed))
        return "disarmed";
    return format("%s:%s:%zu", _stage.c_str(), faultKindName(_kind),
                  _nth);
}

void
FaultInjector::hit(const std::string &stage)
{
    FaultKind kind;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (_fired || stage != _stage)
            return;
        if (++_counts[stage] != _nth)
            return;
        _fired = true;  // fire exactly once per configuration
        kind = _kind;
    }
    std::string what =
        format("injected %s fault at stage '%s'",
               faultKindName(kind), stage.c_str());
    switch (kind) {
      case FaultKind::Throw:
        throw FatalError(what);
      case FaultKind::Panic:
        throw PanicError(what);
      case FaultKind::BadAlloc:
        throw std::bad_alloc();
      case FaultKind::Timeout:
        throw StageTimeoutError(what);
    }
}

size_t
peakRssKb()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    // Linux reports ru_maxrss in KiB.
    return static_cast<size_t>(ru.ru_maxrss);
}

} // namespace rtlrepair
