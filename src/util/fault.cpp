#include "util/fault.hpp"

#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>

#include <sys/resource.h>

#include "util/strings.hpp"

namespace rtlrepair {

FaultKind
parseFaultKind(const std::string &text)
{
    if (text == "throw" || text == "fatal")
        return FaultKind::Throw;
    if (text == "panic")
        return FaultKind::Panic;
    if (text == "alloc" || text == "bad_alloc")
        return FaultKind::BadAlloc;
    if (text == "timeout")
        return FaultKind::Timeout;
    fatal("unknown fault kind '" + text +
          "' (expected throw|panic|alloc|timeout)");
}

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Throw: return "throw";
      case FaultKind::Panic: return "panic";
      case FaultKind::BadAlloc: return "alloc";
      case FaultKind::Timeout: return "timeout";
    }
    return "?";
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector inj;
    static std::once_flag env_once;
    std::call_once(env_once, [] {
        if (const char *env = std::getenv("RTLREPAIR_FAULT")) {
            if (*env)
                inj.configure(env);
        }
    });
    return inj;
}

void
FaultInjector::configure(const std::string &spec)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _counts.clear();
    _fired = false;
    if (spec.empty()) {
        _armed.store(false, std::memory_order_relaxed);
        return;
    }
    // Split from the end: stage names may themselves contain ':'.
    std::string stage = spec;
    std::string kind_text;
    size_t nth = 1;
    size_t last = stage.rfind(':');
    if (last != std::string::npos) {
        std::string tail = stage.substr(last + 1);
        bool numeric = !tail.empty();
        for (char c : tail)
            numeric = numeric && c >= '0' && c <= '9';
        if (numeric) {
            nth = static_cast<size_t>(
                std::strtoull(tail.c_str(), nullptr, 10));
            stage.resize(last);
            last = stage.rfind(':');
        }
    }
    if (last == std::string::npos)
        fatal("fault spec must be stage:kind[:nth]: " + spec);
    kind_text = stage.substr(last + 1);
    stage.resize(last);
    if (stage.empty() || nth == 0)
        fatal("malformed fault spec: " + spec);
    _stage = stage;
    _kind = parseFaultKind(kind_text);
    _nth = nth;
    _armed.store(true, std::memory_order_relaxed);
}

void
FaultInjector::reset()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _armed.store(false, std::memory_order_relaxed);
    _counts.clear();
    _fired = false;
}

bool
FaultInjector::armed() const
{
    return _armed.load(std::memory_order_relaxed);
}

std::string
FaultInjector::description() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (!_armed.load(std::memory_order_relaxed))
        return "disarmed";
    return format("%s:%s:%zu", _stage.c_str(), faultKindName(_kind),
                  _nth);
}

void
FaultInjector::hit(const std::string &stage)
{
    FaultKind kind;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (_fired || stage != _stage)
            return;
        if (++_counts[stage] != _nth)
            return;
        _fired = true;  // fire exactly once per configuration
        kind = _kind;
    }
    std::string what =
        format("injected %s fault at stage '%s'",
               faultKindName(kind), stage.c_str());
    switch (kind) {
      case FaultKind::Throw:
        throw FatalError(what);
      case FaultKind::Panic:
        throw PanicError(what);
      case FaultKind::BadAlloc:
        throw std::bad_alloc();
      case FaultKind::Timeout:
        throw StageTimeoutError(what);
    }
}

std::optional<size_t>
parseVmHwmKb(const std::string &text)
{
    size_t pos = text.find("VmHWM:");
    if (pos == std::string::npos)
        return std::nullopt;
    pos += 6;
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t'))
        ++pos;
    if (pos >= text.size() || text[pos] < '0' || text[pos] > '9')
        return std::nullopt;
    size_t kb = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
        kb = kb * 10 + static_cast<size_t>(text[pos] - '0');
        ++pos;
    }
    // The kernel always reports VmHWM in kB; anything else is a
    // format we do not understand and must not misread.
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t'))
        ++pos;
    if (text.compare(pos, 2, "kB") != 0)
        return std::nullopt;
    return kb;
}

std::optional<size_t>
peakRssKb()
{
    // Primary source: /proc/self/status VmHWM (present on Linux,
    // absent in minimal sandboxes and on other kernels).
    std::ifstream status("/proc/self/status");
    if (status) {
        std::ostringstream buf;
        buf << status.rdbuf();
        if (auto kb = parseVmHwmKb(buf.str()))
            return kb;
    }
    // Fallback: getrusage, which Linux reports in KiB.  A zero
    // ru_maxrss means the kernel did not account it — unknown, not
    // "zero bytes resident".
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0 || ru.ru_maxrss <= 0)
        return std::nullopt;
    return static_cast<size_t>(ru.ru_maxrss);
}

} // namespace rtlrepair
