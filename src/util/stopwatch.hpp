/**
 * @file
 * Wall-clock stopwatch used to enforce repair timeouts (§6.3 of the
 * paper uses 60 s for RTL-Repair and 16 h for CirFix).
 */
#ifndef RTLREPAIR_UTIL_STOPWATCH_HPP
#define RTLREPAIR_UTIL_STOPWATCH_HPP

#include <atomic>
#include <chrono>

namespace rtlrepair {

/** Monotonic stopwatch with second-granularity helpers. */
class Stopwatch
{
  public:
    Stopwatch() : _start(Clock::now()) {}

    /** Restart timing from now. */
    void reset() { _start = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - _start).count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point _start;
};

/**
 * Cooperative cancellation flag shared between a scheduler and the
 * workers it may want to stop early (first-success-wins portfolios).
 * Cheap to poll from inner solver loops.
 */
class CancelToken
{
  public:
    void cancel() { _flag.store(true, std::memory_order_relaxed); }

    bool
    cancelled() const
    {
        return _flag.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> _flag{false};
};

/**
 * Budget that components poll to honour a global timeout.
 *
 * A deadline can be derived from a parent deadline plus a CancelToken;
 * expired() then reports true as soon as either the local budget, any
 * ancestor budget, or the token trips.  This is how the parallel
 * repair portfolio stops losing candidates: every solver loop already
 * polls its Deadline, so cancellation rides the existing plumbing.
 */
class Deadline
{
  public:
    /** A deadline @p seconds from now; non-positive means unlimited. */
    explicit Deadline(double seconds = 0.0) : _limit(seconds) {}

    /** Derived deadline: expires with @p parent or when @p cancel
     *  trips (both may be null; an own budget may be added too). */
    Deadline(const Deadline *parent, const CancelToken *cancel,
             double seconds = 0.0)
        : _limit(seconds), _parent(parent), _cancel(cancel)
    {
    }

    /** True once the budget has been used up or the run is cancelled. */
    bool
    expired() const
    {
        if (_cancel && _cancel->cancelled())
            return true;
        if (_parent && _parent->expired())
            return true;
        return _limit > 0.0 && _watch.seconds() >= _limit;
    }

    /** True when expiry came from a cancel token (ours or an
     *  ancestor's), not from a time budget. */
    bool
    cancelled() const
    {
        if (_cancel && _cancel->cancelled())
            return true;
        return _parent && _parent->cancelled();
    }

    /** Seconds remaining (unlimited deadlines report a large value). */
    double
    remaining() const
    {
        double left = 1e18;
        if (_limit > 0.0) {
            left = _limit - _watch.seconds();
            left = left > 0.0 ? left : 0.0;
        }
        if (_parent) {
            double p = _parent->remaining();
            left = p < left ? p : left;
        }
        return left;
    }

    double elapsed() const { return _watch.seconds(); }

  private:
    Stopwatch _watch;
    double _limit;
    const Deadline *_parent = nullptr;
    const CancelToken *_cancel = nullptr;
};

} // namespace rtlrepair

#endif // RTLREPAIR_UTIL_STOPWATCH_HPP
