/**
 * @file
 * Wall-clock stopwatch used to enforce repair timeouts (§6.3 of the
 * paper uses 60 s for RTL-Repair and 16 h for CirFix).
 */
#ifndef RTLREPAIR_UTIL_STOPWATCH_HPP
#define RTLREPAIR_UTIL_STOPWATCH_HPP

#include <chrono>

namespace rtlrepair {

/** Monotonic stopwatch with second-granularity helpers. */
class Stopwatch
{
  public:
    Stopwatch() : _start(Clock::now()) {}

    /** Restart timing from now. */
    void reset() { _start = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - _start).count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point _start;
};

/** Budget that components poll to honour a global timeout. */
class Deadline
{
  public:
    /** A deadline @p seconds from now; non-positive means unlimited. */
    explicit Deadline(double seconds = 0.0) : _limit(seconds) {}

    /** True once the budget has been used up. */
    bool
    expired() const
    {
        return _limit > 0.0 && _watch.seconds() >= _limit;
    }

    /** Seconds remaining (unlimited deadlines report a large value). */
    double
    remaining() const
    {
        if (_limit <= 0.0)
            return 1e18;
        double left = _limit - _watch.seconds();
        return left > 0.0 ? left : 0.0;
    }

    double elapsed() const { return _watch.seconds(); }

  private:
    Stopwatch _watch;
    double _limit;
};

} // namespace rtlrepair

#endif // RTLREPAIR_UTIL_STOPWATCH_HPP
