/**
 * @file
 * Small job-queue thread pool with cooperative work stealing, used by
 * the parallel repair portfolio.
 *
 * Tasks are arbitrary callables; submit() returns a std::future for
 * the task's result.  A thread that has to wait for a future (for
 * example a template task waiting on its window solves) should wait
 * through waitCollect()/help(), which pops and runs queued jobs
 * instead of blocking — so nested fan-out (portfolio tasks that
 * themselves submit window solves) cannot deadlock the pool, and the
 * waiting thread's core keeps doing useful work.
 *
 * Long-running tasks are expected to poll a Deadline (optionally
 * derived from a CancelToken) so shutdown and first-success-wins
 * cancellation stay prompt; the pool itself never kills a thread.
 */
#ifndef RTLREPAIR_UTIL_THREAD_POOL_HPP
#define RTLREPAIR_UTIL_THREAD_POOL_HPP

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace rtlrepair {

/** Fixed-size worker pool over a FIFO job queue. */
class ThreadPool
{
  public:
    /** Spawn @p workers threads (0 is allowed: all jobs then run in
     *  whichever thread calls help()/waitCollect()). */
    explicit ThreadPool(size_t workers);

    /** Joins all workers; queued jobs are drained first (they should
     *  observe a cancelled Deadline and return quickly). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    size_t workerCount() const { return _threads.size(); }

    /** Queue @p fn; returns a future for its result. */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        {
            std::lock_guard<std::mutex> lock(_mutex);
            _queue.emplace_back([task] { (*task)(); });
        }
        _cv.notify_one();
        return fut;
    }

    /** Pop one queued job and run it in the calling thread.
     *  Returns false when the queue was empty. */
    bool help();

    /** Wait for @p fut while helping with queued jobs. */
    template <typename T>
    T
    waitCollect(std::future<T> &fut)
    {
        using namespace std::chrono_literals;
        while (fut.wait_for(0s) != std::future_status::ready) {
            if (!help())
                fut.wait_for(200us);
        }
        return fut.get();
    }

  private:
    void workerLoop();

    std::vector<std::thread> _threads;
    std::deque<std::function<void()>> _queue;
    std::mutex _mutex;
    std::condition_variable _cv;
    bool _stop = false;
};

} // namespace rtlrepair

#endif // RTLREPAIR_UTIL_THREAD_POOL_HPP
