/**
 * @file
 * The CirFix baseline: genetic generate-and-validate repair.
 *
 * Population of mutated design variants, simulation-based fitness,
 * tournament selection with elitism, single-point crossover, and a
 * wall-clock budget.  A candidate with perfect fitness on the capped
 * prefix is validated against the full testbench before being
 * declared a repair (plausibility in CirFix terms; correctness is
 * judged separately by the checks module, where this baseline tends
 * to lose — reproducing the paper's Table 4 pattern).
 */
#ifndef RTLREPAIR_CIRFIX_GENETIC_HPP
#define RTLREPAIR_CIRFIX_GENETIC_HPP

#include <memory>

#include "cirfix/fitness.hpp"
#include "util/rng.hpp"

namespace rtlrepair::cirfix {

struct CirFixConfig
{
    double timeout_seconds = 60.0;
    size_t population = 16;
    size_t tournament = 3;
    size_t elitism = 2;
    double crossover_rate = 0.4;
    /** Extra mutations stacked on a child. */
    double extra_mutation_rate = 0.3;
    size_t fitness_cycle_cap = 2000;
    uint64_t seed = 1;
};

struct CirFixOutcome
{
    enum class Status { Repaired, NoRepair, Timeout };
    Status status = Status::Timeout;
    std::unique_ptr<verilog::Module> repaired;
    double seconds = 0.0;
    int generations = 0;
    size_t evaluations = 0;
    double best_fitness = 0.0;
    std::string description;  ///< mutation lineage of the repair
};

/** Run the baseline on @p buggy against @p io. */
CirFixOutcome cirfixRepair(const verilog::Module &buggy,
                           const std::vector<const verilog::Module *>
                               &library,
                           const std::string &clock,
                           const trace::IoTrace &io,
                           const CirFixConfig &config);

} // namespace rtlrepair::cirfix

#endif // RTLREPAIR_CIRFIX_GENETIC_HPP
