/**
 * @file
 * CirFix-style fitness: the fraction of expected output values a
 * candidate matches over the testbench, computed with the
 * event-driven simulator (CirFix repairs the *simulation* — the
 * paper's critique in §6.2 — so the baseline's oracle is simulation
 * semantics, not synthesis semantics).
 */
#ifndef RTLREPAIR_CIRFIX_FITNESS_HPP
#define RTLREPAIR_CIRFIX_FITNESS_HPP

#include "trace/io_trace.hpp"
#include "verilog/ast.hpp"

namespace rtlrepair::cirfix {

/** Fitness in [0, 1]; 1.0 means every checked value matched. */
struct Fitness
{
    double score = 0.0;
    bool perfect = false;
    bool crashed = false;  ///< candidate failed to simulate
};

/**
 * Evaluate @p candidate against @p io.  At most @p max_cycles rows
 * are simulated (a fitness cap keeps generations affordable on long
 * testbenches); @c perfect is only set when the *full* prefix
 * matched.
 */
Fitness evaluateFitness(const verilog::Module &candidate,
                        const std::vector<const verilog::Module *>
                            &library,
                        const std::string &clock,
                        const trace::IoTrace &io, size_t max_cycles);

} // namespace rtlrepair::cirfix

#endif // RTLREPAIR_CIRFIX_FITNESS_HPP
