#include "cirfix/fitness.hpp"

#include "sim/event_sim.hpp"
#include "util/logging.hpp"

namespace rtlrepair::cirfix {

using bv::Value;

Fitness
evaluateFitness(const verilog::Module &candidate,
                const std::vector<const verilog::Module *> &library,
                const std::string &clock, const trace::IoTrace &io,
                size_t max_cycles)
{
    Fitness fitness;
    size_t cycles = std::min(io.length(), max_cycles);
    if (cycles == 0)
        return fitness;

    size_t checked = 0;
    size_t matched = 0;
    try {
        sim::EventSimulator sim(candidate, library, clock);
        for (size_t cycle = 0; cycle < cycles; ++cycle) {
            for (size_t i = 0; i < io.inputs.size(); ++i) {
                if (io.inputs[i].name == clock)
                    continue;
                sim.setInput(io.inputs[i].name,
                             io.input_rows[cycle][i]);
            }
            if (clock.empty())
                sim.settleOnly();
            else
                sim.step();
            if (sim.unstable()) {
                fitness.crashed = true;
                fitness.score = 0.0;
                return fitness;
            }
            for (size_t i = 0; i < io.outputs.size(); ++i) {
                const Value &expected = io.output_rows[cycle][i];
                if (expected.hasX() &&
                    expected == Value::allX(expected.width())) {
                    continue;  // fully unchecked value
                }
                ++checked;
                Value got = sim.sampledOutput(io.outputs[i].name);
                if (got.matches(expected))
                    ++matched;
            }
        }
    } catch (const FatalError &) {
        fitness.crashed = true;
        return fitness;
    } catch (const PanicError &) {
        fitness.crashed = true;
        return fitness;
    }

    fitness.score = checked == 0
                        ? 1.0
                        : static_cast<double>(matched) /
                              static_cast<double>(checked);
    fitness.perfect = matched == checked;
    return fitness;
}

} // namespace rtlrepair::cirfix
