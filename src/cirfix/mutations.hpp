/**
 * @file
 * Concrete AST mutation operators for the CirFix baseline.
 *
 * CirFix [Ahmad et al., ASPLOS'22] is a generate-and-validate tool:
 * each template application produces a single concrete change (the
 * paper contrasts this with RTL-Repair's symbolic templates).  The
 * operator set mirrors CirFix's repair templates: invert a
 * conditional, perturb a constant, swap if-branches, flip an
 * assignment kind, edit a sensitivity list, replace an operator or an
 * identifier, and delete/duplicate a statement.
 */
#ifndef RTLREPAIR_CIRFIX_MUTATIONS_HPP
#define RTLREPAIR_CIRFIX_MUTATIONS_HPP

#include <memory>
#include <string>

#include "util/rng.hpp"
#include "verilog/ast.hpp"

namespace rtlrepair::cirfix {

/**
 * Mutation operator-set versions.  Corpus entries pin the version
 * their sub-seeds were drawn under (`mutator = N`, absent = 1) so a
 * recorded bug replays exactly forever: adding an operator changes
 * the dispatch modulus and would otherwise remap every sub-seed.
 *
 *  - 1: the original 11-operator CirFix set.
 *  - 2: adds "perturb array index" and "perturb write enable" for
 *       designs with memories.
 */
constexpr int kMutatorVersion = 2;

/** Apply one random mutation to a clone of @p mod. */
std::unique_ptr<verilog::Module> mutate(const verilog::Module &mod,
                                        Rng &rng,
                                        std::string *description);

/**
 * One seeded mutation, replayable: the result is a pure function of
 * (@p mod, @p subseed).  The fuzz harness records the sub-seed list of
 * every injected bug so a failing case can be re-derived exactly and
 * minimized by dropping sub-seeds (see fuzz/fuzzer.hpp).
 */
struct MutationResult
{
    std::unique_ptr<verilog::Module> mod;
    std::string description;
    /** False when no operator applied; @c mod is an unchanged clone. */
    bool applied = false;
};

MutationResult applyMutation(const verilog::Module &mod,
                             uint64_t subseed, int version = 1);

/**
 * Single-point crossover: child takes item-level bodies from @p a up
 * to a random cut and from @p b afterwards.  Parents must stem from
 * the same original design.
 */
std::unique_ptr<verilog::Module> crossover(const verilog::Module &a,
                                           const verilog::Module &b,
                                           Rng &rng);

} // namespace rtlrepair::cirfix

#endif // RTLREPAIR_CIRFIX_MUTATIONS_HPP
