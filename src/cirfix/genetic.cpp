#include "cirfix/genetic.hpp"

#include <algorithm>

#include "cirfix/mutations.hpp"
#include "sim/event_sim.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "verilog/printer.hpp"

namespace rtlrepair::cirfix {

using verilog::Module;

namespace {

struct Individual
{
    std::unique_ptr<Module> module;
    double fitness = 0.0;
    bool perfect = false;
    std::string lineage;
};

/** Mutation lineages concatenate across generations; keep the tail. */
std::string
clampLineage(std::string lineage)
{
    constexpr size_t kMax = 160;
    if (lineage.size() > kMax)
        lineage = "..." + lineage.substr(lineage.size() - kMax);
    return lineage;
}

} // namespace

CirFixOutcome
cirfixRepair(const Module &buggy,
             const std::vector<const Module *> &library,
             const std::string &clock, const trace::IoTrace &io,
             const CirFixConfig &config)
{
    Stopwatch watch;
    Deadline deadline(config.timeout_seconds);
    Rng rng(config.seed);
    CirFixOutcome outcome;

    // Duplicate-statement mutations can snowball across generations;
    // cap individuals at a few times the original source size so the
    // population cannot grow without bound.
    const size_t size_cap = verilog::print(buggy).size() * 4 + 4096;

    auto evaluate = [&](Individual &ind) {
        Fitness f = evaluateFitness(*ind.module, library, clock, io,
                                    config.fitness_cycle_cap);
        ind.fitness = f.crashed ? 0.0 : f.score;
        ind.perfect = f.perfect && !f.crashed;
        ++outcome.evaluations;
    };

    auto fullValidate = [&](const Individual &ind) {
        return sim::eventReplay(*ind.module, library, clock, io)
            .passed;
    };

    // Seed population: the buggy design plus single mutants.
    std::vector<Individual> population;
    {
        Individual base;
        base.module = buggy.clone();
        base.lineage = "original";
        evaluate(base);
        population.push_back(std::move(base));
    }
    while (population.size() < config.population) {
        Individual ind;
        std::string desc;
        ind.module = mutate(buggy, rng, &desc);
        ind.lineage = desc;
        evaluate(ind);
        population.push_back(std::move(ind));
    }

    auto finish = [&](CirFixOutcome::Status status) {
        outcome.status = status;
        outcome.seconds = watch.seconds();
        double best = 0.0;
        for (const auto &ind : population)
            best = std::max(best, ind.fitness);
        outcome.best_fitness = std::max(outcome.best_fitness, best);
        return std::move(outcome);
    };

    auto tournamentPick = [&]() -> const Individual & {
        size_t best = rng.below(population.size());
        for (size_t i = 1; i < config.tournament; ++i) {
            size_t cand = rng.below(population.size());
            if (population[cand].fitness > population[best].fitness)
                best = cand;
        }
        return population[best];
    };

    while (!deadline.expired()) {
        ++outcome.generations;

        // Check for plausible repairs (perfect fitness on the capped
        // prefix), then validate on the full testbench.
        for (auto &ind : population) {
            if (!ind.perfect || ind.lineage == "original")
                continue;
            if (deadline.expired())
                return finish(CirFixOutcome::Status::Timeout);
            if (fullValidate(ind)) {
                outcome.repaired = ind.module->clone();
                outcome.description = ind.lineage;
                outcome.best_fitness = 1.0;
                return finish(CirFixOutcome::Status::Repaired);
            }
            ind.perfect = false;  // overfit to the prefix
            ind.fitness *= 0.99;
        }

        // Next generation.
        std::sort(population.begin(), population.end(),
                  [](const Individual &a, const Individual &b) {
                      return a.fitness > b.fitness;
                  });
        std::vector<Individual> next;
        for (size_t i = 0;
             i < config.elitism && i < population.size(); ++i) {
            Individual copy;
            copy.module = population[i].module->clone();
            copy.fitness = population[i].fitness;
            copy.perfect = population[i].perfect;
            copy.lineage = population[i].lineage;
            next.push_back(std::move(copy));
        }
        while (next.size() < config.population &&
               !deadline.expired()) {
            Individual child;
            std::string lineage;
            if (rng.chance(config.crossover_rate)) {
                const Individual &a = tournamentPick();
                const Individual &b = tournamentPick();
                child.module = crossover(*a.module, *b.module, rng);
                lineage = format("cross(%s | %s)", a.lineage.c_str(),
                                 b.lineage.c_str());
            } else {
                const Individual &parent = tournamentPick();
                child.module = parent.module->clone();
                lineage = parent.lineage;
            }
            std::string desc;
            child.module = mutate(*child.module, rng, &desc);
            lineage += "; " + desc;
            while (rng.chance(config.extra_mutation_rate)) {
                child.module = mutate(*child.module, rng, &desc);
                lineage += "; " + desc;
            }
            if (verilog::print(*child.module).size() > size_cap) {
                // Oversized individual: restart from the original.
                child.module = buggy.clone();
                lineage = "reset (size cap)";
            }
            child.lineage = clampLineage(std::move(lineage));
            evaluate(child);
            next.push_back(std::move(child));
        }
        if (next.empty())
            break;
        population = std::move(next);
    }
    return finish(CirFixOutcome::Status::Timeout);
}

} // namespace rtlrepair::cirfix
