#include "cirfix/mutations.hpp"

#include <vector>

#include "analysis/widths.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "verilog/ast_util.hpp"

namespace rtlrepair::cirfix {

using namespace verilog;
using bv::Value;

namespace {

/** Collect pointers to statement slots for structural mutations. */
void
collectStmtSlots(StmtPtr &stmt, std::vector<StmtPtr *> &out)
{
    out.push_back(&stmt);
    switch (stmt->kind) {
      case Stmt::Kind::Block:
        for (auto &s : static_cast<BlockStmt &>(*stmt).stmts)
            collectStmtSlots(s, out);
        return;
      case Stmt::Kind::If: {
        auto &i = static_cast<IfStmt &>(*stmt);
        collectStmtSlots(i.then_stmt, out);
        if (i.else_stmt)
            collectStmtSlots(i.else_stmt, out);
        return;
      }
      case Stmt::Kind::Case: {
        auto &c = static_cast<CaseStmt &>(*stmt);
        for (auto &item : c.items)
            collectStmtSlots(item.body, out);
        if (c.default_body)
            collectStmtSlots(c.default_body, out);
        return;
      }
      case Stmt::Kind::For:
        collectStmtSlots(static_cast<ForStmt &>(*stmt).body, out);
        return;
      default:
        return;
    }
}

/** All expression slots in the module (r-values and conditions). */
void
collectExprSlots(Module &mod, std::vector<ExprPtr *> &out)
{
    for (auto &item : mod.items) {
        if (item->kind == Item::Kind::ContAssign) {
            out.push_back(&static_cast<ContAssign &>(*item).rhs);
        } else if (item->kind == Item::Kind::Always) {
            std::vector<StmtPtr *> stmts;
            collectStmtSlots(static_cast<AlwaysBlock &>(*item).body,
                             stmts);
            for (StmtPtr *slot : stmts) {
                Stmt &s = **slot;
                if (s.kind == Stmt::Kind::If) {
                    out.push_back(&static_cast<IfStmt &>(s).cond);
                } else if (s.kind == Stmt::Kind::Assign) {
                    out.push_back(&static_cast<AssignStmt &>(s).rhs);
                } else if (s.kind == Stmt::Kind::Case) {
                    out.push_back(&static_cast<CaseStmt &>(s).subject);
                }
            }
        }
    }
}

/**
 * Literal expressions reachable from an expression slot, excluding
 * positions that must stay compile-time constants (part-select
 * bounds, replication counts) — mutating those would not produce a
 * legal Verilog change.
 */
void
collectLiterals(ExprPtr &expr, std::vector<LiteralExpr *> &out)
{
    switch (expr->kind) {
      case Expr::Kind::Literal:
        out.push_back(static_cast<LiteralExpr *>(expr.get()));
        return;
      case Expr::Kind::Ident:
        return;
      case Expr::Kind::Unary:
        collectLiterals(static_cast<UnaryExpr &>(*expr).operand, out);
        return;
      case Expr::Kind::Binary: {
        auto &b = static_cast<BinaryExpr &>(*expr);
        collectLiterals(b.lhs, out);
        collectLiterals(b.rhs, out);
        return;
      }
      case Expr::Kind::Ternary: {
        auto &t = static_cast<TernaryExpr &>(*expr);
        collectLiterals(t.cond, out);
        collectLiterals(t.then_expr, out);
        collectLiterals(t.else_expr, out);
        return;
      }
      case Expr::Kind::Concat:
        for (auto &p : static_cast<ConcatExpr &>(*expr).parts)
            collectLiterals(p, out);
        return;
      case Expr::Kind::Repl:
        collectLiterals(static_cast<ReplExpr &>(*expr).inner, out);
        return;
      case Expr::Kind::Index: {
        auto &i = static_cast<IndexExpr &>(*expr);
        collectLiterals(i.base, out);
        collectLiterals(i.index, out);
        return;
      }
      case Expr::Kind::RangeSelect:
        collectLiterals(static_cast<RangeSelectExpr &>(*expr).base,
                        out);
        return;
      case Expr::Kind::Call:
        for (auto &arg : static_cast<CallExpr &>(*expr).args)
            collectLiterals(arg, out);
        return;
    }
}

void
collectIdentSlots(ExprPtr &expr, std::vector<ExprPtr *> &out)
{
    switch (expr->kind) {
      case Expr::Kind::Ident:
        out.push_back(&expr);
        return;
      case Expr::Kind::Literal:
        return;
      case Expr::Kind::Unary:
        collectIdentSlots(static_cast<UnaryExpr &>(*expr).operand, out);
        return;
      case Expr::Kind::Binary: {
        auto &b = static_cast<BinaryExpr &>(*expr);
        collectIdentSlots(b.lhs, out);
        collectIdentSlots(b.rhs, out);
        return;
      }
      case Expr::Kind::Ternary: {
        auto &t = static_cast<TernaryExpr &>(*expr);
        collectIdentSlots(t.cond, out);
        collectIdentSlots(t.then_expr, out);
        collectIdentSlots(t.else_expr, out);
        return;
      }
      case Expr::Kind::Concat:
        for (auto &p : static_cast<ConcatExpr &>(*expr).parts)
            collectIdentSlots(p, out);
        return;
      case Expr::Kind::Repl:
        collectIdentSlots(static_cast<ReplExpr &>(*expr).inner, out);
        return;
      case Expr::Kind::Index:
        collectIdentSlots(static_cast<IndexExpr &>(*expr).base, out);
        collectIdentSlots(static_cast<IndexExpr &>(*expr).index, out);
        return;
      case Expr::Kind::RangeSelect:
        collectIdentSlots(static_cast<RangeSelectExpr &>(*expr).base,
                          out);
        return;
      case Expr::Kind::Call:
        for (auto &arg : static_cast<CallExpr &>(*expr).args)
            collectIdentSlots(arg, out);
        return;
    }
}

std::vector<AssignStmt *>
collectAssigns(Module &mod)
{
    std::vector<AssignStmt *> out;
    for (auto &item : mod.items) {
        if (item->kind != Item::Kind::Always)
            continue;
        std::vector<StmtPtr *> stmts;
        collectStmtSlots(static_cast<AlwaysBlock &>(*item).body, stmts);
        for (StmtPtr *slot : stmts) {
            if ((*slot)->kind == Stmt::Kind::Assign)
                out.push_back(static_cast<AssignStmt *>(slot->get()));
        }
    }
    return out;
}

BinaryOp
randomCompatibleOp(BinaryOp op, Rng &rng)
{
    static const BinaryOp arith[] = {BinaryOp::Add, BinaryOp::Sub,
                                     BinaryOp::Mul, BinaryOp::Shl,
                                     BinaryOp::Shr};
    static const BinaryOp bitwise[] = {BinaryOp::BitAnd,
                                       BinaryOp::BitOr,
                                       BinaryOp::BitXor};
    static const BinaryOp cmp[] = {BinaryOp::Eq, BinaryOp::Ne,
                                   BinaryOp::Lt, BinaryOp::Le,
                                   BinaryOp::Gt, BinaryOp::Ge};
    static const BinaryOp logic[] = {BinaryOp::LogicAnd,
                                     BinaryOp::LogicOr};
    auto pick = [&rng](const BinaryOp *set, size_t n) {
        return set[rng.below(n)];
    };
    switch (op) {
      case BinaryOp::Add:
      case BinaryOp::Sub:
      case BinaryOp::Mul:
      case BinaryOp::Shl:
      case BinaryOp::Shr:
      case BinaryOp::AShr:
        return pick(arith, 5);
      case BinaryOp::BitAnd:
      case BinaryOp::BitOr:
      case BinaryOp::BitXor:
      case BinaryOp::BitXnor:
        return pick(bitwise, 3);
      case BinaryOp::Eq:
      case BinaryOp::Ne:
      case BinaryOp::Lt:
      case BinaryOp::Le:
      case BinaryOp::Gt:
      case BinaryOp::Ge:
        return pick(cmp, 6);
      case BinaryOp::LogicAnd:
      case BinaryOp::LogicOr:
        return pick(logic, 2);
      default:
        return op;
    }
}

std::vector<TernaryExpr *>
collectTernaries(Module &mod)
{
    std::vector<ExprPtr *> exprs;
    collectExprSlots(mod, exprs);
    std::vector<TernaryExpr *> terns;
    for (ExprPtr *slot : exprs) {
        rewriteExprTree(*slot, [&terns](ExprPtr &e) {
            if (e->kind == Expr::Kind::Ternary)
                terns.push_back(static_cast<TernaryExpr *>(e.get()));
        });
    }
    return terns;
}

std::vector<CaseStmt *>
collectCases(Module &mod)
{
    std::vector<CaseStmt *> cases;
    for (auto &item : mod.items) {
        if (item->kind != Item::Kind::Always)
            continue;
        std::vector<StmtPtr *> stmts;
        collectStmtSlots(static_cast<AlwaysBlock &>(*item).body, stmts);
        for (StmtPtr *slot : stmts) {
            if ((*slot)->kind == Stmt::Kind::Case)
                cases.push_back(static_cast<CaseStmt *>(slot->get()));
        }
    }
    return cases;
}

/** Names of declared memories (2-D regs) in @p mod. */
std::vector<std::string>
memoryNames(const Module &mod)
{
    std::vector<std::string> names;
    for (const auto &item : mod.items) {
        if (item->kind != Item::Kind::Net)
            continue;
        const auto &net = static_cast<const NetDecl &>(*item);
        if (net.isMemory())
            names.push_back(net.name);
    }
    return names;
}

/** True when @p e is a word access of one of @p mems: `mem[addr]`. */
bool
isMemoryIndex(const Expr &e, const std::vector<std::string> &mems)
{
    if (e.kind != Expr::Kind::Index)
        return false;
    const auto &idx = static_cast<const IndexExpr &>(e);
    if (idx.base->kind != Expr::Kind::Ident)
        return false;
    const std::string &name =
        static_cast<const IdentExpr &>(*idx.base).name;
    for (const std::string &m : mems) {
        if (m == name)
            return true;
    }
    return false;
}

/** Address-expression slots of memory word accesses under @p expr. */
void
collectMemoryIndexSlots(ExprPtr &expr,
                        const std::vector<std::string> &mems,
                        std::vector<ExprPtr *> &out)
{
    if (isMemoryIndex(*expr, mems))
        out.push_back(&static_cast<IndexExpr &>(*expr).index);
    switch (expr->kind) {
      case Expr::Kind::Unary:
        collectMemoryIndexSlots(static_cast<UnaryExpr &>(*expr).operand,
                                mems, out);
        return;
      case Expr::Kind::Binary: {
        auto &b = static_cast<BinaryExpr &>(*expr);
        collectMemoryIndexSlots(b.lhs, mems, out);
        collectMemoryIndexSlots(b.rhs, mems, out);
        return;
      }
      case Expr::Kind::Ternary: {
        auto &t = static_cast<TernaryExpr &>(*expr);
        collectMemoryIndexSlots(t.cond, mems, out);
        collectMemoryIndexSlots(t.then_expr, mems, out);
        collectMemoryIndexSlots(t.else_expr, mems, out);
        return;
      }
      case Expr::Kind::Concat:
        for (auto &p : static_cast<ConcatExpr &>(*expr).parts)
            collectMemoryIndexSlots(p, mems, out);
        return;
      case Expr::Kind::Repl:
        collectMemoryIndexSlots(static_cast<ReplExpr &>(*expr).inner,
                                mems, out);
        return;
      case Expr::Kind::Call:
        for (auto &arg : static_cast<CallExpr &>(*expr).args)
            collectMemoryIndexSlots(arg, mems, out);
        return;
      default:
        return;
    }
}

/** Does @p stmt (or anything under it) write a word of @p mems? */
bool
stmtWritesMemory(const StmtPtr &stmt,
                 const std::vector<std::string> &mems)
{
    if (!stmt)
        return false;
    switch (stmt->kind) {
      case Stmt::Kind::Assign:
        return isMemoryIndex(
            *static_cast<const AssignStmt &>(*stmt).lhs, mems);
      case Stmt::Kind::Block:
        for (const auto &s :
             static_cast<const BlockStmt &>(*stmt).stmts) {
            if (stmtWritesMemory(s, mems))
                return true;
        }
        return false;
      case Stmt::Kind::If: {
        const auto &i = static_cast<const IfStmt &>(*stmt);
        return stmtWritesMemory(i.then_stmt, mems) ||
               stmtWritesMemory(i.else_stmt, mems);
      }
      default:
        return false;
    }
}

/** One operator pick; returns false when the pick was inapplicable. */
bool
tryMutateOnce(Module &mod, Rng &rng, std::string &desc, int version)
{
    // The dispatch modulus is part of the replay contract: version-1
    // sub-seeds were recorded under an 11-way pick, so growing the
    // operator set bumps kMutatorVersion instead of remapping them.
    switch (rng.below(version >= 2 ? 13 : 11)) {
          case 0: {  // invert a conditional
            std::vector<ExprPtr *> conds;
            for (auto &item : mod.items) {
                if (item->kind != Item::Kind::Always)
                    continue;
                std::vector<StmtPtr *> stmts;
                collectStmtSlots(
                    static_cast<AlwaysBlock &>(*item).body, stmts);
                for (StmtPtr *slot : stmts) {
                    if ((*slot)->kind == Stmt::Kind::If) {
                        conds.push_back(
                            &static_cast<IfStmt &>(**slot).cond);
                    }
                }
            }
            if (conds.empty())
                return false;
            ExprPtr *slot = conds[rng.below(conds.size())];
            auto *inverted = new UnaryExpr(UnaryOp::LogicNot,
                                           std::move(*slot));
            inverted->id = mod.newNodeId();
            slot->reset(inverted);
            desc = "invert conditional";
            return true;
          }
          case 1: {  // perturb a constant
            std::vector<ExprPtr *> exprs;
            collectExprSlots(mod, exprs);
            std::vector<LiteralExpr *> lits;
            for (ExprPtr *slot : exprs)
                collectLiterals(*slot, lits);
            if (lits.empty())
                return false;
            LiteralExpr *lit = lits[rng.below(lits.size())];
            Value v = lit->value;
            uint32_t w = v.width();
            switch (rng.below(3)) {
              case 0: {  // flip one bit
                uint32_t bit = static_cast<uint32_t>(rng.below(w));
                int old = v.bit(bit);
                v.setBit(bit, old == 1 ? 0 : 1);
                break;
              }
              case 1:
                v = v + Value::fromUint(w, 1);
                break;
              default:
                v = Value::random(w, rng);
                break;
            }
            lit->value = v;
            desc = "perturb constant";
            return true;
          }
          case 2: {  // swap if branches
            std::vector<IfStmt *> ifs;
            for (auto &item : mod.items) {
                if (item->kind != Item::Kind::Always)
                    continue;
                std::vector<StmtPtr *> stmts;
                collectStmtSlots(
                    static_cast<AlwaysBlock &>(*item).body, stmts);
                for (StmtPtr *slot : stmts) {
                    auto *s = slot->get();
                    if (s->kind == Stmt::Kind::If &&
                        static_cast<IfStmt *>(s)->else_stmt) {
                        ifs.push_back(static_cast<IfStmt *>(s));
                    }
                }
            }
            if (ifs.empty())
                return false;
            IfStmt *target = ifs[rng.below(ifs.size())];
            std::swap(target->then_stmt, target->else_stmt);
            desc = "swap if branches";
            return true;
          }
          case 3: {  // flip assignment kind
            auto assigns = collectAssigns(mod);
            if (assigns.empty())
                return false;
            AssignStmt *a = assigns[rng.below(assigns.size())];
            a->blocking = !a->blocking;
            desc = "flip assignment kind";
            return true;
          }
          case 4: {  // sensitivity-list edit
            std::vector<AlwaysBlock *> blocks;
            for (auto &item : mod.items) {
                if (item->kind == Item::Kind::Always)
                    blocks.push_back(
                        static_cast<AlwaysBlock *>(item.get()));
            }
            if (blocks.empty())
                return false;
            AlwaysBlock *blk =
                blocks[rng.below(blocks.size())];
            if (blk->sensitivity.empty())
                return false;
            SensItem &sens =
                blk->sensitivity[rng.below(blk->sensitivity.size())];
            if (sens.edge == SensItem::Edge::Level &&
                !sens.signal.empty()) {
                sens.edge = SensItem::Edge::Posedge;
            } else if (sens.edge == SensItem::Edge::Posedge) {
                sens.edge = rng.chance(0.5) ? SensItem::Edge::Level
                                            : SensItem::Edge::Negedge;
            } else if (sens.edge == SensItem::Edge::Negedge) {
                sens.edge = SensItem::Edge::Posedge;
            } else {
                return false;
            }
            desc = "edit sensitivity list";
            return true;
          }
          case 5: {  // replace a binary operator
            std::vector<ExprPtr *> exprs;
            collectExprSlots(mod, exprs);
            std::vector<BinaryExpr *> bins;
            for (ExprPtr *slot : exprs) {
                rewriteExprTree(*slot, [&bins](ExprPtr &e) {
                    if (e->kind == Expr::Kind::Binary)
                        bins.push_back(
                            static_cast<BinaryExpr *>(e.get()));
                });
            }
            if (bins.empty())
                return false;
            BinaryExpr *b = bins[rng.below(bins.size())];
            BinaryOp next = randomCompatibleOp(b->op, rng);
            if (next == b->op)
                return false;
            b->op = next;
            desc = "replace operator";
            return true;
          }
          case 6: {  // replace an identifier use
            analysis::SymbolTable table;
            try {
                table = analysis::SymbolTable::build(mod);
            } catch (const FatalError &) {
                return false;
            }
            std::vector<ExprPtr *> exprs;
            collectExprSlots(mod, exprs);
            std::vector<ExprPtr *> idents;
            for (ExprPtr *slot : exprs)
                collectIdentSlots(*slot, idents);
            if (idents.empty())
                return false;
            ExprPtr *slot = idents[rng.below(idents.size())];
            const auto &old_name =
                static_cast<IdentExpr &>(**slot).name;
            if (!table.isNet(old_name))
                return false;
            uint32_t w = table.widthOf(old_name);
            std::vector<std::string> same_width;
            for (const auto &[name, range] : table.nets()) {
                if (range.width == w && name != old_name)
                    same_width.push_back(name);
            }
            if (same_width.empty())
                return false;
            static_cast<IdentExpr &>(**slot).name =
                same_width[rng.below(same_width.size())];
            desc = "replace identifier";
            return true;
          }
          case 7: {  // delete or duplicate a statement
            std::vector<StmtPtr *> slots;
            for (auto &item : mod.items) {
                if (item->kind != Item::Kind::Always)
                    continue;
                auto &blk = static_cast<AlwaysBlock &>(*item);
                if (blk.body->kind != Stmt::Kind::Block)
                    continue;
                auto &body = static_cast<BlockStmt &>(*blk.body);
                for (auto &s : body.stmts)
                    slots.push_back(&s);
            }
            if (slots.empty())
                return false;
            StmtPtr *slot = slots[rng.below(slots.size())];
            if (rng.chance(0.5)) {
                auto *empty = new EmptyStmt();
                empty->id = mod.newNodeId();
                slot->reset(empty);
                desc = "delete statement";
            } else {
                // Duplicate: wrap into a block with two copies.
                std::vector<StmtPtr> two;
                two.push_back((*slot)->clone());
                two.push_back(std::move(*slot));
                auto *pair = new BlockStmt(std::move(two));
                pair->id = mod.newNodeId();
                slot->reset(pair);
                desc = "duplicate statement";
            }
            return true;
          }
          case 8: {  // swap ternary arms
            auto terns = collectTernaries(mod);
            if (terns.empty())
                return false;
            TernaryExpr *t = terns[rng.below(terns.size())];
            std::swap(t->then_expr, t->else_expr);
            desc = "swap ternary arms";
            return true;
          }
          case 9: {  // negate a ternary guard
            auto terns = collectTernaries(mod);
            if (terns.empty())
                return false;
            TernaryExpr *t = terns[rng.below(terns.size())];
            auto *inverted =
                new UnaryExpr(UnaryOp::LogicNot, std::move(t->cond));
            inverted->id = mod.newNodeId();
            t->cond.reset(inverted);
            desc = "negate ternary guard";
            return true;
          }
          case 11: {  // perturb a memory array index
            std::vector<std::string> mems = memoryNames(mod);
            if (mems.empty())
                return false;
            std::vector<ExprPtr *> roots;
            collectExprSlots(mod, roots);
            for (AssignStmt *a : collectAssigns(mod))
                roots.push_back(&a->lhs);
            std::vector<ExprPtr *> idxs;
            for (ExprPtr *slot : roots)
                collectMemoryIndexSlots(*slot, mems, idxs);
            if (idxs.empty())
                return false;
            // XOR the address with 1: always in range for a
            // power-of-two depth, and the off-by-one aliasing is the
            // classic wrong-word bug the repair templates target.
            ExprPtr *slot = idxs[rng.below(idxs.size())];
            auto *one = new LiteralExpr(Value::fromUint(1, 1), true);
            one->id = mod.newNodeId();
            auto *flipped = new BinaryExpr(
                BinaryOp::BitXor, std::move(*slot), ExprPtr(one));
            flipped->id = mod.newNodeId();
            slot->reset(flipped);
            desc = "perturb array index";
            return true;
          }
          case 12: {  // perturb a write enable
            std::vector<std::string> mems = memoryNames(mod);
            if (mems.empty())
                return false;
            // If-statements guarding a memory word write: the
            // write-enable idiom.
            std::vector<StmtPtr *> guards;
            for (auto &item : mod.items) {
                if (item->kind != Item::Kind::Always)
                    continue;
                std::vector<StmtPtr *> stmts;
                collectStmtSlots(
                    static_cast<AlwaysBlock &>(*item).body, stmts);
                for (StmtPtr *slot : stmts) {
                    if ((*slot)->kind != Stmt::Kind::If)
                        continue;
                    auto &ifs = static_cast<IfStmt &>(**slot);
                    if (stmtWritesMemory(ifs.then_stmt, mems))
                        guards.push_back(slot);
                }
            }
            if (guards.empty())
                return false;
            StmtPtr *slot = guards[rng.below(guards.size())];
            auto &ifs = static_cast<IfStmt &>(**slot);
            if (!ifs.else_stmt && rng.chance(0.5)) {
                // Drop the guard: the write fires every cycle.
                StmtPtr body = std::move(ifs.then_stmt);
                *slot = std::move(body);
                desc = "drop write enable";
            } else {
                auto *inverted = new UnaryExpr(UnaryOp::LogicNot,
                                               std::move(ifs.cond));
                inverted->id = mod.newNodeId();
                ifs.cond.reset(inverted);
                desc = "invert write enable";
            }
            return true;
          }
          default: {  // perturb a case-item label
            auto cases = collectCases(mod);
            std::vector<LiteralExpr *> labels;
            for (CaseStmt *c : cases) {
                for (auto &item : c->items) {
                    for (auto &label : item.labels) {
                        if (label->kind == Expr::Kind::Literal)
                            labels.push_back(static_cast<LiteralExpr *>(
                                label.get()));
                    }
                }
            }
            if (labels.empty())
                return false;
            LiteralExpr *lit = labels[rng.below(labels.size())];
            Value v = lit->value;
            uint32_t bit =
                static_cast<uint32_t>(rng.below(v.width()));
            int old = v.bit(bit);
            v.setBit(bit, old == 1 ? 0 : 1);
            lit->value = v;
            desc = "perturb case label";
            return true;
          }
    }
}

} // namespace

std::unique_ptr<Module>
mutate(const Module &original, Rng &rng, std::string *description)
{
    auto mod = original.clone();
    std::string desc = "no-op";

    // Try operators until one applies (bounded retries).
    for (int attempt = 0; attempt < 12; ++attempt) {
        if (tryMutateOnce(*mod, rng, desc, kMutatorVersion))
            break;
    }
    if (description)
        *description = desc;
    return mod;
}

MutationResult
applyMutation(const Module &original, uint64_t subseed, int version)
{
    MutationResult result;
    result.mod = original.clone();
    result.description = "no-op";
    Rng rng(subseed);
    for (int attempt = 0; attempt < 12; ++attempt) {
        if (tryMutateOnce(*result.mod, rng, result.description,
                          version)) {
            result.applied = true;
            break;
        }
    }
    return result;
}

std::unique_ptr<Module>
crossover(const Module &a, const Module &b, Rng &rng)
{
    auto child = a.clone();
    if (child->items.empty() || b.items.size() != child->items.size())
        return child;
    size_t cut = rng.below(child->items.size());
    for (size_t i = cut; i < child->items.size(); ++i) {
        // Only swap structurally compatible item kinds.
        if (child->items[i]->kind == b.items[i]->kind)
            child->items[i] = b.items[i]->clone();
    }
    return child;
}

} // namespace rtlrepair::cirfix
