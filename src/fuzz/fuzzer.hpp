/**
 * @file
 * Differential fuzzing harness: a seeded mutate–repair–verify loop
 * that turns the simulators into a correctness oracle for the whole
 * repair pipeline.
 *
 * One run:
 *  1. pick a known-good design (benchmark registry or generated),
 *  2. record a golden I/O trace from it with the event simulator,
 *  3. inject 1-3 bugs via replayable cirfix mutation sub-seeds,
 *  4. run the full repair pipeline on the mutant against the trace,
 *  5. cross-check any claimed repair by co-simulating repaired vs.
 *     golden on fresh random stimulus.
 *
 * Classification:
 *
 *  | class             | meaning                                     |
 *  |-------------------|---------------------------------------------|
 *  | REPAIRED_VERIFIED | repair passes trace + fresh-stimulus co-sim |
 *  | REPAIRED_OVERFIT  | claimed repair fails the oracle             |
 *  | NO_REPAIR         | pipeline gave up (incl. timeout/cannot-syn) |
 *  | MUTANT_BENIGN     | mutations did not break the golden trace    |
 *  | MUTANT_INVISIBLE  | bug breaks the event-sim oracle but not the |
 *  |                   | trace under the tool's synthesis semantics  |
 *  | PIPELINE_FAULT    | exception escaped, or nondeterminism        |
 *  | ORACLE_MISMATCH   | golden design fails its own recorded trace  |
 *
 * OVERFIT documents a minimality-vs-generality gap (paper shift_k1);
 * MUTANT_INVISIBLE is the paper's simulation-vs-synthesis semantics
 * gap (e.g. a broken sensitivity list, which RTL-Repair's fault model
 * cannot observe); PIPELINE_FAULT and ORACLE_MISMATCH are always tool
 * bugs.  Failures are auto-reduced (drop mutations, shrink trace,
 * shrink stimulus) to a minimal reproducer for the corpus
 * (fuzz/corpus.hpp).
 */
#ifndef RTLREPAIR_FUZZ_FUZZER_HPP
#define RTLREPAIR_FUZZ_FUZZER_HPP

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "repair/driver.hpp"
#include "sim/sim_backend.hpp"

namespace rtlrepair::fuzz {

enum class RunClass {
    RepairedVerified,
    RepairedOverfit,
    NoRepair,
    MutantBenign,
    MutantInvisible,
    PipelineFault,
    OracleMismatch,
};

/** Corpus spelling, e.g. "REPAIRED_VERIFIED". */
const char *toString(RunClass cls);
std::optional<RunClass> runClassFromString(const std::string &name);

/** True for the classes worth reducing and writing to the corpus:
 *  an unsafe repair (OVERFIT) or a tool bug (FAULT / MISMATCH). */
bool isFailure(RunClass cls);

/** One fully-determined fuzz case (= one corpus entry). */
struct FuzzCase
{
    /** Registry benchmark name, or `gen:<seed>`. */
    std::string design;
    /** Mutation sub-seeds, applied in order (cirfix::applyMutation). */
    std::vector<uint64_t> mutations;
    /** Mutation operator-set version the sub-seeds were drawn under. */
    int mutator = 1;
    /** Driving-trace prefix in cycles; 0 = the full trace. */
    size_t trace_cycles = 0;
    /** Extra random rows appended to the driving trace — a richer
     *  trace constrains the repair harder and starves overfits. */
    size_t trace_extra = 0;
    uint64_t trace_seed = 0;
    /** Fresh-stimulus length and seed for the co-simulation check. */
    size_t fresh_cycles = 64;
    uint64_t fresh_seed = 1;

    CorpusEntry toCorpus() const;
    static FuzzCase fromCorpus(const CorpusEntry &entry);
};

/** Result of replaying one case. */
struct CaseResult
{
    RunClass cls = RunClass::NoRepair;
    /** Mutation descriptions + failure specifics, human-readable. */
    std::string detail;
    /** Digest of the deterministic RepairOutcome group (see
     *  outcomeFingerprint); empty when the pipeline was not reached. */
    std::string fingerprint;
    double seconds = 0.0;
};

struct FuzzConfig
{
    uint64_t seed = 1;
    size_t runs = 10;
    /** Bugs injected per run: 1..max_mutations. */
    int max_mutations = 3;
    double repair_timeout = 10.0;
    unsigned jobs = 1;
    size_t fresh_cycles = 64;
    /** Extra random driving rows per case (FuzzCase::trace_extra). */
    size_t extra_trace_cycles = 0;
    /** Driving-trace cycles for generated designs. */
    size_t gen_trace_cycles = 24;
    /** Probability of fuzzing a generated module instead of a
     *  registry design. */
    double gen_probability = 0.25;
    /** Registry design pool; empty = the built-in fast subset. */
    std::vector<std::string> designs;
    /** Re-run the pipeline (same seed, and jobs=1 vs jobs=4) and
     *  flag fingerprint divergence as PIPELINE_FAULT. */
    bool check_determinism = false;
    /** Persistent cross-window solver (false = `--no-incremental`
     *  fresh-per-window reference engine). */
    bool incremental = true;
    /** Oracle/co-simulation backend (`--sim`).  Not part of FuzzCase:
     *  both backends are replay-equivalent, so classifications do not
     *  depend on it and corpus entries stay valid across backends. */
    sim::SimBackend sim_backend = sim::SimBackend::Auto;
    /** Fresh co-simulation stimuli per claimed repair (seeds
     *  fresh_seed .. fresh_seed+N-1, batched through the vectorized
     *  simulator).  1 = the classic single check. */
    int fresh_batch = 1;
    /** Reduce failures and write reproducers here ("" = don't). */
    std::string corpus_dir;
    bool reduce = true;
    /** Classes that make the whole sweep fail (FuzzStats::ok).
     *  OVERFIT is reported and reduced either way; making it fatal is
     *  a per-run policy because a short or weak driving trace cannot
     *  rule it out (see DESIGN.md §9). */
    std::vector<RunClass> fail_on = {RunClass::PipelineFault,
                                     RunClass::OracleMismatch};
};

struct FuzzStats
{
    std::map<RunClass, size_t> counts;
    /** Reduced reproducers for every failing run, in run order. */
    std::vector<std::pair<FuzzCase, CaseResult>> failures;
    size_t corpus_written = 0;

    size_t count(RunClass cls) const;
    /** True when none of @p fail_on occurred. */
    bool ok(const std::vector<RunClass> &fail_on) const;
    std::string summary() const;
};

/** Replay one fully-determined case. */
CaseResult runCase(const FuzzCase &fcase, const FuzzConfig &config);

/**
 * Shrink @p fcase while it still classifies as @p target: drop
 * mutations one at a time, then halve the driving trace, then halve
 * the fresh stimulus.  Bounded by @p max_trials replays.
 */
FuzzCase reduceCase(const FuzzCase &fcase, const FuzzConfig &config,
                    RunClass target, int max_trials = 32);

/**
 * The main loop: derive `config.runs` cases from `config.seed`,
 * replay each, reduce failures, and (optionally) write reproducers
 * to `config.corpus_dir`.  @p log gets one line per run when set.
 */
FuzzStats fuzz(const FuzzConfig &config, std::ostream *log = nullptr);

/**
 * Digest of the deterministic counter group of a RepairOutcome:
 * status, change counts, winning template, per-candidate window/solve
 * statistics, and the printed repaired source — everything except
 * wall-clock times and memory watermarks.  Byte-identical across
 * repeated runs and across jobs=1 vs jobs=N for the same inputs.
 *
 * With @p include_solver_stats false, per-candidate SAT/AIG counters
 * are omitted, leaving only the semantic outcome (status, ladder,
 * changes, repaired source).  That variant is additionally identical
 * across the incremental engine and the fresh-per-window reference,
 * whose solver-internal work necessarily differs.
 */
std::string outcomeFingerprint(const repair::RepairOutcome &outcome,
                               bool include_solver_stats = true);

} // namespace rtlrepair::fuzz

#endif // RTLREPAIR_FUZZ_FUZZER_HPP
