#include "fuzz/generator.hpp"

#include <sstream>

#include "elaborate/elaborate.hpp"
#include "trace/stimulus.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "verilog/parser.hpp"

namespace rtlrepair::fuzz {

namespace {

/** One operand: a register, an input, or a sized literal. */
std::string
randomOperand(Rng &rng, const std::vector<std::string> &regs,
              const std::vector<std::string> &ins, uint32_t width)
{
    switch (rng.below(3)) {
      case 0:
        return regs[rng.below(regs.size())];
      case 1:
        return ins[rng.below(ins.size())];
      default:
        return format("%u'd%llu", width,
                      static_cast<unsigned long long>(
                          rng.below(1ull << (width < 16 ? width : 16))));
    }
}

/**
 * A random right-hand side over the declared signals.  Depth-2
 * expressions with arithmetic, bitwise, comparison, and ternary
 * shapes — the bug classes the repair templates target all have
 * somewhere to land.
 */
std::string
randomExpr(Rng &rng, const std::vector<std::string> &regs,
           const std::vector<std::string> &ins, uint32_t width)
{
    static const char *binops[] = {"+", "-", "&", "|", "^"};
    std::string a = randomOperand(rng, regs, ins, width);
    std::string b = randomOperand(rng, regs, ins, width);
    switch (rng.below(4)) {
      case 0:
        return format("%s %s %s", a.c_str(),
                      binops[rng.below(5)], b.c_str());
      case 1: {  // ternary guarded by a comparison
        std::string c = randomOperand(rng, regs, ins, width);
        static const char *cmps[] = {"==", "!=", "<", ">="};
        return format("(%s %s %s) ? %s : %s", a.c_str(),
                      cmps[rng.below(4)], b.c_str(), c.c_str(),
                      randomOperand(rng, regs, ins, width).c_str());
      }
      case 2:
        return format("~%s", a.c_str());
      default:
        return format("%s %s (%s %s %s)", a.c_str(),
                      binops[rng.below(5)], b.c_str(),
                      binops[rng.below(5)],
                      randomOperand(rng, regs, ins, width).c_str());
    }
}

GeneratedDesign
tryGenerate(uint64_t seed, int version)
{
    Rng rng(seed);
    GeneratedDesign design;
    design.top = format("fuzz_gen_%04x",
                        static_cast<unsigned>(seed & 0xffff));
    design.clock = "clk";

    size_t n_in = 2 + rng.below(2);    // 2-3 data inputs
    size_t n_reg = 1 + rng.below(2);   // 1-2 registers
    // Extended-subset features (version >= 2), each independently
    // present so the fuzzer also covers their interactions.  The
    // version-1 path must not consume rng draws for them: old corpus
    // entries replay the exact byte stream they were recorded under.
    bool with_mem = version >= 2 && rng.chance(0.35);
    bool with_gen = version >= 2 && rng.chance(0.35);
    bool with_func = version >= 2 && rng.chance(0.35);
    std::vector<std::string> ins, regs;
    std::vector<uint32_t> in_w, reg_w;
    static const uint32_t widths[] = {1, 2, 4, 8};
    for (size_t i = 0; i < n_in; ++i) {
        ins.push_back(format("in%zu", i));
        in_w.push_back(widths[rng.below(4)]);
    }
    for (size_t i = 0; i < n_reg; ++i) {
        regs.push_back(format("r%zu", i));
        reg_w.push_back(widths[1 + rng.below(3)]);  // >= 2 bits
    }
    uint32_t mem_w = with_mem ? widths[1 + rng.below(3)] : 4;
    uint32_t gen_w = 4;

    std::ostringstream src;
    src << "module " << design.top << " (\n";
    src << "    input wire clk,\n    input wire rst";
    for (size_t i = 0; i < n_in; ++i) {
        src << ",\n    input wire ";
        if (in_w[i] > 1)
            src << "[" << in_w[i] - 1 << ":0] ";
        src << ins[i];
    }
    if (with_mem) {
        src << ",\n    input wire mwe";
        src << ",\n    input wire [1:0] mwaddr";
        src << ",\n    input wire [1:0] mraddr";
    }
    for (size_t i = 0; i < n_reg; ++i) {
        src << ",\n    output wire ";
        if (reg_w[i] > 1)
            src << "[" << reg_w[i] - 1 << ":0] ";
        src << "out" << i;
    }
    if (with_mem) {
        src << ",\n    output wire ";
        if (mem_w > 1)
            src << "[" << mem_w - 1 << ":0] ";
        src << "outm";
    }
    if (with_gen)
        src << ",\n    output wire [" << gen_w - 1 << ":0] outg";
    src << "\n);\n\n";
    for (size_t i = 0; i < n_reg; ++i) {
        src << "    reg ";
        if (reg_w[i] > 1)
            src << "[" << reg_w[i] - 1 << ":0] ";
        src << regs[i] << ";\n";
    }

    if (with_func) {
        // A side-effect-free helper the sequential core calls; the
        // lowering inlines it before any backend runs.
        src << "\n    function [" << reg_w[0] - 1 << ":0] fmix;\n";
        src << "        input [" << reg_w[0] - 1 << ":0] x;\n";
        src << "        input [" << reg_w[0] - 1 << ":0] y;\n";
        src << "        begin\n";
        src << "            if (x > y)\n";
        src << "                fmix = x - y;\n";
        src << "            else\n";
        src << "                fmix = x ^ y;\n";
        src << "        end\n";
        src << "    endfunction\n";
    }

    if (with_mem) {
        // Write-enable memory: every word reset to a known value so
        // the golden design never exposes an uninitialized read.
        src << "\n    reg ";
        if (mem_w > 1)
            src << "[" << mem_w - 1 << ":0] ";
        src << "mem [0:3];\n";
        src << "    reg ";
        if (mem_w > 1)
            src << "[" << mem_w - 1 << ":0] ";
        src << "mq;\n";
        src << "    always @(posedge clk) begin\n";
        src << "        if (rst) begin\n";
        for (int w = 0; w < 4; ++w)
            src << "            mem[" << w << "] <= " << mem_w
                << "'d" << rng.below(1ull << (mem_w < 8 ? mem_w : 8))
                << ";\n";
        src << "            mq <= " << mem_w << "'d0;\n";
        src << "        end else begin\n";
        src << "            if (mwe)\n";
        src << "                mem[mwaddr] <= "
            << randomExpr(rng, regs, ins, mem_w) << ";\n";
        src << "            mq <= mem[mraddr];\n";
        src << "        end\n    end\n";
        src << "    assign outm = mq;\n";
    }

    if (with_gen) {
        // Per-bit generate block driving slices of one output; the
        // lowering merges the unrolled assigns into a single driver.
        const std::string sel = ins[rng.below(n_in)];
        const std::string bit = regs[rng.below(n_reg)];
        src << "\n    genvar gi;\n";
        src << "    generate\n";
        src << "        for (gi = 0; gi < " << gen_w
            << "; gi = gi + 1) begin : gb\n";
        src << "            wire hit;\n";
        src << "            assign hit = (" << sel << " == gi);\n";
        src << "            assign outg[gi] = hit ^ " << bit
            << "[0];\n";
        src << "        end\n";
        src << "    endgenerate\n";
    }

    // The sequential core: synchronous reset, then either a plain
    // next-value expression or a guarded update per register.
    src << "\n    always @(posedge clk) begin\n";
    src << "        if (rst) begin\n";
    for (size_t i = 0; i < n_reg; ++i)
        src << "            " << regs[i] << " <= " << reg_w[i]
            << "'d0;\n";
    src << "        end else begin\n";
    for (size_t i = 0; i < n_reg; ++i) {
        if (rng.chance(0.4)) {
            src << "            if (" << ins[rng.below(n_in)]
                << " " << (rng.chance(0.5) ? "==" : "!=") << " "
                << randomOperand(rng, regs, ins, in_w[0]) << ")\n";
            src << "                " << regs[i] << " <= "
                << randomExpr(rng, regs, ins, reg_w[i]) << ";\n";
            src << "            else\n";
            src << "                " << regs[i] << " <= "
                << randomExpr(rng, regs, ins, reg_w[i]) << ";\n";
        } else if (with_func && i == 0) {
            src << "            " << regs[i] << " <= fmix("
                << randomOperand(rng, regs, ins, reg_w[i]) << ", "
                << randomOperand(rng, regs, ins, reg_w[i]) << ");\n";
        } else {
            src << "            " << regs[i] << " <= "
                << randomExpr(rng, regs, ins, reg_w[i]) << ";\n";
        }
    }
    src << "        end\n    end\n\n";

    // Outputs observe the registers, optionally through one layer of
    // combinational logic (never through another output).
    for (size_t i = 0; i < n_reg; ++i) {
        src << "    assign out" << i << " = ";
        if (rng.chance(0.5))
            src << regs[i];
        else
            src << randomExpr(rng, regs, ins, reg_w[i]);
        src << ";\n";
    }
    src << "\nendmodule\n";

    design.source = src.str();
    design.inputs.push_back({"rst", 1});
    for (size_t i = 0; i < n_in; ++i)
        design.inputs.push_back({ins[i], in_w[i]});
    if (with_mem) {
        design.inputs.push_back({"mwe", 1});
        design.inputs.push_back({"mwaddr", 2});
        design.inputs.push_back({"mraddr", 2});
    }
    return design;
}

} // namespace

GeneratedDesign
generateDesign(uint64_t seed, int version)
{
    // Validate parse + elaborate; derive a fresh layout on failure so
    // the function stays total and deterministic.
    for (int attempt = 0; attempt < 8; ++attempt) {
        GeneratedDesign design = tryGenerate(
            seed + 0x9e3779b97f4a7c15ull * attempt, version);
        try {
            verilog::SourceFile file = verilog::parse(design.source);
            elaborate::elaborate(file.top(), {});
            return design;
        } catch (const std::exception &) {
            continue;
        }
    }
    fatal("generateDesign: no synthesizable layout for seed " +
          std::to_string(seed));
}

trace::InputSequence
generateStimulus(const GeneratedDesign &design, size_t cycles,
                 uint64_t seed)
{
    Rng rng(seed ^ 0xf0220ull);
    trace::StimulusBuilder sb(design.inputs);
    std::vector<std::string> names;
    for (const auto &col : design.inputs)
        names.push_back(col.name);
    // Two reset cycles bring every register to a known value, then
    // fully-known random rows (rst keeps toggling occasionally so
    // reset behaviour stays covered).
    sb.set("rst", 1);
    for (const auto &col : design.inputs) {
        if (col.name != "rst")
            sb.setValue(col.name, bv::Value::random(col.width, rng));
    }
    sb.step(2);
    if (cycles > 2)
        trace::randomRows(sb, names, cycles - 2, rng);
    return sb.finish();
}

} // namespace rtlrepair::fuzz
