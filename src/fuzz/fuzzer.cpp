#include "fuzz/fuzzer.hpp"

#include <ostream>
#include <sstream>

#include "benchmarks/registry.hpp"
#include "cirfix/mutations.hpp"
#include "elaborate/elaborate.hpp"
#include "fuzz/generator.hpp"
#include "sim/event_sim.hpp"
#include "sim/interpreter.hpp"
#include "sim/vec_sim.hpp"
#include "trace/stimulus.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "verilog/ast_util.hpp"
#include "verilog/parser.hpp"
#include "verilog/printer.hpp"

namespace rtlrepair::fuzz {

using verilog::Module;

namespace {

/** The fast registry subset the fuzzer defaults to: every design
 *  repairs (or gives up) well under a second, so a 200-run sweep
 *  stays within a CI smoke budget. */
const std::vector<std::string> &
defaultPool()
{
    // Fast registry subset; the oss_m* designs keep the expanded
    // subset (memories, generate blocks, functions) in every sweep.
    static const std::vector<std::string> pool = {
        "decoder_w1", "counter_k1", "flop_w1",
        "fsm_w1",     "shift_w1",   "mux_k1",
        "oss_m1",     "oss_m2",     "oss_m3",
        "oss_m4",     "oss_m5",
    };
    return pool;
}

/** A fuzz case made concrete: design + library + driving stimulus. */
struct Materialized
{
    /** Owns generated designs; null for registry designs (whose
     *  modules live in the registry cache). */
    verilog::SourceFile owned;
    const Module *golden = nullptr;
    std::vector<const Module *> library;
    std::string clock;
    trace::InputSequence stim;
    sim::XPolicy x_policy = sim::XPolicy::Random;
    std::vector<std::string> hidden_outputs;
    /** Input columns for fresh-stimulus generation. */
    std::vector<trace::Column> input_cols;
    /** Reset prefix rows replayed before fresh random rows. */
    size_t warmup_rows = 2;
};

/** Append `fcase.trace_extra` fully-known random rows to the driving
 *  stimulus.  A richer driving trace leaves the repair synthesizer
 *  less room to overfit (a 14-row trace over a 4-bit input space is
 *  easy to satisfy with a wrong expression; 64 extra rows are not). */
void
extendStimulus(Materialized &m, const FuzzCase &fcase)
{
    if (fcase.trace_extra == 0)
        return;
    Rng rng(fcase.trace_seed ^ 0x7ace'5eedull);
    trace::StimulusBuilder sb(m.input_cols);
    std::vector<std::string> names;
    for (const auto &col : m.input_cols)
        names.push_back(col.name);
    for (const auto &row : m.stim.rows) {
        for (size_t i = 0; i < names.size(); ++i)
            sb.setValue(names[i], row[i]);
        sb.step();
    }
    trace::randomRows(sb, names, fcase.trace_extra, rng);
    m.stim = sb.finish();
}

Materialized
materialize(const FuzzCase &fcase, const FuzzConfig &config)
{
    Materialized m;
    // `gen:<seed>` pins generator version 1, `gen2:<seed>` version 2;
    // a corpus entry must replay the exact design it was found on.
    if (startsWith(fcase.design, "gen:") ||
        startsWith(fcase.design, "gen2:")) {
        bool v2 = startsWith(fcase.design, "gen2:");
        uint64_t gen_seed =
            std::stoull(fcase.design.substr(v2 ? 5 : 4));
        GeneratedDesign gen = generateDesign(gen_seed, v2 ? 2 : 1);
        m.owned = verilog::parse(gen.source);
        m.golden = &m.owned.top();
        m.clock = gen.clock;
        size_t cycles = fcase.trace_cycles
                            ? fcase.trace_cycles
                            : config.gen_trace_cycles;
        m.stim = generateStimulus(gen, cycles, gen_seed);
        m.input_cols = gen.inputs;
        extendStimulus(m, fcase);
        return m;
    }
    const benchmarks::BenchmarkDef *def =
        benchmarks::find(fcase.design);
    check(def != nullptr, "fuzz: unknown design: " + fcase.design);
    const benchmarks::LoadedBenchmark &lb = benchmarks::load(*def);
    m.golden = lb.golden;
    m.library = lb.golden_lib;
    m.clock = def->clock;
    m.x_policy = def->x_policy;
    m.hidden_outputs = def->hidden_outputs;
    m.stim = benchmarks::makeStimulus(def->stimulus_id);
    if (fcase.trace_cycles > 0 &&
        fcase.trace_cycles < m.stim.rows.size())
        m.stim.rows.resize(fcase.trace_cycles);
    m.input_cols = m.stim.inputs;
    m.warmup_rows = std::min<size_t>(4, m.stim.rows.size());
    extendStimulus(m, fcase);
    return m;
}

void
maskHiddenOutputs(trace::IoTrace &tb,
                  const std::vector<std::string> &hidden)
{
    for (const auto &name : hidden) {
        int idx = tb.outputIndex(name);
        if (idx < 0)
            continue;
        for (auto &row : tb.output_rows)
            row[idx] = bv::Value::allX(row[idx].width());
    }
}

/**
 * Fresh stimulus for the co-simulation check: the first few rows of
 * the driving stimulus (so designs come out of reset the intended
 * way), then fully-known random rows.
 */
trace::InputSequence
freshStimulus(const Materialized &m, size_t cycles, uint64_t seed)
{
    Rng rng(seed ^ 0xf5e5'1000ull);
    trace::StimulusBuilder sb(m.input_cols);
    std::vector<std::string> names;
    for (const auto &col : m.input_cols)
        names.push_back(col.name);
    size_t warmup = std::min(m.warmup_rows, m.stim.rows.size());
    for (size_t row = 0; row < warmup; ++row) {
        for (size_t i = 0; i < m.input_cols.size(); ++i)
            sb.setValue(names[i], m.stim.rows[row][i]);
        sb.step();
    }
    if (cycles > warmup)
        trace::randomRows(sb, names, cycles - warmup, rng);
    return sb.finish();
}

std::string
describeReplay(const sim::ReplayResult &r)
{
    return format("cycle %zu, output %s", r.first_failure,
                  r.failed_output.c_str());
}

/**
 * True when the mutant fails the driving trace under the repair
 * tool's own synthesis semantics (the interpreter over the elaborated
 * IR).  A mutant that passes carries a bug the fault model cannot
 * observe — e.g. a sensitivity-list edit, which elaboration erases —
 * so asking the pipeline to repair it is a category error, not an
 * overfit (paper §6: simulation-vs-synthesis semantics gap).
 */
bool
mutantVisibleToTool(const Module &mutant, const Materialized &m,
                    const trace::IoTrace &tb, uint64_t seed)
{
    try {
        elaborate::ElaborateOptions eo;
        eo.library = m.library;
        ir::TransitionSystem sys = elaborate::elaborate(mutant, eo);
        sim::SimOptions so;
        so.init_policy = m.x_policy;
        so.input_policy = m.x_policy;
        so.seed = seed;
        sim::Interpreter interp(sys, so);
        return !sim::replay(interp, tb).passed;
    } catch (const std::exception &) {
        return true;  // not synthesizable — the pipeline will see that
    }
}

} // namespace

const char *
toString(RunClass cls)
{
    switch (cls) {
      case RunClass::RepairedVerified: return "REPAIRED_VERIFIED";
      case RunClass::RepairedOverfit:  return "REPAIRED_OVERFIT";
      case RunClass::NoRepair:         return "NO_REPAIR";
      case RunClass::MutantBenign:     return "MUTANT_BENIGN";
      case RunClass::MutantInvisible:  return "MUTANT_INVISIBLE";
      case RunClass::PipelineFault:    return "PIPELINE_FAULT";
      case RunClass::OracleMismatch:   return "ORACLE_MISMATCH";
    }
    return "UNKNOWN";
}

std::optional<RunClass>
runClassFromString(const std::string &name)
{
    static const RunClass all[] = {
        RunClass::RepairedVerified, RunClass::RepairedOverfit,
        RunClass::NoRepair,         RunClass::MutantBenign,
        RunClass::MutantInvisible,  RunClass::PipelineFault,
        RunClass::OracleMismatch,
    };
    for (RunClass cls : all) {
        if (name == toString(cls))
            return cls;
    }
    return std::nullopt;
}

bool
isFailure(RunClass cls)
{
    return cls == RunClass::RepairedOverfit ||
           cls == RunClass::PipelineFault ||
           cls == RunClass::OracleMismatch;
}

CorpusEntry
FuzzCase::toCorpus() const
{
    CorpusEntry entry;
    entry.design = design;
    entry.mutations = mutations;
    entry.mutator = mutator;
    entry.trace_cycles = trace_cycles;
    entry.trace_extra = trace_extra;
    entry.trace_seed = trace_seed;
    entry.fresh_cycles = fresh_cycles;
    entry.fresh_seed = fresh_seed;
    return entry;
}

FuzzCase
FuzzCase::fromCorpus(const CorpusEntry &entry)
{
    FuzzCase fcase;
    fcase.design = entry.design;
    fcase.mutations = entry.mutations;
    fcase.mutator = entry.mutator;
    fcase.trace_cycles = entry.trace_cycles;
    fcase.trace_extra = entry.trace_extra;
    fcase.trace_seed = entry.trace_seed;
    fcase.fresh_cycles = entry.fresh_cycles;
    fcase.fresh_seed = entry.fresh_seed;
    return fcase;
}

std::string
outcomeFingerprint(const repair::RepairOutcome &outcome,
                   bool include_solver_stats)
{
    std::ostringstream out;
    out << "status=" << static_cast<int>(outcome.status)
        << " changes=" << outcome.changes
        << " preprocess=" << outcome.preprocess_changes
        << " by_pre=" << outcome.by_preprocessing
        << " none_needed=" << outcome.no_repair_needed
        << " template=" << outcome.template_name
        << " first_failure=" << outcome.first_failure
        << " window=" << outcome.window_past << "/"
        << outcome.window_future
        << " degraded=" << outcome.degraded << "\n";
    for (const auto &cand : outcome.candidates) {
        const repair::WindowStat &w = cand.window;
        out << cand.template_name << " k=" << w.k_past << "/"
            << w.k_future << " " << w.status
            << " changes=" << w.changes;
        if (include_solver_stats) {
            out << " aig=" << w.aig_nodes
                << " conflicts=" << w.conflicts
                << " props=" << w.propagations
                << " restarts=" << w.restarts
                << " learnt=" << w.learnt_peak;
        }
        out << "\n";
    }
    if (outcome.repaired)
        out << verilog::print(*outcome.repaired);
    return out.str();
}

CaseResult
runCase(const FuzzCase &fcase, const FuzzConfig &config)
{
    Stopwatch watch;
    CaseResult result;
    std::ostringstream detail;
    try {
        Materialized m = materialize(fcase, config);

        // 1. Golden oracle trace, and the oracle's self-check: the
        //    unmutated design must reproduce its own recording.
        trace::IoTrace tb;
        try {
            tb = sim::recordTrace(config.sim_backend, *m.golden,
                                  m.library, m.clock, m.stim);
            maskHiddenOutputs(tb, m.hidden_outputs);
            sim::ReplayResult self = sim::replayTrace(
                config.sim_backend, *m.golden, m.library, m.clock,
                tb);
            if (!self.passed) {
                result.cls = RunClass::OracleMismatch;
                result.detail =
                    "golden fails own trace: " + describeReplay(self);
                result.seconds = watch.seconds();
                return result;
            }
        } catch (const std::exception &e) {
            result.cls = RunClass::OracleMismatch;
            result.detail =
                std::string("oracle threw on golden: ") + e.what();
            result.seconds = watch.seconds();
            return result;
        }

        // 2. Inject the recorded bugs.
        auto mutant = m.golden->clone();
        std::vector<std::string> descs;
        for (uint64_t subseed : fcase.mutations) {
            cirfix::MutationResult mr =
                cirfix::applyMutation(*mutant, subseed, fcase.mutator);
            mutant = std::move(mr.mod);
            descs.push_back(mr.description);
        }
        detail << "mutations: " << join(descs, "; ");

        // 3. A mutant that still satisfies the trace carries no
        //    observable bug to repair.
        bool broke;
        try {
            broke = !sim::replayTrace(config.sim_backend, *mutant,
                                      m.library, m.clock, tb)
                         .passed;
        } catch (const std::exception &) {
            broke = true;  // unsimulatable counts as broken
        }
        if (!broke) {
            result.cls = RunClass::MutantBenign;
            result.detail = detail.str();
            result.seconds = watch.seconds();
            return result;
        }

        // 3b. A bug only the event simulator can see is outside the
        //     repair tool's synthesis-semantics fault model; running
        //     the pipeline on it could only ever "overfit".
        if (!mutantVisibleToTool(*mutant, m, tb, fcase.fresh_seed)) {
            result.cls = RunClass::MutantInvisible;
            detail << "; bug invisible under synthesis semantics";
            result.detail = detail.str();
            result.seconds = watch.seconds();
            return result;
        }

        // 4. The full repair pipeline.  Everything it throws is a
        //    containment violation — the driver's contract is to
        //    report, not to raise.
        repair::RepairConfig rc;
        rc.timeout_seconds = config.repair_timeout;
        rc.x_policy = m.x_policy;
        rc.seed = fcase.fresh_seed;
        rc.jobs = config.jobs == 0 ? 1 : config.jobs;
        rc.engine.incremental = config.incremental;
        rc.engine.sim_backend = config.sim_backend;
        repair::RepairOutcome outcome;
        try {
            outcome =
                repair::repairDesign(*mutant, m.library, tb, rc);
        } catch (const std::exception &e) {
            result.cls = RunClass::PipelineFault;
            detail << "; pipeline threw: " << e.what();
            result.detail = detail.str();
            result.seconds = watch.seconds();
            return result;
        }
        result.fingerprint = outcomeFingerprint(outcome);

        if (config.check_determinism) {
            try {
                repair::RepairOutcome again =
                    repair::repairDesign(*mutant, m.library, tb, rc);
                repair::RepairConfig cross = rc;
                cross.jobs = rc.jobs == 1 ? 4 : 1;
                repair::RepairOutcome other =
                    repair::repairDesign(*mutant, m.library, tb,
                                         cross);
                if (outcomeFingerprint(again) != result.fingerprint ||
                    outcomeFingerprint(other) != result.fingerprint) {
                    result.cls = RunClass::PipelineFault;
                    detail << "; nondeterministic RepairOutcome "
                              "(rerun or jobs=1 vs jobs=4)";
                    result.detail = detail.str();
                    result.seconds = watch.seconds();
                    return result;
                }
            } catch (const std::exception &e) {
                result.cls = RunClass::PipelineFault;
                detail << "; determinism re-run threw: " << e.what();
                result.detail = detail.str();
                result.seconds = watch.seconds();
                return result;
            }
        }

        if (outcome.status !=
            repair::RepairOutcome::Status::Repaired) {
            result.cls = RunClass::NoRepair;
            detail << "; pipeline: " << outcome.detail;
            result.detail = detail.str();
            result.seconds = watch.seconds();
            return result;
        }

        // 5. Cross-check the claimed repair: first the driving trace
        //    under true event semantics, then golden-vs-repaired
        //    co-simulation on fresh random stimulus.
        const Module &rep = *outcome.repaired;
        try {
            sim::ReplayResult drive = sim::replayTrace(
                config.sim_backend, rep, m.library, m.clock, tb);
            if (!drive.passed) {
                result.cls = RunClass::RepairedOverfit;
                detail << "; repair fails driving trace under the "
                          "oracle simulator: "
                       << describeReplay(drive);
                result.detail = detail.str();
                result.seconds = watch.seconds();
                return result;
            }
            // One fresh stimulus per batch slot; slot 0 reproduces
            // the classic single-stimulus check exactly.
            size_t batch = config.fresh_batch < 1
                               ? 1
                               : static_cast<size_t>(
                                     config.fresh_batch);
            std::vector<trace::InputSequence> fresh;
            fresh.reserve(batch);
            for (size_t i = 0; i < batch; ++i) {
                fresh.push_back(freshStimulus(m, fcase.fresh_cycles,
                                              fcase.fresh_seed + i));
            }
            std::vector<const trace::InputSequence *> fresh_ptrs;
            for (const auto &f : fresh)
                fresh_ptrs.push_back(&f);
            std::vector<trace::IoTrace> fresh_tbs =
                sim::recordTraceBatch(config.sim_backend, *m.golden,
                                      m.library, m.clock, fresh_ptrs);
            for (auto &fresh_tb : fresh_tbs)
                maskHiddenOutputs(fresh_tb, m.hidden_outputs);
            std::vector<const trace::IoTrace *> tb_ptrs;
            for (const auto &fresh_tb : fresh_tbs)
                tb_ptrs.push_back(&fresh_tb);
            std::vector<sim::ReplayResult> cos = sim::replayTraceBatch(
                config.sim_backend, rep, m.library, m.clock, tb_ptrs);
            result.cls = RunClass::RepairedVerified;
            for (size_t i = 0; i < cos.size(); ++i) {
                if (cos[i].passed)
                    continue;
                result.cls = RunClass::RepairedOverfit;
                detail << "; diverges from golden on fresh stimulus";
                if (batch > 1)
                    detail << " (seed " << fcase.fresh_seed + i << ")";
                detail << ": " << describeReplay(cos[i]);
                break;
            }
        } catch (const std::exception &e) {
            result.cls = RunClass::RepairedOverfit;
            detail << "; repaired design unsimulatable: " << e.what();
        }
        result.detail = detail.str();
    } catch (const FatalError &) {
        throw;  // unknown design name etc. — caller error, not a run
    } catch (const std::exception &e) {
        result.cls = RunClass::PipelineFault;
        result.detail = std::string("harness: ") + e.what();
    }
    result.seconds = watch.seconds();
    return result;
}

FuzzCase
reduceCase(const FuzzCase &fcase, const FuzzConfig &config,
           RunClass target, int max_trials)
{
    int trials = 0;
    auto still_fails = [&](const FuzzCase &cand) {
        if (trials >= max_trials)
            return false;
        ++trials;
        return runCase(cand, config).cls == target;
    };

    FuzzCase best = fcase;

    // 1. Drop mutations one at a time to a fixed point.
    bool progress = true;
    while (progress && best.mutations.size() > 1) {
        progress = false;
        for (size_t i = 0; i < best.mutations.size(); ++i) {
            FuzzCase cand = best;
            cand.mutations.erase(cand.mutations.begin() +
                                 static_cast<long>(i));
            if (still_fails(cand)) {
                best = cand;
                progress = true;
                break;
            }
        }
    }

    // 2. Shed the extra random driving rows, then shrink the base
    //    trace by halving, while the class holds.
    while (best.trace_extra > 0) {
        FuzzCase cand = best;
        cand.trace_extra = best.trace_extra / 2;
        if (!still_fails(cand))
            break;
        best = cand;
    }
    size_t full =
        materialize(best, config).stim.rows.size() - best.trace_extra;
    size_t len = best.trace_cycles ? best.trace_cycles : full;
    while (len > 4) {
        FuzzCase cand = best;
        cand.trace_cycles = len / 2;
        if (!still_fails(cand))
            break;
        best = cand;
        len = cand.trace_cycles;
    }

    // 3. Shrink the fresh co-simulation stimulus the same way.
    while (best.fresh_cycles > 8) {
        FuzzCase cand = best;
        cand.fresh_cycles = best.fresh_cycles / 2;
        if (!still_fails(cand))
            break;
        best = cand;
    }
    return best;
}

size_t
FuzzStats::count(RunClass cls) const
{
    auto it = counts.find(cls);
    return it == counts.end() ? 0 : it->second;
}

bool
FuzzStats::ok(const std::vector<RunClass> &fail_on) const
{
    for (RunClass cls : fail_on) {
        if (count(cls) > 0)
            return false;
    }
    return true;
}

std::string
FuzzStats::summary() const
{
    std::ostringstream out;
    static const RunClass order[] = {
        RunClass::RepairedVerified, RunClass::RepairedOverfit,
        RunClass::NoRepair,         RunClass::MutantBenign,
        RunClass::MutantInvisible,  RunClass::PipelineFault,
        RunClass::OracleMismatch,
    };
    size_t total = 0;
    for (RunClass cls : order) {
        out << format("%-18s %6zu\n", toString(cls), count(cls));
        total += count(cls);
    }
    out << format("%-18s %6zu\n", "total", total);
    return out.str();
}

FuzzStats
fuzz(const FuzzConfig &config, std::ostream *log)
{
    const std::vector<std::string> &pool =
        config.designs.empty() ? defaultPool() : config.designs;
    Rng rng(config.seed);
    FuzzStats stats;
    for (size_t run = 0; run < config.runs; ++run) {
        FuzzCase fcase;
        if (rng.chance(config.gen_probability)) {
            fcase.design =
                "gen2:" + std::to_string(rng.next() & 0xffff);
        } else {
            fcase.design = pool[rng.below(pool.size())];
        }
        fcase.mutator = cirfix::kMutatorVersion;
        size_t n_mut = 1 + rng.below(static_cast<uint64_t>(
                               std::max(1, config.max_mutations)));
        for (size_t i = 0; i < n_mut; ++i)
            fcase.mutations.push_back(rng.next());
        fcase.fresh_cycles = config.fresh_cycles;
        fcase.fresh_seed = rng.next();
        if (config.extra_trace_cycles > 0) {
            fcase.trace_extra = config.extra_trace_cycles;
            fcase.trace_seed = rng.next();
        }

        CaseResult result = runCase(fcase, config);
        stats.counts[result.cls]++;
        if (log) {
            *log << format("run %4zu  %-12s %-18s %6.2fs  ",
                           run, fcase.design.c_str(),
                           toString(result.cls), result.seconds)
                 << result.detail << "\n";
        }
        if (!isFailure(result.cls))
            continue;

        FuzzCase reduced =
            config.reduce ? reduceCase(fcase, config, result.cls)
                          : fcase;
        CaseResult rr =
            config.reduce ? runCase(reduced, config) : result;
        // Reduction must never lose the failure; fall back if the
        // trial budget ran out mid-shrink.
        if (rr.cls != result.cls) {
            reduced = fcase;
            rr = result;
        }
        stats.failures.emplace_back(reduced, rr);
        if (!config.corpus_dir.empty()) {
            CorpusEntry entry = reduced.toCorpus();
            entry.found = toString(rr.cls);
            entry.expect = toString(rr.cls);
            entry.note = format("found by fuzz --seed %llu, run %zu",
                                static_cast<unsigned long long>(
                                    config.seed),
                                run);
            std::string name = format(
                "%s_%s_s%llu_r%zu.fuzz",
                startsWith(reduced.design, "gen:") ||
                        startsWith(reduced.design, "gen2:")
                    ? "gen"
                    : reduced.design.c_str(),
                toString(rr.cls),
                static_cast<unsigned long long>(config.seed), run);
            entry.store(config.corpus_dir + "/" + name);
            stats.corpus_written++;
        }
    }
    if (log)
        *log << stats.summary();
    return stats;
}

} // namespace rtlrepair::fuzz
