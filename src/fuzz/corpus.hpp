/**
 * @file
 * On-disk corpus of minimized fuzz reproducers.
 *
 * Every failure the differential harness finds is reduced and written
 * as one `*.fuzz` file of `key = value` lines; checked-in entries
 * under tests/corpus/ are replayed by ctest so found bugs become
 * permanent regressions.  A file is self-contained: the design is
 * named (registry benchmark) or derived from a seed (`gen:<seed>`),
 * and the injected bugs are recorded as replayable mutation
 * sub-seeds.
 *
 * Format (v1):
 *
 *     # free-form comment lines
 *     design = counter_k1        | gen:42
 *     mutations = 7301,992       # applyMutation sub-seeds, in order
 *     mutator = 2                # operator-set version (absent = 1)
 *     trace_cycles = 12          # driving-trace prefix (0 = full)
 *     trace_extra = 0            # extra random driving rows appended
 *     trace_seed = 0             # seed for the extra rows
 *     fresh_cycles = 64          # co-simulation stimulus length
 *     fresh_seed = 1
 *     found = REPAIRED_OVERFIT   # classification when first found
 *     expect = REPAIRED_OVERFIT  # classification the replay asserts
 *     note = minimized from seed 17, run 140
 */
#ifndef RTLREPAIR_FUZZ_CORPUS_HPP
#define RTLREPAIR_FUZZ_CORPUS_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace rtlrepair::fuzz {

struct CorpusEntry
{
    std::string design;
    std::vector<uint64_t> mutations;
    /** cirfix mutation operator-set version the sub-seeds replay
     *  under (see cirfix::kMutatorVersion); absent in v1 files. */
    int mutator = 1;
    size_t trace_cycles = 0;
    size_t trace_extra = 0;
    uint64_t trace_seed = 0;
    size_t fresh_cycles = 64;
    uint64_t fresh_seed = 1;
    std::string found;
    std::string expect;
    std::string note;

    std::string serialize() const;
    /** Parse the key=value form; throws FatalError on bad input. */
    static CorpusEntry parse(const std::string &text);
    static CorpusEntry load(const std::string &path);
    void store(const std::string &path) const;
};

/** Sorted paths of every `*.fuzz` file directly under @p dir. */
std::vector<std::string> listCorpus(const std::string &dir);

} // namespace rtlrepair::fuzz

#endif // RTLREPAIR_FUZZ_CORPUS_HPP
