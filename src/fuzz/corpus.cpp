#include "fuzz/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace rtlrepair::fuzz {

std::string
CorpusEntry::serialize() const
{
    std::ostringstream out;
    out << "# rtlrepair fuzz reproducer (see src/fuzz/corpus.hpp)\n";
    out << "design = " << design << "\n";
    std::vector<std::string> subs;
    for (uint64_t m : mutations)
        subs.push_back(std::to_string(m));
    out << "mutations = " << join(subs, ",") << "\n";
    if (mutator != 1)
        out << "mutator = " << mutator << "\n";
    out << "trace_cycles = " << trace_cycles << "\n";
    if (trace_extra > 0) {
        out << "trace_extra = " << trace_extra << "\n";
        out << "trace_seed = " << trace_seed << "\n";
    }
    out << "fresh_cycles = " << fresh_cycles << "\n";
    out << "fresh_seed = " << fresh_seed << "\n";
    out << "found = " << found << "\n";
    out << "expect = " << expect << "\n";
    if (!note.empty())
        out << "note = " << note << "\n";
    return out.str();
}

CorpusEntry
CorpusEntry::parse(const std::string &text)
{
    CorpusEntry entry;
    bool saw_design = false;
    for (std::string_view line : split(text, '\n')) {
        line = trim(line);
        if (line.empty() || line[0] == '#')
            continue;
        size_t eq = line.find('=');
        check(eq != std::string_view::npos,
              "corpus entry: expected `key = value`, got: " +
                  std::string(line));
        std::string key(trim(line.substr(0, eq)));
        std::string value(trim(line.substr(eq + 1)));
        if (key == "design") {
            entry.design = value;
            saw_design = true;
        } else if (key == "mutations") {
            for (std::string_view part : split(value, ',')) {
                part = trim(part);
                if (part.empty())
                    continue;
                entry.mutations.push_back(
                    std::stoull(std::string(part)));
            }
        } else if (key == "mutator") {
            entry.mutator = std::stoi(value);
        } else if (key == "trace_cycles") {
            entry.trace_cycles = std::stoull(value);
        } else if (key == "trace_extra") {
            entry.trace_extra = std::stoull(value);
        } else if (key == "trace_seed") {
            entry.trace_seed = std::stoull(value);
        } else if (key == "fresh_cycles") {
            entry.fresh_cycles = std::stoull(value);
        } else if (key == "fresh_seed") {
            entry.fresh_seed = std::stoull(value);
        } else if (key == "found") {
            entry.found = value;
        } else if (key == "expect") {
            entry.expect = value;
        } else if (key == "note") {
            entry.note = value;
        } else {
            fatal("corpus entry: unknown key: " + key);
        }
    }
    check(saw_design, "corpus entry: missing `design`");
    return entry;
}

CorpusEntry
CorpusEntry::load(const std::string &path)
{
    std::ifstream in(path);
    check(in.good(), "cannot open corpus entry: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
        return parse(buf.str());
    } catch (const FatalError &e) {
        fatal(path + ": " + e.what());
    }
}

void
CorpusEntry::store(const std::string &path) const
{
    std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    std::ofstream out(path);
    check(out.good(), "cannot write corpus entry: " + path);
    out << serialize();
}

std::vector<std::string>
listCorpus(const std::string &dir)
{
    std::vector<std::string> paths;
    std::error_code ec;
    for (const auto &de :
         std::filesystem::directory_iterator(dir, ec)) {
        if (de.path().extension() == ".fuzz")
            paths.push_back(de.path().string());
    }
    std::sort(paths.begin(), paths.end());
    return paths;
}

} // namespace rtlrepair::fuzz
