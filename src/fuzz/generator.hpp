/**
 * @file
 * Seeded generator of small random synthesizable Verilog modules.
 *
 * The differential fuzzer needs designs nobody hand-picked: a
 * generated module exercises the parser, elaborator, simulators, and
 * repair templates on shapes outside the benchmark suite.  Every
 * module is a pure function of the seed, so a failing case replays
 * from its corpus entry alone.
 *
 * Generated designs are conservative by construction so that the
 * *golden* module is always well-defined under all three execution
 * engines: complete if/else chains (no accidental latches),
 * synchronous reset of every register, continuous assigns that read
 * only registers and inputs (no combinational cycles).
 */
#ifndef RTLREPAIR_FUZZ_GENERATOR_HPP
#define RTLREPAIR_FUZZ_GENERATOR_HPP

#include <cstdint>
#include <string>

#include "trace/io_trace.hpp"
#include "verilog/ast.hpp"

namespace rtlrepair::fuzz {

/** A generated design plus the port metadata the harness needs. */
struct GeneratedDesign
{
    std::string source;        ///< Verilog text (parse to use)
    std::string top;           ///< module name
    std::string clock;         ///< always "clk"
    std::vector<trace::Column> inputs;  ///< non-clock inputs
};

/**
 * Generator emission versions.  Corpus entries pin the version their
 * design was produced under (`gen:<seed>` = 1, `gen2:<seed>` = 2) so
 * a recorded bug replays byte-identically forever even as the
 * generator grows:
 *
 *  - 1: the core subset (always blocks, continuous assigns).
 *  - 2: adds write-enable memories, generate-for blocks, and
 *       function calls, each present with independent probability.
 */
constexpr int kGeneratorVersion = 2;

/**
 * Generate a module from @p seed.  The result always parses and
 * elaborates (the generator validates internally and derives a new
 * layout from the seed until it does).
 */
GeneratedDesign generateDesign(uint64_t seed,
                               int version = kGeneratorVersion);

/**
 * A random driving stimulus for @p design: a reset pulse followed by
 * fully-known random input rows (pure function of @p seed).
 */
trace::InputSequence generateStimulus(const GeneratedDesign &design,
                                      size_t cycles, uint64_t seed);

} // namespace rtlrepair::fuzz

#endif // RTLREPAIR_FUZZ_GENERATOR_HPP
