#include "trace/stimulus.hpp"

#include "util/logging.hpp"

namespace rtlrepair::trace {

using bv::Value;

void
randomRows(StimulusBuilder &builder,
           const std::vector<std::string> &names, size_t cycles,
           Rng &rng)
{
    // Widths are validated inside setValue; look them up via a dry
    // build of one row at a time.
    for (size_t c = 0; c < cycles; ++c) {
        for (const auto &name : names) {
            // Width is unknown here; rely on 64-bit random and let
            // setValue's width check guide usage: fetch via finish()
            // would consume the builder, so widths must be <= 64.
            builder.set(name, rng.next());
        }
        builder.step();
    }
}

void
exhaustiveSweep(StimulusBuilder &builder,
                const std::vector<std::string> &names)
{
    check(names.size() <= 16, "sweep over too many inputs");
    // All swept inputs are treated as 1-bit unless set() truncates.
    size_t total = names.size();
    for (uint64_t v = 0; v < (1ull << total); ++v) {
        for (size_t i = 0; i < names.size(); ++i)
            builder.set(names[i], (v >> i) & 1u);
        builder.step();
    }
}

} // namespace rtlrepair::trace
