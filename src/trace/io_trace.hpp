/**
 * @file
 * I/O traces — the testbench format RTL-Repair consumes (paper §3).
 *
 * An IoTrace is a table with one row per clock cycle and one column
 * per input and expected output.  An X bit means:
 *  - for inputs: the testbench did not constrain this value,
 *  - for outputs: the value is not checked at this cycle.
 */
#ifndef RTLREPAIR_TRACE_IO_TRACE_HPP
#define RTLREPAIR_TRACE_IO_TRACE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "bv/value.hpp"

namespace rtlrepair::trace {

/** Column description. */
struct Column
{
    std::string name;
    uint32_t width = 1;
};

/** Input-only stimulus: what the testbench drives. */
struct InputSequence
{
    std::vector<Column> inputs;
    /** rows[cycle][input]; X bits are unconstrained. */
    std::vector<std::vector<bv::Value>> rows;

    size_t length() const { return rows.size(); }
    int columnIndex(const std::string &name) const;
};

/** Full I/O trace: stimulus plus expected outputs. */
struct IoTrace
{
    std::vector<Column> inputs;
    std::vector<Column> outputs;
    std::vector<std::vector<bv::Value>> input_rows;
    std::vector<std::vector<bv::Value>> output_rows;

    size_t length() const { return input_rows.size(); }
    int inputIndex(const std::string &name) const;
    int outputIndex(const std::string &name) const;

    /** The stimulus part of this trace. */
    InputSequence stimulus() const;

    /** Serialize to CSV (`in:name` / `out:name` header). */
    std::string toCsv() const;
    /** Parse the CSV form; throws FatalError on malformed input. */
    static IoTrace fromCsv(const std::string &text);
};

/**
 * Convenient incremental construction of an input sequence.  Values
 * not set in a row default to the previous row's value (X on row 0).
 */
class StimulusBuilder
{
  public:
    explicit StimulusBuilder(std::vector<Column> inputs);

    /** Set a named input for the pending row. */
    StimulusBuilder &set(const std::string &name, uint64_t value);
    StimulusBuilder &setValue(const std::string &name,
                              const bv::Value &value);
    /** Leave a named input unconstrained (X) in the pending row. */
    StimulusBuilder &unset(const std::string &name);
    /** Commit the pending row @p repeat times. */
    StimulusBuilder &step(size_t repeat = 1);

    InputSequence finish();

  private:
    InputSequence _seq;
    std::vector<bv::Value> _pending;
};

} // namespace rtlrepair::trace

#endif // RTLREPAIR_TRACE_IO_TRACE_HPP
