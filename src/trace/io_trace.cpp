#include "trace/io_trace.hpp"

#include <sstream>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace rtlrepair::trace {

using bv::Value;

namespace {

int
findColumn(const std::vector<Column> &cols, const std::string &name)
{
    for (size_t i = 0; i < cols.size(); ++i) {
        if (cols[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

} // namespace

int
InputSequence::columnIndex(const std::string &name) const
{
    return findColumn(inputs, name);
}

int
IoTrace::inputIndex(const std::string &name) const
{
    return findColumn(inputs, name);
}

int
IoTrace::outputIndex(const std::string &name) const
{
    return findColumn(outputs, name);
}

InputSequence
IoTrace::stimulus() const
{
    InputSequence seq;
    seq.inputs = inputs;
    seq.rows = input_rows;
    return seq;
}

std::string
IoTrace::toCsv() const
{
    std::ostringstream out;
    bool first = true;
    for (const auto &col : inputs) {
        if (!first)
            out << ",";
        out << "in:" << col.name;
        first = false;
    }
    for (const auto &col : outputs) {
        if (!first)
            out << ",";
        out << "out:" << col.name;
        first = false;
    }
    out << "\n";
    for (size_t row = 0; row < length(); ++row) {
        first = true;
        for (const auto &v : input_rows[row]) {
            if (!first)
                out << ",";
            out << "b" << v.toBinaryString();
            first = false;
        }
        for (const auto &v : output_rows[row]) {
            if (!first)
                out << ",";
            out << "b" << v.toBinaryString();
            first = false;
        }
        out << "\n";
    }
    return out.str();
}

IoTrace
IoTrace::fromCsv(const std::string &text)
{
    IoTrace trace;
    std::vector<std::string> lines = split(text, '\n');
    if (lines.empty())
        fatal("empty trace CSV");

    std::vector<bool> is_input;
    for (const auto &cell : split(lines[0], ',')) {
        std::string_view name = trim(cell);
        if (startsWith(name, "in:")) {
            trace.inputs.push_back(
                Column{std::string(name.substr(3)), 1});
            is_input.push_back(true);
        } else if (startsWith(name, "out:")) {
            trace.outputs.push_back(
                Column{std::string(name.substr(4)), 1});
            is_input.push_back(false);
        } else {
            fatal("trace column must be prefixed in:/out:: " +
                  std::string(name));
        }
    }

    for (size_t li = 1; li < lines.size(); ++li) {
        if (trim(lines[li]).empty())
            continue;
        std::vector<std::string> cells = split(lines[li], ',');
        if (cells.size() != is_input.size())
            fatal(format("trace row %zu has %zu cells, expected %zu",
                         li, cells.size(), is_input.size()));
        std::vector<Value> in_row, out_row;
        for (size_t ci = 0; ci < cells.size(); ++ci) {
            std::string cell(trim(cells[ci]));
            Value v;
            if (!cell.empty() && (cell[0] == 'b' || cell[0] == 'B')) {
                std::string bits = cell.substr(1);
                v = Value::parseVerilog(
                    format("%zu'b%s", bits.size(), bits.c_str()));
            } else if (cell == "x" || cell == "X" || cell == "-") {
                v = Value::allX(1);
            } else {
                v = Value::parseVerilog(cell);
            }
            if (is_input[ci])
                in_row.push_back(std::move(v));
            else
                out_row.push_back(std::move(v));
        }
        trace.input_rows.push_back(std::move(in_row));
        trace.output_rows.push_back(std::move(out_row));
    }

    // Infer column widths from the first row.
    if (!trace.input_rows.empty()) {
        for (size_t i = 0; i < trace.inputs.size(); ++i)
            trace.inputs[i].width = trace.input_rows[0][i].width();
        for (size_t i = 0; i < trace.outputs.size(); ++i)
            trace.outputs[i].width = trace.output_rows[0][i].width();
    }
    return trace;
}

StimulusBuilder::StimulusBuilder(std::vector<Column> inputs)
{
    _seq.inputs = std::move(inputs);
    for (const auto &col : _seq.inputs)
        _pending.push_back(Value::allX(col.width));
}

StimulusBuilder &
StimulusBuilder::set(const std::string &name, uint64_t value)
{
    int idx = _seq.columnIndex(name);
    check(idx >= 0, "unknown stimulus input: " + name);
    _pending[idx] = Value::fromUint(_seq.inputs[idx].width, value);
    return *this;
}

StimulusBuilder &
StimulusBuilder::setValue(const std::string &name, const Value &value)
{
    int idx = _seq.columnIndex(name);
    check(idx >= 0, "unknown stimulus input: " + name);
    check(value.width() == _seq.inputs[idx].width,
          "stimulus width mismatch for " + name);
    _pending[idx] = value;
    return *this;
}

StimulusBuilder &
StimulusBuilder::unset(const std::string &name)
{
    int idx = _seq.columnIndex(name);
    check(idx >= 0, "unknown stimulus input: " + name);
    _pending[idx] = Value::allX(_seq.inputs[idx].width);
    return *this;
}

StimulusBuilder &
StimulusBuilder::step(size_t repeat)
{
    for (size_t i = 0; i < repeat; ++i)
        _seq.rows.push_back(_pending);
    return *this;
}

InputSequence
StimulusBuilder::finish()
{
    return std::move(_seq);
}

} // namespace rtlrepair::trace
