/**
 * @file
 * Reusable stimulus generators for benchmark testbenches: reset
 * pulses, random vectors, and exhaustive sweeps.
 */
#ifndef RTLREPAIR_TRACE_STIMULUS_HPP
#define RTLREPAIR_TRACE_STIMULUS_HPP

#include "trace/io_trace.hpp"
#include "util/rng.hpp"

namespace rtlrepair::trace {

/**
 * Append @p cycles rows of uniformly random values for the listed
 * inputs (others keep their pending value).
 */
void randomRows(StimulusBuilder &builder,
                const std::vector<std::string> &names, size_t cycles,
                Rng &rng);

/**
 * Append one row per value in [0, 2^total_width) distributing the
 * counter bits across @p names (LSB-first), i.e. an exhaustive sweep.
 */
void exhaustiveSweep(StimulusBuilder &builder,
                     const std::vector<std::string> &names);

} // namespace rtlrepair::trace

#endif // RTLREPAIR_TRACE_STIMULUS_HPP
