/**
 * @file
 * Hash-consing builder for transition systems.
 *
 * All expression constructors deduplicate structurally identical nodes
 * and apply light constant folding, which keeps the unrolled SMT
 * queries small (the paper's yosys flow gets the same effect from its
 * `opt` passes).
 */
#ifndef RTLREPAIR_IR_BUILDER_HPP
#define RTLREPAIR_IR_BUILDER_HPP

#include <unordered_map>

#include "ir/transition_system.hpp"

namespace rtlrepair::ir {

/** Incrementally builds a TransitionSystem. */
class Builder
{
  public:
    explicit Builder(std::string name);

    /** @name Leaves @{ */
    NodeRef constant(const bv::Value &value);
    NodeRef constantUint(uint32_t width, uint64_t value);
    NodeRef input(const std::string &name, uint32_t width);
    NodeRef synthVar(const std::string &name, uint32_t width,
                     bool is_phi);
    NodeRef state(const std::string &name, uint32_t width);
    /** @} */

    /** Set the next-state function of @p state_ref. */
    void setNext(NodeRef state_ref, NodeRef next);
    /** Set the reset/init value of @p state_ref. */
    void setInit(NodeRef state_ref, const bv::Value &value);

    /** @name Operators (with folding) @{ */
    NodeRef unary(NodeKind kind, NodeRef a);
    NodeRef binary(NodeKind kind, NodeRef a, NodeRef b);
    NodeRef ite(NodeRef cond, NodeRef then_ref, NodeRef else_ref);
    NodeRef slice(NodeRef a, uint32_t hi, uint32_t lo);
    NodeRef concat(NodeRef high, NodeRef low);
    NodeRef zext(NodeRef a, uint32_t width);
    NodeRef sext(NodeRef a, uint32_t width);
    /** Zero-extend or truncate to @p width. */
    NodeRef resize(NodeRef a, uint32_t width);
    /** Reduce to a 1-bit truth value (redor), unless already 1 bit. */
    NodeRef truthy(NodeRef a);
    NodeRef notOf(NodeRef a) { return unary(NodeKind::Not, a); }
    /** @} */

    void addOutput(const std::string &name, NodeRef ref);
    void nameSignal(const std::string &name, NodeRef ref);

    uint32_t widthOf(NodeRef ref) const { return _sys.nodes[ref].width; }

    /** Finish: type-check and return the system. */
    TransitionSystem finish();

    /** Access while building (e.g. for templates). */
    TransitionSystem &system() { return _sys; }

  private:
    NodeRef append(Node node);
    /** Fold if all operands are constants; kNullRef otherwise. */
    NodeRef tryFold(const Node &node);
    const bv::Value *asConst(NodeRef ref) const;

    TransitionSystem _sys;
    std::unordered_map<uint64_t, std::vector<NodeRef>> _dedup;
    std::unordered_map<size_t, std::vector<uint32_t>> _const_dedup;
};

} // namespace rtlrepair::ir

#endif // RTLREPAIR_IR_BUILDER_HPP
