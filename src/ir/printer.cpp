#include "ir/printer.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace rtlrepair::ir {

std::string
print(const TransitionSystem &sys)
{
    std::ostringstream out;
    out << "; transition system " << sys.name << "\n";
    for (NodeRef ref = 0; ref < sys.nodes.size(); ++ref) {
        const Node &n = sys.nodes[ref];
        out << ref << " " << nodeKindName(n.kind) << " " << n.width;
        switch (n.kind) {
          case NodeKind::Const:
            out << " " << sys.consts[n.index].toVerilogLiteral();
            break;
          case NodeKind::Input:
            out << " " << sys.inputs[n.index].name;
            break;
          case NodeKind::SynthVar:
            out << " " << sys.synth_vars[n.index].name;
            break;
          case NodeKind::State:
            out << " " << sys.states[n.index].name;
            break;
          case NodeKind::Slice:
            out << " " << n.args[0] << " " << n.a << " " << n.b;
            break;
          default: {
            int arity = nodeArity(n.kind);
            for (int i = 0; i < arity; ++i)
                out << " " << n.args[i];
            break;
          }
        }
        out << "\n";
    }
    for (const auto &s : sys.states) {
        out << "; state " << s.name << " next=" << s.next;
        if (s.init)
            out << " init=" << s.init->toVerilogLiteral();
        out << "\n";
    }
    for (const auto &o : sys.outputs)
        out << "; output " << o.name << " = " << o.ref << "\n";
    return out.str();
}

} // namespace rtlrepair::ir
