#include "ir/builder.hpp"

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace rtlrepair::ir {

using bv::Value;

namespace {

/** Structural hash of a node (for hash-consing). */
uint64_t
nodeHash(const Node &node)
{
    uint64_t h = static_cast<uint64_t>(node.kind) * 0x9e3779b97f4a7c15ull;
    auto mix = [&h](uint64_t v) {
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    mix(node.width);
    mix(node.args[0]);
    mix(node.args[1]);
    mix(node.args[2]);
    mix(node.a);
    mix(node.b);
    mix(node.index);
    return h;
}

bool
sameNode(const Node &x, const Node &y)
{
    return x.kind == y.kind && x.width == y.width &&
           x.args[0] == y.args[0] && x.args[1] == y.args[1] &&
           x.args[2] == y.args[2] && x.a == y.a && x.b == y.b &&
           x.index == y.index;
}

} // namespace

Builder::Builder(std::string name)
{
    _sys.name = std::move(name);
}

NodeRef
Builder::append(Node node)
{
    uint64_t h = nodeHash(node);
    auto &bucket = _dedup[h];
    for (NodeRef ref : bucket) {
        if (sameNode(_sys.nodes[ref], node))
            return ref;
    }
    NodeRef ref = static_cast<NodeRef>(_sys.nodes.size());
    _sys.nodes.push_back(node);
    bucket.push_back(ref);
    return ref;
}

const Value *
Builder::asConst(NodeRef ref) const
{
    const Node &n = _sys.nodes[ref];
    return n.kind == NodeKind::Const ? &_sys.consts[n.index] : nullptr;
}

NodeRef
Builder::constant(const Value &value)
{
    size_t h = value.hash();
    auto &bucket = _const_dedup[h];
    for (uint32_t idx : bucket) {
        if (_sys.consts[idx] == value) {
            Node node;
            node.kind = NodeKind::Const;
            node.width = value.width();
            node.index = idx;
            return append(node);
        }
    }
    uint32_t idx = static_cast<uint32_t>(_sys.consts.size());
    _sys.consts.push_back(value);
    bucket.push_back(idx);
    Node node;
    node.kind = NodeKind::Const;
    node.width = value.width();
    node.index = idx;
    return append(node);
}

NodeRef
Builder::constantUint(uint32_t width, uint64_t value)
{
    return constant(Value::fromUint(width, value));
}

NodeRef
Builder::input(const std::string &name, uint32_t width)
{
    check(_sys.inputIndex(name) < 0, "duplicate input: " + name);
    Node node;
    node.kind = NodeKind::Input;
    node.width = width;
    node.index = static_cast<uint32_t>(_sys.inputs.size());
    NodeRef ref = append(node);
    _sys.inputs.push_back(InputInfo{name, width, ref});
    return ref;
}

NodeRef
Builder::synthVar(const std::string &name, uint32_t width, bool is_phi)
{
    check(_sys.synthVarIndex(name) < 0, "duplicate synth var: " + name);
    Node node;
    node.kind = NodeKind::SynthVar;
    node.width = width;
    node.index = static_cast<uint32_t>(_sys.synth_vars.size());
    NodeRef ref = append(node);
    _sys.synth_vars.push_back(SynthVarInfo{name, width, is_phi, ref});
    return ref;
}

NodeRef
Builder::state(const std::string &name, uint32_t width)
{
    check(_sys.stateIndex(name) < 0, "duplicate state: " + name);
    Node node;
    node.kind = NodeKind::State;
    node.width = width;
    node.index = static_cast<uint32_t>(_sys.states.size());
    NodeRef ref = append(node);
    StateInfo info;
    info.name = name;
    info.width = width;
    info.ref = ref;
    _sys.states.push_back(std::move(info));
    return ref;
}

void
Builder::setNext(NodeRef state_ref, NodeRef next)
{
    const Node &n = _sys.nodes[state_ref];
    check(n.kind == NodeKind::State, "setNext on non-state");
    _sys.states[n.index].next = next;
}

void
Builder::setInit(NodeRef state_ref, const Value &value)
{
    const Node &n = _sys.nodes[state_ref];
    check(n.kind == NodeKind::State, "setInit on non-state");
    _sys.states[n.index].init = value;
}

NodeRef
Builder::tryFold(const Node &node)
{
    int arity = nodeArity(node.kind);
    const Value *vals[3] = {nullptr, nullptr, nullptr};
    for (int i = 0; i < arity; ++i) {
        vals[i] = asConst(node.args[i]);
        if (!vals[i])
            return kNullRef;
    }
    return constant(evalOp(node, vals[0], vals[1], vals[2]));
}

NodeRef
Builder::unary(NodeKind kind, NodeRef a)
{
    Node node;
    node.kind = kind;
    node.args[0] = a;
    switch (kind) {
      case NodeKind::Not:
      case NodeKind::Neg:
        node.width = widthOf(a);
        break;
      case NodeKind::RedAnd:
      case NodeKind::RedOr:
      case NodeKind::RedXor:
        node.width = 1;
        break;
      default:
        panic("unary: bad kind");
    }
    // not(not(x)) == x
    if (kind == NodeKind::Not &&
        _sys.nodes[a].kind == NodeKind::Not) {
        return _sys.nodes[a].args[0];
    }
    if (widthOf(a) == 1 &&
        (kind == NodeKind::RedAnd || kind == NodeKind::RedOr)) {
        return a;
    }
    NodeRef folded = tryFold(node);
    return folded != kNullRef ? folded : append(node);
}

NodeRef
Builder::binary(NodeKind kind, NodeRef a, NodeRef b)
{
    check(widthOf(a) == widthOf(b),
          format("binary %s: operand width mismatch (%u vs %u)",
                 nodeKindName(kind), widthOf(a), widthOf(b)));
    Node node;
    node.kind = kind;
    node.args[0] = a;
    node.args[1] = b;
    switch (kind) {
      case NodeKind::Eq:
      case NodeKind::Ult:
      case NodeKind::Ule:
      case NodeKind::Slt:
      case NodeKind::Sle:
        node.width = 1;
        break;
      case NodeKind::Concat:
        panic("use concat()");
      default:
        node.width = widthOf(a);
        break;
    }

    // Identity folds that matter for template machinery.
    const Value *ca = asConst(a);
    const Value *cb = asConst(b);
    switch (kind) {
      case NodeKind::And:
        if (ca && ca->isZero())
            return a;
        if (cb && cb->isZero())
            return b;
        if (ca && !ca->hasX() && (~*ca).isZero())
            return b;
        if (cb && !cb->hasX() && (~*cb).isZero())
            return a;
        if (a == b)
            return a;
        break;
      case NodeKind::Or:
        if (ca && ca->isZero())
            return b;
        if (cb && cb->isZero())
            return a;
        if (ca && !ca->hasX() && (~*ca).isZero())
            return a;
        if (cb && !cb->hasX() && (~*cb).isZero())
            return b;
        if (a == b)
            return a;
        break;
      case NodeKind::Xor:
        if (ca && ca->isZero())
            return b;
        if (cb && cb->isZero())
            return a;
        break;
      case NodeKind::Add:
        if (ca && ca->isZero())
            return b;
        if (cb && cb->isZero())
            return a;
        break;
      case NodeKind::Sub:
        if (cb && cb->isZero())
            return a;
        break;
      default:
        break;
    }

    NodeRef folded = tryFold(node);
    return folded != kNullRef ? folded : append(node);
}

NodeRef
Builder::ite(NodeRef cond, NodeRef then_ref, NodeRef else_ref)
{
    check(widthOf(cond) == 1, "ite condition must be 1 bit");
    check(widthOf(then_ref) == widthOf(else_ref),
          "ite arm width mismatch");
    const Value *cv = asConst(cond);
    if (cv && !cv->hasX())
        return cv->isNonZero() ? then_ref : else_ref;
    if (then_ref == else_ref)
        return then_ref;
    Node node;
    node.kind = NodeKind::Ite;
    node.width = widthOf(then_ref);
    node.args[0] = cond;
    node.args[1] = then_ref;
    node.args[2] = else_ref;
    return append(node);
}

NodeRef
Builder::slice(NodeRef a, uint32_t hi, uint32_t lo)
{
    check(hi >= lo && hi < widthOf(a), "slice out of bounds");
    if (lo == 0 && hi == widthOf(a) - 1)
        return a;
    Node node;
    node.kind = NodeKind::Slice;
    node.width = hi - lo + 1;
    node.args[0] = a;
    node.a = hi;
    node.b = lo;
    NodeRef folded = tryFold(node);
    return folded != kNullRef ? folded : append(node);
}

NodeRef
Builder::concat(NodeRef high, NodeRef low)
{
    Node node;
    node.kind = NodeKind::Concat;
    node.width = widthOf(high) + widthOf(low);
    node.args[0] = high;
    node.args[1] = low;
    NodeRef folded = tryFold(node);
    return folded != kNullRef ? folded : append(node);
}

NodeRef
Builder::zext(NodeRef a, uint32_t width)
{
    if (width == widthOf(a))
        return a;
    check(width > widthOf(a), "zext must widen");
    Node node;
    node.kind = NodeKind::ZExt;
    node.width = width;
    node.args[0] = a;
    NodeRef folded = tryFold(node);
    return folded != kNullRef ? folded : append(node);
}

NodeRef
Builder::sext(NodeRef a, uint32_t width)
{
    if (width == widthOf(a))
        return a;
    check(width > widthOf(a), "sext must widen");
    Node node;
    node.kind = NodeKind::SExt;
    node.width = width;
    node.args[0] = a;
    NodeRef folded = tryFold(node);
    return folded != kNullRef ? folded : append(node);
}

NodeRef
Builder::resize(NodeRef a, uint32_t width)
{
    if (widthOf(a) == width)
        return a;
    if (widthOf(a) < width)
        return zext(a, width);
    return slice(a, width - 1, 0);
}

NodeRef
Builder::truthy(NodeRef a)
{
    if (widthOf(a) == 1)
        return a;
    return unary(NodeKind::RedOr, a);
}

void
Builder::addOutput(const std::string &name, NodeRef ref)
{
    check(_sys.outputIndex(name) < 0, "duplicate output: " + name);
    _sys.outputs.push_back(OutputInfo{name, ref});
}

void
Builder::nameSignal(const std::string &name, NodeRef ref)
{
    _sys.signals[name] = ref;
}

TransitionSystem
Builder::finish()
{
    _sys.typeCheck();
    return std::move(_sys);
}

} // namespace rtlrepair::ir
