#include "ir/transition_system.hpp"

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace rtlrepair::ir {

int
nodeArity(NodeKind kind)
{
    switch (kind) {
      case NodeKind::Const:
      case NodeKind::Input:
      case NodeKind::SynthVar:
      case NodeKind::State:
        return 0;
      case NodeKind::Not:
      case NodeKind::Neg:
      case NodeKind::RedAnd:
      case NodeKind::RedOr:
      case NodeKind::RedXor:
      case NodeKind::Slice:
      case NodeKind::ZExt:
      case NodeKind::SExt:
        return 1;
      case NodeKind::Ite:
        return 3;
      default:
        return 2;
    }
}

const char *
nodeKindName(NodeKind kind)
{
    switch (kind) {
      case NodeKind::Const: return "const";
      case NodeKind::Input: return "input";
      case NodeKind::SynthVar: return "synth";
      case NodeKind::State: return "state";
      case NodeKind::Not: return "not";
      case NodeKind::Neg: return "neg";
      case NodeKind::RedAnd: return "redand";
      case NodeKind::RedOr: return "redor";
      case NodeKind::RedXor: return "redxor";
      case NodeKind::And: return "and";
      case NodeKind::Or: return "or";
      case NodeKind::Xor: return "xor";
      case NodeKind::Add: return "add";
      case NodeKind::Sub: return "sub";
      case NodeKind::Mul: return "mul";
      case NodeKind::UDiv: return "udiv";
      case NodeKind::URem: return "urem";
      case NodeKind::Shl: return "sll";
      case NodeKind::LShr: return "srl";
      case NodeKind::AShr: return "sra";
      case NodeKind::Eq: return "eq";
      case NodeKind::Ult: return "ult";
      case NodeKind::Ule: return "ulte";
      case NodeKind::Slt: return "slt";
      case NodeKind::Sle: return "slte";
      case NodeKind::Concat: return "concat";
      case NodeKind::Slice: return "slice";
      case NodeKind::Ite: return "ite";
      case NodeKind::ZExt: return "uext";
      case NodeKind::SExt: return "sext";
    }
    return "?";
}

int
TransitionSystem::inputIndex(const std::string &target) const
{
    for (size_t i = 0; i < inputs.size(); ++i) {
        if (inputs[i].name == target)
            return static_cast<int>(i);
    }
    return -1;
}

int
TransitionSystem::outputIndex(const std::string &target) const
{
    for (size_t i = 0; i < outputs.size(); ++i) {
        if (outputs[i].name == target)
            return static_cast<int>(i);
    }
    return -1;
}

int
TransitionSystem::stateIndex(const std::string &target) const
{
    for (size_t i = 0; i < states.size(); ++i) {
        if (states[i].name == target)
            return static_cast<int>(i);
    }
    return -1;
}

int
TransitionSystem::synthVarIndex(const std::string &target) const
{
    for (size_t i = 0; i < synth_vars.size(); ++i) {
        if (synth_vars[i].name == target)
            return static_cast<int>(i);
    }
    return -1;
}

void
TransitionSystem::typeCheck() const
{
    for (NodeRef ref = 0; ref < nodes.size(); ++ref) {
        const Node &n = nodes[ref];
        check(n.width > 0, "node with zero width");
        int arity = nodeArity(n.kind);
        for (int i = 0; i < arity; ++i) {
            check(n.args[i] != kNullRef, "missing operand");
            check(n.args[i] < ref, "operand does not precede user");
        }
        auto aw = [&](int i) { return nodes[n.args[i]].width; };
        switch (n.kind) {
          case NodeKind::Const:
            check(n.index < consts.size(), "const index out of range");
            check(consts[n.index].width() == n.width,
                  "const width mismatch");
            break;
          case NodeKind::Input:
            check(n.index < inputs.size(), "input index out of range");
            break;
          case NodeKind::SynthVar:
            check(n.index < synth_vars.size(),
                  "synth var index out of range");
            break;
          case NodeKind::State:
            check(n.index < states.size(), "state index out of range");
            break;
          case NodeKind::Not:
          case NodeKind::Neg:
            check(aw(0) == n.width, "unary width mismatch");
            break;
          case NodeKind::RedAnd:
          case NodeKind::RedOr:
          case NodeKind::RedXor:
            check(n.width == 1, "reduction must be 1 bit");
            break;
          case NodeKind::Eq:
          case NodeKind::Ult:
          case NodeKind::Ule:
          case NodeKind::Slt:
          case NodeKind::Sle:
            check(n.width == 1, "comparison must be 1 bit");
            check(aw(0) == aw(1), "comparison operand mismatch");
            break;
          case NodeKind::Concat:
            check(n.width == aw(0) + aw(1), "concat width mismatch");
            break;
          case NodeKind::Slice:
            check(n.a >= n.b && n.a < aw(0), "bad slice bounds");
            check(n.width == n.a - n.b + 1, "slice width mismatch");
            break;
          case NodeKind::Ite:
            check(aw(0) == 1, "ite condition must be 1 bit");
            check(aw(1) == n.width && aw(2) == n.width,
                  "ite arm width mismatch");
            break;
          case NodeKind::ZExt:
          case NodeKind::SExt:
            check(n.width >= aw(0), "extension must not shrink");
            break;
          default:
            check(aw(0) == n.width && aw(1) == n.width,
                  "binary width mismatch");
            break;
        }
    }
    for (const auto &s : states) {
        check(s.ref != kNullRef, "state without node");
        check(s.next != kNullRef,
              "state without next function: " + s.name);
        check(nodes[s.next].width == s.width, "next width mismatch");
        if (s.init)
            check(s.init->width() == s.width, "init width mismatch");
    }
    for (const auto &o : outputs)
        check(o.ref != kNullRef, "output without node: " + o.name);
}

bv::Value
evalOp(const Node &node, const bv::Value *arg0, const bv::Value *arg1,
       const bv::Value *arg2)
{
    using bv::Value;
    switch (node.kind) {
      case NodeKind::Not: return ~*arg0;
      case NodeKind::Neg: return arg0->negate();
      case NodeKind::RedAnd: return arg0->redAnd();
      case NodeKind::RedOr: return arg0->redOr();
      case NodeKind::RedXor: return arg0->redXor();
      case NodeKind::And: return *arg0 & *arg1;
      case NodeKind::Or: return *arg0 | *arg1;
      case NodeKind::Xor: return *arg0 ^ *arg1;
      case NodeKind::Add: return *arg0 + *arg1;
      case NodeKind::Sub: return *arg0 - *arg1;
      case NodeKind::Mul: return *arg0 * *arg1;
      case NodeKind::UDiv: return arg0->udiv(*arg1);
      case NodeKind::URem: return arg0->urem(*arg1);
      case NodeKind::Shl: return arg0->shl(*arg1);
      case NodeKind::LShr: return arg0->lshr(*arg1);
      case NodeKind::AShr: return arg0->ashr(*arg1);
      case NodeKind::Eq: return arg0->eq(*arg1);
      case NodeKind::Ult: return arg0->ult(*arg1);
      case NodeKind::Ule: return arg0->ule(*arg1);
      case NodeKind::Slt: return arg0->slt(*arg1);
      case NodeKind::Sle: return arg0->sle(*arg1);
      case NodeKind::Concat: return arg0->concat(*arg1);
      case NodeKind::Slice: return arg0->slice(node.a, node.b);
      case NodeKind::Ite: return Value::ite(*arg0, *arg1, *arg2);
      case NodeKind::ZExt: return arg0->zext(node.width);
      case NodeKind::SExt: return arg0->sext(node.width);
      default:
        panic("evalOp called on a leaf node");
    }
}

} // namespace rtlrepair::ir
