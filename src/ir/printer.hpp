/**
 * @file
 * Debug printer producing a btor2-flavoured text rendering of a
 * transition system.
 */
#ifndef RTLREPAIR_IR_PRINTER_HPP
#define RTLREPAIR_IR_PRINTER_HPP

#include <string>

#include "ir/transition_system.hpp"

namespace rtlrepair::ir {

/** Render @p sys as one line per node plus state/output sections. */
std::string print(const TransitionSystem &sys);

} // namespace rtlrepair::ir

#endif // RTLREPAIR_IR_PRINTER_HPP
