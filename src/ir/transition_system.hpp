/**
 * @file
 * Word-level transition system IR — the role btor2 plays in the paper.
 *
 * A TransitionSystem is a hash-consed DAG of bit-vector expression
 * nodes plus:
 *  - inputs (fresh value every cycle),
 *  - synthesis variables (φ/α, one value for the entire unrolling),
 *  - states (registers) with optional init values and a next-state
 *    expression,
 *  - named outputs.
 *
 * Node operands always precede their users in the node array, so a
 * single forward sweep evaluates one clock cycle (used by both the
 * simulator and the bit-blaster).
 */
#ifndef RTLREPAIR_IR_TRANSITION_SYSTEM_HPP
#define RTLREPAIR_IR_TRANSITION_SYSTEM_HPP

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bv/value.hpp"

namespace rtlrepair::ir {

using NodeRef = uint32_t;
constexpr NodeRef kNullRef = 0xffffffffu;

enum class NodeKind : uint8_t
{
    Const,     ///< constant value (index into const table)
    Input,     ///< per-cycle free input
    SynthVar,  ///< synthesis variable, constant across the unrolling
    State,     ///< register; current-cycle value

    // unary
    Not, Neg, RedAnd, RedOr, RedXor,
    // binary, same-width operands
    And, Or, Xor, Add, Sub, Mul, UDiv, URem,
    Shl, LShr, AShr,
    // binary comparisons, 1-bit result
    Eq, Ult, Ule, Slt, Sle,
    // structure
    Concat,   ///< arg0 = high bits, arg1 = low bits
    Slice,    ///< bits [a:b] of arg0
    Ite,      ///< arg0 ? arg1 : arg2 (arg0 is 1 bit)
    ZExt, SExt,
};

/** Number of expression operands a node kind takes. */
int nodeArity(NodeKind kind);

/** Mnemonic (btor2-flavoured) for printing. */
const char *nodeKindName(NodeKind kind);

/** A single IR node. */
struct Node
{
    NodeKind kind;
    uint32_t width = 0;
    NodeRef args[3] = {kNullRef, kNullRef, kNullRef};
    uint32_t a = 0;      ///< Slice msb
    uint32_t b = 0;      ///< Slice lsb
    uint32_t index = 0;  ///< table index for Const/Input/SynthVar/State
};

struct StateInfo
{
    std::string name;
    uint32_t width = 0;
    NodeRef ref = kNullRef;   ///< the State node
    NodeRef next = kNullRef;  ///< next-state expression
    std::optional<bv::Value> init;
};

struct InputInfo
{
    std::string name;
    uint32_t width = 0;
    NodeRef ref = kNullRef;
};

struct SynthVarInfo
{
    std::string name;
    uint32_t width = 0;
    bool is_phi = false;  ///< change-indicator variable (cost 1 when set)
    NodeRef ref = kNullRef;
};

struct OutputInfo
{
    std::string name;
    NodeRef ref = kNullRef;
};

/** The complete transition system for one elaborated design. */
class TransitionSystem
{
  public:
    std::string name;
    std::vector<Node> nodes;
    std::vector<bv::Value> consts;
    std::vector<StateInfo> states;
    std::vector<InputInfo> inputs;
    std::vector<SynthVarInfo> synth_vars;
    std::vector<OutputInfo> outputs;
    /** Elaborated signal name -> node, for OSDD and debugging. */
    std::map<std::string, NodeRef> signals;

    const Node &node(NodeRef ref) const { return nodes[ref]; }
    uint32_t width(NodeRef ref) const { return nodes[ref].width; }

    /** Index of the named input/output/state, or -1. */
    int inputIndex(const std::string &name) const;
    int outputIndex(const std::string &name) const;
    int stateIndex(const std::string &name) const;
    int synthVarIndex(const std::string &name) const;

    /** Validate width rules and operand ordering; panics on error. */
    void typeCheck() const;
};

/**
 * Evaluate one operator node given its operand values (4-state
 * semantics).  Shared by the simulator and the builder's folding.
 * Must not be called for leaf kinds (Const/Input/SynthVar/State).
 */
bv::Value evalOp(const Node &node, const bv::Value *arg0,
                 const bv::Value *arg1, const bv::Value *arg2);

} // namespace rtlrepair::ir

#endif // RTLREPAIR_IR_TRANSITION_SYSTEM_HPP
