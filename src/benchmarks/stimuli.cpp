#include "benchmarks/registry.hpp"

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace rtlrepair::benchmarks {

using trace::Column;
using trace::InputSequence;
using trace::StimulusBuilder;

namespace {

InputSequence
decoderStim(bool extended)
{
    StimulusBuilder sb({{"en", 1}, {"A", 1}, {"B", 1}, {"C", 1}});
    auto row = [&sb](uint64_t en, uint64_t a, uint64_t b, uint64_t c,
                     size_t n = 1) {
        sb.set("en", en).set("A", a).set("B", b).set("C", c).step(n);
    };
    if (extended) {
        // Every input combination, twice.
        for (int rep = 0; rep < 2; ++rep) {
            for (uint64_t v = 0; v < 16; ++v)
                row((v >> 3) & 1, (v >> 2) & 1, (v >> 1) & 1, v & 1);
        }
        return sb.finish();
    }
    // The original testbench: all disabled combinations plus a subset
    // of the enabled ones ({en,A,B,C} = 1101 and 1110 stay untested).
    for (uint64_t v = 0; v < 8; ++v)
        row(0, (v >> 2) & 1, (v >> 1) & 1, v & 1);
    const uint64_t abc[6] = {0, 1, 2, 3, 4, 7};
    for (int rep = 0; rep < 3; ++rep) {
        for (uint64_t v : abc)
            row(1, (v >> 2) & 1, (v >> 1) & 1, v & 1);
    }
    row(1, 0, 0, 0, 2);  // pad to 28 rows
    return sb.finish();
}

InputSequence
counterStim()
{
    StimulusBuilder sb({{"reset", 1}, {"enable", 1}});
    sb.set("reset", 1).set("enable", 0).step(2);
    sb.set("reset", 0).set("enable", 1).step(18);
    sb.set("enable", 0).step(3);
    sb.set("enable", 1).step(4);  // 27 cycles
    return sb.finish();
}

InputSequence
flopStim()
{
    StimulusBuilder sb({{"rstn", 1}, {"t", 1}});
    sb.set("rstn", 0).set("t", 0).step(2);
    const uint64_t pattern[9] = {1, 1, 0, 1, 0, 1, 1, 0, 1};
    sb.set("rstn", 1);
    for (uint64_t t : pattern)
        sb.set("t", t).step();  // 11 cycles
    return sb.finish();
}

InputSequence
fsmStim()
{
    // req_1 only ever changes together with req_0, so the fsm_s1
    // sensitivity-list bug does not manifest on this trace (matching
    // the paper, where fsm_s1 is repaired by preprocessing alone).
    StimulusBuilder sb({{"reset", 1}, {"req_0", 1}, {"req_1", 1}});
    auto phase = [&sb](uint64_t r0, uint64_t r1, size_t n) {
        sb.set("req_0", r0).set("req_1", r1).step(n);
    };
    sb.set("reset", 1).set("req_0", 0).set("req_1", 0).step(2);
    sb.set("reset", 0);
    phase(1, 0, 4);
    phase(0, 0, 3);
    phase(1, 1, 4);
    phase(0, 1, 4);
    phase(1, 0, 4);
    phase(0, 0, 4);
    phase(1, 1, 4);
    phase(0, 0, 4);
    phase(1, 0, 4);  // 37 cycles
    return sb.finish();
}

InputSequence
shiftStim()
{
    StimulusBuilder sb(
        {{"rstn", 1}, {"load_val", 8}, {"load_en", 1}});
    sb.set("rstn", 0).set("load_val", 0).set("load_en", 0).step(2);
    sb.set("rstn", 1).set("load_val", 0x5a).set("load_en", 1).step();
    sb.set("load_en", 0).step(10);
    sb.set("load_val", 0x81).set("load_en", 1).step();
    sb.set("load_en", 0).step(13);  // 27 cycles
    return sb.finish();
}

InputSequence
muxStim()
{
    Rng rng(0x4d55);
    StimulusBuilder sb(
        {{"a", 4}, {"b", 4}, {"c", 4}, {"d", 4}, {"sel", 2}});
    for (int i = 0; i < 151; ++i) {
        sb.set("a", rng.next()).set("b", rng.next());
        sb.set("c", rng.next()).set("d", rng.next());
        sb.set("sel", rng.next()).step();
    }
    return sb.finish();
}

InputSequence
i2cAddrStim()
{
    Rng rng(0x12c0);
    StimulusBuilder sb({{"byte_in", 8}, {"my_addr", 7}});
    uint64_t addr = 0x2a;
    sb.set("my_addr", addr);
    for (int i = 0; i < 24; ++i) {
        if (i % 6 == 5) {
            // Change only the address register: this is the event the
            // i2c_w1 sensitivity bug misses.
            addr = rng.next() & 0x7f;
            sb.set("my_addr", addr).step();
            continue;
        }
        uint64_t byte =
            rng.chance(0.5) ? ((addr << 1) | (rng.next() & 1))
                            : (rng.next() & 0xff);
        sb.set("byte_in", byte).step();
    }
    return sb.finish();
}

InputSequence
i2cLongStim()
{
    Rng rng(0x12c1);
    StimulusBuilder sb({{"rst", 1}, {"start", 1}, {"cmd", 8}});
    sb.set("rst", 1).set("start", 0).set("cmd", 0).step(3);
    sb.set("rst", 0);
    // Each transaction occupies ~110 cycles of serial activity plus
    // an idle gap; fill the paper's 171957-cycle testbench length.
    const size_t total = 171957;
    size_t used = 3;
    while (used + 120 <= total) {
        sb.set("start", 1).set("cmd", rng.next() & 0xff).step();
        sb.set("start", 0).step(119);
        used += 120;
    }
    while (used < total) {
        sb.step();
        ++used;
    }
    return sb.finish();
}

InputSequence
sha3Stim(size_t cycles)
{
    Rng rng(0x5a3);
    StimulusBuilder sb({{"reset", 1}, {"in", 32}, {"in_ready", 1},
                        {"is_last", 1}, {"out_ack", 1}});
    sb.set("reset", 1).set("in", 0).set("in_ready", 0);
    sb.set("is_last", 0).set("out_ack", 0).step(2);
    sb.set("reset", 0);
    size_t used = 2;
    bool burst = false;
    while (used + 16 <= cycles) {
        if (burst) {
            // Burst block: five back-to-back words; the fifth is
            // offered while the buffer is full, which only a correct
            // accept guard rejects (the sha3_s1 bug).
            for (int w = 0; w < 5; ++w) {
                sb.set("in", rng.next()).set("in_ready", 1).step();
                ++used;
            }
            sb.set("in_ready", 0).step(3);
            used += 3;
        } else {
            // Gapped block: the buffer becomes full on an idle cycle,
            // which exposes emission-timing bugs (sha3_w2).
            for (int w = 0; w < 4; ++w) {
                sb.set("in", rng.next()).set("in_ready", 1).step();
                sb.set("in_ready", 0).step();
                used += 2;
            }
        }
        burst = !burst;
        sb.step(4);
        sb.set("out_ack", 1).step();
        sb.set("out_ack", 0).step(3);
        used += 8;
    }
    while (used < cycles) {
        sb.step();
        ++used;
    }
    return sb.finish();
}

InputSequence
pairingStim()
{
    Rng rng(0x7a7e);
    StimulusBuilder sb({{"rst", 1}, {"start", 1}, {"a", 64},
                        {"b", 64}, {"report", 1}});
    sb.set("rst", 1).set("start", 0).set("a", 0).set("b", 0);
    sb.set("report", 0).step(3);
    sb.set("rst", 0);
    size_t used = 3;
    const size_t total = 74149;
    while (used + 80 <= total) {
        sb.set("start", 1)
            .setValue("a", bv::Value::random(64, rng))
            .setValue("b", bv::Value::random(64, rng))
            .step();
        sb.set("start", 0).step(69);
        used += 70;
    }
    // Final digest readout.
    sb.set("report", 1).step(total - used);
    return sb.finish();
}

InputSequence
reedStim()
{
    Rng rng(0x4eed);
    StimulusBuilder sb({{"rst", 1}, {"sym_in", 8}, {"sym_valid", 1},
                        {"block_end", 1}});
    sb.set("rst", 1).set("sym_in", 0).set("sym_valid", 0);
    sb.set("block_end", 0).step(3);
    sb.set("rst", 0);
    size_t used = 3;
    const size_t total = 166166;
    const size_t block = 3300;
    while (used + block + 2 <= total) {
        for (size_t i = 0; i < block; ++i) {
            sb.set("sym_in", rng.next() & 0xff)
                .set("sym_valid", 1)
                .step();
        }
        sb.set("sym_valid", 0).set("block_end", 1).step();
        sb.set("block_end", 0).step();
        used += block + 2;
    }
    while (used < total) {
        sb.step();
        ++used;
    }
    return sb.finish();
}

InputSequence
sdramStim()
{
    Rng rng(0x5d4a);
    StimulusBuilder sb(
        {{"rst_n", 1}, {"req", 1}, {"we", 1}, {"wdata", 16}});
    // Drive a nonzero write-data pattern during reset so the
    // sdram_w1 bug (rd_data_r loaded from wdata instead of cleared)
    // is observable.
    sb.set("rst_n", 0).set("req", 0).set("we", 0)
        .set("wdata", 0xbeef).step(3);
    sb.set("rst_n", 1).step(25);  // init sequence
    size_t used = 28;
    while (used + 8 <= 636) {
        bool write = rng.chance(0.6);
        sb.set("req", 1)
            .set("we", write ? 1 : 0)
            .set("wdata", rng.next() & 0xffff)
            .step();
        sb.set("req", 0).step(7);
        used += 8;
    }
    while (used < 636) {
        sb.step();
        ++used;
    }
    return sb.finish();
}

InputSequence
uartStim()
{
    Rng rng(0xd4);
    StimulusBuilder sb({{"rst", 1}, {"send", 1}, {"data", 8}});
    sb.set("rst", 1).set("send", 0).set("data", 0).step(2);
    sb.set("rst", 0);
    size_t used = 2;
    while (used + 46 <= 185) {
        sb.set("send", 1).set("data", rng.next() & 0xff).step();
        sb.set("send", 0).step(45);  // 10 baud periods of 4 + slack
        used += 46;
    }
    while (used < 185) {
        sb.step();
        ++used;
    }
    return sb.finish();
}

InputSequence
axisSwitchStim()
{
    Rng rng(0xa515);
    StimulusBuilder sb({{"int_tvalid", 6}, {"int_tready", 6},
                        {"select_0", 2}, {"select_1", 2},
                        {"route_0", 2}, {"route_1", 2},
                        {"route_2", 2}});
    for (int i = 0; i < 14; ++i) {
        sb.set("int_tvalid", rng.next());
        sb.set("int_tready", rng.next());
        sb.set("select_0", rng.below(3));
        sb.set("select_1", rng.below(3));
        sb.set("route_0", rng.below(2));
        sb.set("route_1", rng.below(2));
        sb.set("route_2", rng.below(2));
        sb.step();
    }
    return sb.finish();
}

InputSequence
fifoStim()
{
    StimulusBuilder sb({{"rst", 1}, {"in_valid", 1}, {"in_last", 1},
                        {"out_ready", 1}});
    sb.set("rst", 1).set("in_valid", 0).set("in_last", 0)
        .set("out_ready", 0).step(1);
    sb.set("rst", 0);
    // Fill beyond full to trigger a drop, then drain.
    sb.set("in_valid", 1).step(13);
    sb.set("in_valid", 0).set("out_ready", 1).step(2);  // 16 cycles
    return sb.finish();
}

InputSequence
frameFifoStim()
{
    StimulusBuilder sb({{"rst", 1}, {"in_valid", 1}, {"in_last", 1},
                        {"frame_bad", 1}});
    sb.set("rst", 1).set("in_valid", 0).set("in_last", 0)
        .set("frame_bad", 0).step(2);
    sb.set("rst", 0);
    // Good frame of 4 beats.
    sb.set("in_valid", 1).step(3);
    sb.set("in_last", 1).step();
    sb.set("in_last", 0);
    // Bad frame: drop_frame rises ...
    sb.set("frame_bad", 1).step();
    sb.set("frame_bad", 0).step(1);
    // ... and a reset pulse arrives mid-drop.  The D11 bug leaves
    // drop_frame (and the write pointer) uncleared here.
    sb.set("in_valid", 0).set("rst", 1).step();
    sb.set("rst", 0);
    // Another good frame after the reset.
    sb.set("in_valid", 1).step(3);
    sb.set("in_last", 1).step();
    sb.set("in_last", 0).set("in_valid", 0).step(2);  // 17 cycles
    return sb.finish();
}

InputSequence
pulseStim()
{
    StimulusBuilder sb({{"rst", 1}, {"trigger", 1}});
    sb.set("rst", 1).set("trigger", 0).step(1);
    sb.set("rst", 0).set("trigger", 1).step(1);
    sb.set("trigger", 0).step(4);  // 6 cycles
    return sb.finish();
}

InputSequence
sdspiStim(size_t total)
{
    Rng rng(0x5d5);
    StimulusBuilder sb(
        {{"rst", 1}, {"request", 1}, {"tx_byte", 8}});
    sb.set("rst", 1).set("request", 0).set("tx_byte", 0).step(2);
    sb.set("rst", 0);
    size_t used = 2;
    // Startup takes ~84 cycles (21 strobes at 1/4 rate).  One request
    // arrives *during* the hold-off: a correct controller ignores it,
    // which is exactly what the C3/C4 startup bugs corrupt.
    size_t startup_wait = total > 200 ? 100 : 2;
    if (total > 200) {
        sb.step(20);
        sb.set("request", 1).set("tx_byte", 0x3c).step(2);
        sb.set("request", 0).step(startup_wait - 22);
    } else {
        sb.step(startup_wait);
    }
    used += startup_wait;
    while (used + 50 <= total) {
        sb.set("request", 1).set("tx_byte", rng.next() & 0xff).step(2);
        sb.set("request", 0).step(48);
        used += 50;
    }
    while (used < total) {
        sb.step();
        ++used;
    }
    return sb.finish();
}

InputSequence
axiliteStim()
{
    StimulusBuilder sb({{"rstn", 1}, {"arvalid", 1}, {"rready", 1},
                        {"awvalid", 1}, {"wvalid", 1}, {"bready", 1}});
    sb.set("rstn", 0).set("arvalid", 0).set("rready", 0);
    sb.set("awvalid", 0).set("wvalid", 0).set("bready", 0).step(1);
    sb.set("rstn", 1);
    // Read with a slow master (rready low at first).
    sb.set("arvalid", 1).step(3);
    sb.set("rready", 1).step(2);
    sb.set("arvalid", 0).set("rready", 0).step(1);
    // Write transaction with a delayed response acknowledge and a
    // second request held while bvalid is pending (this is where the
    // S1.B protocol bugs become observable).
    sb.set("awvalid", 1).set("wvalid", 1).step(3);
    sb.step(2);
    sb.set("bready", 1).step(1);  // 13 cycles
    return sb.finish();
}

InputSequence
ptpStim(size_t total)
{
    StimulusBuilder sb({{"rst", 1}, {"drift_dir", 1}});
    sb.set("rst", 1).set("drift_dir", 0).step(2);
    sb.set("rst", 0).set("drift_dir", 1).step(total - 2);
    return sb.finish();
}

InputSequence
checksumStim()
{
    Rng rng(0xc5);
    StimulusBuilder sb(
        {{"rst", 1}, {"in_valid", 1}, {"in_data", 8}});
    sb.set("rst", 1).set("in_valid", 0).set("in_data", 0).step(1);
    sb.set("rst", 0);
    for (int i = 0; i < 6; ++i) {
        sb.set("in_valid", 1).set("in_data", 0x80 + (rng.next() & 0x7f))
            .step();
        sb.set("in_valid", 0).step();
    }
    return sb.finish();  // 13 cycles
}

InputSequence
regfileStim()
{
    Rng rng(0x4f11e);
    StimulusBuilder sb({{"rst", 1},
                        {"we", 1},
                        {"waddr", 2},
                        {"wdata", 8},
                        {"raddr", 2}});
    sb.set("rst", 1).set("we", 0).set("waddr", 0).set("wdata", 0)
        .set("raddr", 0).step(2);
    sb.set("rst", 0);
    for (int i = 0; i < 28; ++i) {
        sb.set("we", rng.next() & 1)
            .set("waddr", rng.next() & 3)
            .set("wdata", rng.next() & 0xff)
            .set("raddr", rng.next() & 3)
            .step();
    }
    return sb.finish();  // 30 cycles
}

InputSequence
onehotStim()
{
    StimulusBuilder sb({{"rst", 1}, {"en", 1}, {"sel", 2}});
    sb.set("rst", 1).set("en", 0).set("sel", 0).step(2);
    sb.set("rst", 0);
    for (uint64_t s = 0; s < 4; ++s) {
        sb.set("en", 1).set("sel", s).step();
        sb.set("en", 0).step();
    }
    sb.set("en", 1).set("sel", 2).step(2);
    return sb.finish();  // 12 cycles
}

InputSequence
lfsrStim()
{
    StimulusBuilder sb(
        {{"rst", 1}, {"en", 1}, {"load", 1}, {"seed", 4}});
    sb.set("rst", 1).set("en", 0).set("load", 0).set("seed", 0)
        .step(2);
    // Load a seed, run a full period, pause, reseed, run again.
    sb.set("rst", 0).set("load", 1).set("seed", 9).step();
    sb.set("load", 0).set("en", 1).step(16);
    sb.set("en", 0).step();
    sb.set("load", 1).set("seed", 5).step();
    sb.set("load", 0).set("en", 1).step(8);
    return sb.finish();  // 29 cycles
}

InputSequence
fifoMemStim()
{
    Rng rng(0xf1f0);
    StimulusBuilder sb(
        {{"rst", 1}, {"push", 1}, {"pop", 1}, {"din", 8}});
    sb.set("rst", 1).set("push", 0).set("pop", 0).set("din", 0)
        .step(2);
    sb.set("rst", 0);
    // Fill to the brim, drain to empty, then mixed traffic.
    for (uint64_t i = 0; i < 4; ++i)
        sb.set("push", 1).set("pop", 0).set("din", 0x10 + i).step();
    for (int i = 0; i < 4; ++i)
        sb.set("push", 0).set("pop", 1).step();
    for (int i = 0; i < 16; ++i) {
        sb.set("push", rng.next() & 1)
            .set("pop", rng.next() & 1)
            .set("din", rng.next() & 0xff)
            .step();
    }
    return sb.finish();  // 26 cycles
}

InputSequence
grayStim()
{
    StimulusBuilder sb({{"rst", 1}, {"en", 1}});
    sb.set("rst", 1).set("en", 0).step(2);
    sb.set("rst", 0).set("en", 1).step(17);  // wraps the counter
    sb.set("en", 0).step(2);
    sb.set("en", 1).step(4);
    return sb.finish();  // 25 cycles
}

} // namespace

InputSequence
makeStimulus(const std::string &id)
{
    if (id == "decoder")
        return decoderStim(false);
    if (id == "decoder_ext")
        return decoderStim(true);
    if (id == "counter")
        return counterStim();
    if (id == "flop")
        return flopStim();
    if (id == "fsm")
        return fsmStim();
    if (id == "shift")
        return shiftStim();
    if (id == "mux")
        return muxStim();
    if (id == "i2c_addr")
        return i2cAddrStim();
    if (id == "i2c_long")
        return i2cLongStim();
    if (id == "sha3")
        return sha3Stim(357);
    if (id == "sha3_short")
        return sha3Stim(129);
    if (id == "pairing")
        return pairingStim();
    if (id == "reed")
        return reedStim();
    if (id == "sdram")
        return sdramStim();
    if (id == "uart")
        return uartStim();
    if (id == "axis_switch")
        return axisSwitchStim();
    if (id == "fifo")
        return fifoStim();
    if (id == "frame_fifo")
        return frameFifoStim();
    if (id == "pulse")
        return pulseStim();
    if (id == "sdspi_long")
        return sdspiStim(523262);
    if (id == "sdspi_short")
        return sdspiStim(64);
    if (id == "axilite")
        return axiliteStim();
    if (id == "ptp_long")
        return ptpStim(523262);
    if (id == "ptp_short")
        return ptpStim(45);
    if (id == "checksum")
        return checksumStim();
    if (id == "regfile")
        return regfileStim();
    if (id == "onehot")
        return onehotStim();
    if (id == "lfsr")
        return lfsrStim();
    if (id == "fifo_mem")
        return fifoMemStim();
    if (id == "gray")
        return grayStim();
    fatal("unknown stimulus id: " + id);
}

} // namespace rtlrepair::benchmarks
