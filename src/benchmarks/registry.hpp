/**
 * @file
 * Benchmark registry: the re-authored CirFix benchmark suite (paper
 * Table 3) and the open-source bug set (paper Table 6), with their
 * testbench stimuli, golden designs, and per-bug metadata.
 *
 * Golden traces are recorded by simulating the ground-truth design
 * with 4-state semantics, so outputs that depend on uninitialized
 * registers appear as X (don't-care) — the same convention the paper
 * uses when it records I/O traces from concrete testbenches.
 */
#ifndef RTLREPAIR_BENCHMARKS_REGISTRY_HPP
#define RTLREPAIR_BENCHMARKS_REGISTRY_HPP

#include <optional>
#include <string>
#include <vector>

#include "sim/interpreter.hpp"
#include "trace/io_trace.hpp"
#include "verilog/ast.hpp"

namespace rtlrepair::benchmarks {

/** Static description of one benchmark bug. */
struct BenchmarkDef
{
    std::string name;           ///< short name, e.g. counter_k1
    std::string project;        ///< Table 3 project column
    std::string defect;         ///< Table 3 defect column
    std::string dir;            ///< path below benchmarks/
    std::string buggy_file;
    std::string golden_file = "golden.v";
    std::string top;            ///< top module name
    std::string clock;          ///< empty for combinational designs
    bool oss = false;           ///< part of the Table 6 set
    std::string oss_id;         ///< D8, C1, ...
    double timeout_seconds = 60.0;
    std::string stimulus_id;
    std::string extended_stimulus_id;  ///< optional
    /** Outputs masked to don't-care in the recorded trace. */
    std::vector<std::string> hidden_outputs;
    /** X policy the tool should use (paper §4.3). */
    sim::XPolicy x_policy = sim::XPolicy::Random;
};

/** All benchmarks, CirFix suite first, then the OSS set. */
const std::vector<BenchmarkDef> &all();

/** Find by short name; null if unknown. */
const BenchmarkDef *find(const std::string &name);

/** Absolute path of the benchmarks/ source directory. */
std::string benchmarkRoot();

/** A fully loaded benchmark: parsed designs plus recorded traces. */
struct LoadedBenchmark
{
    const BenchmarkDef *def = nullptr;
    verilog::SourceFile golden_src;
    verilog::SourceFile buggy_src;
    verilog::Module *golden = nullptr;
    verilog::Module *buggy = nullptr;
    std::vector<const verilog::Module *> golden_lib;
    std::vector<const verilog::Module *> buggy_lib;
    trace::IoTrace tb;
    std::optional<trace::IoTrace> extended_tb;
};

/**
 * Load and prepare a benchmark (parses the Verilog, simulates the
 * ground truth to record the I/O trace).  Results are cached per
 * process; the returned reference stays valid.
 */
const LoadedBenchmark &load(const BenchmarkDef &def);
const LoadedBenchmark &load(const std::string &name);

/** Build the stimulus sequence registered under @p id. */
trace::InputSequence makeStimulus(const std::string &id);

} // namespace rtlrepair::benchmarks

#endif // RTLREPAIR_BENCHMARKS_REGISTRY_HPP
