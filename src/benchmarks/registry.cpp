#include "benchmarks/registry.hpp"

#include <map>
#include <memory>

#include "elaborate/elaborate.hpp"
#include "util/logging.hpp"
#include "verilog/parser.hpp"

#ifndef RTLREPAIR_BENCHMARK_DIR
#define RTLREPAIR_BENCHMARK_DIR "benchmarks"
#endif

namespace rtlrepair::benchmarks {

std::string
benchmarkRoot()
{
    return RTLREPAIR_BENCHMARK_DIR;
}

const std::vector<BenchmarkDef> &
all()
{
    static const std::vector<BenchmarkDef> defs = [] {
        std::vector<BenchmarkDef> v;
        auto cf = [&v](BenchmarkDef def) {
            def.x_policy = sim::XPolicy::Random;
            v.push_back(std::move(def));
        };
        auto oss = [&v](BenchmarkDef def) {
            def.oss = true;
            def.timeout_seconds = 120.0;
            def.x_policy = sim::XPolicy::Zero;
            v.push_back(std::move(def));
        };

        // ---- CirFix suite (paper Table 3) -------------------------
        cf({.name = "decoder_w1", .project = "decoder 3-8",
            .defect = "Two separate numeric errors",
            .dir = "cirfix/decoder_3_8", .buggy_file = "decoder_w1.v",
            .top = "decoder_3_8", .clock = "",
            .stimulus_id = "decoder",
            .extended_stimulus_id = "decoder_ext"});
        cf({.name = "decoder_w2", .project = "decoder 3-8",
            .defect = "Incorrect assignment",
            .dir = "cirfix/decoder_3_8", .buggy_file = "decoder_w2.v",
            .top = "decoder_3_8", .clock = "",
            .stimulus_id = "decoder",
            .extended_stimulus_id = "decoder_ext"});
        cf({.name = "counter_w1", .project = "counter",
            .defect = "Incorrect sensitivity list",
            .dir = "cirfix/first_counter", .buggy_file = "counter_w1.v",
            .top = "first_counter", .clock = "clock",
            .stimulus_id = "counter"});
        cf({.name = "counter_k1", .project = "counter",
            .defect = "Incorrect reset",
            .dir = "cirfix/first_counter", .buggy_file = "counter_k1.v",
            .top = "first_counter", .clock = "clock",
            .stimulus_id = "counter"});
        cf({.name = "counter_w2", .project = "counter",
            .defect = "Incorrect incremental of counter",
            .dir = "cirfix/first_counter", .buggy_file = "counter_w2.v",
            .top = "first_counter", .clock = "clock",
            .stimulus_id = "counter"});
        cf({.name = "flop_w1", .project = "flip flop",
            .defect = "Incorrect conditional",
            .dir = "cirfix/tff", .buggy_file = "flop_w1.v",
            .top = "tff", .clock = "clk", .stimulus_id = "flop"});
        cf({.name = "flop_w2", .project = "flip flop",
            .defect = "Branches of if-statement swapped",
            .dir = "cirfix/tff", .buggy_file = "flop_w2.v",
            .top = "tff", .clock = "clk", .stimulus_id = "flop"});
        cf({.name = "fsm_w1", .project = "fsm full",
            .defect = "Incorrect case statement",
            .dir = "cirfix/fsm_full", .buggy_file = "fsm_w1.v",
            .top = "fsm_full", .clock = "clock", .stimulus_id = "fsm"});
        cf({.name = "fsm_s2", .project = "fsm full",
            .defect = "Incorrectly blocking assignments",
            .dir = "cirfix/fsm_full", .buggy_file = "fsm_s2.v",
            .top = "fsm_full", .clock = "clock", .stimulus_id = "fsm"});
        cf({.name = "fsm_w2", .project = "fsm full",
            .defect = "Assignment to next state and default in case "
                      "statement omitted",
            .dir = "cirfix/fsm_full", .buggy_file = "fsm_w2.v",
            .top = "fsm_full", .clock = "clock", .stimulus_id = "fsm"});
        cf({.name = "fsm_s1", .project = "fsm full",
            .defect = "Assignment to next state omitted, incorrect "
                      "sensitivity list",
            .dir = "cirfix/fsm_full", .buggy_file = "fsm_s1.v",
            .top = "fsm_full", .clock = "clock", .stimulus_id = "fsm"});
        cf({.name = "shift_w1", .project = "lshift reg",
            .defect = "Incorrect blocking assignment",
            .dir = "cirfix/lshift_reg", .buggy_file = "shift_w1.v",
            .top = "lshift_reg", .clock = "clk",
            .stimulus_id = "shift"});
        cf({.name = "shift_w2", .project = "lshift reg",
            .defect = "Incorrect conditional",
            .dir = "cirfix/lshift_reg", .buggy_file = "shift_w2.v",
            .top = "lshift_reg", .clock = "clk",
            .stimulus_id = "shift"});
        cf({.name = "shift_k1", .project = "lshift reg",
            .defect = "Incorrect sensitivity list",
            .dir = "cirfix/lshift_reg", .buggy_file = "shift_k1.v",
            .top = "lshift_reg", .clock = "clk",
            .stimulus_id = "shift"});
        cf({.name = "mux_k1", .project = "mux 4 1",
            .defect = "1 bit instead of 4 bit output",
            .dir = "cirfix/mux_4_1", .buggy_file = "mux_k1.v",
            .top = "mux_4_1", .clock = "", .stimulus_id = "mux"});
        cf({.name = "mux_w2", .project = "mux 4 1",
            .defect = "Hex instead of binary constants",
            .dir = "cirfix/mux_4_1", .buggy_file = "mux_w2.v",
            .top = "mux_4_1", .clock = "", .stimulus_id = "mux"});
        cf({.name = "mux_w1", .project = "mux 4 1",
            .defect = "Three separate numeric errors",
            .dir = "cirfix/mux_4_1", .buggy_file = "mux_w1.v",
            .top = "mux_4_1", .clock = "", .stimulus_id = "mux"});
        cf({.name = "i2c_w1", .project = "i2c",
            .defect = "Incorrect sensitivity list",
            .dir = "cirfix/i2c_master", .buggy_file = "i2c_w1.v",
            .golden_file = "i2c_addr_dec.v", .top = "i2c_addr_dec",
            .clock = "", .stimulus_id = "i2c_addr"});
        cf({.name = "i2c_w2", .project = "i2c",
            .defect = "Incorrect address assignment",
            .dir = "cirfix/i2c_master", .buggy_file = "i2c_w2.v",
            .golden_file = "i2c_addr_dec.v", .top = "i2c_addr_dec",
            .clock = "", .stimulus_id = "i2c_addr"});
        cf({.name = "i2c_k1", .project = "i2c",
            .defect = "No command acknowledgement",
            .dir = "cirfix/i2c_master", .buggy_file = "i2c_k1.v",
            .top = "i2c_master", .clock = "clk",
            .stimulus_id = "i2c_long"});
        cf({.name = "sha3_w1", .project = "sha3",
            .defect = "Off-by-one error in loop",
            .dir = "cirfix/sha3_pad", .buggy_file = "sha3_w1.v",
            .top = "sha3_pad", .clock = "clk", .stimulus_id = "sha3"});
        cf({.name = "sha3_r1", .project = "sha3",
            .defect = "Incorrect bitwise negation",
            .dir = "cirfix/sha3_pad", .buggy_file = "sha3_r1.v",
            .top = "sha3_pad", .clock = "clk", .stimulus_id = "sha3"});
        cf({.name = "sha3_w2", .project = "sha3",
            .defect = "Incorrect assignment to wires",
            .dir = "cirfix/sha3_pad", .buggy_file = "sha3_w2.v",
            .top = "sha3_pad", .clock = "clk", .stimulus_id = "sha3"});
        cf({.name = "sha3_s1", .project = "sha3",
            .defect = "Skipped buffer overflow check",
            .dir = "cirfix/sha3_pad", .buggy_file = "sha3_s1.v",
            .top = "sha3_pad", .clock = "clk",
            .stimulus_id = "sha3_short"});
        cf({.name = "pairing_w1", .project = "tate pairing",
            .defect = "Incorrect logic for bitshifting",
            .dir = "cirfix/tate_pairing", .buggy_file = "pairing_w1.v",
            .top = "tate_pairing", .clock = "clk",
            .stimulus_id = "pairing"});
        cf({.name = "pairing_k1", .project = "tate pairing",
            .defect = "Incorrect operator for bitshifting",
            .dir = "cirfix/tate_pairing", .buggy_file = "pairing_k1.v",
            .top = "tate_pairing", .clock = "clk",
            .stimulus_id = "pairing"});
        cf({.name = "pairing_w2", .project = "tate pairing",
            .defect = "Incorrect instantiation of modules",
            .dir = "cirfix/tate_pairing", .buggy_file = "pairing_w2.v",
            .top = "tate_pairing", .clock = "clk",
            .stimulus_id = "pairing"});
        cf({.name = "reed_b1", .project = "reed-solomon decoder",
            .defect = "Insufficient register size",
            .dir = "cirfix/reed_solomon", .buggy_file = "reed_b1.v",
            .top = "rs_decoder", .clock = "clk",
            .stimulus_id = "reed"});
        cf({.name = "reed_o1", .project = "reed-solomon decoder",
            .defect = "Incorrect sensitivity list for reset",
            .dir = "cirfix/reed_solomon", .buggy_file = "reed_o1.v",
            .top = "rs_decoder", .clock = "clk",
            .stimulus_id = "reed"});
        cf({.name = "sdram_w2", .project = "sdram-controller",
            .defect = "Numeric error in definitions",
            .dir = "cirfix/sdram_controller", .buggy_file = "sdram_w2.v",
            .top = "sdram_ctrl", .clock = "clk",
            .stimulus_id = "sdram"});
        cf({.name = "sdram_k2", .project = "sdram-controller",
            .defect = "Incorrect case statement",
            .dir = "cirfix/sdram_controller", .buggy_file = "sdram_k2.v",
            .top = "sdram_ctrl", .clock = "clk",
            .stimulus_id = "sdram"});
        cf({.name = "sdram_w1", .project = "sdram-controller",
            .defect = "Incorrect assignments to registers during "
                      "synchronous reset",
            .dir = "cirfix/sdram_controller", .buggy_file = "sdram_w1.v",
            .top = "sdram_ctrl", .clock = "clk",
            .stimulus_id = "sdram"});

        // ---- Open-source bug set (paper Table 6) ------------------
        oss({.name = "oss_d4", .project = "uart_tx",
             .defect = "Broad refactoring defect",
             .dir = "oss/uart_tx", .buggy_file = "d4.v",
             .top = "uart_tx", .clock = "clk", .oss_id = "D4",
             .stimulus_id = "uart"});
        oss({.name = "oss_d8", .project = "axis_switch",
             .defect = "Misindexing (swapped strides)",
             .dir = "oss/axis_switch", .buggy_file = "d8.v",
             .top = "axis_switch", .clock = "", .oss_id = "D8",
             .stimulus_id = "axis_switch"});
        oss({.name = "oss_d9", .project = "ptp_clock",
             .defect = "Inverted drift correction",
             .dir = "oss/ptp_clock", .buggy_file = "d9.v",
             .top = "ptp_clock", .clock = "clk", .oss_id = "D9",
             .stimulus_id = "ptp_long",
             .hidden_outputs = {"ns_count"}});
        oss({.name = "oss_d11", .project = "axis_frame_fifo",
             .defect = "Failure-to-update (reset)",
             .dir = "oss/axis_frame_fifo", .buggy_file = "d11.v",
             .top = "axis_frame_fifo", .clock = "clk", .oss_id = "D11",
             .stimulus_id = "frame_fifo"});
        oss({.name = "oss_d12", .project = "axis_fifo",
             .defect = "Failure-to-update (default)",
             .dir = "oss/axis_fifo", .buggy_file = "d12.v",
             .top = "axis_fifo", .clock = "clk", .oss_id = "D12",
             .stimulus_id = "fifo"});
        oss({.name = "oss_d13", .project = "pulse_gen",
             .defect = "Failure-to-update (trigger)",
             .dir = "oss/pulse_gen", .buggy_file = "d13.v",
             .top = "pulse_gen", .clock = "clk", .oss_id = "D13",
             .stimulus_id = "pulse"});
        oss({.name = "oss_c1", .project = "sdspi",
             .defect = "Deadlock (missing rate-limit conjunct)",
             .dir = "oss/sdspi", .buggy_file = "c1.v",
             .top = "sdspi", .clock = "clk", .oss_id = "C1",
             .stimulus_id = "sdspi_long"});
        oss({.name = "oss_c3", .project = "sdspi",
             .defect = "Startup sequence replaced",
             .dir = "oss/sdspi", .buggy_file = "c3.v",
             .top = "sdspi", .clock = "clk", .oss_id = "C3",
             .stimulus_id = "sdspi_long"});
        oss({.name = "oss_c4", .project = "sdspi",
             .defect = "Missing startup-hold conjunct",
             .dir = "oss/sdspi", .buggy_file = "c4.v",
             .top = "sdspi", .clock = "clk", .oss_id = "C4",
             .stimulus_id = "sdspi_short"});
        oss({.name = "oss_s1r", .project = "axilite",
             .defect = "Protocol violation (read channel)",
             .dir = "oss/axilite", .buggy_file = "s1r.v",
             .top = "axilite", .clock = "clk", .oss_id = "S1.R",
             .stimulus_id = "axilite"});
        oss({.name = "oss_s1b", .project = "axilite",
             .defect = "Protocol violation (write channel)",
             .dir = "oss/axilite", .buggy_file = "s1b.v",
             .top = "axilite", .clock = "clk", .oss_id = "S1.B",
             .stimulus_id = "axilite"});
        oss({.name = "oss_s2", .project = "ptp_clock",
             .defect = "Wrong clock period constant",
             .dir = "oss/ptp_clock", .buggy_file = "s2.v",
             .top = "ptp_clock", .clock = "clk", .oss_id = "S2",
             .stimulus_id = "ptp_short"});
        oss({.name = "oss_s3", .project = "checksum",
             .defect = "Wrong fold constants",
             .dir = "oss/checksum", .buggy_file = "s3.v",
             .top = "checksum", .clock = "clk", .oss_id = "S3",
             .stimulus_id = "checksum"});

        // ---- Subset-expansion set: memories, generate blocks, and
        // ---- functions, with bugs injected in the Table 6 style ---
        oss({.name = "oss_m1", .project = "regfile",
             .defect = "Inverted write enable",
             .dir = "oss/regfile", .buggy_file = "m1.v",
             .top = "regfile", .clock = "clk", .oss_id = "M1",
             .stimulus_id = "regfile"});
        oss({.name = "oss_m2", .project = "onehot_gen",
             .defect = "Numeric error in reset",
             .dir = "oss/onehot_gen", .buggy_file = "m2.v",
             .top = "onehot_gen", .clock = "clk", .oss_id = "M2",
             .stimulus_id = "onehot"});
        oss({.name = "oss_m3", .project = "lfsr_func",
             .defect = "Reset to the LFSR lockup state",
             .dir = "oss/lfsr_func", .buggy_file = "m3.v",
             .top = "lfsr_func", .clock = "clk", .oss_id = "M3",
             .stimulus_id = "lfsr"});
        oss({.name = "oss_m4", .project = "fifo_mem",
             .defect = "Off-by-one full threshold",
             .dir = "oss/fifo_mem", .buggy_file = "m4.v",
             .top = "fifo_mem", .clock = "clk", .oss_id = "M4",
             .stimulus_id = "fifo_mem"});
        oss({.name = "oss_m5", .project = "gray_step",
             .defect = "Wrong counter stride",
             .dir = "oss/gray_step", .buggy_file = "m5.v",
             .top = "gray_step", .clock = "clk", .oss_id = "M5",
             .stimulus_id = "gray"});
        return v;
    }();
    return defs;
}

const BenchmarkDef *
find(const std::string &name)
{
    for (const auto &def : all()) {
        if (def.name == name)
            return &def;
    }
    return nullptr;
}

namespace {

verilog::Module *
selectTop(verilog::SourceFile &file, const std::string &top,
          std::vector<const verilog::Module *> &library)
{
    verilog::Module *selected = nullptr;
    for (const auto &m : file.modules) {
        if (m->name == top) {
            selected = m.get();
        } else {
            library.push_back(m.get());
        }
    }
    check(selected != nullptr, "top module not found: " + top);
    return selected;
}

} // namespace

const LoadedBenchmark &
load(const BenchmarkDef &def)
{
    static std::map<std::string, std::unique_ptr<LoadedBenchmark>>
        cache;
    auto it = cache.find(def.name);
    if (it != cache.end())
        return *it->second;

    auto loaded = std::make_unique<LoadedBenchmark>();
    loaded->def = &def;
    std::string base = benchmarkRoot() + "/" + def.dir + "/";
    loaded->golden_src = verilog::parseFile(base + def.golden_file);
    loaded->buggy_src = verilog::parseFile(base + def.buggy_file);
    loaded->golden =
        selectTop(loaded->golden_src, def.top, loaded->golden_lib);
    loaded->buggy =
        selectTop(loaded->buggy_src, def.top, loaded->buggy_lib);

    // Record the golden trace with 4-state semantics (X = don't care).
    elaborate::ElaborateOptions opts;
    opts.library = loaded->golden_lib;
    ir::TransitionSystem golden_sys =
        elaborate::elaborate(*loaded->golden, opts);
    trace::InputSequence stim = makeStimulus(def.stimulus_id);
    sim::SimOptions sim_opts;
    sim_opts.init_policy = sim::XPolicy::Keep;
    sim_opts.input_policy = sim::XPolicy::Keep;
    loaded->tb = sim::record(golden_sys, stim, sim_opts);
    for (const auto &hidden : def.hidden_outputs) {
        int idx = loaded->tb.outputIndex(hidden);
        check(idx >= 0, "hidden output not found: " + hidden);
        for (auto &row : loaded->tb.output_rows) {
            row[idx] = bv::Value::allX(row[idx].width());
        }
    }
    if (!def.extended_stimulus_id.empty()) {
        trace::InputSequence ext =
            makeStimulus(def.extended_stimulus_id);
        loaded->extended_tb = sim::record(golden_sys, ext, sim_opts);
    }

    auto [slot, inserted] = cache.emplace(def.name, std::move(loaded));
    (void)inserted;
    return *slot->second;
}

const LoadedBenchmark &
load(const std::string &name)
{
    const BenchmarkDef *def = find(name);
    check(def != nullptr, "unknown benchmark: " + name);
    return load(*def);
}

} // namespace rtlrepair::benchmarks
