#include "gates/netlist.hpp"

#include "smt/bitblast.hpp"

namespace rtlrepair::gates {

size_t
GateNetlist::numGates() const
{
    size_t count = 0;
    for (uint32_t n = 0; n < aig.numNodes(); ++n) {
        if (aig.isAnd(n))
            ++count;
    }
    return count;
}

GateNetlist
lower(const ir::TransitionSystem &sys)
{
    GateNetlist net;
    net.sys = &sys;

    smt::CycleBindings bindings;
    for (const auto &st : sys.states) {
        net.state_words.push_back(
            smt::freshWord(net.aig, st.width));
    }
    for (const auto &in : sys.inputs) {
        net.input_words.push_back(
            smt::freshWord(net.aig, in.width));
    }
    for (const auto &sv : sys.synth_vars) {
        net.synth_words.push_back(
            smt::freshWord(net.aig, sv.width));
    }
    bindings.states = net.state_words;
    bindings.inputs = net.input_words;
    bindings.synth = net.synth_words;

    smt::CycleWords words = smt::blastCycle(net.aig, sys, bindings);
    net.next_words = std::move(words.next_states);
    net.output_words = std::move(words.outputs);
    return net;
}

} // namespace rtlrepair::gates
