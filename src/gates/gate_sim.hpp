/**
 * @file
 * 2-state simulator for gate-level netlists, used for the paper's
 * gate-level repair check: replay the original testbench against the
 * synthesized circuit.  Unknown trace inputs and uninitialized
 * flip-flops read as zero (hardware power-on is concrete; zero makes
 * the check deterministic).
 */
#ifndef RTLREPAIR_GATES_GATE_SIM_HPP
#define RTLREPAIR_GATES_GATE_SIM_HPP

#include "gates/netlist.hpp"
#include "sim/interpreter.hpp"
#include "trace/io_trace.hpp"

namespace rtlrepair::gates {

/** Evaluates a GateNetlist cycle by cycle. */
class GateSimulator
{
  public:
    explicit GateSimulator(const GateNetlist &net);

    /** Flip-flops back to their init value (X bits -> 0). */
    void reset();

    void setInput(size_t index, const bv::Value &value);
    void setSynthVar(size_t index, const bv::Value &value);

    /** Evaluate the combinational core. */
    void evalCycle();
    /** evalCycle() then clock every flip-flop. */
    void step();

    bv::Value output(size_t index) const;

  private:
    bv::Value wordValue(const smt::Word &word) const;
    void assignWord(const smt::Word &word, const bv::Value &value);

    const GateNetlist &_net;
    std::vector<uint8_t> _node_vals;   ///< per AIG node
    std::vector<bv::Value> _state_vals;
    std::vector<bv::Value> _input_vals;
    std::vector<bv::Value> _synth_vals;
    bool _valid = false;
};

/** Replay @p io on the gate level; stops at the first mismatch. */
sim::ReplayResult gateReplay(const GateNetlist &net,
                             const trace::IoTrace &io);

} // namespace rtlrepair::gates

#endif // RTLREPAIR_GATES_GATE_SIM_HPP
