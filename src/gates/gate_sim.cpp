#include "gates/gate_sim.hpp"

#include "util/logging.hpp"

namespace rtlrepair::gates {

using bv::Value;
using smt::AigLit;

GateSimulator::GateSimulator(const GateNetlist &net) : _net(net)
{
    _node_vals.resize(net.aig.numNodes(), 0);
    _state_vals.resize(net.sys->states.size());
    _input_vals.resize(net.sys->inputs.size());
    _synth_vals.resize(net.sys->synth_vars.size());
    for (size_t i = 0; i < _input_vals.size(); ++i)
        _input_vals[i] = Value::zeros(net.sys->inputs[i].width);
    for (size_t i = 0; i < _synth_vals.size(); ++i)
        _synth_vals[i] = Value::zeros(net.sys->synth_vars[i].width);
    reset();
}

void
GateSimulator::reset()
{
    for (size_t i = 0; i < _state_vals.size(); ++i) {
        const auto &st = _net.sys->states[i];
        Value v = st.init ? st.init->xToZero() : Value::zeros(st.width);
        _state_vals[i] = v;
    }
    _valid = false;
}

void
GateSimulator::setInput(size_t index, const Value &value)
{
    check(index < _input_vals.size(), "input index out of range");
    _input_vals[index] = value.xToZero();
    _valid = false;
}

void
GateSimulator::setSynthVar(size_t index, const Value &value)
{
    check(index < _synth_vals.size(), "synth index out of range");
    _synth_vals[index] = value.xToZero();
    _valid = false;
}

void
GateSimulator::evalCycle()
{
    // Seed leaf variables.
    _node_vals.assign(_net.aig.numNodes(), 0);
    for (size_t i = 0; i < _state_vals.size(); ++i)
        assignWord(_net.state_words[i], _state_vals[i]);
    for (size_t i = 0; i < _input_vals.size(); ++i)
        assignWord(_net.input_words[i], _input_vals[i]);
    for (size_t i = 0; i < _synth_vals.size(); ++i)
        assignWord(_net.synth_words[i], _synth_vals[i]);

    // Nodes are in topological (creation) order.
    for (uint32_t n = 1; n < _net.aig.numNodes(); ++n) {
        if (!_net.aig.isAnd(n))
            continue;
        AigLit a = _net.aig.fanin0(n);
        AigLit b = _net.aig.fanin1(n);
        uint8_t av = _node_vals[smt::aigNode(a)] ^ smt::aigCompl(a);
        uint8_t bv_ = _node_vals[smt::aigNode(b)] ^ smt::aigCompl(b);
        _node_vals[n] = av & bv_;
    }
    _valid = true;
}

void
GateSimulator::step()
{
    if (!_valid)
        evalCycle();
    for (size_t i = 0; i < _state_vals.size(); ++i)
        _state_vals[i] = wordValue(_net.next_words[i]);
    _valid = false;
}

Value
GateSimulator::output(size_t index) const
{
    check(_valid, "evalCycle() must run before reading outputs");
    check(index < _net.output_words.size(),
          "output index out of range");
    return wordValue(_net.output_words[index]);
}

Value
GateSimulator::wordValue(const smt::Word &word) const
{
    Value out = Value::zeros(static_cast<uint32_t>(word.size()));
    for (size_t i = 0; i < word.size(); ++i) {
        uint8_t bit =
            _node_vals[smt::aigNode(word[i])] ^ smt::aigCompl(word[i]);
        // The constant node evaluates to false; lit 1 is true.
        if (word[i] == smt::kAigTrue)
            bit = 1;
        else if (word[i] == smt::kAigFalse)
            bit = 0;
        out.setBit(static_cast<uint32_t>(i), bit ? 1 : 0);
    }
    return out;
}

void
GateSimulator::assignWord(const smt::Word &word, const Value &value)
{
    for (size_t i = 0; i < word.size(); ++i) {
        uint32_t node = smt::aigNode(word[i]);
        uint8_t bit = value.bit(static_cast<uint32_t>(i)) == 1 ? 1 : 0;
        _node_vals[node] = smt::aigCompl(word[i]) ? !bit : bit;
    }
}

sim::ReplayResult
gateReplay(const GateNetlist &net, const trace::IoTrace &io)
{
    GateSimulator sim(net);
    const auto &sys = *net.sys;

    std::vector<int> input_map(io.inputs.size());
    for (size_t i = 0; i < io.inputs.size(); ++i) {
        input_map[i] = sys.inputIndex(io.inputs[i].name);
        check(input_map[i] >= 0,
              "trace input not in netlist: " + io.inputs[i].name);
    }
    std::vector<int> output_map(io.outputs.size());
    for (size_t i = 0; i < io.outputs.size(); ++i) {
        output_map[i] = sys.outputIndex(io.outputs[i].name);
        check(output_map[i] >= 0,
              "trace output not in netlist: " + io.outputs[i].name);
    }

    sim::ReplayResult result;
    sim.reset();
    for (size_t cycle = 0; cycle < io.length(); ++cycle) {
        for (size_t i = 0; i < input_map.size(); ++i) {
            sim.setInput(static_cast<size_t>(input_map[i]),
                         io.input_rows[cycle][i]);
        }
        sim.evalCycle();
        for (size_t i = 0; i < output_map.size(); ++i) {
            Value got =
                sim.output(static_cast<size_t>(output_map[i]));
            if (!got.matches(io.output_rows[cycle][i])) {
                result.passed = false;
                result.first_failure = cycle;
                result.failed_output = io.outputs[i].name;
                return result;
            }
        }
        sim.step();
    }
    result.first_failure = io.length();
    return result;
}

} // namespace rtlrepair::gates
