/**
 * @file
 * Gate-level netlist: the transition system lowered to an AIG plus
 * D flip-flops.  This is the reproduction's "synthesized netlist";
 * simulating it against the original testbench is the gate-level
 * simulation check the paper introduces for validating repairs
 * (§6.2) — it exposes synthesis–simulation mismatch because the
 * netlist is 2-state and implements synthesis semantics.
 */
#ifndef RTLREPAIR_GATES_NETLIST_HPP
#define RTLREPAIR_GATES_NETLIST_HPP

#include "ir/transition_system.hpp"
#include "smt/aig.hpp"

namespace rtlrepair::gates {

/** The lowered circuit. */
struct GateNetlist
{
    smt::Aig aig;
    /** Leaf variable words. */
    std::vector<smt::Word> state_words;
    std::vector<smt::Word> input_words;
    std::vector<smt::Word> synth_words;
    /** Combinational functions. */
    std::vector<smt::Word> next_words;
    std::vector<smt::Word> output_words;
    /** Metadata mirrors the source system. */
    const ir::TransitionSystem *sys = nullptr;

    /** Number of and-gates in the combinational core. */
    size_t numGates() const;
};

/** Lower @p sys to gates (X constants become 0). */
GateNetlist lower(const ir::TransitionSystem &sys);

} // namespace rtlrepair::gates

#endif // RTLREPAIR_GATES_NETLIST_HPP
