/**
 * @file
 * The repair query: a BMC-style unrolling of the instrumented
 * transition system over a window of the I/O trace, with the
 * synthesis variables kept symbolic (paper §3, "The Basic Repair
 * Synthesizer", and §4.3).
 *
 * For each cycle in [first, first + count):
 *  - inputs are constrained to the (X-resolved) trace values,
 *  - outputs are asserted equal to the expected values wherever the
 *    trace checks them (X bits are don't-cares),
 *  - next-state words feed the following cycle.
 * The window starts from a concrete state vector obtained by
 * simulating the unmodified circuit up to the window start.
 *
 * Two modes share this class:
 *
 *  - Fresh (the `--no-incremental` reference): one query per window,
 *    the start state folded into the encoding as constants.
 *  - Incremental: one query lives across the whole window ladder.
 *    The entry state is a vector of free variables equated to the
 *    concrete start state through an *anchor* activation literal that
 *    is passed as an assumption; growing the window encodes only the
 *    delta cycles, ties the new prefix to the old entry variables
 *    with permanent seam equalities, retires the old anchor with a
 *    unit clause and mints a new one.  Blocking clauses are gated
 *    behind a per-window *session* literal so sampling exclusions do
 *    not leak into later windows.  UNSAT cores over {anchor, session}
 *    classify failures: a core that names the anchor blames the
 *    concrete past state (growing the window can help), a core free
 *    of both proves the window-independent constraints alone are
 *    inconsistent — every larger window is UNSAT too.
 *
 * Both modes canonicalize reported models to the lexicographically
 * smallest synthesis-variable assignment, making the chosen repairs
 * independent of CNF-level encoding differences — this is what lets
 * the incremental engine reproduce the fresh reference bit-exactly.
 */
#ifndef RTLREPAIR_REPAIR_UNROLLER_HPP
#define RTLREPAIR_REPAIR_UNROLLER_HPP

#include <optional>

#include "ir/transition_system.hpp"
#include "smt/bitblast.hpp"
#include "smt/bv_solver.hpp"
#include "templates/synth_vars.hpp"
#include "trace/io_trace.hpp"

namespace rtlrepair::repair {

/** One incremental SMT instance for a (growable) repair window. */
class RepairQuery
{
  public:
    /** Tag selecting the persistent incremental mode. */
    struct Incremental
    {
    };

    /**
     * Fresh mode: encode the window immediately.  @p start_state
     * holds one fully-known value per system state.  The trace's
     * input X bits must already be resolved (randomize/zero per
     * §4.3).  A non-zero @p solver_seed scrambles the SAT phase
     * heuristic — the degradation ladder's "retry with a reseeded
     * solver" knob.
     */
    RepairQuery(const ir::TransitionSystem &sys,
                const templates::SynthVarTable &vars,
                const trace::IoTrace &io, size_t first, size_t count,
                const std::vector<bv::Value> &start_state,
                const Deadline *deadline = nullptr,
                uint64_t solver_seed = 0);

    /**
     * Incremental mode: nothing is encoded yet; call retarget() for
     * each window the ladder visits.
     */
    RepairQuery(const ir::TransitionSystem &sys,
                const templates::SynthVarTable &vars,
                const trace::IoTrace &io, Incremental,
                const Deadline *deadline = nullptr,
                uint64_t solver_seed = 0);

    /**
     * Incremental mode: point the query at window
     * [first, first + count).  The window may only grow — the
     * adaptive ladder's starts are monotonically nonincreasing and
     * ends nondecreasing, so already-encoded cycles are always inside
     * the new window.  Encodes only the delta cycles, resets the
     * per-window statistics epoch.
     */
    void retarget(size_t first, size_t count,
                  const std::vector<bv::Value> &start_state,
                  const Deadline *deadline);

    /**
     * True if encoding was aborted (deadline expired or the unrolled
     * AIG exceeded the size cap); solving then reports Timeout.  The
     * basic synthesizer hits this on the paper's very long
     * testbenches, just as the original tool times out there.
     */
    bool aborted() const { return _aborted; }

    /** Is any repair (any number of changes) possible? */
    smt::Result checkFeasible(const Deadline *deadline);

    /**
     * Model of the last Sat solve (feasibility check or bounded
     * solve).  The synthesizer uses the feasibility model's change
     * count as an upper bound for the Σφ minimality search and as the
     * k-th solution itself when every smaller bound is UNSAT.
     */
    const std::optional<templates::SynthAssignment> &
    lastModel() const
    {
        return _last_model;
    }

    /**
     * Find a model with at most @p max_changes φs enabled.  Returns
     * nullopt on UNSAT; throws nothing on timeout — check
     * lastResult().
     */
    std::optional<templates::SynthAssignment>
    solveWithBound(size_t max_changes, const Deadline *deadline);

    /**
     * Rewrite lastModel() into the lexicographically smallest
     * synthesis assignment satisfying the query under Σφ ≤
     * @p max_changes (variables in system order, bits LSB-first).
     * The lex minimum is unique per *semantic* constraint set, so
     * canonical models agree across encodings — the incremental query
     * and the fresh reference pick identical repairs.  Returns false
     * on timeout.
     */
    bool canonicalizeLast(size_t max_changes,
                          const Deadline *deadline);

    /** Exclude @p assignment (and its α values at active sites). */
    void blockAssignment(const templates::SynthAssignment &assignment);

    smt::Result lastResult() const { return _last; }

    /**
     * Incremental mode: a solve came back UNSAT with a core naming
     * neither the anchor nor the block session — the inconsistency
     * lives entirely in window-independent constraints, so every
     * larger window is UNSAT too and the ladder can fast-forward.
     */
    bool windowIndependentUnsat() const { return _window_free_unsat; }

    /** @name Per-window statistics (deltas since the last retarget /
     *  construction; a persistent solver's cumulative totals would
     *  misattribute earlier windows' work) @{ */
    /** AIG nodes in the encoded window (total graph size). */
    size_t aigNodes() const { return _solver_aig_nodes; }
    /** Nodes that already existed when this window's encode began. */
    size_t reusedAigNodes() const { return _reused_aig_nodes; }
    /** Wall seconds spent encoding this window's delta. */
    double encodeSeconds() const { return _encode_seconds; }
    uint64_t
    conflicts() const
    {
        return _solver.satSolver().conflicts - _base_conflicts;
    }
    uint64_t
    propagations() const
    {
        return _solver.satSolver().propagations - _base_propagations;
    }
    uint64_t
    restarts() const
    {
        return _solver.satSolver().restarts - _base_restarts;
    }
    /** SAT solve() calls issued for this window. */
    uint64_t
    satCalls() const
    {
        return _solver.satSolver().solve_calls - _base_solve_calls;
    }
    /** Learnt-clause database high-water mark (absolute). */
    uint64_t
    learntPeak() const
    {
        return _solver.satSolver().learnt_peak;
    }
    /** @} */

  private:
    templates::SynthAssignment extractModel();
    void allocateSynthWords();
    void buildColumnMaps();
    void beginEpoch();
    /** Assumptions active in the current window (anchor, session). */
    std::vector<sat::Lit> baseAssumptions() const;
    /** Encode cycles [from, to) starting from @p states; returns the
     *  next-state words at @p to.  Sets _aborted on cap/deadline. */
    std::vector<smt::Word> encodeRange(size_t from, size_t to,
                                       std::vector<smt::Word> states,
                                       const Deadline *deadline);
    /** Classify an UNSAT core; @p bound is the Σφ assumption of a
     *  bounded solve (kUndefLit for feasibility checks). */
    void noteUnsatCore(sat::Lit bound, size_t max_changes);

    const ir::TransitionSystem &_sys;
    const templates::SynthVarTable &_vars;
    const trace::IoTrace &_io;
    smt::BvSolver _solver;
    std::optional<smt::Totalizer> _card;
    std::vector<smt::Word> _synth_words;  ///< indexed like sys.synth_vars
    std::vector<smt::AigLit> _phi_lits;
    std::vector<int> _input_of_column;
    std::vector<int> _output_of_column;
    smt::Result _last = smt::Result::Unsat;
    std::optional<templates::SynthAssignment> _last_model;
    size_t _solver_aig_nodes = 0;
    bool _aborted = false;

    // Incremental-mode state.
    bool _incremental = false;
    size_t _lo = 0;  ///< encoded cycle range [_lo, _hi)
    size_t _hi = 0;
    bool _encoded = false;           ///< any cycles encoded yet?
    std::vector<smt::Word> _entry_words;  ///< symbolic state at _lo
    std::vector<smt::Word> _frontier;     ///< next-state words at _hi
    sat::Lit _anchor = sat::kUndefLit;    ///< current window anchor
    sat::Lit _session = sat::kUndefLit;   ///< current block session
    /** Σφ bounds proven UNSAT from window-independent constraints. */
    long _dead_bound = -1;
    bool _window_free_unsat = false;

    // Per-window statistics epoch.
    uint64_t _base_conflicts = 0;
    uint64_t _base_propagations = 0;
    uint64_t _base_restarts = 0;
    uint64_t _base_solve_calls = 0;
    size_t _reused_aig_nodes = 0;
    double _encode_seconds = 0.0;
};

} // namespace rtlrepair::repair

#endif // RTLREPAIR_REPAIR_UNROLLER_HPP
