/**
 * @file
 * The repair query: a BMC-style unrolling of the instrumented
 * transition system over a window of the I/O trace, with the
 * synthesis variables kept symbolic (paper §3, "The Basic Repair
 * Synthesizer", and §4.3).
 *
 * For each cycle in [first, first + count):
 *  - inputs are constrained to the (X-resolved) trace values,
 *  - outputs are asserted equal to the expected values wherever the
 *    trace checks them (X bits are don't-cares),
 *  - next-state words feed the following cycle.
 * The window starts from a concrete state vector obtained by
 * simulating the unmodified circuit up to the window start.
 */
#ifndef RTLREPAIR_REPAIR_UNROLLER_HPP
#define RTLREPAIR_REPAIR_UNROLLER_HPP

#include <optional>

#include "ir/transition_system.hpp"
#include "smt/bitblast.hpp"
#include "smt/bv_solver.hpp"
#include "templates/synth_vars.hpp"
#include "trace/io_trace.hpp"

namespace rtlrepair::repair {

/** One incremental SMT instance for a fixed repair window. */
class RepairQuery
{
  public:
    /**
     * Encode the window.  @p start_state holds one fully-known value
     * per system state.  The trace's input X bits must already be
     * resolved (randomize/zero per §4.3).  A non-zero @p solver_seed
     * scrambles the SAT phase heuristic — the degradation ladder's
     * "retry with a reseeded solver" knob.
     */
    RepairQuery(const ir::TransitionSystem &sys,
                const templates::SynthVarTable &vars,
                const trace::IoTrace &io, size_t first, size_t count,
                const std::vector<bv::Value> &start_state,
                const Deadline *deadline = nullptr,
                uint64_t solver_seed = 0);

    /**
     * True if encoding was aborted (deadline expired or the unrolled
     * AIG exceeded the size cap); solving then reports Timeout.  The
     * basic synthesizer hits this on the paper's very long
     * testbenches, just as the original tool times out there.
     */
    bool aborted() const { return _aborted; }

    /** Is any repair (any number of changes) possible? */
    smt::Result checkFeasible(const Deadline *deadline);

    /**
     * Model of the last Sat solve (feasibility check or bounded
     * solve).  The synthesizer uses the feasibility model's change
     * count as an upper bound for the Σφ minimality search and as the
     * k-th solution itself when every smaller bound is UNSAT.
     */
    const std::optional<templates::SynthAssignment> &
    lastModel() const
    {
        return _last_model;
    }

    /**
     * Find a model with at most @p max_changes φs enabled.  Returns
     * nullopt on UNSAT; throws nothing on timeout — check
     * lastResult().
     */
    std::optional<templates::SynthAssignment>
    solveWithBound(size_t max_changes, const Deadline *deadline);

    /** Exclude @p assignment (and its α values at active sites). */
    void blockAssignment(const templates::SynthAssignment &assignment);

    smt::Result lastResult() const { return _last; }

    /** Statistics: number of AIG nodes in the encoded window. */
    size_t aigNodes() const { return _solver_aig_nodes; }

    /** Statistics: SAT conflicts accumulated by this query so far. */
    uint64_t conflicts() const { return _solver.satSolver().conflicts; }

    /** Statistics: SAT propagations accumulated by this query. */
    uint64_t
    propagations() const
    {
        return _solver.satSolver().propagations;
    }

    /** Statistics: SAT restarts accumulated by this query. */
    uint64_t restarts() const { return _solver.satSolver().restarts; }

    /** Statistics: learnt-clause database high-water mark. */
    uint64_t
    learntPeak() const
    {
        return _solver.satSolver().learnt_peak;
    }

  private:
    templates::SynthAssignment extractModel();

    const ir::TransitionSystem &_sys;
    const templates::SynthVarTable &_vars;
    smt::BvSolver _solver;
    std::optional<smt::Totalizer> _card;
    std::vector<smt::Word> _synth_words;  ///< indexed like sys.synth_vars
    std::vector<smt::AigLit> _phi_lits;
    smt::Result _last = smt::Result::Unsat;
    std::optional<templates::SynthAssignment> _last_model;
    size_t _solver_aig_nodes = 0;
    bool _aborted = false;
};

} // namespace rtlrepair::repair

#endif // RTLREPAIR_REPAIR_UNROLLER_HPP
