#include "repair/windowing.hpp"

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace rtlrepair::repair {

using bv::Value;
using templates::SynthAssignment;

ConcreteRunner::ConcreteRunner(const ir::TransitionSystem &sys,
                               const trace::IoTrace &resolved,
                               std::vector<Value> init)
    : _sys(sys), _io(resolved), _init(std::move(init)),
      _interp(sys, sim::SimOptions{sim::XPolicy::Keep,
                                   sim::XPolicy::Keep, 1})
{
    check(_init.size() == sys.states.size(), "init size mismatch");
    _input_map.resize(_io.inputs.size());
    for (size_t i = 0; i < _io.inputs.size(); ++i) {
        _input_map[i] = sys.inputIndex(_io.inputs[i].name);
        check(_input_map[i] >= 0,
              "trace input not in design: " + _io.inputs[i].name);
    }
    _output_map.resize(_io.outputs.size());
    for (size_t i = 0; i < _io.outputs.size(); ++i) {
        _output_map[i] = sys.outputIndex(_io.outputs[i].name);
        check(_output_map[i] >= 0,
              "trace output not in design: " + _io.outputs[i].name);
    }
}

void
ConcreteRunner::seedStates(const std::vector<Value> &states)
{
    for (size_t i = 0; i < states.size(); ++i)
        _interp.setState(i, states[i]);
}

void
ConcreteRunner::applyAssignment(const SynthAssignment &assignment)
{
    for (size_t i = 0; i < _sys.synth_vars.size(); ++i) {
        auto it = assignment.values.find(_sys.synth_vars[i].name);
        Value v = it != assignment.values.end()
                      ? it->second
                      : Value::zeros(_sys.synth_vars[i].width);
        _interp.setSynthVar(i, v);
    }
}

void
ConcreteRunner::applyInputs(size_t cycle)
{
    for (size_t i = 0; i < _input_map.size(); ++i) {
        _interp.setInput(static_cast<size_t>(_input_map[i]),
                         _io.input_rows[cycle][i]);
    }
}

sim::ReplayResult
ConcreteRunner::run(const SynthAssignment &assignment)
{
    applyAssignment(assignment);
    seedStates(_init);
    sim::ReplayResult result;
    for (size_t cycle = 0; cycle < _io.length(); ++cycle) {
        applyInputs(cycle);
        _interp.evalCycle();
        for (size_t i = 0; i < _output_map.size(); ++i) {
            const Value &expected = _io.output_rows[cycle][i];
            const Value &got = _interp.output(
                static_cast<size_t>(_output_map[i]));
            if (!got.matches(expected)) {
                result.passed = false;
                result.first_failure = cycle;
                result.failed_output = _io.outputs[i].name;
                return result;
            }
        }
        _interp.step();
    }
    result.first_failure = _io.length();
    return result;
}

std::vector<Value>
ConcreteRunner::statesAt(size_t cycle)
{
    return statesFrom(0, _init, cycle);
}

std::vector<Value>
ConcreteRunner::statesFrom(size_t snapshot_cycle,
                           const std::vector<Value> &snapshot,
                           size_t cycle)
{
    check(snapshot_cycle <= cycle, "snapshot is after target cycle");
    applyAssignment(SynthAssignment{});  // all φ off
    seedStates(snapshot);
    for (size_t c = snapshot_cycle; c < cycle; ++c) {
        applyInputs(c);
        _interp.step();
    }
    std::vector<Value> out;
    out.reserve(_sys.states.size());
    for (size_t i = 0; i < _sys.states.size(); ++i)
        out.push_back(_interp.stateValue(i));
    return out;
}

namespace {

EngineResult
runBasic(const ir::TransitionSystem &sys,
         const templates::SynthVarTable &vars,
         const trace::IoTrace &resolved, const std::vector<Value> &init,
         ConcreteRunner &runner, const EngineConfig &config,
         const Deadline *deadline, size_t first_failure)
{
    EngineResult result;
    result.first_failure = first_failure;

    RepairQuery query(sys, vars, resolved, 0, resolved.length(),
                      init, deadline);
    SynthesisResult synth = synthesizeMinimalRepairs(
        query, vars, config.basic_max_candidates, deadline);
    switch (synth.status) {
      case SynthesisResult::Status::Timeout:
        result.status = EngineResult::Status::Timeout;
        return result;
      case SynthesisResult::Status::NoRepair:
        result.status = EngineResult::Status::NoRepair;
        return result;
      case SynthesisResult::Status::Found:
        break;
    }
    for (const auto &candidate : synth.repairs) {
        sim::ReplayResult r = runner.run(candidate);
        if (r.passed) {
            result.status = EngineResult::Status::Repaired;
            result.assignment = candidate;
            result.changes = synth.changes;
            return result;
        }
    }
    // All sampled solutions satisfy the symbolic query but fail the
    // 4-state replay (an X-semantics corner); report no repair.
    result.status = EngineResult::Status::NoRepair;
    return result;
}

} // namespace

EngineResult
runEngine(const ir::TransitionSystem &sys,
          const templates::SynthVarTable &vars,
          const trace::IoTrace &resolved,
          const std::vector<Value> &init, const EngineConfig &config,
          const Deadline *deadline)
{
    EngineResult result;
    ConcreteRunner runner(sys, resolved, init);

    // Baseline run: the unmodified circuit (all φ off).
    sim::ReplayResult base = runner.run(SynthAssignment{});
    if (base.passed) {
        result.status = EngineResult::Status::Repaired;
        result.assignment = SynthAssignment::allOff(vars);
        result.changes = 0;
        result.failure_free = true;
        return result;
    }
    size_t f = base.first_failure;
    result.first_failure = f;

    if (!config.adaptive) {
        return runBasic(sys, vars, resolved, init, runner, config,
                        deadline, f);
    }

    // Snapshot for fast window-start state computation.
    size_t snap_cycle =
        f > config.max_window + 8 ? f - config.max_window - 8 : 0;
    std::vector<Value> snap = runner.statesAt(snap_cycle);

    size_t k_past = 0;
    size_t k_future = 0;
    while (true) {
        if (deadline && deadline->expired()) {
            result.status = EngineResult::Status::Timeout;
            return result;
        }
        if (k_past + k_future > config.max_window) {
            result.status = EngineResult::Status::NoRepair;
            return result;
        }
        size_t ws = f >= k_past ? f - k_past : 0;
        size_t we = std::min(resolved.length(), f + k_future + 1);
        logMessage(LogLevel::Info,
                   format("repair window [%zd .. %zd] (failure at %zu)",
                          static_cast<ssize_t>(ws),
                          static_cast<ssize_t>(we) - 1, f));

        std::vector<Value> start_state =
            ws >= snap_cycle ? runner.statesFrom(snap_cycle, snap, ws)
                             : runner.statesAt(ws);

        RepairQuery query(sys, vars, resolved, ws, we - ws,
                          start_state, deadline);
        SynthesisResult synth = synthesizeMinimalRepairs(
            query, vars, config.max_candidates, deadline);
        if (synth.status == SynthesisResult::Status::Timeout) {
            result.status = EngineResult::Status::Timeout;
            return result;
        }
        if (synth.status == SynthesisResult::Status::NoRepair) {
            // No repair exists in this window: more past context.
            k_past += config.past_step;
            continue;
        }

        bool any_later = false;
        size_t latest_failure = f;
        for (const auto &candidate : synth.repairs) {
            sim::ReplayResult r = runner.run(candidate);
            if (r.passed) {
                result.status = EngineResult::Status::Repaired;
                result.assignment = candidate;
                result.changes = synth.changes;
                result.window_past = static_cast<int>(k_past);
                result.window_future = static_cast<int>(k_future);
                return result;
            }
            if (r.first_failure > f) {
                any_later = true;
                latest_failure =
                    std::max(latest_failure, r.first_failure);
            }
        }
        if (any_later) {
            // Missing future context: include the new failure cycle.
            size_t needed = latest_failure - f;
            k_future = std::max(k_future + 1, needed);
        } else {
            k_past += config.past_step;
        }
    }
}

} // namespace rtlrepair::repair
