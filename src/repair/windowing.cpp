#include "repair/windowing.hpp"

#include <cstring>

#include "sim/vec_sim.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/telemetry.hpp"

namespace rtlrepair::repair {

using bv::Value;
using templates::SynthAssignment;

namespace {

using telemetry::MetricKind;

// Deterministic: bumped only via recordWindowStat when the driver
// folds the final outcome's candidate list.
telemetry::Counter s_solves("window.solves");
telemetry::Counter s_sat("window.sat");
telemetry::Counter s_unsat("window.unsat");
telemetry::Counter s_timeout("window.timeout");
telemetry::Counter s_conflicts("sat.conflicts");
telemetry::Counter s_propagations("sat.propagations");
telemetry::Counter s_restarts("sat.restarts");
telemetry::Counter s_aig_nodes("window.aig_nodes");
telemetry::Counter s_reused_nodes("window.reused_aig_nodes");
telemetry::Counter s_sat_calls("window.sat_calls");
telemetry::Gauge s_learnt_peak("sat.learnt_db_peak",
                               MetricKind::Deterministic);
// Wall-clock totals of the consumed solves.
telemetry::Counter s_solve_us("window.solve_us",
                              MetricKind::Unstable);
telemetry::Counter s_encode_us("window.encode_us",
                               MetricKind::Unstable);
telemetry::Counter s_slack_us("window.deadline_slack_us",
                              MetricKind::Unstable);
// Windows the incremental engine resolved from an UNSAT core alone
// (no solve, no encode): a core free of the window anchor proves
// every larger window UNSAT.
telemetry::Counter s_fastforward("window.core_fastforward");

} // namespace

void
captureQueryStats(WindowStat &stat, const RepairQuery &query,
                  const Deadline *deadline)
{
    stat.aig_nodes = query.aigNodes();
    stat.reused_aig_nodes = query.reusedAigNodes();
    stat.encode_seconds = query.encodeSeconds();
    stat.sat_calls = query.satCalls();
    stat.conflicts = query.conflicts();
    stat.propagations = query.propagations();
    stat.restarts = query.restarts();
    stat.learnt_peak = query.learntPeak();
    if (deadline) {
        double left = deadline->remaining();
        stat.deadline_slack = left < 1e17 ? left : -1.0;
    }
}

void
recordWindowStat(const WindowStat &stat)
{
    s_solves.add(1);
    if (std::strcmp(stat.status, "sat") == 0)
        s_sat.add(1);
    else if (std::strcmp(stat.status, "unsat") == 0)
        s_unsat.add(1);
    else if (std::strcmp(stat.status, "timeout") == 0)
        s_timeout.add(1);
    s_conflicts.add(stat.conflicts);
    s_propagations.add(stat.propagations);
    s_restarts.add(stat.restarts);
    s_aig_nodes.add(stat.aig_nodes);
    s_reused_nodes.add(stat.reused_aig_nodes);
    s_sat_calls.add(stat.sat_calls);
    s_learnt_peak.record(stat.learnt_peak);
    if (stat.sat_calls == 0 && stat.aig_nodes == 0)
        s_fastforward.add(1);
    s_solve_us.add(
        static_cast<uint64_t>(stat.solve_seconds * 1e6));
    s_encode_us.add(
        static_cast<uint64_t>(stat.encode_seconds * 1e6));
    if (stat.deadline_slack >= 0.0) {
        s_slack_us.add(
            static_cast<uint64_t>(stat.deadline_slack * 1e6));
    }
}

WindowLadder::Window
WindowLadder::window() const
{
    Window w;
    w.start = failure >= k_past ? failure - k_past : 0;
    size_t end = std::min(trace_len, failure + k_future + 1);
    w.count = end - w.start;
    return w;
}

void
WindowLadder::growFuture(size_t latest_failure)
{
    size_t needed = latest_failure - failure;
    k_future = std::max(k_future + 1, needed);
}

WindowLadder
WindowLadder::predictedNext(const EngineConfig &config) const
{
    WindowLadder next = *this;
    next.growPast(config);
    return next;
}

ConcreteRunner::ConcreteRunner(const ir::TransitionSystem &sys,
                               const trace::IoTrace &resolved,
                               std::vector<Value> init,
                               sim::SimBackend backend)
    : _sys(sys), _io(resolved), _init(std::move(init)),
      _backend(backend),
      _interp(sys, sim::SimOptions{sim::XPolicy::Keep,
                                   sim::XPolicy::Keep, 1})
{
    check(_init.size() == sys.states.size(), "init size mismatch");
    // A trace column that names no design port is malformed user
    // input (the trace and the design come from the user together),
    // so it must surface as FatalError, never as a panic.
    _input_map.resize(_io.inputs.size());
    for (size_t i = 0; i < _io.inputs.size(); ++i) {
        _input_map[i] = sys.inputIndex(_io.inputs[i].name);
        if (_input_map[i] < 0)
            fatal("trace input not in design: " + _io.inputs[i].name);
    }
    _output_map.resize(_io.outputs.size());
    for (size_t i = 0; i < _io.outputs.size(); ++i) {
        _output_map[i] = sys.outputIndex(_io.outputs[i].name);
        if (_output_map[i] < 0)
            fatal("trace output not in design: " + _io.outputs[i].name);
    }
}

void
ConcreteRunner::seedStates(const std::vector<Value> &states)
{
    for (size_t i = 0; i < states.size(); ++i)
        _interp.setState(i, states[i]);
}

void
ConcreteRunner::applyAssignment(const SynthAssignment &assignment)
{
    for (size_t i = 0; i < _sys.synth_vars.size(); ++i) {
        auto it = assignment.values.find(_sys.synth_vars[i].name);
        Value v = it != assignment.values.end()
                      ? it->second
                      : Value::zeros(_sys.synth_vars[i].width);
        _interp.setSynthVar(i, v);
    }
}

void
ConcreteRunner::applyInputs(size_t cycle)
{
    for (size_t i = 0; i < _input_map.size(); ++i) {
        _interp.setInput(static_cast<size_t>(_input_map[i]),
                         _io.input_rows[cycle][i]);
    }
}

sim::ReplayResult
ConcreteRunner::run(const SynthAssignment &assignment)
{
    applyAssignment(assignment);
    seedStates(_init);
    sim::ReplayResult result;
    for (size_t cycle = 0; cycle < _io.length(); ++cycle) {
        applyInputs(cycle);
        _interp.evalCycle();
        for (size_t i = 0; i < _output_map.size(); ++i) {
            const Value &expected = _io.output_rows[cycle][i];
            const Value &got = _interp.output(
                static_cast<size_t>(_output_map[i]));
            if (!got.matches(expected)) {
                result.passed = false;
                result.first_failure = cycle;
                result.failed_output = _io.outputs[i].name;
                return result;
            }
        }
        _interp.step();
    }
    result.first_failure = _io.length();
    return result;
}

std::vector<sim::ReplayResult>
ConcreteRunner::runBatch(const std::vector<SynthAssignment> &assignments)
{
    std::vector<sim::ReplayResult> out(assignments.size());
    sim::SimBackend resolved = sim::resolveSimBackend(_backend);
    bool scalar =
        resolved == sim::SimBackend::Event || assignments.size() <= 1;
    if (resolved == sim::SimBackend::Auto && !scalar) {
        // The packed representation stores one word per bit position,
        // so a transposed op costs ~width words where the scalar
        // interpreter pays one.  Wide datapaths (sha3-class, >64-bit
        // nets) erase the 64-lane sharing win; let Auto keep those on
        // the scalar path and reserve the packed interpreter for the
        // narrow control-logic designs it accelerates.
        uint32_t maxw = 0;
        for (const auto &node : _sys.nodes)
            maxw = std::max(maxw, node.width);
        scalar = maxw > 64;
    }
    if (scalar) {
        for (size_t i = 0; i < assignments.size(); ++i)
            out[i] = run(assignments[i]);
        return out;
    }
    using bv::PackedValue;
    for (size_t base = 0; base < assignments.size();
         base += PackedValue::kLanes) {
        uint32_t n = static_cast<uint32_t>(std::min<size_t>(
            PackedValue::kLanes, assignments.size() - base));
        sim::VecInterpreter vi(_sys, n);
        for (uint32_t l = 0; l < n; ++l) {
            const SynthAssignment &a = assignments[base + l];
            for (size_t i = 0; i < _sys.synth_vars.size(); ++i) {
                auto it = a.values.find(_sys.synth_vars[i].name);
                Value v = it != a.values.end()
                              ? it->second
                              : Value::zeros(_sys.synth_vars[i].width);
                vi.setSynthVar(i, l, v);
            }
        }
        for (size_t i = 0; i < _init.size(); ++i)
            vi.setStateAll(i, _init[i]);
        uint64_t still = vi.allLanes();
        for (size_t cycle = 0; cycle < _io.length() && still;
             ++cycle) {
            for (size_t i = 0; i < _input_map.size(); ++i) {
                vi.setInputAll(static_cast<size_t>(_input_map[i]),
                               _io.input_rows[cycle][i]);
            }
            vi.evalCycle();
            for (size_t i = 0; i < _output_map.size() && still; ++i) {
                const PackedValue &got = vi.output(
                    static_cast<size_t>(_output_map[i]));
                uint64_t mismatch =
                    still & ~got.laneMatches(PackedValue::broadcast(
                                _io.output_rows[cycle][i]));
                if (!mismatch)
                    continue;
                for (uint32_t l = 0; l < n; ++l) {
                    if (!((mismatch >> l) & 1))
                        continue;
                    out[base + l].passed = false;
                    out[base + l].first_failure = cycle;
                    out[base + l].failed_output = _io.outputs[i].name;
                }
                still &= ~mismatch;
            }
            vi.step();
        }
        for (uint32_t l = 0; l < n; ++l) {
            if ((still >> l) & 1)
                out[base + l].first_failure = _io.length();
        }
    }
    return out;
}

std::vector<Value>
ConcreteRunner::currentStates()
{
    std::vector<Value> out;
    out.reserve(_sys.states.size());
    for (size_t i = 0; i < _sys.states.size(); ++i)
        out.push_back(_interp.stateValue(i));
    return out;
}

std::vector<Value>
ConcreteRunner::statesAt(size_t cycle)
{
    if (cycle == 0)
        return _init;
    auto it = _snapshots.upper_bound(cycle);
    if (it != _snapshots.begin()) {
        --it;
        if (it->first == cycle)
            return it->second;
        return statesFrom(it->first, it->second, cycle);
    }
    return statesFrom(0, _init, cycle);
}

std::vector<Value>
ConcreteRunner::statesFrom(size_t snapshot_cycle,
                           const std::vector<Value> &snapshot,
                           size_t cycle)
{
    check(snapshot_cycle <= cycle, "snapshot is after target cycle");
    // The ladder asks for successively *earlier* window starts, so
    // snapshots taken shortly before the current target are the ones
    // the next call resumes from.
    constexpr size_t kStride = 16;
    constexpr size_t kTail = 64;
    applyAssignment(SynthAssignment{});  // all φ off
    seedStates(snapshot);
    for (size_t c = snapshot_cycle; c < cycle; ++c) {
        if (c > snapshot_cycle && c % kStride == 0 &&
            cycle - c <= kTail) {
            _snapshots.emplace(c, currentStates());
        }
        applyInputs(c);
        _interp.step();
    }
    std::vector<Value> out = currentStates();
    _snapshots.emplace(cycle, out);
    return out;
}

namespace {

EngineResult
runBasic(const ir::TransitionSystem &sys,
         const templates::SynthVarTable &vars,
         const trace::IoTrace &resolved, const std::vector<Value> &init,
         ConcreteRunner &runner, const EngineConfig &config,
         const Deadline *deadline, size_t first_failure)
{
    EngineResult result;
    result.first_failure = first_failure;

    Stopwatch watch;
    RepairQuery query(sys, vars, resolved, 0, resolved.length(),
                      init, deadline);
    SynthesisResult synth = synthesizeMinimalRepairs(
        query, vars, config.basic_max_candidates, deadline);
    WindowStat stat;
    stat.k_past = static_cast<int>(first_failure);
    stat.k_future =
        static_cast<int>(resolved.length() - first_failure);
    stat.solve_seconds = watch.seconds();
    captureQueryStats(stat, query, deadline);
    switch (synth.status) {
      case SynthesisResult::Status::Timeout:
        stat.status = "timeout";
        result.windows.push_back(stat);
        result.status = EngineResult::Status::Timeout;
        return result;
      case SynthesisResult::Status::NoRepair:
        stat.status = "unsat";
        result.windows.push_back(stat);
        result.status = EngineResult::Status::NoRepair;
        return result;
      case SynthesisResult::Status::Found:
        stat.status = "sat";
        stat.changes = synth.changes;
        result.windows.push_back(stat);
        break;
    }
    std::vector<sim::ReplayResult> replays =
        runner.runBatch(synth.repairs);
    for (size_t i = 0; i < synth.repairs.size(); ++i) {
        if (replays[i].passed) {
            result.status = EngineResult::Status::Repaired;
            result.assignment = synth.repairs[i];
            result.changes = synth.changes;
            return result;
        }
    }
    // All sampled solutions satisfy the symbolic query but fail the
    // 4-state replay (an X-semantics corner); report no repair.
    result.status = EngineResult::Status::NoRepair;
    return result;
}

} // namespace

EngineResult
runEngine(const ir::TransitionSystem &sys,
          const templates::SynthVarTable &vars,
          const trace::IoTrace &resolved,
          const std::vector<Value> &init, const EngineConfig &config,
          const Deadline *deadline)
{
    EngineResult result;
    ConcreteRunner runner(sys, resolved, init, config.sim_backend);

    // Baseline run: the unmodified circuit (all φ off).
    sim::ReplayResult base = runner.run(SynthAssignment{});
    if (base.passed) {
        result.status = EngineResult::Status::Repaired;
        result.assignment = SynthAssignment::allOff(vars);
        result.changes = 0;
        result.failure_free = true;
        return result;
    }
    size_t f = base.first_failure;
    result.first_failure = f;

    if (!config.adaptive) {
        return runBasic(sys, vars, resolved, init, runner, config,
                        deadline, f);
    }

    // Local copy: the degradation ladder may halve the window growth
    // step after a faulted solve.
    EngineConfig cfg = config;
    const std::string solve_stage = solveStageName(cfg.stage_label);
    int retries_used = 0;
    uint64_t solver_seed = 0;

    // Incremental mode: one persistent query lives across the whole
    // ladder; each window retargets it in place.  Reset (and rebuilt
    // with the retry seed) when a window solve faults.
    std::optional<RepairQuery> inc_query;

    WindowLadder ladder;
    ladder.failure = f;
    ladder.trace_len = resolved.length();
    while (true) {
        if (deadline && deadline->expired()) {
            result.status = EngineResult::Status::Timeout;
            return result;
        }
        if (ladder.exhausted(cfg)) {
            result.status = EngineResult::Status::NoRepair;
            return result;
        }
        if (cfg.max_rss_kb > 0 &&
            peakRssKb().value_or(0) > cfg.max_rss_kb) {
            result.status = EngineResult::Status::Failed;
            result.error = format(
                "peak-RSS watermark exceeded (%zu KiB)",
                peakRssKb().value_or(0));
            return result;
        }
        WindowLadder::Window w = ladder.window();
        logMessage(LogLevel::Info,
                   format("repair window [%zd .. %zd] (failure at %zu)",
                          static_cast<ssize_t>(w.start),
                          static_cast<ssize_t>(w.start + w.count) - 1,
                          f));

        Stopwatch watch;
        SynthesisResult synth;
        WindowStat stat;
        StageGuard guard(solve_stage, result.stages);
        guard.setRetries(retries_used);

        // UNSAT-core fast-forward: a previous window's core proved
        // the window-independent constraints inconsistent, so this
        // window (and every larger one) is UNSAT without a solve.
        // The stage guard still runs (empty) so the fault-site and
        // stage-report sequences match the fresh reference.
        if (cfg.incremental && inc_query &&
            inc_query->windowIndependentUnsat()) {
            bool ok = guard.run([] {});
            if (ok) {
                stat.k_past = static_cast<int>(ladder.k_past);
                stat.k_future = static_cast<int>(ladder.k_future);
                stat.status = "unsat";
                result.windows.push_back(stat);
                ladder.growPast(cfg);
                continue;
            }
            inc_query.reset();
            if (guard.report().status == StageStatus::TimedOut) {
                result.status = EngineResult::Status::Timeout;
                return result;
            }
            if (retries_used < cfg.solve_retries) {
                ++retries_used;
                solver_seed = retrySolverSeed(retries_used);
                cfg.past_step = cfg.past_step > 1 ? cfg.past_step / 2
                                                  : cfg.past_step;
                continue;
            }
            result.status = EngineResult::Status::Failed;
            result.error = guard.report().diagnostic;
            return result;
        }

        std::vector<Value> start_state = runner.statesAt(w.start);

        bool solved = guard.run([&] {
            if (cfg.incremental) {
                if (!inc_query) {
                    inc_query.emplace(sys, vars, resolved,
                                      RepairQuery::Incremental{},
                                      deadline, solver_seed);
                }
                inc_query->retarget(w.start, w.count, start_state,
                                    deadline);
                synth = synthesizeMinimalRepairs(
                    *inc_query, vars, cfg.max_candidates, deadline);
                captureQueryStats(stat, *inc_query, deadline);
            } else {
                RepairQuery query(sys, vars, resolved, w.start,
                                  w.count, start_state, deadline,
                                  solver_seed);
                synth = synthesizeMinimalRepairs(
                    query, vars, cfg.max_candidates, deadline);
                captureQueryStats(stat, query, deadline);
            }
        });
        if (!solved) {
            // A faulted solve may have left the persistent query in
            // an inconsistent state; rebuild it on the next attempt.
            inc_query.reset();
            // A stage-budget overrun is a timeout, not a fault to
            // retry (retrying would double the budget); the caller
            // decides whether the global run is out of time.
            if (guard.report().status == StageStatus::TimedOut) {
                result.status = EngineResult::Status::Timeout;
                return result;
            }
            // Degradation ladder, rung 1: retry the same window with a
            // reseeded solver and halved window growth.  Rung 2: give
            // up on this template only — the caller drops it from the
            // cascade and the siblings keep running.
            if (retries_used < cfg.solve_retries) {
                ++retries_used;
                solver_seed = retrySolverSeed(retries_used);
                cfg.past_step = cfg.past_step > 1 ? cfg.past_step / 2
                                                  : cfg.past_step;
                continue;
            }
            result.status = EngineResult::Status::Failed;
            result.error = guard.report().diagnostic;
            return result;
        }
        stat.k_past = static_cast<int>(ladder.k_past);
        stat.k_future = static_cast<int>(ladder.k_future);
        stat.solve_seconds = watch.seconds();
        if (synth.status == SynthesisResult::Status::Timeout) {
            stat.status = "timeout";
            result.windows.push_back(stat);
            result.status = EngineResult::Status::Timeout;
            return result;
        }
        if (synth.status == SynthesisResult::Status::NoRepair) {
            // No repair exists in this window: more past context.
            stat.status = "unsat";
            result.windows.push_back(stat);
            ladder.growPast(cfg);
            continue;
        }
        stat.status = "sat";
        stat.changes = synth.changes;
        result.windows.push_back(stat);

        bool any_later = false;
        size_t latest_failure = f;
        std::vector<sim::ReplayResult> replays =
            runner.runBatch(synth.repairs);
        for (size_t i = 0; i < synth.repairs.size(); ++i) {
            const sim::ReplayResult &r = replays[i];
            if (r.passed) {
                result.status = EngineResult::Status::Repaired;
                result.assignment = synth.repairs[i];
                result.changes = synth.changes;
                result.window_past = static_cast<int>(ladder.k_past);
                result.window_future =
                    static_cast<int>(ladder.k_future);
                return result;
            }
            // Candidates past the first passing one never ran in the
            // serial loop; the in-order early return above keeps the
            // window-growth feedback identical.
            if (r.first_failure > f) {
                any_later = true;
                latest_failure =
                    std::max(latest_failure, r.first_failure);
            }
        }
        if (any_later) {
            // Missing future context: include the new failure cycle.
            ladder.growFuture(latest_failure);
        } else {
            ladder.growPast(cfg);
        }
    }
}

} // namespace rtlrepair::repair
