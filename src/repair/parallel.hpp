/**
 * @file
 * Parallel repair portfolio: the template cascade and the adaptive
 * windowing ladder, scheduled over a work-stealing thread pool with
 * first-success-wins cooperative cancellation.
 *
 * Every (template × window) candidate is an independent symbolic
 * solve, so the portfolio
 *  (a) applies + elaborates each repair template concurrently,
 *  (b) launches window candidates for each instrumented system as
 *      independent RepairQuery solves on pool workers (the ladder's
 *      predicted next windows are solved speculatively ahead of the
 *      frontier), and
 *  (c) cancels losing candidates the moment a winner is decided, via
 *      CancelTokens threaded through the existing Deadline plumbing
 *      into the SAT solver's propagate/restart loop and the query
 *      encoder.
 *
 * Determinism rule: the scheduler consumes results in exactly the
 * order the serial cascade implies — templates in standardTemplates()
 * order, windows in ladder order — and applies the same (fewest
 * changes, template order, smallest window) ranking.  Thread timing
 * affects only wall-clock, never the repair reported; jobs=1 and
 * jobs=N produce bit-identical outcomes.
 */
#ifndef RTLREPAIR_REPAIR_PARALLEL_HPP
#define RTLREPAIR_REPAIR_PARALLEL_HPP

#include "repair/driver.hpp"
#include "util/thread_pool.hpp"

namespace rtlrepair::repair {

/**
 * Resolve the effective worker count: @p requested if positive, else
 * the RTLREPAIR_JOBS environment variable, else
 * std::thread::hardware_concurrency() (at least 1).
 */
unsigned resolveJobs(unsigned requested);

/** Best repair found by the portfolio (serial-cascade ranking). */
struct PortfolioBest
{
    std::unique_ptr<verilog::Module> repaired;
    int changes = 0;
    std::string template_name;
    int window_past = 0;
    int window_future = 0;
};

/** Outcome of a portfolio run over all templates. */
struct PortfolioOutcome
{
    std::optional<PortfolioBest> best;
    bool timed_out = false;
    std::string detail;
    std::vector<RepairCandidateStat> candidates;
    /** Per-stage reports from every template task, folded back in
     *  template order (identical to a serial run's order). */
    std::vector<StageReport> stages;
    /** A template task was dropped by the containment layer; the
     *  siblings' results are unaffected. */
    bool degraded = false;
};

/**
 * Run the template cascade as a parallel portfolio over @p jobs
 * workers.  @p preprocessed is the lint-fixed module the templates
 * instrument; @p resolved / @p init must already be X-resolved (the
 * same values the serial cascade would use).
 */
PortfolioOutcome
runPortfolio(const verilog::Module &preprocessed,
             const std::vector<const verilog::Module *> &library,
             const trace::IoTrace &resolved,
             const std::vector<bv::Value> &init,
             const RepairConfig &config, const Deadline &deadline,
             unsigned jobs);

/**
 * Adaptive-windowing engine for one instrumented system with window
 * candidates solved on @p pool workers: the ladder frontier plus up
 * to EngineConfig::speculation predicted next windows are in flight
 * at once; mispredicted speculative solves are cancelled.  Follows
 * the exact ladder transitions of the serial runEngine().
 */
EngineResult
runEngineParallel(const ir::TransitionSystem &sys,
                  const templates::SynthVarTable &vars,
                  const trace::IoTrace &resolved,
                  const std::vector<bv::Value> &init,
                  const EngineConfig &config,
                  const Deadline *deadline, ThreadPool &pool);

} // namespace rtlrepair::repair

#endif // RTLREPAIR_REPAIR_PARALLEL_HPP
