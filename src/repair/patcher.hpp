/**
 * @file
 * Patch-back: substitute a synthesis-variable model into the
 * instrumented AST and fold the template machinery away, producing
 * repaired Verilog source (paper §3, "Repairing the Verilog Code").
 */
#ifndef RTLREPAIR_REPAIR_PATCHER_HPP
#define RTLREPAIR_REPAIR_PATCHER_HPP

#include <memory>

#include "templates/synth_vars.hpp"

namespace rtlrepair::repair {

/**
 * Apply @p assignment to a clone of @p instrumented: synthesis
 * variables become literals, dead change sites fold away
 * (φ=0 → original code), live sites inline their α constants.
 */
std::unique_ptr<verilog::Module>
patch(const verilog::Module &instrumented,
      const templates::SynthVarTable &vars,
      const templates::SynthAssignment &assignment);

} // namespace rtlrepair::repair

#endif // RTLREPAIR_REPAIR_PATCHER_HPP
