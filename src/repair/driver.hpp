/**
 * @file
 * End-to-end RTL-Repair driver (paper Fig. 3): preprocessing, the
 * template cascade, synthesis with adaptive windowing, patch-back,
 * and the "keep looking if the repair is large" rule (Σφ > 3 tries
 * the remaining templates for something smaller).
 */
#ifndef RTLREPAIR_REPAIR_DRIVER_HPP
#define RTLREPAIR_REPAIR_DRIVER_HPP

#include <memory>
#include <string>

#include "repair/guarded.hpp"
#include "repair/windowing.hpp"
#include "templates/preprocess.hpp"
#include "util/stopwatch.hpp"
#include "verilog/ast.hpp"

namespace rtlrepair::repair {

/**
 * Cross-run cache of the design-dependent pipeline prefix
 * (preprocess + base elaboration), keyed by a content digest of the
 * design + library sources.  The repair driver consults it when
 * RepairConfig::elab_cache/cache_key are set; the service layer
 * provides the bounded LRU implementation (service::ElabCache) so a
 * fleet of near-identical submissions hits warm state.
 */
class ElaborationCache
{
  public:
    struct Entry
    {
        /** Preprocessed (lint-fixed) design; cloned on every hit so
         *  cached state is never aliased into a running job. */
        std::unique_ptr<verilog::Module> module;
        int preprocess_changes = 0;
        std::vector<std::string> preprocess_notes;
        /** Base (uninstrumented) elaboration of the module. */
        ir::TransitionSystem sys;
    };

    virtual ~ElaborationCache() = default;

    /** Copy the entry for @p key into @p out; false on miss. */
    virtual bool lookup(uint64_t key, Entry &out) = 0;

    /** Store a copy of @p entry under @p key. */
    virtual void store(uint64_t key, const Entry &entry) = 0;
};

/** Tool configuration. */
struct RepairConfig
{
    double timeout_seconds = 60.0;  ///< paper: 60 s for RTL-Repair
    /** Policy for unknown inputs/state: Random matches 4-state
     *  event-driven testbenches, Zero matches Verilator (§4.3). */
    sim::XPolicy x_policy = sim::XPolicy::Random;
    uint64_t seed = 1;
    EngineConfig engine;
    /** Repairs larger than this keep the template cascade going. */
    int change_threshold = 3;
    /** Restrict the run to a single template (Table 5 breakdown). */
    std::string only_template;
    /** Skip templates entirely (preprocessing-only runs). */
    bool preprocess_only = false;
    /**
     * Worker threads for the repair portfolio.  1 runs today's exact
     * serial cascade; N > 1 solves (template × window) candidates
     * concurrently with first-success-wins cancellation; 0 (default)
     * resolves via the RTLREPAIR_JOBS environment variable, falling
     * back to std::thread::hardware_concurrency().  Results are
     * deterministic and identical across all values.
     */
    unsigned jobs = 0;
    /** Fault-containment policy: stage time slices, the peak-memory
     *  watermark, and the solve retry budget. */
    GuardConfig guard;
    /**
     * External cancellation (Ctrl-C, client disconnect, server
     * shutdown).  Chained into the run's root Deadline, so every
     * solver conflict-loop poll observes it; the run then unwinds
     * cooperatively and reports RepairOutcome::cancelled.  Must
     * outlive the repairDesign() call.  Optional.
     */
    const CancelToken *cancel = nullptr;
    /** Cross-run preprocess+elaboration cache (see ElaborationCache);
     *  consulted/filled only when cache_key is nonzero.  Optional. */
    ElaborationCache *elab_cache = nullptr;
    /** Content digest of design+library sources keying elab_cache. */
    uint64_t cache_key = 0;
};

/** Per-candidate solve statistics (one row per template × window). */
struct RepairCandidateStat
{
    std::string template_name;
    WindowStat window;
};

/** Outcome of one tool run. */
struct RepairOutcome
{
    /**
     * Degraded = no repair was found AND at least one pipeline stage
     * was dropped by the fault-containment layer, so "no repair" is a
     * weaker claim than usual; the per-stage reports say exactly what
     * was lost.  Runs that find a repair despite contained faults
     * still report Repaired (with the reports attached).
     */
    enum class Status {
        Repaired, NoRepair, Timeout, CannotSynthesize, Degraded
    };
    Status status = Status::NoRepair;

    std::unique_ptr<verilog::Module> repaired;  ///< patched source
    int changes = 0;                 ///< Σφ of the accepted repair
    int preprocess_changes = 0;      ///< lint fixes applied
    bool by_preprocessing = false;   ///< trace passed after lint fixes
    bool no_repair_needed = false;   ///< passed with zero changes
    std::string template_name;       ///< winning template
    double seconds = 0.0;
    size_t first_failure = 0;
    int window_past = 0;
    int window_future = 0;
    std::string detail;  ///< human-readable notes / failure reason
    /** Solve statistics for every candidate examined, in template
     *  order (identical between serial and parallel runs). */
    std::vector<RepairCandidateStat> candidates;
    /** Structured per-stage execution record (guards, budgets,
     *  contained faults), in pipeline order. */
    std::vector<StageReport> stages;
    /** True when the containment layer dropped a stage or template;
     *  set for Degraded and for degraded-but-Repaired runs alike. */
    bool degraded = false;
    /** The run was stopped by RepairConfig::cancel (reported as
     *  Timeout status, but distinguishable for signal/disconnect
     *  handling). */
    bool cancelled = false;
    /** The preprocess+elaborate prefix came from the elaboration
     *  cache (warm start). */
    bool elab_cache_hit = false;
};

/**
 * Run the full tool: repair @p buggy (with optional submodule
 * @p library) against @p io.
 */
RepairOutcome repairDesign(const verilog::Module &buggy,
                           const std::vector<const verilog::Module *>
                               &library,
                           const trace::IoTrace &io,
                           const RepairConfig &config);

/**
 * Resolve all X input bits of @p io (and nothing else) using
 * @p policy/@p seed, so the symbolic query and the concrete replays
 * see identical stimulus.
 */
trace::IoTrace resolveTraceInputs(const trace::IoTrace &io,
                                  sim::XPolicy policy, uint64_t seed);

/** Resolve the initial state of @p sys under @p policy/@p seed. */
std::vector<bv::Value> resolveInitState(const ir::TransitionSystem &sys,
                                        sim::XPolicy policy,
                                        uint64_t seed);

} // namespace rtlrepair::repair

#endif // RTLREPAIR_REPAIR_DRIVER_HPP
