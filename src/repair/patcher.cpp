#include "repair/patcher.hpp"

#include "util/logging.hpp"
#include "verilog/ast_util.hpp"

namespace rtlrepair::repair {

using namespace verilog;

std::unique_ptr<Module>
patch(const Module &instrumented, const templates::SynthVarTable &vars,
      const templates::SynthAssignment &assignment)
{
    auto repaired = instrumented.clone();

    // Substitute every synthesis variable with its model value (φs
    // default to zero if absent from the assignment).
    std::map<std::string, bv::Value> values;
    for (const auto &v : vars.vars()) {
        auto it = assignment.values.find(v.name);
        values[v.name] = it != assignment.values.end()
                             ? it->second
                             : bv::Value::zeros(v.width);
    }
    rewriteModuleExprs(*repaired, [&values](ExprPtr &e) {
        if (e->kind != Expr::Kind::Ident)
            return;
        auto it = values.find(static_cast<IdentExpr &>(*e).name);
        if (it == values.end())
            return;
        auto *lit = new LiteralExpr(it->second, true);
        lit->id = e->id;
        lit->loc = e->loc;
        e.reset(lit);
    });

    // Fold the template scaffolding away.
    simplifyModule(*repaired);
    // A second pass catches statements exposed by the first.
    simplifyModule(*repaired);
    return repaired;
}

} // namespace rtlrepair::repair
