#include "repair/synthesizer.hpp"

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace rtlrepair::repair {

SynthesisResult
synthesizeMinimalRepairs(RepairQuery &query,
                         const templates::SynthVarTable &vars,
                         size_t max_samples, const Deadline *deadline)
{
    SynthesisResult result;

    // 1. Feasibility: any number of changes.
    smt::Result feasible = query.checkFeasible(deadline);
    if (feasible == smt::Result::Timeout) {
        result.status = SynthesisResult::Status::Timeout;
        return result;
    }
    if (feasible == smt::Result::Unsat) {
        result.status = SynthesisResult::Status::NoRepair;
        return result;
    }

    // 2. Linear minimality search on Σφ, starting at zero changes
    //    (the instrumented circuit with all φ off may already pass).
    //    The feasibility model bounds the search from above: only
    //    bounds k < Σφ(model) need a solve, and when they are all
    //    UNSAT the model itself is a minimal solution — no re-solve
    //    of bound k from scratch.
    templates::SynthAssignment feasible_model = *query.lastModel();
    size_t upper = static_cast<size_t>(
        feasible_model.changeCount(vars));
    std::optional<templates::SynthAssignment> minimal;
    size_t k = 0;
    for (; k < upper; ++k) {
        if (deadline && deadline->expired()) {
            result.status = SynthesisResult::Status::Timeout;
            return result;
        }
        minimal = query.solveWithBound(k, deadline);
        if (query.lastResult() == smt::Result::Timeout) {
            result.status = SynthesisResult::Status::Timeout;
            return result;
        }
        if (minimal)
            break;
    }
    if (!minimal) {
        // Every bound below Σφ(model) is UNSAT: the feasibility
        // model's change count is minimal, and its learnt clauses and
        // model carry over — sampling starts by blocking it directly.
        minimal = std::move(feasible_model);
        k = upper;
    }

    // Canonicalize to the lex-smallest minimal model: the repair
    // reported for a window then depends only on the window's
    // semantic constraints, not on the CNF encoding — the persistent
    // incremental query and the fresh-per-window reference agree
    // bit-exactly.
    if (!query.canonicalizeLast(k, deadline)) {
        result.status = SynthesisResult::Status::Timeout;
        return result;
    }
    minimal = *query.lastModel();

    result.status = SynthesisResult::Status::Found;
    result.changes = static_cast<int>(k);
    result.repairs.push_back(*minimal);

    // 3. Sample further distinct minimal repairs.
    while (result.repairs.size() < max_samples) {
        query.blockAssignment(result.repairs.back());
        auto next = query.solveWithBound(k, deadline);
        if (!next)
            break;  // exhausted or timeout; either way stop sampling
        if (!query.canonicalizeLast(k, deadline))
            break;  // timeout mid-sampling: keep what we have
        result.repairs.push_back(*query.lastModel());
    }
    return result;
}

} // namespace rtlrepair::repair
