#include "repair/unroller.hpp"

#include <map>

#include "util/logging.hpp"
#include "util/telemetry.hpp"

namespace rtlrepair::repair {

namespace {

// Unstable: encodes happen inside speculative portfolio solves too,
// so the totals depend on scheduling; the deterministic per-window
// numbers are folded from WindowStat on the ladder-consume path.
telemetry::Counter s_queries("unroll.queries_encoded",
                             telemetry::MetricKind::Unstable);
telemetry::Counter s_cycles("unroll.cycles_encoded",
                            telemetry::MetricKind::Unstable);
telemetry::Counter s_nodes("unroll.aig_nodes_encoded",
                           telemetry::MetricKind::Unstable);
telemetry::Gauge s_max_window("unroll.max_window_cycles",
                              telemetry::MetricKind::Unstable);

} // namespace

using bv::Value;
using smt::AigLit;
using smt::CycleBindings;
using smt::CycleWords;
using smt::Result;
using smt::Word;

RepairQuery::RepairQuery(const ir::TransitionSystem &sys,
                         const templates::SynthVarTable &vars,
                         const trace::IoTrace &io, size_t first,
                         size_t count,
                         const std::vector<Value> &start_state,
                         const Deadline *deadline,
                         uint64_t solver_seed)
    : _sys(sys), _vars(vars)
{
    telemetry::Span span("encode");
    s_queries.add(1);
    s_cycles.add(count);
    s_max_window.record(count);
    if (solver_seed != 0)
        _solver.satCore().setPhaseSeed(solver_seed);
    // Unrolling hundreds of thousands of cycles would exhaust memory
    // long before the SAT solver gets a chance; cap the formula size
    // (the paper's basic synthesizer simply times out there).
    constexpr size_t kMaxAigNodes = 20u * 1000 * 1000;
    check(first + count <= io.length(), "window exceeds trace");
    check(start_state.size() == sys.states.size(),
          "start state size mismatch");

    smt::Aig &aig = _solver.aig();

    // Allocate the synthesis variables once; they are shared by every
    // unrolled cycle (design-time constants).
    _synth_words.resize(sys.synth_vars.size());
    for (size_t i = 0; i < sys.synth_vars.size(); ++i) {
        _synth_words[i] =
            smt::freshWord(aig, sys.synth_vars[i].width);
        if (sys.synth_vars[i].is_phi)
            _phi_lits.push_back(_synth_words[i][0]);
    }

    // Map trace columns to system inputs/outputs.
    std::vector<int> input_of_column(io.inputs.size());
    for (size_t i = 0; i < io.inputs.size(); ++i) {
        input_of_column[i] = sys.inputIndex(io.inputs[i].name);
        check(input_of_column[i] >= 0,
              "trace input not in design: " + io.inputs[i].name);
    }
    std::vector<int> output_of_column(io.outputs.size());
    for (size_t i = 0; i < io.outputs.size(); ++i) {
        output_of_column[i] = sys.outputIndex(io.outputs[i].name);
        check(output_of_column[i] >= 0,
              "trace output not in design: " + io.outputs[i].name);
    }

    // Initial window state: concrete constants.
    CycleBindings bindings;
    bindings.synth = _synth_words;
    bindings.states.resize(sys.states.size());
    for (size_t i = 0; i < sys.states.size(); ++i) {
        // Residual X bits (e.g. from explicit X literals in the
        // design) read as zero, matching the 2-state circuit.
        bindings.states[i] =
            smt::wordOfValue(start_state[i].xToZero());
    }

    for (size_t cycle = first; cycle < first + count; ++cycle) {
        if (aig.numNodes() > kMaxAigNodes ||
            (deadline && deadline->expired())) {
            _aborted = true;
            _last = smt::Result::Timeout;
            break;
        }
        // Inputs: constants from the resolved trace.
        bindings.inputs.assign(sys.inputs.size(), Word{});
        for (size_t i = 0; i < sys.inputs.size(); ++i) {
            bindings.inputs[i] = smt::freshWord(
                aig, sys.inputs[i].width);
        }
        for (size_t col = 0; col < input_of_column.size(); ++col) {
            Value v = io.input_rows[cycle][col];
            check(!v.hasX(),
                  "trace inputs must be X-resolved before encoding");
            uint32_t want =
                sys.inputs[input_of_column[col]].width;
            if (v.width() < want)
                v = v.zext(want);
            else if (v.width() > want)
                v = v.slice(want - 1, 0);
            bindings.inputs[input_of_column[col]] =
                smt::wordOfValue(v);
        }

        CycleWords words = smt::blastCycle(aig, _sys, bindings);

        // Output assertions (X bits unchecked).
        for (size_t col = 0; col < output_of_column.size(); ++col) {
            const Value &expected = io.output_rows[cycle][col];
            _solver.assertWordEquals(
                words.outputs[output_of_column[col]], expected);
        }

        bindings.states = std::move(words.next_states);
    }

    _solver_aig_nodes = aig.numNodes();
    s_nodes.add(_solver_aig_nodes);
    _card.emplace(_solver, _phi_lits);
}

Result
RepairQuery::checkFeasible(const Deadline *deadline)
{
    if (_aborted)
        return Result::Timeout;
    _last = _solver.solve({}, deadline);
    if (_last == Result::Sat)
        _last_model = extractModel();
    return _last;
}

std::optional<templates::SynthAssignment>
RepairQuery::solveWithBound(size_t max_changes,
                            const Deadline *deadline)
{
    if (_aborted) {
        _last = Result::Timeout;
        return std::nullopt;
    }
    // Assumption-based: learnt clauses persist across bounds.
    sat::Lit bound = _card->atMost(max_changes);
    sat::LBool res =
        _solver.satCore().solve({bound}, deadline);
    _last = res == sat::LBool::True    ? Result::Sat
            : res == sat::LBool::False ? Result::Unsat
                                       : Result::Timeout;
    if (_last != Result::Sat)
        return std::nullopt;
    _last_model = extractModel();
    return _last_model;
}

templates::SynthAssignment
RepairQuery::extractModel()
{
    templates::SynthAssignment out;
    for (size_t i = 0; i < _sys.synth_vars.size(); ++i) {
        out.values[_sys.synth_vars[i].name] =
            _solver.modelWord(_synth_words[i]);
    }
    return out;
}

void
RepairQuery::blockAssignment(
    const templates::SynthAssignment &assignment)
{
    // Group synthesis variables by AST site; a blocked repair is the
    // combination of the φ pattern plus the α values of *active*
    // sites (inactive-α differences do not make a repair distinct).
    std::map<verilog::NodeId, bool> site_active;
    for (const auto &v : _vars.vars()) {
        if (!v.is_phi)
            continue;
        auto it = assignment.values.find(v.name);
        bool active = it != assignment.values.end() &&
                      it->second.isNonZero();
        auto [slot, inserted] = site_active.emplace(v.site, active);
        if (!inserted)
            slot->second = slot->second || active;
    }

    std::vector<sat::Lit> clause;
    for (size_t i = 0; i < _sys.synth_vars.size(); ++i) {
        const auto &sv = _sys.synth_vars[i];
        auto it = assignment.values.find(sv.name);
        if (it == assignment.values.end())
            continue;
        // Find the template var entry for the site lookup.
        const templates::SynthVar *tv = nullptr;
        for (const auto &cand : _vars.vars()) {
            if (cand.name == sv.name) {
                tv = &cand;
                break;
            }
        }
        bool include = sv.is_phi;
        if (!include && tv) {
            auto site = site_active.find(tv->site);
            include = site != site_active.end() && site->second;
        }
        if (!include)
            continue;
        const Value &v = it->second;
        for (uint32_t b = 0; b < sv.width; ++b) {
            AigLit bit_lit = _synth_words[i][b];
            bool bit = v.bit(b) == 1;
            // Clause: at least one bit differs.
            clause.push_back(bit ? ~_solver.satLitOf(bit_lit)
                                 : _solver.satLitOf(bit_lit));
        }
    }
    if (!clause.empty())
        _solver.satCore().addClause(std::move(clause));
}

} // namespace rtlrepair::repair
