#include "repair/unroller.hpp"

#include <algorithm>
#include <map>

#include "util/logging.hpp"
#include "util/telemetry.hpp"

namespace rtlrepair::repair {

namespace {

// Unstable: encodes happen inside speculative portfolio solves too,
// so the totals depend on scheduling; the deterministic per-window
// numbers are folded from WindowStat on the ladder-consume path.
telemetry::Counter s_queries("unroll.queries_encoded",
                             telemetry::MetricKind::Unstable);
telemetry::Counter s_cycles("unroll.cycles_encoded",
                            telemetry::MetricKind::Unstable);
telemetry::Counter s_nodes("unroll.aig_nodes_encoded",
                           telemetry::MetricKind::Unstable);
telemetry::Gauge s_max_window("unroll.max_window_cycles",
                              telemetry::MetricKind::Unstable);
telemetry::Counter s_dead_bounds("unroll.dead_bound_skips",
                                 telemetry::MetricKind::Unstable);

// Unrolling hundreds of thousands of cycles would exhaust memory
// long before the SAT solver gets a chance; cap the formula size
// (the paper's basic synthesizer simply times out there).
constexpr size_t kMaxAigNodes = 20u * 1000 * 1000;

} // namespace

using bv::Value;
using sat::Lit;
using smt::AigLit;
using smt::CycleBindings;
using smt::CycleWords;
using smt::Result;
using smt::Word;

void
RepairQuery::allocateSynthWords()
{
    smt::Aig &aig = _solver.aig();
    // Allocate the synthesis variables once; they are shared by every
    // unrolled cycle (design-time constants).
    _synth_words.resize(_sys.synth_vars.size());
    for (size_t i = 0; i < _sys.synth_vars.size(); ++i) {
        _synth_words[i] =
            smt::freshWord(aig, _sys.synth_vars[i].width);
        if (_sys.synth_vars[i].is_phi)
            _phi_lits.push_back(_synth_words[i][0]);
    }
}

void
RepairQuery::buildColumnMaps()
{
    // Map trace columns to system inputs/outputs.
    _input_of_column.resize(_io.inputs.size());
    for (size_t i = 0; i < _io.inputs.size(); ++i) {
        _input_of_column[i] = _sys.inputIndex(_io.inputs[i].name);
        check(_input_of_column[i] >= 0,
              "trace input not in design: " + _io.inputs[i].name);
    }
    _output_of_column.resize(_io.outputs.size());
    for (size_t i = 0; i < _io.outputs.size(); ++i) {
        _output_of_column[i] = _sys.outputIndex(_io.outputs[i].name);
        check(_output_of_column[i] >= 0,
              "trace output not in design: " + _io.outputs[i].name);
    }
}

void
RepairQuery::beginEpoch()
{
    const sat::Solver &s = _solver.satSolver();
    _base_conflicts = s.conflicts;
    _base_propagations = s.propagations;
    _base_restarts = s.restarts;
    _base_solve_calls = s.solve_calls;
    _reused_aig_nodes = _incremental ? _solver.aig().numNodes() : 0;
    _encode_seconds = 0.0;
}

std::vector<Word>
RepairQuery::encodeRange(size_t from, size_t to,
                         std::vector<Word> states,
                         const Deadline *deadline)
{
    smt::Aig &aig = _solver.aig();
    s_cycles.add(to - from);

    CycleBindings bindings;
    bindings.synth = _synth_words;
    bindings.states = std::move(states);

    for (size_t cycle = from; cycle < to; ++cycle) {
        if (aig.numNodes() > kMaxAigNodes ||
            (deadline && deadline->expired())) {
            _aborted = true;
            _last = smt::Result::Timeout;
            break;
        }
        // Inputs: constants from the resolved trace.
        bindings.inputs.assign(_sys.inputs.size(), Word{});
        for (size_t i = 0; i < _sys.inputs.size(); ++i) {
            bindings.inputs[i] =
                smt::freshWord(aig, _sys.inputs[i].width);
        }
        for (size_t col = 0; col < _input_of_column.size(); ++col) {
            Value v = _io.input_rows[cycle][col];
            check(!v.hasX(),
                  "trace inputs must be X-resolved before encoding");
            uint32_t want =
                _sys.inputs[_input_of_column[col]].width;
            if (v.width() < want)
                v = v.zext(want);
            else if (v.width() > want)
                v = v.slice(want - 1, 0);
            bindings.inputs[_input_of_column[col]] =
                smt::wordOfValue(v);
        }

        CycleWords words = smt::blastCycle(aig, _sys, bindings);

        // Output assertions (X bits unchecked), gated behind a
        // per-cycle activation literal.  The ladder's windows only
        // grow, so an encoded cycle is committed immediately with a
        // unit clause; the gate keeps the mechanism retargetable and
        // gives retired constraints a single retraction point.
        Lit act = _solver.newActivationLit();
        _solver.satCore().addClause(act);
        for (size_t col = 0; col < _output_of_column.size(); ++col) {
            const Value &expected = _io.output_rows[cycle][col];
            _solver.assertWordEqualsIf(
                act, words.outputs[_output_of_column[col]], expected);
        }

        bindings.states = std::move(words.next_states);
    }

    size_t before = _solver_aig_nodes;
    _solver_aig_nodes = aig.numNodes();
    s_nodes.add(_solver_aig_nodes - before);
    return std::move(bindings.states);
}

RepairQuery::RepairQuery(const ir::TransitionSystem &sys,
                         const templates::SynthVarTable &vars,
                         const trace::IoTrace &io, size_t first,
                         size_t count,
                         const std::vector<Value> &start_state,
                         const Deadline *deadline,
                         uint64_t solver_seed)
    : _sys(sys), _vars(vars), _io(io)
{
    telemetry::Span span("encode");
    s_queries.add(1);
    s_max_window.record(count);
    if (solver_seed != 0)
        _solver.satCore().setPhaseSeed(solver_seed);
    check(first + count <= io.length(), "window exceeds trace");
    check(start_state.size() == sys.states.size(),
          "start state size mismatch");

    beginEpoch();
    Stopwatch watch;
    allocateSynthWords();
    buildColumnMaps();

    // Initial window state: concrete constants.
    std::vector<Word> states(sys.states.size());
    for (size_t i = 0; i < sys.states.size(); ++i) {
        // Residual X bits (e.g. from explicit X literals in the
        // design) read as zero, matching the 2-state circuit.
        states[i] = smt::wordOfValue(start_state[i].xToZero());
    }
    encodeRange(first, first + count, std::move(states), deadline);
    _encode_seconds = watch.seconds();
    _card.emplace(_solver, _phi_lits);
}

RepairQuery::RepairQuery(const ir::TransitionSystem &sys,
                         const templates::SynthVarTable &vars,
                         const trace::IoTrace &io, Incremental,
                         const Deadline *deadline,
                         uint64_t solver_seed)
    : _sys(sys), _vars(vars), _io(io), _incremental(true)
{
    (void)deadline;
    if (solver_seed != 0)
        _solver.satCore().setPhaseSeed(solver_seed);
    allocateSynthWords();
    buildColumnMaps();
    _card.emplace(_solver, _phi_lits);
}

void
RepairQuery::retarget(size_t first, size_t count,
                      const std::vector<Value> &start_state,
                      const Deadline *deadline)
{
    check(_incremental, "retarget on a fresh query");
    if (_aborted)
        return;  // sticky: every solve reports Timeout
    telemetry::Span span("encode");
    s_queries.add(1);
    s_max_window.record(count);
    check(first + count <= _io.length(), "window exceeds trace");
    check(start_state.size() == _sys.states.size(),
          "start state size mismatch");

    beginEpoch();
    Stopwatch watch;
    smt::Aig &aig = _solver.aig();
    sat::Solver &sat = _solver.satCore();

    // Retire the previous window's anchor and block session: a unit
    // clause turns every gated constraint vacuous for good.
    if (_anchor != sat::kUndefLit) {
        sat.addClause(~_anchor);
        _anchor = sat::kUndefLit;
    }
    if (_session != sat::kUndefLit) {
        sat.addClause(~_session);
        _session = sat::kUndefLit;
    }

    if (!_encoded) {
        _entry_words.resize(_sys.states.size());
        for (size_t i = 0; i < _sys.states.size(); ++i) {
            _entry_words[i] =
                smt::freshWord(aig, _sys.states[i].width);
        }
        _lo = first;
        _frontier = encodeRange(first, first + count, _entry_words,
                                deadline);
        _hi = first + count;
        _encoded = true;
    } else {
        check(first <= _lo && first + count >= _hi,
              "incremental window must grow monotonically");
        if (first < _lo) {
            // Prepend: fresh entry variables, encode the new prefix,
            // then weld its next-state words onto the old entry with
            // permanent seam equalities.
            std::vector<Word> new_entry(_sys.states.size());
            for (size_t i = 0; i < _sys.states.size(); ++i) {
                new_entry[i] =
                    smt::freshWord(aig, _sys.states[i].width);
            }
            std::vector<Word> seam =
                encodeRange(first, _lo, new_entry, deadline);
            if (_aborted)
                return;
            for (size_t i = 0; i < _sys.states.size(); ++i)
                _solver.assertWordsEqual(seam[i], _entry_words[i]);
            _entry_words = std::move(new_entry);
            _lo = first;
        }
        if (first + count > _hi) {
            _frontier = encodeRange(_hi, first + count,
                                    std::move(_frontier), deadline);
            _hi = first + count;
        }
    }
    if (_aborted)
        return;

    // Anchor the (symbolic) entry state to the concrete prefix
    // simulation values of this window's start.
    _anchor = _solver.newActivationLit();
    for (size_t i = 0; i < _sys.states.size(); ++i) {
        _solver.assertWordEqualsIf(_anchor, _entry_words[i],
                                   start_state[i].xToZero());
    }
    _encode_seconds = watch.seconds();
}

std::vector<Lit>
RepairQuery::baseAssumptions() const
{
    std::vector<Lit> out;
    if (_anchor != sat::kUndefLit)
        out.push_back(_anchor);
    if (_session != sat::kUndefLit)
        out.push_back(_session);
    return out;
}

void
RepairQuery::noteUnsatCore(Lit bound, size_t max_changes)
{
    if (!_incremental)
        return;
    const std::vector<Lit> &core =
        _solver.satSolver().conflictCore();
    auto contains = [&](Lit l) {
        return l != sat::kUndefLit &&
               std::find(core.begin(), core.end(), l) != core.end();
    };
    // A core through the anchor blames the concrete window-start
    // state; a core through the session blames window-local blocking
    // clauses.  Either way the verdict does not outlive the window.
    if (contains(_anchor) || contains(_session))
        return;
    if (bound != sat::kUndefLit && contains(bound)) {
        // Window-independent constraints refute Σφ ≤ max_changes:
        // that bound (and every smaller one) stays UNSAT in every
        // future window.
        _dead_bound =
            std::max(_dead_bound, static_cast<long>(max_changes));
        return;
    }
    // Neither anchor, session, nor bound: the permanent clauses are
    // inconsistent on their own — all larger windows are UNSAT.
    _window_free_unsat = true;
}

Result
RepairQuery::checkFeasible(const Deadline *deadline)
{
    if (_aborted)
        return Result::Timeout;
    if (_window_free_unsat) {
        _last = Result::Unsat;
        return _last;
    }
    sat::LBool res =
        _solver.satCore().solve(baseAssumptions(), deadline);
    _last = res == sat::LBool::True    ? Result::Sat
            : res == sat::LBool::False ? Result::Unsat
                                       : Result::Timeout;
    if (_last == Result::Sat)
        _last_model = extractModel();
    else if (_last == Result::Unsat)
        noteUnsatCore(sat::kUndefLit, 0);
    return _last;
}

std::optional<templates::SynthAssignment>
RepairQuery::solveWithBound(size_t max_changes,
                            const Deadline *deadline)
{
    if (_aborted) {
        _last = Result::Timeout;
        return std::nullopt;
    }
    if (_window_free_unsat ||
        static_cast<long>(max_changes) <= _dead_bound) {
        // An earlier core proved this bound UNSAT from
        // window-independent constraints; the fresh reference would
        // re-derive the same verdict the long way.
        if (static_cast<long>(max_changes) <= _dead_bound)
            s_dead_bounds.add(1);
        _last = Result::Unsat;
        return std::nullopt;
    }
    // Assumption-based: learnt clauses persist across bounds.
    Lit bound = _card->atMost(max_changes);
    std::vector<Lit> assumps = baseAssumptions();
    assumps.push_back(bound);
    sat::LBool res = _solver.satCore().solve(assumps, deadline);
    _last = res == sat::LBool::True    ? Result::Sat
            : res == sat::LBool::False ? Result::Unsat
                                       : Result::Timeout;
    if (_last == Result::Unsat)
        noteUnsatCore(bound, max_changes);
    if (_last != Result::Sat)
        return std::nullopt;
    _last_model = extractModel();
    return _last_model;
}

bool
RepairQuery::canonicalizeLast(size_t max_changes,
                              const Deadline *deadline)
{
    if (_aborted || !_last_model)
        return false;
    // Model-guided canonical descent: walk the synthesis bits in
    // creation order and greedily fix each to its *preferred* value
    // when a model allows it.  φ indicators prefer 1 — templates
    // mint change sites in plausibility order (invert-condition
    // before add-guard, earlier AST sites first), so the canonical
    // repair uses the sites the template ranked highest, mirroring
    // the cascade's simplest-first spirit.  α constants prefer 0.
    // A bit the current model already has at its preferred value is
    // fixed for free; otherwise one assumption solve tests whether
    // the preferred value is still satisfiable.  Once Σφ preferred
    // ones reach @p max_changes, every later φ is forced 0 by the
    // cardinality bound and fixed for free too.  The fixpoint is the
    // unique greedy-canonical model of the semantic constraint set,
    // so it does not depend on CNF layout, variable numbering, or
    // solver heuristics — the incremental query and the fresh
    // reference report identical repairs.  Cores from these solves
    // mention the fixed-bit assumptions and are deliberately not fed
    // to noteUnsatCore.
    std::vector<Lit> assumps = baseAssumptions();
    assumps.push_back(_card->atMost(max_changes));
    templates::SynthAssignment current = *_last_model;
    size_t ones_fixed = 0;
    for (size_t i = 0; i < _sys.synth_vars.size(); ++i) {
        const auto &sv = _sys.synth_vars[i];
        for (uint32_t b = 0; b < sv.width; ++b) {
            Lit bit = _solver.satLitOf(_synth_words[i][b]);
            bool prefer_one = sv.is_phi && ones_fixed < max_changes;
            Lit want = prefer_one ? bit : ~bit;
            bool have =
                current.values[sv.name].bit(b) == (prefer_one ? 1 : 0);
            if (!have) {
                assumps.push_back(want);
                sat::LBool res =
                    _solver.satCore().solve(assumps, deadline);
                if (res == sat::LBool::Undef) {
                    _last = Result::Timeout;
                    return false;
                }
                if (res == sat::LBool::True)
                    current = extractModel();
                else
                    assumps.back() = ~want;
            } else {
                assumps.push_back(want);
            }
            if (sv.is_phi &&
                current.values[sv.name].bit(b) == 1)
                ++ones_fixed;
        }
    }
    _last_model = std::move(current);
    return true;
}

templates::SynthAssignment
RepairQuery::extractModel()
{
    templates::SynthAssignment out;
    for (size_t i = 0; i < _sys.synth_vars.size(); ++i) {
        out.values[_sys.synth_vars[i].name] =
            _solver.modelWord(_synth_words[i]);
    }
    return out;
}

void
RepairQuery::blockAssignment(
    const templates::SynthAssignment &assignment)
{
    // Group synthesis variables by AST site; a blocked repair is the
    // combination of the φ pattern plus the α values of *active*
    // sites (inactive-α differences do not make a repair distinct).
    std::map<verilog::NodeId, bool> site_active;
    for (const auto &v : _vars.vars()) {
        if (!v.is_phi)
            continue;
        auto it = assignment.values.find(v.name);
        bool active = it != assignment.values.end() &&
                      it->second.isNonZero();
        auto [slot, inserted] = site_active.emplace(v.site, active);
        if (!inserted)
            slot->second = slot->second || active;
    }

    std::vector<sat::Lit> clause;
    // Incremental mode: gate the exclusion behind the window's block
    // session so it evaporates (one unit clause) on retarget —
    // matching the fresh reference, whose blocks die with the query.
    if (_incremental) {
        if (_session == sat::kUndefLit)
            _session = _solver.newActivationLit();
        clause.push_back(~_session);
    }
    for (size_t i = 0; i < _sys.synth_vars.size(); ++i) {
        const auto &sv = _sys.synth_vars[i];
        auto it = assignment.values.find(sv.name);
        if (it == assignment.values.end())
            continue;
        // Find the template var entry for the site lookup.
        const templates::SynthVar *tv = nullptr;
        for (const auto &cand : _vars.vars()) {
            if (cand.name == sv.name) {
                tv = &cand;
                break;
            }
        }
        bool include = sv.is_phi;
        if (!include && tv) {
            auto site = site_active.find(tv->site);
            include = site != site_active.end() && site->second;
        }
        if (!include)
            continue;
        const Value &v = it->second;
        for (uint32_t b = 0; b < sv.width; ++b) {
            AigLit bit_lit = _synth_words[i][b];
            bool bit = v.bit(b) == 1;
            // Clause: at least one bit differs.
            clause.push_back(bit ? ~_solver.satLitOf(bit_lit)
                                 : _solver.satLitOf(bit_lit));
        }
    }
    if (clause.size() > (_incremental ? 1u : 0u))
        _solver.satCore().addClause(std::move(clause));
}

} // namespace rtlrepair::repair
